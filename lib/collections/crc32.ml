(* Reflected CRC-32, polynomial 0xEDB88320 (IEEE). Digesting uses
   slicing-by-8: eight 256-entry tables let one loop iteration consume
   eight input bytes with a single carried dependency, several times
   faster than the classic byte-at-a-time loop on the megabyte payloads
   the snapshot format guards. The digest is identical to the
   byte-at-a-time definition. All arithmetic stays within 32 bits, so
   the digest is an immediate int on 64-bit OCaml. *)

let tables =
  let t = Array.make_matrix 8 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(0).(n) <- !c
  done;
  (* t.(k).(n) is the CRC contribution of byte n sitting k bytes before
     the end of an 8-byte group *)
  for k = 1 to 7 do
    for n = 0 to 255 do
      let p = t.(k - 1).(n) in
      t.(k).(n) <- t.(0).(p land 0xFF) lxor (p lsr 8)
    done
  done;
  t

let t0 = tables.(0)
let t1 = tables.(1)
let t2 = tables.(2)
let t3 = tables.(3)
let t4 = tables.(4)
let t5 = tables.(5)
let t6 = tables.(6)
let t7 = tables.(7)

let digest_bytes b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32: substring out of bounds";
  let crc = ref 0xFFFFFFFF in
  let i = ref off in
  let fin = off + len in
  (* SAFETY: the range check above keeps every byte index in both loops
     inside [off, off+len) and thus inside b; every table index is
     masked to 0..255 against the 256-entry tables *)
  while fin - !i >= 8 do
    let j = !i in
    let b0 = Char.code (Bytes.unsafe_get b j)
    and b1 = Char.code (Bytes.unsafe_get b (j + 1))
    and b2 = Char.code (Bytes.unsafe_get b (j + 2))
    and b3 = Char.code (Bytes.unsafe_get b (j + 3))
    and b4 = Char.code (Bytes.unsafe_get b (j + 4))
    and b5 = Char.code (Bytes.unsafe_get b (j + 5))
    and b6 = Char.code (Bytes.unsafe_get b (j + 6))
    and b7 = Char.code (Bytes.unsafe_get b (j + 7)) in
    let c = !crc lxor (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) in
    crc :=
      Array.unsafe_get t7 (c land 0xFF)
      lxor Array.unsafe_get t6 ((c lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((c lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((c lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 b4
      lxor Array.unsafe_get t2 b5
      lxor Array.unsafe_get t1 b6
      lxor Array.unsafe_get t0 b7;
    i := j + 8
  done;
  while !i < fin do
    crc :=
      Array.unsafe_get t0 ((!crc lxor Char.code (Bytes.unsafe_get b !i)) land 0xFF)
      lxor (!crc lsr 8);
    incr i
  done;
  !crc lxor 0xFFFFFFFF

let bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  digest_bytes b off len

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  digest_bytes (Bytes.of_string s) off len
