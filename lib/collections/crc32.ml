(* Reflected CRC-32, polynomial 0xEDB88320 (IEEE). The 256-entry table is
   built once at module initialization; digesting is one table lookup and
   one xor per byte. All arithmetic stays within 32 bits, so the digest is
   an immediate int on 64-bit OCaml. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let digest_bytes b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32: substring out of bounds";
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := table.((!crc lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  digest_bytes b off len

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  digest_bytes (Bytes.of_string s) off len
