(** Growable ring-buffer FIFO queue.

    Backs PolyDelayEnum's queue [Q] of pending maximal connected s-cliques
    (paper Fig. 4) and the BFS frontiers of the graph substrate. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Enqueue at the back. Amortized O(1). *)

val pop : 'a t -> 'a
(** Dequeue from the front.
    @raise Invalid_argument on an empty queue. *)

val pop_opt : 'a t -> 'a option

val peek : 'a t -> 'a
(** Front element without removing it.
    @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration over current contents. *)

val to_list : 'a t -> 'a list
