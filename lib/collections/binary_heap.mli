(** Array-based binary heap with a caller-supplied priority order.

    Backs the §6 "large results first" variant of PolyDelayEnum, where the
    FIFO queue is replaced by a priority queue returning larger maximal
    connected s-cliques first. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap. [pop] returns the minimum according
    to [cmp]; pass a reversed comparison for max-first behaviour. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n). *)

val pop : 'a t -> 'a
(** Remove and return the minimum element. O(log n).
    @raise Invalid_argument on an empty heap. *)

val pop_opt : 'a t -> 'a option

val peek : 'a t -> 'a
(** Minimum element without removing it.
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)

val pop_all : 'a t -> 'a list
(** Drain the heap; the result is sorted by [cmp]. *)
