type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Passes BigCrush; one multiplication-xor chain
   per output, which is all the generators need. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* drop two bits so the result fits OCaml's 63-bit int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  assert (bound > 0.);
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992. *. bound

let bool t = Int64.equal (Int64.logand (next_int64 t) 1L) 1L

let pair_distinct t n =
  assert (n >= 2);
  let u = int t n in
  let v = int t (n - 1) in
  let v = if v >= u then v + 1 else v in
  if u < v then (u, v) else (v, u)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm: k hash insertions regardless of n. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun key () ->
      out.(!i) <- key;
      incr i)
    chosen;
  Array.sort Int.compare out;
  out
