(** Bounded cache with least-recently-inserted (LRI) eviction.

    The paper (§7) memoizes the expensive [N^s(v)] neighborhood sets in a
    hash table and, "when memory begins to run low, removes some entries
    from the hash table (using an LRI ordering) to make room for new
    neighbor results". LRI evicts in insertion order — a FIFO policy, as
    opposed to LRU's access order — which this module reproduces, together
    with hit/miss/eviction counters for the cache ablation benchmark. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] caches at most [capacity] bindings; inserting
    into a full cache evicts the oldest-inserted binding. [capacity = 0]
    disables caching entirely (every lookup misses and nothing is stored).
    Requires [capacity >= 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Updates the hit/miss counters but never the eviction order. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching the statistics. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert a binding, evicting the oldest one when full. Re-inserting an
    existing key replaces its value without changing its eviction rank. *)

val find_or_add : ('k, 'v) t -> 'k -> compute:('k -> 'v) -> 'v
(** Return the cached value, or compute, store and return it. *)

val clear : ('k, 'v) t -> unit
(** Drop all bindings; statistics are kept. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : ('k, 'v) t -> stats
