(** Bounded cache with least-recently-inserted (LRI) eviction.

    The paper (§7) memoizes the expensive [N^s(v)] neighborhood sets in a
    hash table and, "when memory begins to run low, removes some entries
    from the hash table (using an LRI ordering) to make room for new
    neighbor results". LRI evicts in insertion order — a FIFO policy, as
    opposed to LRU's access order — which this module reproduces, together
    with hit/miss/eviction counters for the cache ablation benchmark.

    Keys are [int] node ids: pinning the key type keeps the underlying
    hash table off the polymorphic hash/compare runtime primitives. *)

type 'v t

val create : ?weight:('v -> int) -> capacity:int -> unit -> 'v t
(** [create ~capacity ()] caches at most [capacity] bindings; inserting
    into a full cache evicts the oldest-inserted binding. [capacity = 0]
    disables caching entirely (every lookup misses and nothing is stored).
    [weight] (default [fun _ -> 0]) assigns each value a cost — e.g. an
    approximate byte size — whose running sum over the cached bindings is
    reported by {!total_weight}; it must be a pure function of the value.
    Requires [capacity >= 0]. *)

val capacity : 'v t -> int

val length : 'v t -> int

val total_weight : 'v t -> int
(** Sum of [weight v] over the currently cached values — the memory
    footprint probe used by enumeration budgets ([Budget.max_cache_bytes]).
    Constant time: maintained incrementally on add/replace/evict. *)

val find_opt : 'v t -> int -> 'v option
(** Updates the hit/miss counters but never the eviction order. *)

val mem : 'v t -> int -> bool
(** Membership without touching the statistics. *)

val add : 'v t -> int -> 'v -> unit
(** Insert a binding, evicting the oldest one when full. Re-inserting an
    existing key replaces its value without changing its eviction rank. *)

val find_or_add : 'v t -> int -> compute:(int -> 'v) -> 'v
(** Return the cached value, or compute, store and return it. *)

val remove : 'v t -> int -> unit
(** Drop the binding for a key, subtracting its weight from
    {!total_weight}; a no-op when the key is absent. This is caller-driven
    invalidation (the graph under a cached [N^s] ball changed), not an
    eviction, so it does not count in {!stats}. A key removed and later
    re-added gets a fresh eviction rank at the back of the LRI order. *)

val fold : (int -> 'v -> 'a -> 'a) -> 'v t -> 'a -> 'a
(** Fold over the live bindings, in unspecified order. *)

val clear : 'v t -> unit
(** Drop all bindings; statistics are kept. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : 'v t -> stats
