(** Disjoint-set forest with union by rank and path compression.

    Used by the graph substrate's connected-component routines and by the
    spanning-tree step of some generators. *)

type t

val create : int -> t
(** [create n] puts each of [0 .. n-1] in its own singleton set. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [false] when already merged. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Current number of disjoint sets. *)
