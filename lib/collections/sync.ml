(* The one place in the codebase allowed to touch Mutex.lock/unlock
   directly: every other module must route its critical sections through
   [with_lock], which pairs the unlock on all exit paths (normal return
   and exception) via [Fun.protect]. scliques-lint's lock-discipline
   rule enforces the routing. *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
