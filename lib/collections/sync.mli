(** Exception-safe locking. [with_lock m f] runs [f ()] with [m] held
    and releases [m] on every exit path, including when [f] raises.

    This helper is the designated owner of direct [Mutex.lock]/[unlock]
    calls: the lock-discipline rule of [scliques-lint] rejects them
    anywhere else, which makes "the unlock is paired on all exit paths"
    a checkable property instead of a review convention. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
