(** Exception-safe locking. [with_lock m f] runs [f ()] with [m] held
    and releases [m] on every exit path, including when [f] raises.

    This helper is the designated owner of direct [Mutex.lock]/[unlock]
    calls: the lock-discipline rule of [scliques-lint] rejects them
    anywhere else, which makes "the unlock is paired on all exit paths"
    a checkable property instead of a review convention.

    [with_lock] is also the marker the global concurrency rules key on
    (DESIGN.md §15): [scliques-lint] treats the dynamic extent of [f] as
    a critical section on [m] when it builds the lock-order graph and
    classifies accesses as locked or unlocked — so critical sections
    expressed any other way are invisible to the analysis. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
