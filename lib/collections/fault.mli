(** Deterministic fault injection for robustness tests.

    The recovery layer (budgets, checkpoints, the crash-safe record
    stream, the parallel scheduler) is only trustworthy if its failure
    paths are exercised on purpose. A [Fault.t] is a registry of armed
    fault points; production code calls {!check} at each named site
    ("stream.write", "ckpt.save", "par.w2.task", "sink.yield", ...) and
    an armed plan raises {!Injected} at a chosen hit. Plans are
    deterministic: either "fail the [n]-th hit of this site" or an
    {!Scoll.Rng}-seeded coin per hit, so every CI failure replays from
    its seed.

    [check] on an unarmed registry is one atomic load — callers may keep
    the call in moderately hot paths (per task, per write), though the
    enumeration inner loops never see a fault point at all. All
    operations are thread-safe; hit counting is serialized under one
    mutex, which is acceptable at the per-task/per-write cadence of the
    instrumented sites. *)

exception Injected of string
(** [Injected site] — the fault armed at [site] fired. The payload is the
    site name plus the 1-based hit index, e.g. ["stream.write#3"]. *)

type t

val none : t
(** Shared registry that is never armed: {!check} on it never raises.
    Do not {!arm} it. *)

val create : unit -> t
(** Fresh registry with no armed faults. *)

val arm_nth : t -> site:string -> n:int -> unit
(** Arm [site] to raise {!Injected} on its [n]-th {!check} (1-based);
    later hits of the same site pass again. Requires [n >= 1]. Arming the
    same site again replaces the previous plan. *)

val arm_every : t -> site:string -> n:int -> unit
(** Arm [site] to raise on every [n]-th hit ([n], [2n], ...): a lossy
    medium rather than a single torn write. Requires [n >= 1]. *)

val arm_seeded : t -> site:string -> seed:int -> p:float -> unit
(** Arm [site] with a splitmix64 stream: each hit fails independently
    with probability [p]. Deterministic for a fixed seed and hit order.
    Requires [0. <= p <= 1.]. *)

val disarm : t -> site:string -> unit
(** Remove the plan for [site] (no-op when not armed). *)

val check : t -> string -> unit
(** [check t site] counts one hit of [site] and raises {!Injected} when
    the armed plan says this hit fails. Unarmed sites (and the whole
    registry before any {!arm_nth}/{!arm_every}/{!arm_seeded}) never
    raise. *)

val hits : t -> string -> int
(** Number of times [site] was checked since the registry was first
    armed (including the raising hit). 0 for a never-checked site.
    Checks before the first [arm_*] call take the unarmed fast path and
    are not counted. *)
