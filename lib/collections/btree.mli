(** In-memory B-tree set with a caller-supplied total order.

    PolyDelayEnum (paper Fig. 4) requires an index [I] of already-generated
    maximal connected s-cliques with insert and membership "in time that is
    at most logarithmic in the size of I. Thus, for example, I can be
    implemented as a BTree." This module is that B-tree: a CLRS-style
    structure of minimum degree [t], holding between [t-1] and [2t-1] keys
    per node, so both operations are O(t log_t n) comparisons. *)

type 'a t

val create : ?min_degree:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty set ordered by [cmp]. [min_degree] (the
    CLRS parameter [t], default 16) must be at least 2. *)

val length : 'a t -> int
(** Number of keys stored. O(1). *)

val is_empty : 'a t -> bool

val mem : 'a t -> 'a -> bool
(** O(log n). *)

val add : 'a t -> 'a -> bool
(** [add t x] inserts [x]; returns [false] when an equal key was already
    present (the set is unchanged), [true] when [x] was inserted. O(log n). *)

val min_elt : 'a t -> 'a option

val max_elt : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate all keys in increasing [cmp] order. *)

val to_list : 'a t -> 'a list
(** Keys in increasing order. *)

val height : 'a t -> int
(** Height of the tree (0 for a tree holding only a root). Exposed for
    tests asserting the logarithmic-depth invariant. *)

val check_invariants : 'a t -> unit
(** Validate ordering and occupancy invariants of every node.
    @raise Failure describing the first violated invariant. *)
