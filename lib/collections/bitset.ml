type t = { words : int array; capacity : int }

(* 32 bits per word, not the full 63 of an OCaml int: word/bit indices
   become a shift and a mask ([lsr 5] / [land 31]) instead of the
   hardware division that ocamlopt emits for [/ 63], and membership tests
   are the single hottest operation here. The top 31 bits of every word
   stay zero (only [lor] of single bits below 32 and [land] combinations
   ever write), so word-array equality and popcounts remain exact. *)
let bits_per_word = 32

let create capacity =
  assert (capacity >= 0);
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word + 1) 0; capacity }

let capacity t = t.capacity

let unsafe_words t = t.words

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of bounds [0, %d)" i t.capacity)

(* SAFETY: caller guarantees 0 <= i < capacity, and create sizes words
   so that i lsr 5 < Array.length words — the elided bounds check is
   measurable in the mask scans *)
let unsafe_mem t i = Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

(* membership as 0/1 with no boolean materialization: counting loops add
   it straight into an accumulator, branch-free.
   SAFETY: same bounds argument as unsafe_mem — caller owns i < capacity *)
let unsafe_mem01 t i = (Array.unsafe_get t.words (i lsr 5) lsr (i land 31)) land 1

(* SAFETY: check validates 0 <= i < capacity before the unsafe read *)
let mem t i =
  check t i;
  unsafe_mem t i

(* SAFETY: caller guarantees i < capacity, so w < Array.length words *)
let unsafe_add t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl (i land 31)))

(* SAFETY: check validates 0 <= i < capacity before the unsafe write *)
let add t i =
  check t i;
  unsafe_add t i

(* SAFETY: caller guarantees i < capacity, so w < Array.length words *)
let unsafe_remove t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w land lnot (1 lsl (i land 31)))

(* SAFETY: check validates 0 <= i < capacity before the unsafe write *)
let remove t i =
  check t i;
  unsafe_remove t i

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let add_all t arr = Array.iter (add t) arr

let remove_all t arr = Array.iter (remove t) arr

(* Batched scratch-mask loads: direct loops over a member array, no
   per-element closure invocation — these two back the hot reload path of
   Neighborhood masks, where a closure call per member costs more than
   the bit operation itself. *)

(* SAFETY: k ranges over arr's length, and the caller guarantees every
   member of arr is < capacity, so each word index is in bounds *)
let unsafe_add_all t arr =
  let words = t.words in
  for k = 0 to Array.length arr - 1 do
    let i = Array.unsafe_get arr k in
    let w = i lsr 5 in
    Array.unsafe_set words w (Array.unsafe_get words w lor (1 lsl (i land 31)))
  done

(* SAFETY: k ranges over [off, off+len), which the caller guarantees is
   inside arr, and every listed element is < capacity, so each word
   index is in bounds *)
let unsafe_add_sub t arr ~off ~len =
  let words = t.words in
  for k = off to off + len - 1 do
    let i = Array.unsafe_get arr k in
    let w = i lsr 5 in
    Array.unsafe_set words w (Array.unsafe_get words w lor (1 lsl (i land 31)))
  done

(* Store 0 to every word holding a member of [arr]: clears a mask whose
   entire content is [arr] with one store per member. Any OTHER bit
   sharing a word with a member is wiped too — only valid when [arr] is
   exactly the mask's current contents. When the member array is at least
   as long as the word array a full clear is fewer stores, so do that.
   SAFETY: k ranges over arr's length; members are < capacity, so each
   word index is < Array.length words *)
let unsafe_zero_words t arr =
  let words = t.words in
  if Array.length arr >= Array.length words then Array.fill words 0 (Array.length words) 0
  else
    for k = 0 to Array.length arr - 1 do
      Array.unsafe_set words (Array.unsafe_get arr k lsr 5) 0
    done

(* Load a SORTED member array into a cleared mask, one store per touched
   word: members sharing a word (common for ball arrays, whose ids
   cluster) are OR-ed together in a register first. Overwrites touched
   words, so any prior contents must already be zeroed.
   SAFETY: both loops read arr at !k with !k < n = Array.length arr, and
   the caller guarantees members < capacity, bounding the word stores *)
let unsafe_load_sorted t arr =
  let words = t.words in
  let n = Array.length arr in
  let k = ref 0 in
  while !k < n do
    let i = Array.unsafe_get arr !k in
    let w = i lsr 5 in
    let bits = ref (1 lsl (i land 31)) in
    incr k;
    while !k < n && Array.unsafe_get arr !k lsr 5 = w do
      bits := !bits lor (1 lsl (Array.unsafe_get arr !k land 31));
      incr k
    done;
    Array.unsafe_set words w !bits
  done

(* number of trailing zeros of a nonzero word: binary-partition descent,
   six comparisons per call, no table *)
let ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then n := !n + 1;
  !n

(* Iterate set bits only: extract the lowest set bit of each word until it
   is exhausted — O(words + members), not O(capacity). *)
let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      f (base + ntz !word);
      word := !word land (!word - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { words = Array.copy t.words; capacity = t.capacity }

(* explicit word loop, not structural (=) on the arrays: polymorphic
   compare walks tags element by element through caml_compare *)
let equal a b =
  a.capacity = b.capacity
  &&
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) = b.words.(i) && go (i + 1)) in
  n = Array.length b.words && go 0

(* ---------- word-parallel kernels ---------- *)

let check_same_capacity op a b =
  if a.capacity <> b.capacity then
    invalid_arg
      (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)" op a.capacity b.capacity)

let inter_into ~into src =
  check_same_capacity "inter_into" into src;
  let iw = into.words and sw = src.words in
  for w = 0 to Array.length iw - 1 do
    iw.(w) <- iw.(w) land sw.(w)
  done

let union_into ~into src =
  check_same_capacity "union_into" into src;
  let iw = into.words and sw = src.words in
  for w = 0 to Array.length iw - 1 do
    iw.(w) <- iw.(w) lor sw.(w)
  done

let diff_into ~into src =
  check_same_capacity "diff_into" into src;
  let iw = into.words and sw = src.words in
  for w = 0 to Array.length iw - 1 do
    iw.(w) <- iw.(w) land lnot sw.(w)
  done
