type t = { words : int array; capacity : int }

let bits_per_word = 63

let create capacity =
  assert (capacity >= 0);
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word + 1) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of bounds [0, %d)" i t.capacity)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let add_all t arr = Array.iter (add t) arr

let remove_all t arr = Array.iter (remove t) arr

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let equal a b = a.capacity = b.capacity && a.words = b.words
