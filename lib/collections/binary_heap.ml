type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable buf : 'a option array;
  mutable len : int;
}

let create ~cmp () = { cmp; buf = Array.make 16 None; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let get t i = match t.buf.(i) with None -> assert false | Some x -> x

let swap t i j =
  let tmp = t.buf.(i) in
  t.buf.(i) <- t.buf.(j);
  t.buf.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.len && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.buf then begin
    let buf' = Array.make (2 * t.len) None in
    Array.blit t.buf 0 buf' 0 t.len;
    t.buf <- buf'
  end;
  t.buf.(t.len) <- Some x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Binary_heap.pop: empty heap";
  let top = get t 0 in
  t.len <- t.len - 1;
  t.buf.(0) <- t.buf.(t.len);
  t.buf.(t.len) <- None;
  if t.len > 0 then sift_down t 0;
  top

let pop_opt t = if t.len = 0 then None else Some (pop t)

let peek t =
  if t.len = 0 then invalid_arg "Binary_heap.peek: empty heap";
  get t 0

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.len <- 0

let of_array ~cmp arr =
  let len = Array.length arr in
  let buf = Array.make (max 16 len) None in
  Array.iteri (fun i x -> buf.(i) <- Some x) arr;
  let t = { cmp; buf; len } in
  for i = (len / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let pop_all t =
  let rec go acc = if is_empty t then List.rev acc else go (pop t :: acc) in
  go []
