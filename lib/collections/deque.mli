(** Double-ended queue on a growable circular buffer.

    The owner side of a work-stealing scheduler pushes and pops at the
    {e back} (LIFO — newest, cache-hot subproblems first); thieves pop at
    the {e front} (FIFO — oldest, typically largest subproblems), which is
    also the end that minimizes contention with the owner. The structure
    itself is not thread-safe: callers serialize access (the scheduler
    holds one mutex per deque). *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val pop_back_opt : 'a t -> 'a option
(** Newest element ([None] when empty) — the owner's end. *)

val pop_front_opt : 'a t -> 'a option
(** Oldest element ([None] when empty) — the thief's end. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
(** Front to back. *)
