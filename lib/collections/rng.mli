(** Deterministic pseudo-random number generator (splitmix64).

    All randomized graph generators take an explicit [Rng.t] so that every
    workload in the test and benchmark suites is reproducible from a seed,
    independently of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the splitmix64 stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool

val pair_distinct : t -> int -> int * int
(** [pair_distinct t n] draws an unordered pair of distinct ints below [n].
    Requires [n >= 2]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] draws [k] distinct ints below [n],
    returned sorted. Requires [0 <= k <= n]. *)
