type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let create ?(initial_capacity = 16) () =
  { buf = Array.make (max 1 initial_capacity) None; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf' = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf';
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
  t.len <- t.len + 1

let push_front t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.head <- (t.head + cap - 1) mod cap;
  t.buf.(t.head) <- Some x;
  t.len <- t.len + 1

let pop_front_opt t =
  if t.len = 0 then None
  else
    match t.buf.(t.head) with
    | None -> assert false
    | Some x ->
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        Some x

let pop_back_opt t =
  if t.len = 0 then None
  else begin
    let i = (t.head + t.len - 1) mod Array.length t.buf in
    match t.buf.(i) with
    | None -> assert false
    | Some x ->
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        Some x
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod Array.length t.buf) with
    | None -> assert false
    | Some x -> f x
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
