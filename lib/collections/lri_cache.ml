(* Keys are pinned to [int]: every consumer caches per-node data, and an
   int-keyed table lets the stdlib Hashtbl hash/compare specialize instead
   of going through the polymorphic runtime primitives. *)

type 'v t = {
  capacity : int;
  weight : 'v -> int;
  table : (int, 'v) Hashtbl.t;
  order : int Fifo_queue.t; (* insertion order; front = oldest *)
  stale : (int, int) Hashtbl.t;
  (* [Fifo_queue] has no random removal, so [remove] leaves the key's queue
     entry behind and records it here instead: [stale] maps a key to the
     number of queue entries that no longer correspond to a live binding.
     [evict_one] consumes these counters silently — otherwise a key that is
     removed and later re-added would be evicted on its orphaned (older)
     queue slot instead of its real insertion rank. *)
  mutable total_weight : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(weight = fun _ -> 0) ~capacity () =
  if capacity < 0 then invalid_arg "Lri_cache.create: negative capacity";
  {
    capacity;
    weight;
    table = Hashtbl.create (max 16 (min capacity 65536));
    order = Fifo_queue.create ();
    stale = Hashtbl.create 16;
    total_weight = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let total_weight t = t.total_weight

let find_opt t k =
  match Hashtbl.find_opt t.table k with
  | Some _ as r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.table k

let rec evict_one t =
  match Fifo_queue.pop_opt t.order with
  | None -> ()
  | Some oldest -> (
      match Hashtbl.find_opt t.stale oldest with
      | Some c ->
          (* orphaned slot left behind by [remove]; consume it silently *)
          if c = 1 then Hashtbl.remove t.stale oldest
          else Hashtbl.replace t.stale oldest (c - 1);
          evict_one t
      | None -> (
          match Hashtbl.find_opt t.table oldest with
          | Some old ->
              t.total_weight <- t.total_weight - t.weight old;
              Hashtbl.remove t.table oldest;
              t.evictions <- t.evictions + 1
          | None -> evict_one t))

let add t k v =
  if t.capacity > 0 then begin
    match Hashtbl.find_opt t.table k with
    | Some old ->
        t.total_weight <- t.total_weight - t.weight old + t.weight v;
        Hashtbl.replace t.table k v
    | None ->
        if Hashtbl.length t.table >= t.capacity then evict_one t;
        t.total_weight <- t.total_weight + t.weight v;
        Hashtbl.replace t.table k v;
        Fifo_queue.push t.order k
  end

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some old ->
      t.total_weight <- t.total_weight - t.weight old;
      Hashtbl.remove t.table k;
      (* the key's queue entry stays behind; flag it as orphaned. Any stale
         entries for [k] sit ahead of the live one in FIFO order, so
         [evict_one] consuming counters front-first matches them exactly. *)
      let c = match Hashtbl.find_opt t.stale k with None -> 0 | Some c -> c in
      Hashtbl.replace t.stale k (c + 1)

let fold f t init = Hashtbl.fold f t.table init

let find_or_add t k ~compute =
  match find_opt t k with
  | Some v -> v
  | None ->
      let v = compute k in
      add t k v;
      v

let clear t =
  Hashtbl.reset t.table;
  Fifo_queue.clear t.order;
  Hashtbl.reset t.stale;
  t.total_weight <- 0

let stats (t : _ t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }
