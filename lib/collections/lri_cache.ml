(* Keys are pinned to [int]: every consumer caches per-node data, and an
   int-keyed table lets the stdlib Hashtbl hash/compare specialize instead
   of going through the polymorphic runtime primitives. *)

type 'v t = {
  capacity : int;
  weight : 'v -> int;
  table : (int, 'v) Hashtbl.t;
  order : int Fifo_queue.t; (* insertion order; front = oldest *)
  mutable total_weight : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(weight = fun _ -> 0) ~capacity () =
  if capacity < 0 then invalid_arg "Lri_cache.create: negative capacity";
  {
    capacity;
    weight;
    table = Hashtbl.create (max 16 (min capacity 65536));
    order = Fifo_queue.create ();
    total_weight = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let total_weight t = t.total_weight

let find_opt t k =
  match Hashtbl.find_opt t.table k with
  | Some _ as r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.table k

let rec evict_one t =
  (* queue entries for keys replaced by [add] may be stale duplicates;
     skip entries that are no longer the table's binding count *)
  match Fifo_queue.pop_opt t.order with
  | None -> ()
  | Some oldest ->
      (match Hashtbl.find_opt t.table oldest with
      | Some old ->
          t.total_weight <- t.total_weight - t.weight old;
          Hashtbl.remove t.table oldest;
          t.evictions <- t.evictions + 1
      | None -> evict_one t)

let add t k v =
  if t.capacity > 0 then begin
    match Hashtbl.find_opt t.table k with
    | Some old ->
        t.total_weight <- t.total_weight - t.weight old + t.weight v;
        Hashtbl.replace t.table k v
    | None ->
        if Hashtbl.length t.table >= t.capacity then evict_one t;
        t.total_weight <- t.total_weight + t.weight v;
        Hashtbl.replace t.table k v;
        Fifo_queue.push t.order k
  end

let find_or_add t k ~compute =
  match find_opt t k with
  | Some v -> v
  | None ->
      let v = compute k in
      add t k v;
      v

let clear t =
  Hashtbl.reset t.table;
  Fifo_queue.clear t.order;
  t.total_weight <- 0

let stats (t : _ t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }
