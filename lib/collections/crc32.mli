(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).

    Integrity check for the crash-safe record stream: each record of a
    checkpoint or result file carries the CRC of its payload, so a torn
    or bit-rotted tail is detected on reload instead of being parsed as
    garbage. Table-driven, one table shared per process; the digest fits
    OCaml's immediate [int] range (always in [0, 2^32)). *)

val string : ?off:int -> ?len:int -> string -> int
(** [string s] is the CRC-32 of [s] (of the substring [off, off+len)
    when given) as a non-negative int below [2^32]. *)

val bytes : ?off:int -> ?len:int -> bytes -> int
(** Same over a [bytes] buffer. *)
