(** Fixed-capacity mutable bitsets over [0 .. capacity-1].

    Used as BFS "visited" marks, as membership masks when an algorithm
    repeatedly asks whether a node belongs to a small working set, and —
    through the word-parallel kernels below — as the dense set-algebra
    substrate of the enumeration hot paths (the Eppstein–Löffler–Strash
    bitset tradition of maximal-clique enumeration): intersection, union
    and difference run one machine-word AND/OR/ANDNOT at a time instead
    of one element at a time. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity-1]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Remove all elements (O(capacity / word_size)). *)

val cardinal : t -> int
(** Population count (O(capacity / word_size)). *)

val is_empty : t -> bool

val add_all : t -> int array -> unit

val remove_all : t -> int array -> unit

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. O(words + members): each word's
    set bits are extracted lowest-first, so sparse sets over a large
    capacity cost the word scan, not a test per possible element. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order (same cost as {!iter}). *)

val to_list : t -> int list

val copy : t -> t

val equal : t -> t -> bool
(** Same capacity and same members. *)

(** {2 Unchecked element operations}

    Same as {!mem}/{!add}/{!remove} without the bounds check — for hot
    loops whose indices are already known to be in range (e.g. node ids
    of a graph the mask was sized for). Out-of-range indices are
    undefined behaviour (they may corrupt a neighboring word). *)

val unsafe_mem : t -> int -> bool

val unsafe_mem01 : t -> int -> int
(** Membership as 0/1, for branch-free counting loops. *)

val unsafe_words : t -> int array
(** The backing word array (bit [i] of the set is bit [i land 31] of word
    [i lsr 5]). Escape hatch for external scan kernels: without flambda a
    cross-module {!unsafe_mem} call per element costs more than the bit
    test itself. Callers must not resize or hold onto the array, and
    writes must preserve the all-zero top 31 bits invariant. *)

val unsafe_add : t -> int -> unit

val unsafe_remove : t -> int -> unit

val unsafe_add_all : t -> int array -> unit
(** Add every element of the array — a direct loop with no per-element
    closure, for scratch-mask loads. Same caveats as {!unsafe_add}. *)

val unsafe_add_sub : t -> int array -> off:int -> len:int -> unit
(** [unsafe_add_sub t arr ~off ~len] adds [arr.(off) .. arr.(off+len-1)]
    — {!unsafe_add_all} over a slice, so a CSR neighbor row can be
    scattered into a mask without copying it out first. The range must
    lie inside [arr] and every listed element below the capacity. *)

val unsafe_zero_words : t -> int array -> unit
(** Store zero to every word holding an element of the array: clears a
    mask whose current contents are EXACTLY the given array, with one
    store per element instead of a read-modify-write {!unsafe_remove}
    (or a full {!clear} when that is fewer stores). Any other member
    sharing a word with a listed element is wiped too — callers must
    pass the mask's full contents. *)

val unsafe_load_sorted : t -> int array -> unit
(** Load a sorted array into an empty mask, one store per touched word
    (elements sharing a word are combined in a register first). The words
    it touches are overwritten, not OR-ed: the mask must be empty. *)

(** {2 Word-parallel kernels}

    In-place set algebra processing one machine word per step. Both
    operands must have the same capacity.
    @raise Invalid_argument on capacity mismatch. *)

val inter_into : into:t -> t -> unit
(** [inter_into ~into src] is [into := into ∩ src]. *)

val union_into : into:t -> t -> unit
(** [union_into ~into src] is [into := into ∪ src]. *)

val diff_into : into:t -> t -> unit
(** [diff_into ~into src] is [into := into − src]. *)
