(** Fixed-capacity mutable bitsets over [0 .. capacity-1].

    Used as BFS "visited" marks and as membership masks when an algorithm
    repeatedly asks whether a node belongs to a small working set. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity-1]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Remove all elements (O(capacity / word_size)). *)

val cardinal : t -> int
(** Population count (O(capacity / word_size)). *)

val is_empty : t -> bool

val add_all : t -> int array -> unit

val remove_all : t -> int array -> unit

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val to_list : t -> int list

val copy : t -> t

val equal : t -> t -> bool
(** Same capacity and same members. *)
