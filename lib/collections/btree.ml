(* CLRS-style B-tree (insertion by preemptive splitting on the way down).
   Invariants, for minimum degree t:
   - every node holds n keys with n <= 2t-1, and n >= t-1 unless it is
     the root;
   - an internal node with n keys has exactly n+1 children;
   - keys within a node are strictly increasing, and all keys of child i
     lie strictly between keys i-1 and i of the parent. *)

type 'a node = {
  mutable keys : 'a array; (* physical capacity 2t-1, first [n] used *)
  mutable n : int;
  mutable children : 'a node array; (* capacity 2t; empty array for leaves *)
  mutable leaf : bool;
}

type 'a t = {
  cmp : 'a -> 'a -> int;
  t_deg : int;
  mutable root : 'a node;
  mutable size : int;
}

(* An empty leaf root needs no key storage yet; we allocate key arrays
   lazily on first insert to avoid a placeholder value of type 'a. *)
let empty_node () = { keys = [||]; n = 0; children = [||]; leaf = true }

let make_node ~t_deg ~leaf ~proto =
  {
    keys = Array.make ((2 * t_deg) - 1) proto;
    n = 0;
    (* the shared placeholder node is always overwritten before any read *)
    children = (if leaf then [||] else Array.make (2 * t_deg) (empty_node ()));
    leaf;
  }

let create ?(min_degree = 16) ~cmp () =
  if min_degree < 2 then invalid_arg "Btree.create: min_degree must be >= 2";
  { cmp; t_deg = min_degree; root = empty_node (); size = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Position of [x] among the first [n] keys of [node]: [Found i] when
   keys.(i) equals x, otherwise [Insert i], the number of keys < x. *)
type position = Found of int | Insert of int

let search_keys cmp node x =
  let rec go lo hi =
    (* invariant: keys.(lo-1) < x < keys.(hi) (virtual sentinels) *)
    if lo >= hi then Insert lo
    else
      let mid = (lo + hi) / 2 in
      let c = cmp x node.keys.(mid) in
      if c = 0 then Found mid else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 node.n

let mem t x =
  let rec go node =
    if node.n = 0 then false
    else
      match search_keys t.cmp node x with
      | Found _ -> true
      | Insert i -> if node.leaf then false else go node.children.(i)
  in
  go t.root

(* Split the full child [parent.children.(i)]; [parent] must not be full. *)
let split_child t parent i =
  let child = parent.children.(i) in
  let td = t.t_deg in
  assert (child.n = (2 * td) - 1);
  let right = make_node ~t_deg:td ~leaf:child.leaf ~proto:child.keys.(0) in
  right.n <- td - 1;
  Array.blit child.keys td right.keys 0 (td - 1);
  if not child.leaf then Array.blit child.children td right.children 0 td;
  let median = child.keys.(td - 1) in
  child.n <- td - 1;
  (* shift parent's keys/children right to make room at slot i *)
  for j = parent.n downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1)
  done;
  for j = parent.n + 1 downto i + 2 do
    parent.children.(j) <- parent.children.(j - 1)
  done;
  parent.keys.(i) <- median;
  parent.children.(i + 1) <- right;
  parent.n <- parent.n + 1

(* Insert into a node known to be non-full. Returns false if the key was
   already present anywhere below. *)
let rec insert_nonfull t node x =
  match search_keys t.cmp node x with
  | Found _ -> false
  | Insert i ->
      if node.leaf then begin
        for j = node.n downto i + 1 do
          node.keys.(j) <- node.keys.(j - 1)
        done;
        node.keys.(i) <- x;
        node.n <- node.n + 1;
        true
      end
      else begin
        let i =
          if node.children.(i).n = (2 * t.t_deg) - 1 then begin
            split_child t node i;
            let c = t.cmp x node.keys.(i) in
            if c = 0 then -1 (* the promoted median equals x *)
            else if c > 0 then i + 1
            else i
          end
          else i
        in
        if i < 0 then false else insert_nonfull t node.children.(i) x
      end

let add t x =
  let td = t.t_deg in
  if Array.length t.root.keys = 0 then t.root.keys <- Array.make ((2 * td) - 1) x;
  let root = t.root in
  if root.n = (2 * td) - 1 then begin
    let new_root = make_node ~t_deg:td ~leaf:false ~proto:root.keys.(0) in
    new_root.children.(0) <- root;
    t.root <- new_root;
    split_child t new_root 0
  end;
  let inserted = insert_nonfull t t.root x in
  if inserted then t.size <- t.size + 1;
  inserted

let rec min_node node = if node.leaf then node else min_node node.children.(0)

let rec max_node node = if node.leaf then node else max_node node.children.(node.n)

let min_elt t = if t.size = 0 then None else Some (min_node t.root).keys.(0)

let max_elt t =
  if t.size = 0 then None
  else
    let node = max_node t.root in
    Some node.keys.(node.n - 1)

let iter f t =
  let rec go node =
    if node.leaf then
      for i = 0 to node.n - 1 do
        f node.keys.(i)
      done
    else begin
      for i = 0 to node.n - 1 do
        go node.children.(i);
        f node.keys.(i)
      done;
      go node.children.(node.n)
    end
  in
  if t.size > 0 then go t.root

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let height t =
  let rec go node = if node.leaf then 0 else 1 + go node.children.(0) in
  go t.root

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let td = t.t_deg in
  let count = ref 0 in
  (* lo/hi are exclusive bounds from ancestors; None = unbounded *)
  let rec go node ~is_root ~lo ~hi ~depth =
    if node.n > (2 * td) - 1 then fail "node overfull: %d keys" node.n;
    if (not is_root) && node.n < td - 1 then fail "node underfull: %d keys" node.n;
    count := !count + node.n;
    for i = 0 to node.n - 2 do
      if t.cmp node.keys.(i) node.keys.(i + 1) >= 0 then fail "keys not strictly increasing"
    done;
    (match lo with
    | Some l when node.n > 0 && t.cmp node.keys.(0) l <= 0 -> fail "key below lower bound"
    | _ -> ());
    (match hi with
    | Some h when node.n > 0 && t.cmp node.keys.(node.n - 1) h >= 0 ->
        fail "key above upper bound"
    | _ -> ());
    if not node.leaf then begin
      let leaf_depth = ref (-1) in
      for i = 0 to node.n do
        let lo' = if i = 0 then lo else Some node.keys.(i - 1) in
        let hi' = if i = node.n then hi else Some node.keys.(i) in
        let d = go node.children.(i) ~is_root:false ~lo:lo' ~hi:hi' ~depth:(depth + 1) in
        if !leaf_depth = -1 then leaf_depth := d
        else if d <> !leaf_depth then fail "leaves at unequal depths"
      done;
      !leaf_depth
    end
    else depth
  in
  ignore (go t.root ~is_root:true ~lo:None ~hi:None ~depth:0);
  if !count <> t.size then fail "size mismatch: counted %d, recorded %d" !count t.size
