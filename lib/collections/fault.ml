exception Injected of string

module Tbl = Hashtbl.Make (String)

type plan =
  | Nth of int
  | Every of int
  | Seeded of Rng.t * float

type t = {
  armed : bool Atomic.t;
      (* unarmed fast path: [check] is one atomic load and returns. Set
         once by the first arm_* call and never cleared, so the counters
         below are only touched when a test is actually driving faults *)
  lock : Mutex.t;
  plans : plan Tbl.t;
  counts : int ref Tbl.t;
}

let create () =
  {
    armed = Atomic.make false;
    lock = Mutex.create ();
    plans = Tbl.create 8;
    counts = Tbl.create 8;
  }

let none = create ()

let arm t ~site plan =
  Sync.with_lock t.lock (fun () -> Tbl.replace t.plans site plan);
  Atomic.set t.armed true

let arm_nth t ~site ~n =
  if n < 1 then invalid_arg "Fault.arm_nth: n must be >= 1";
  arm t ~site (Nth n)

let arm_every t ~site ~n =
  if n < 1 then invalid_arg "Fault.arm_every: n must be >= 1";
  arm t ~site (Every n)

let arm_seeded t ~site ~seed ~p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Fault.arm_seeded: p must be in [0, 1]";
  arm t ~site (Seeded (Rng.create seed, p))

let disarm t ~site = Sync.with_lock t.lock (fun () -> Tbl.remove t.plans site)

let check t site =
  if Atomic.get t.armed then begin
    let fire =
      Sync.with_lock t.lock (fun () ->
          let count =
            match Tbl.find_opt t.counts site with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Tbl.add t.counts site c;
                c
          in
          incr count;
          match Tbl.find_opt t.plans site with
          | None -> None
          | Some (Nth n) -> if !count = n then Some !count else None
          | Some (Every n) -> if !count mod n = 0 then Some !count else None
          | Some (Seeded (rng, p)) ->
              if Rng.float rng 1.0 < p then Some !count else None)
    in
    match fire with
    | None -> ()
    | Some hit -> raise (Injected (Printf.sprintf "%s#%d" site hit))
  end

let hits t site =
  Sync.with_lock t.lock (fun () ->
      match Tbl.find_opt t.counts site with Some c -> !c | None -> 0)
