(** Per-result delay instrumentation.

    The paper's headline guarantee is about {e delay} — the time before
    the first result, between consecutive results, and after the last one
    (Theorem 4.2 bounds all three by O(|V|^3) for PolyDelayEnum, while the
    Bron–Kerbosch adaptations have no such bound). This module wraps an
    enumeration callback and records exactly those three kinds of gaps, so
    experiments (Fig. 9f) and users can inspect worst-case and average
    delay rather than only total time. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** Start the clock now. [clock] defaults to the monotonic [Scliques_obs.Clock.now]; tests
    inject a fake clock. *)

val wrap : t -> (Sgraph.Node_set.t -> unit) -> Sgraph.Node_set.t -> unit
(** [wrap t yield] is a callback that records the inter-result delay and
    then calls [yield]. Pass it to any [iter]. *)

val tick : t -> unit
(** Record a result arrival without forwarding (when no inner callback is
    needed). *)

val finish : t -> unit
(** Mark the end of the enumeration: records the final gap (last result →
    termination). Idempotent. *)

type report = {
  results : int;
  total : float;  (** creation → finish (or last observation) *)
  first : float;  (** delay before the first result; total when none *)
  max_gap : float;  (** largest inter-result gap, including first and final *)
  mean_gap : float;  (** mean inter-result gap (0 when no gaps recorded) *)
}

val report : t -> report

val pp_report : Format.formatter -> report -> unit
