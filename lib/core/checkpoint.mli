(** Resumable enumeration checkpoints.

    When a budget trips ({!Budget.outcome} [Truncated]), the enumerators
    can describe exactly where they stopped, in one of three shapes:

    - {b Roots}: for the root-partitioned algorithms (CSCliques1/2 and
      the parallel runner) — the set of root nodes whose entire subtree
      has been explored {e and} whose results were all streamed. A resume
      re-runs only the remaining roots; root-level partitioning
      guarantees no overlap with what was already emitted.
    - {b Pd_frontier}: for PolyDelayEnum — the registered-set index plus
      the unprocessed queue. Everything in [index] minus [queue] has been
      emitted; a resume re-registers the index and continues dequeuing.
    - {b Brute_mask}: for the brute-force oracle — the next subset mask
      to test in its descending scan.

    Checkpoints are written with the {!Result_io.Stream} record format to
    a temporary file and committed by an atomic rename, so a crash during
    {!save} leaves the previous checkpoint intact; {!load} refuses torn
    or truncated files outright (they cannot result from a completed
    [save]). *)

type state =
  | Roots of { retired : int list }
  | Pd_frontier of { index : Sgraph.Node_set.t list; queue : Sgraph.Node_set.t list }
  | Brute_mask of { next_mask : int }

type t = {
  algorithm : string;  (** provenance label, e.g. ["CSCliques2"] *)
  s : int;
  n : int;  (** graph fingerprint: node count… *)
  m : int;  (** …and edge count *)
  min_size : int;
  emitted : int;  (** results streamed before the interruption *)
  state : state;
}

val family : state -> string
(** ["roots"], ["pd"] or ["brute"] — the tag that decides which
    algorithms may resume this checkpoint. *)

val save : ?fault:Scoll.Fault.t -> t -> string -> unit
(** Write atomically (tmp + rename). [fault] arms the [stream.write],
    [stream.flush] and [ckpt.rename] injection sites; an injected fault
    leaves the previous checkpoint at the path untouched (the [.tmp]
    file may remain and is overwritten next time).
    @raise Scoll.Fault.Injected when an armed fault fires.
    @raise Sys_error on real I/O failure. *)

val load : string -> t
(** @raise Sys_error when the file cannot be read.
    @raise Failure on a corrupt, torn, or non-checkpoint file. *)

val check_compat : t -> s:int -> n:int -> m:int -> min_size:int -> unit
(** Refuse to resume against a different graph or different enumeration
    parameters — silently mixing them would produce output that belongs
    to no single run.
    @raise Failure naming the first mismatched field. *)
