type reason = Deadline | Max_results | Max_cache_bytes | Cancelled

type outcome = Complete | Truncated of reason

let reason_to_string = function
  | Deadline -> "deadline"
  | Max_results -> "max-results"
  | Max_cache_bytes -> "max-cache-bytes"
  | Cancelled -> "cancelled"

type t = {
  deadline : float; (* absolute Clock.now time; [infinity] = none *)
  max_results : int; (* [max_int] = none *)
  max_cache_bytes : int; (* [max_int] = none *)
  cache_bytes : unit -> int;
  poll_every : int;
  cancel : bool Atomic.t;
  tripped : reason option Atomic.t; (* sticky: first writer wins *)
  results : int Atomic.t;
}

let create ?deadline_s ?max_results ?max_cache_bytes
    ?(cache_bytes = fun () -> 0) ?(poll_every = 1024) () =
  if poll_every < 1 then invalid_arg "Budget.create: poll_every must be >= 1";
  let nonneg name v =
    match v with
    | Some v when v < 0 -> invalid_arg ("Budget.create: negative " ^ name)
    | Some v -> v
    | None -> max_int
  in
  (match deadline_s with
  | Some d when d < 0. -> invalid_arg "Budget.create: negative deadline_s"
  | _ -> ());
  {
    deadline =
      (match deadline_s with
      | None -> infinity
      | Some d -> Scliques_obs.Clock.now () +. d);
    max_results = nonneg "max_results" max_results;
    max_cache_bytes = nonneg "max_cache_bytes" max_cache_bytes;
    cache_bytes;
    poll_every;
    cancel = Atomic.make false;
    tripped = Atomic.make None;
    results = Atomic.make 0;
  }

let unlimited () = create ()

let trip t reason =
  ignore (Atomic.compare_and_set t.tripped None (Some reason) : bool)

let request_cancel t = Atomic.set t.cancel true

let live t = match Atomic.get t.tripped with None -> true | Some _ -> false

let status t =
  match Atomic.get t.tripped with None -> Complete | Some r -> Truncated r

let poll t =
  match Atomic.get t.tripped with
  | Some _ -> false
  | None ->
      if Atomic.get t.cancel then begin
        trip t Cancelled;
        false
      end
      else if t.deadline < infinity && Scliques_obs.Clock.now () >= t.deadline
      then begin
        trip t Deadline;
        false
      end
      else if t.max_cache_bytes < max_int && t.cache_bytes () > t.max_cache_bytes
      then begin
        trip t Max_cache_bytes;
        false
      end
      else true

let checker t =
  (* the countdown starts at 1 so the first call polls in full — a zero
     deadline then truncates before any work, deterministically *)
  let countdown = ref 1 in
  fun () ->
    match Atomic.get t.tripped with
    | Some _ -> false
    | None ->
        decr countdown;
        if !countdown <= 0 then begin
          countdown := t.poll_every;
          poll t
        end
        else true

let note_result t =
  let n = Atomic.fetch_and_add t.results 1 + 1 in
  if n >= t.max_results then trip t Max_results

let preload_results t n =
  if n < 0 then invalid_arg "Budget.preload_results: negative count";
  let total = Atomic.fetch_and_add t.results n + n in
  if total >= t.max_results then trip t Max_results

let results t = Atomic.get t.results
