module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let is_clique g c =
  let members = Node_set.to_array c in
  let n = Array.length members in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Graph.mem_edge g members.(i) members.(j)) then ok := false
    done
  done;
  !ok

let is_s_clique g ~s c =
  let members = Node_set.to_array c in
  let n = Array.length members in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then begin
      let dist = Sgraph.Bfs.distances g members.(i) in
      for j = i + 1 to n - 1 do
        let d = dist.(members.(j)) in
        if d < 0 || d > s then ok := false
      done
    end
  done;
  !ok

let is_connected_s_clique g ~s c =
  is_s_clique g ~s c && Sgraph.Bfs.is_connected_subset g c

let extension_candidates g ~s c =
  if Node_set.is_empty c then Graph.nodes g
  else begin
    let candidates = ref [] in
    Graph.iter_nodes
      (fun v ->
        if
          (not (Node_set.mem v c))
          && is_connected_s_clique g ~s (Node_set.add v c)
        then candidates := v :: !candidates)
      g;
    Node_set.of_list !candidates
  end

let is_maximal_connected_s_clique g ~s c =
  (not (Node_set.is_empty c))
  && is_connected_s_clique g ~s c
  && Node_set.is_empty (extension_candidates g ~s c)

let certify g ~s results =
  let module Set_of_sets = Set.Make (struct
    type t = Node_set.t

    let compare = Node_set.compare
  end) in
  let rec go seen = function
    | [] -> Ok ()
    | c :: rest ->
        if Set_of_sets.mem c seen then
          Error (Printf.sprintf "duplicate result %s" (Node_set.to_string c))
        else if not (is_connected_s_clique g ~s c) then
          Error (Printf.sprintf "%s is not a connected %d-clique" (Node_set.to_string c) s)
        else if not (Node_set.is_empty (extension_candidates g ~s c)) then
          Error
            (Printf.sprintf "%s is not maximal (extensible by %s)" (Node_set.to_string c)
               (Node_set.to_string (extension_candidates g ~s c)))
        else go (Set_of_sets.add c seen) rest
  in
  go Set_of_sets.empty results
