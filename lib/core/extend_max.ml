module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let in_graph nh c =
  let g = Neighborhood.graph nh in
  if Graph.n g = 0 then Node_set.empty
  else begin
    let c = if Node_set.is_empty c then Node_set.singleton 0 else c in
    (* candidates = N^{∀,s}(C); frontier = N^{∃,1}(C); both shrink/grow
       incrementally as nodes join *)
    let candidates = ref (Neighborhood.ball_forall nh c) in
    let frontier = ref (Neighborhood.adjacent_any nh c) in
    let result = ref c in
    let continue_ = ref true in
    while !continue_ do
      let eligible = Node_set.inter !candidates !frontier in
      if Node_set.is_empty eligible then continue_ := false
      else begin
        let v = Node_set.min_elt eligible in
        result := Node_set.add v !result;
        candidates :=
          Node_set.remove v (Node_set.inter_bitset !candidates (Neighborhood.ball_mask nh v));
        frontier :=
          Node_set.diff (Node_set.union !frontier (Graph.neighbor_set g v)) !result
      end
    done;
    !result
  end

let in_induced nh ~universe ~seed =
  if Node_set.is_empty seed then invalid_arg "Extend_max.in_induced: empty seed";
  if not (Node_set.subset seed universe) then
    invalid_arg "Extend_max.in_induced: seed outside universe";
  let g = Neighborhood.graph nh in
  (* Same greedy loop as [in_graph], with membership and growth adjacency
     restricted to [universe]. Distances stay those of the WHOLE graph:
     s-cliques are defined by ambient distances (§3), and the carve of
     Fig. 4 line 10 must keep every member of C ∪ {v} within ambient
     distance s of v — measuring inside G[C ∪ {v}] loses witness paths
     that leave the universe and breaks Theorem 4.2's completeness. *)
  let restrict set = Node_set.inter set universe in
  let candidates = ref (restrict (Neighborhood.ball_forall nh seed)) in
  let frontier = ref (restrict (Neighborhood.adjacent_any nh seed)) in
  let result = ref seed in
  let continue_ = ref true in
  while !continue_ do
    let eligible = Node_set.inter !candidates !frontier in
    if Node_set.is_empty eligible then continue_ := false
    else begin
      let v = Node_set.min_elt eligible in
      result := Node_set.add v !result;
      candidates :=
        Node_set.remove v (Node_set.inter_bitset !candidates (Neighborhood.ball_mask nh v));
      frontier :=
        restrict (Node_set.diff (Node_set.union !frontier (Graph.neighbor_set g v)) !result)
    end
  done;
  !result
