module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let in_graph nh c =
  let g = Neighborhood.graph nh in
  if Graph.n g = 0 then Node_set.empty
  else begin
    let c = if Node_set.is_empty c then Node_set.singleton 0 else c in
    (* candidates = N^{∀,s}(C); frontier = N^{∃,1}(C); both shrink/grow
       incrementally as nodes join *)
    let candidates = ref (Neighborhood.ball_forall nh c) in
    let frontier = ref (Neighborhood.adjacent_any nh c) in
    let result = ref c in
    let continue_ = ref true in
    while !continue_ do
      let eligible = Node_set.inter !candidates !frontier in
      if Node_set.is_empty eligible then continue_ := false
      else begin
        let v = Node_set.min_elt eligible in
        result := Node_set.add v !result;
        candidates := Node_set.remove v (Node_set.inter !candidates (Neighborhood.ball nh v));
        frontier :=
          Node_set.diff (Node_set.union !frontier (Graph.neighbor_set g v)) !result
      end
    done;
    !result
  end

let in_induced nh ~universe ~seed =
  if Node_set.is_empty seed then invalid_arg "Extend_max.in_induced: empty seed";
  if not (Node_set.subset seed universe) then
    invalid_arg "Extend_max.in_induced: seed outside universe";
  let g = Neighborhood.graph nh in
  let s = Neighborhood.s nh in
  let sub, back = Graph.induced g universe in
  let k = Graph.n sub in
  (* map original ids to induced ids *)
  let fwd = Hashtbl.create (2 * k) in
  Array.iteri (fun i orig -> Hashtbl.replace fwd orig i) back;
  let to_sub v = Hashtbl.find fwd v in
  (* all-pairs distances in the induced subgraph, bounded universe size *)
  let dist = Array.init k (fun i -> Sgraph.Bfs.distances sub i) in
  let in_result = Array.make k false in
  Node_set.iter (fun v -> in_result.(to_sub v) <- true) seed;
  let close_enough i j = dist.(i).(j) >= 0 && dist.(i).(j) <= s in
  (* ok.(i): i is within distance s (in the induced graph) of every current
     member; adjacency to the current set is rechecked on demand *)
  let ok = Array.make k true in
  for i = 0 to k - 1 do
    if not in_result.(i) then
      Node_set.iter (fun v -> if not (close_enough i (to_sub v)) then ok.(i) <- false) seed
  done;
  let adjacent_to_result i =
    Array.exists (fun j -> in_result.(j)) (Graph.neighbors sub i)
  in
  let continue_ = ref true in
  while !continue_ do
    (* smallest original id among eligible nodes; [back] is increasing, so
       scanning induced ids in order respects original-id order *)
    let picked = ref (-1) in
    (try
       for i = 0 to k - 1 do
         if (not in_result.(i)) && ok.(i) && adjacent_to_result i then begin
           picked := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !picked < 0 then continue_ := false
    else begin
      let i = !picked in
      in_result.(i) <- true;
      for j = 0 to k - 1 do
        if (not in_result.(j)) && ok.(j) && not (close_enough i j) then ok.(j) <- false
      done
    end
  done;
  let members = ref [] in
  for i = k - 1 downto 0 do
    if in_result.(i) then members := back.(i) :: !members
  done;
  Node_set.of_list !members
