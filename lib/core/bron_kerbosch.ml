module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type strategy = Plain | Pivot | Degeneracy

let select_pivot g p x =
  (* u ∈ P ∪ X maximizing |P ∩ N(u)| — Tomita et al.'s rule *)
  let best = ref (-1) and best_score = ref (-1) in
  let consider u =
    let score = Node_set.inter_cardinal p (Graph.neighbor_set g u) in
    if score > !best_score then begin
      best := u;
      best_score := score
    end
  in
  Node_set.iter consider p;
  Node_set.iter consider x;
  !best

let rec recurse g ~pivoting ~min_size ~should_continue yield r p x =
  if should_continue () && Node_set.cardinal r + Node_set.cardinal p >= min_size
  then begin
    if Node_set.is_empty p && Node_set.is_empty x then begin
      if (not (Node_set.is_empty r)) && Node_set.cardinal r >= min_size then yield r
    end
    else begin
      let branchable =
        if not pivoting then p
        else begin
          let u = select_pivot g p x in
          Node_set.diff p (Graph.neighbor_set g u)
        end
      in
      let p = ref p and x = ref x in
      Node_set.iter
        (fun v ->
          let nv = Graph.neighbor_set g v in
          recurse g ~pivoting ~min_size ~should_continue yield (Node_set.add v r)
            (Node_set.inter !p nv) (Node_set.inter !x nv);
          p := Node_set.remove v !p;
          x := Node_set.add v !x)
        branchable
    end
  end

let iter ?budget ?(strategy = Pivot) ?(min_size = 0)
    ?(should_continue = fun () -> true) g yield =
  (* a budget composes with any explicit predicate: its checker fails
     fast once tripped, and every emission feeds the result cap *)
  let should_continue =
    match budget with
    | None -> should_continue
    | Some b ->
        let check = Budget.checker b in
        fun () -> check () && should_continue ()
  in
  let yield =
    match budget with
    | None -> yield
    | Some b ->
        fun c ->
          yield c;
          Budget.note_result b
  in
  match strategy with
  | Plain ->
      recurse g ~pivoting:false ~min_size ~should_continue yield Node_set.empty
        (Graph.nodes g) Node_set.empty
  | Pivot ->
      recurse g ~pivoting:true ~min_size ~should_continue yield Node_set.empty
        (Graph.nodes g) Node_set.empty
  | Degeneracy ->
      let order = Sgraph.Degeneracy.ordering g in
      let position = Array.make (Graph.n g) 0 in
      Array.iteri (fun i v -> position.(v) <- i) order;
      Array.iter
        (fun v ->
          let nv = Graph.neighbor_set g v in
          let later = Node_set.filter (fun u -> position.(u) > position.(v)) nv in
          let earlier = Node_set.filter (fun u -> position.(u) < position.(v)) nv in
          recurse g ~pivoting:true ~min_size ~should_continue yield
            (Node_set.singleton v) later earlier)
        order

let maximal_cliques ?budget ?should_continue ?strategy g =
  let acc = ref [] in
  iter ?budget ?should_continue ?strategy g (fun c -> acc := c :: !acc);
  List.rev !acc

let maximal_s_cliques_via_power g ~s = maximal_cliques (Sgraph.Power.power g ~s)

let max_clique_size g =
  let best = ref 0 in
  iter g (fun c -> best := max !best (Node_set.cardinal c));
  !best
