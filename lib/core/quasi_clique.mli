(** γ-quasi-cliques — the degree-based relaxation of the paper's §2.

    A set [S] is a {e γ-quasi-clique} when every node of [S] has at least
    [γ * (|S| - 1)] neighbors inside [S]. The paper recalls (citing Jiang
    & Pei) that for [1/2 <= γ <= (|S|-2)/(|S|-1)] the induced subgraph has
    diameter at most 2 — which at first glance suggests enumerating
    2-cliques via quasi-cliques — and then explains why that fails: an
    s-clique's short paths may leave the set, while every quasi-clique
    guarantee is about the induced subgraph. These predicates make that
    §2 discussion executable and testable. *)

val is_gamma_quasi_clique : Sgraph.Graph.t -> gamma:float -> Sgraph.Node_set.t -> bool
(** Every member has at least [gamma * (|S| - 1)] neighbors within [S].
    Empty sets and singletons qualify. Requires [0 <= gamma <= 1]. *)

val internal_degree : Sgraph.Graph.t -> Sgraph.Node_set.t -> int -> int
(** Number of neighbors of the node inside the set. *)

val min_internal_degree : Sgraph.Graph.t -> Sgraph.Node_set.t -> int
(** Minimum over members; 0 for sets of size <= 1. *)

val induced_diameter : Sgraph.Graph.t -> Sgraph.Node_set.t -> int
(** Diameter of [G\[S\]]; [max_int] when disconnected, 0 for sets of
    size <= 1. Used to test the diameter-2 property quoted in §2. *)
