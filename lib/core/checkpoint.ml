module Node_set = Sgraph.Node_set
module Stream = Result_io.Stream

type state =
  | Roots of { retired : int list }
  | Pd_frontier of { index : Node_set.t list; queue : Node_set.t list }
  | Brute_mask of { next_mask : int }

type t = {
  algorithm : string;
  s : int;
  n : int;
  m : int;
  min_size : int;
  emitted : int;
  state : state;
}

let family = function
  | Roots _ -> "roots"
  | Pd_frontier _ -> "pd"
  | Brute_mask _ -> "brute"

(* Bounded record sizes: a retired-roots list over a large graph is split
   into chunks so no single record grows with the graph. *)
let chunk n xs =
  let rec go acc cur k = function
    | [] ->
        List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let ids_payload tag ids = String.concat " " (tag :: List.map string_of_int ids)

let save ?fault t path =
  let tmp = path ^ ".tmp" in
  let w = Stream.open_writer ?fault tmp in
  Fun.protect
    ~finally:(fun () -> Stream.close w)
    (fun () ->
      Stream.write_record w
        (Printf.sprintf "H %s %s %d %d %d %d %d" t.algorithm (family t.state) t.s
           t.n t.m t.min_size t.emitted);
      (match t.state with
      | Roots { retired } ->
          List.iter
            (fun ids -> Stream.write_record w (ids_payload "R" ids))
            (chunk 4096 retired)
      | Pd_frontier { index; queue } ->
          List.iter
            (fun set -> Stream.write_record w (ids_payload "I" (Node_set.to_list set)))
            index;
          List.iter
            (fun set -> Stream.write_record w (ids_payload "Q" (Node_set.to_list set)))
            queue
      | Brute_mask { next_mask } ->
          Stream.write_record w (Printf.sprintf "M %d" next_mask));
      Stream.write_record w "E";
      Stream.flush w);
  (match fault with Some f -> Scoll.Fault.check f "ckpt.rename" | None -> ());
  (* the atomic commit: a reader sees either the whole previous
     checkpoint or the whole new one, never a mixture *)
  Sys.rename tmp path

let corrupt path msg = failwith (path ^ ": corrupt checkpoint: " ^ msg)

let split payload =
  List.filter (fun tok -> String.length tok > 0) (String.split_on_char ' ' payload)

let ints path toks =
  List.map
    (fun tok ->
      match int_of_string_opt tok with
      | Some v -> v
      | None -> corrupt path ("bad integer " ^ tok))
    toks

let load path =
  let records, _, tail = Stream.read_records path in
  (* checkpoints are committed by atomic rename, so a torn checkpoint was
     never legitimately written; refuse rather than silently resume less *)
  (match tail with `Torn -> corrupt path "torn tail" | `Clean -> ());
  match records with
  | [] -> corrupt path "empty"
  | header :: rest ->
      let make, fam =
        match split header with
        | [ "H"; alg; fam; s; n; m; min_size; emitted ] -> (
            match ints path [ s; n; m; min_size; emitted ] with
            | [ s; n; m; min_size; emitted ] ->
                ( (fun state -> { algorithm = alg; s; n; m; min_size; emitted; state }),
                  fam )
            | _ -> corrupt path "bad header")
        | _ -> corrupt path "bad header"
      in
      let body, last =
        match List.rev rest with
        | last :: body_rev -> (List.rev body_rev, last)
        | [] -> corrupt path "missing end record"
      in
      (match split last with
      | [ "E" ] -> ()
      | _ -> corrupt path "missing end record");
      let state =
        match fam with
        | "roots" ->
            Roots
              {
                retired =
                  List.concat_map
                    (fun r ->
                      match split r with
                      | "R" :: ids -> ints path ids
                      | _ -> corrupt path "expected a roots record")
                    body;
              }
        | "pd" ->
            let index = ref [] and queue = ref [] in
            List.iter
              (fun r ->
                match split r with
                | "I" :: ids -> index := Node_set.of_list (ints path ids) :: !index
                | "Q" :: ids -> queue := Node_set.of_list (ints path ids) :: !queue
                | _ -> corrupt path "expected an index/queue record")
              body;
            Pd_frontier { index = List.rev !index; queue = List.rev !queue }
        | "brute" -> (
            match body with
            | [ m ] -> (
                match split m with
                | [ "M"; v ] -> (
                    match int_of_string_opt v with
                    | Some next_mask -> Brute_mask { next_mask }
                    | None -> corrupt path "bad mask record")
                | _ -> corrupt path "bad mask record")
            | _ -> corrupt path "expected exactly one mask record")
        | other -> corrupt path ("unknown state family " ^ other)
      in
      make state

let check_compat t ~s ~n ~m ~min_size =
  let mismatch what ckpt cur =
    failwith
      (Printf.sprintf
         "checkpoint mismatch: %s is %d in the checkpoint but %d in this run" what
         ckpt cur)
  in
  if t.s <> s then mismatch "s" t.s s;
  if t.n <> n then mismatch "node count" t.n n;
  if t.m <> m then mismatch "edge count" t.m m;
  if t.min_size <> min_size then mismatch "min_size" t.min_size min_size
