(** CsCliques1 (paper Fig. 6): Bron–Kerbosch adaptation in which the
    growing set [R] is a {e connected} s-clique at every step.

    The recursion state is [(R, P, X)] with the invariant
    [P ∪ X = N^{∀,s}(R)] (nodes within distance s of all of [R]); only
    nodes of [P] adjacent to [R] are branched on, which preserves
    connectivity of [R]. [R] is printed when neither [P] nor [X] contains
    a neighbor of [R] — i.e. [R] is maximal. The paper shows (§5.3) that
    neither pivoting nor the feasibility check can be combined with this
    variant, which is why it loses to the optimized CsCliques2 despite
    doing no unconnected work. *)

val iter :
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Call the function on every maximal connected s-clique exactly once.
    [min_size] enables the §6 pruning ([|R| + |P| < k] branches are cut)
    and suppresses smaller results. [should_continue] is polled at every
    recursion entry; [false] abandons the remaining search.

    With [obs], the delay recorder ticks per emission and the
    recursion-tree counters [cs1.calls], [cs1.max_depth] and [cs1.emits]
    are maintained; without it the search is uninstrumented. *)

val iter_rooted :
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  root:int ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Run only the branch of the full recursion rooted at [root]: exactly
    the maximal connected s-cliques whose {e minimum} node is [root] are
    emitted. Running every root in turn reproduces {!iter}'s output —
    this is the unit of work behind budgeted, checkpointable runs, where
    fully-explored roots are recorded and a resume runs only the rest. *)
