(** Decision procedures for the s-clique definitions of the paper's §3.

    These are the specifications the enumeration algorithms are tested
    against: straightforward, obviously-correct implementations that favor
    clarity over speed. *)

val is_clique : Sgraph.Graph.t -> Sgraph.Node_set.t -> bool
(** Every pair adjacent. Empty sets and singletons are cliques. *)

val is_s_clique : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t -> bool
(** Every pair at distance at most [s] {e in the whole graph} — the
    defining subtlety of s-cliques (distances may leave the set). *)

val is_connected_s_clique : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t -> bool
(** {!is_s_clique} and the induced subgraph is connected. *)

val is_maximal_connected_s_clique : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t -> bool
(** A connected s-clique that no single node can extend. Single-node
    extension suffices: connected s-cliques form a connected-hereditary
    family, so any proper connected-s-clique superset contains a one-node
    extension (see the discussion around the paper's Theorem 4.2). *)

val extension_candidates : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t -> Sgraph.Node_set.t
(** All nodes [v] such that [c ∪ {v}] is again a connected s-clique —
    empty iff [c] is maximal (for a nonempty connected s-clique [c]). *)

val certify :
  Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t list -> (unit, string) result
(** Check that a claimed enumeration output is sound: every set is a
    maximal connected s-clique and no set appears twice. (Completeness —
    that no maximal set is missing — requires an oracle; see
    {!Brute_force.maximal_connected_s_cliques}.) *)
