(** Generic polynomial-delay enumeration for connected-hereditary
    properties — the framework PolyDelayEnum instantiates.

    The paper's §4 algorithm "is inspired by the general purpose algorithm
    for enumerating maximal subgraphs satisfying some connected-hereditary
    property, appearing in \[10\]" (Cohen, Kimelfeld & Sagiv, JCSS 2008).
    This module is that general-purpose engine: give it any property that
    is {e connected-hereditary} — closed under taking connected induced
    subsets — and it enumerates all maximal connected node sets satisfying
    it, each exactly once, using the queue + B-tree-index + ExtendMax
    scheme of the paper's Figure 4.

    Two facts make the scheme work for any such property:
    - greedy growth is exact: a non-maximal connected satisfying set
      always has a one-node extension (connectivity of the bigger set
      provides an adjacent node; heredity keeps the property);
    - the line-10 "carve" step — re-growing from [{v}] inside
      [G[C ∪ {v}]] — transfers progressively larger pieces of any target
      set from already-found results, so the queue eventually reaches it.
      The restriction to [G[C ∪ {v}]] limits {e membership and
      connectivity} only; the property itself stays that of the original
      graph. This matters for non-local properties: an s-clique's witness
      paths may leave the universe, and re-interpreting the predicate on
      the induced subgraph would drop members whose only witness path
      runs outside it, losing results. For purely local properties
      (clique, k-plex) the two readings coincide.

    A property is still a {e constructor} — it builds its predicate for a
    given graph — so the engine can memoize per-graph state (the s-clique
    instance shares one distance-ball cache across all queries).

    Instantiations provided: cliques, connected s-cliques (cross-checked
    against the specialized {!Poly_delay} in the tests) and connected
    k-plexes (the relaxation of the paper's companion citation \[3\]).
    Quasi-cliques are {e not} hereditary and cannot be plugged in. *)

type property = {
  name : string;
  build : Sgraph.Graph.t -> Sgraph.Node_set.t -> bool;
      (** [build g] returns the predicate over node sets of [g]. It must
          be connected-hereditary on every graph and hold for singletons;
          it is only ever applied to sets inducing a connected subgraph. *)
  carve_unique : bool;
      (** Whether the carve step's restricted problem — maximal satisfying
          sets of [G[C ∪ {v}]] containing [v] — always has a {e unique}
          solution, so the greedy carve is exact. True for s-cliques (the
          paper notes this uniqueness in §4) and cliques. When false, the
          engine enumerates {e all} maximal restricted solutions by brute
          force, which preserves correctness (this is exactly CKS's
          "input-restricted problem") at exponential per-step cost, capped
          at {!Brute_force.max_nodes}-node restricted instances — k-plexes
          take this path; the efficient restricted solver for them is a
          research contribution of its own (the paper's citation \[3\]). *)
}

val clique : property

val s_clique : s:int -> property
(** Requires [s >= 1]. *)

val k_plex : k:int -> property
(** [U] is a k-plex when every member has at least [|U| - k] neighbors
    inside [U]. [k = 1] is exactly the cliques. Requires [k >= 1]. *)

val iter :
  ?budget:Budget.t ->
  ?should_continue:(unit -> bool) ->
  Sgraph.Graph.t ->
  property ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Enumerate every maximal connected node set of the graph satisfying
    the property, exactly once. [should_continue] is polled once per
    dequeue; [budget] conjoins its {!Budget.checker} with it and counts
    every emission ({!Budget.note_result}), giving deadline/result-cap/
    cancel semantics identical to the s-clique enumerators (truncation
    only — no checkpointing for the generalized engine). *)

val all : Sgraph.Graph.t -> property -> Sgraph.Node_set.t list
(** Materialized {!iter}, sorted by {!Sgraph.Node_set.compare}. *)

val brute_force : Sgraph.Graph.t -> property -> Sgraph.Node_set.t list
(** Oracle by subset enumeration (≤ 22 nodes), for validating both the
    engine and new property instantiations. Sorted.
    @raise Invalid_argument on oversized graphs. *)
