(** Unified front-end over every enumeration algorithm in the library.

    The variants carry the names used in the paper's plots:
    [PD] (PolyDelayEnum), [CS1] (CsCliques1), [CS2] with optional [P]
    (pivoting) and [F] (feasibility) suffixes, plus the brute-force
    oracle. The benchmark harness, CLI, and tests all dispatch through
    this module so an algorithm is always selected the same way. *)

type algorithm =
  | Poly_delay  (** paper "PD" *)
  | Cs1  (** "CSCliques1" *)
  | Cs2  (** "CSCliques2", no optimizations *)
  | Cs2_f  (** + feasibility check *)
  | Cs2_p  (** + pivoting *)
  | Cs2_pf  (** + pivoting and feasibility *)
  | Brute  (** exhaustive oracle, tiny graphs only *)

val all : algorithm list
(** Every variant, in the order above. *)

val name : algorithm -> string
(** Paper-style name, e.g. ["CSCliques2PF"]. *)

val of_name : string -> algorithm option
(** Case-insensitive inverse of {!name}; also accepts the short aliases
    ["pd"], ["cs1"], ["cs2"], ["cs2f"], ["cs2p"], ["cs2pf"], ["brute"]. *)

val iter :
  ?min_size:int ->
  ?optimized:bool ->
  ?cache_capacity:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Enumerate all maximal connected s-cliques (each exactly once) and
    pass them to the callback.

    With [obs], the selected algorithm records per-result delays and its
    counters into the handle (see {!Scliques_obs.Obs} for the counter
    vocabulary), and the N^s-cache statistics are published when the run
    ends — including runs cut short by an exception from the callback.
    Omitting [obs] (the default) leaves every hot path uninstrumented.

    [min_size] restricts the output to sets of at least that many nodes.
    With [optimized = true] (default) the §6 machinery is engaged —
    [|R| + |P|] pruning in the BK variants, a largest-first priority
    queue in PolyDelayEnum; with [optimized = false] the full enumeration
    runs and small results are merely filtered out (the paper's
    "nonoptimized" Figure 10 baseline).

    @raise Invalid_argument when [s < 1], or when [Brute] is applied to a
    graph beyond {!Brute_force.max_nodes} nodes. *)

type run_report = {
  outcome : Budget.outcome;
  resumable : Checkpoint.state option;
      (** [None] exactly when the run completed; otherwise the state a
          later {!run} can pass as [resume] (the caller wraps it in a
          {!Checkpoint.t} with the graph fingerprint before saving) *)
  emitted : int;  (** results passed to the callback by {e this} call *)
}

val checkpoint_family : algorithm -> string
(** The {!Checkpoint.family} the algorithm writes and accepts: ["roots"]
    for the Bron–Kerbosch adaptations, ["pd"] for PolyDelayEnum,
    ["brute"] for the oracle. Checkpoints move freely between algorithms
    of the same family (e.g. CS2 → CS2PF, or CS2 → the parallel runner):
    they partition work identically. *)

val run :
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  ?nh:Neighborhood.t ->
  ?budget:Budget.t ->
  ?resume:Checkpoint.state ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  (Sgraph.Node_set.t -> unit) ->
  run_report
(** Budgeted, resumable {!iter}. Every result reaching the callback is
    {e committed} — it will never be produced again by a resumed run:

    - the rooted algorithms buffer each root's results and release them
      only when the root's subtree finished under a live budget, so a
      trip mid-subtree discards the partial root and a resume reruns it;
    - PolyDelayEnum and the brute oracle emit at their natural unit (one
      dequeue, one mask) and are emission-exact.

    [budget] defaults to {!Budget.unlimited}; each emission is counted
    with {!Budget.note_result} — do not count again in the callback. On
    resume, seed the budget with {!Budget.preload_results} if the result
    cap should span the whole logical run. [Max_results] is exact for
    [Poly_delay]/[Brute] and root-atomic for the others (the capping
    root's buffer is flushed whole, a bounded overshoot).

    The brute path streams in {e scan order} (descending subset masks),
    unlike {!iter}'s sorted [Brute] output.

    [nh] supplies the N{^s} oracle instead of creating one per run — the
    daemon passes a {!Neighborhood.of_shared} attachee so concurrent
    queries against the same graph share one warm ball cache. When set,
    [cache_capacity] is ignored and the oracle's own observer wiring (not
    [obs]) instruments the BFS counter. [Brute] never consults an oracle.

    @raise Invalid_argument when [s < 1], on an oversized [Brute] graph,
    or when [nh] disagrees with [g]/[s] (different [s], different node
    count).
    @raise Failure when [resume] belongs to a different
    {!checkpoint_family} than [algorithm]. *)

type refresh_delta = {
  results : Sgraph.Node_set.t list;
      (** the complete answer on the after-graph, canonically sorted *)
  added : Sgraph.Node_set.t list;
      (** results in [results] but not in the prior answer, sorted *)
  removed : Sgraph.Node_set.t list;
      (** prior results no longer in the answer, sorted *)
  roots_rerun : int;  (** how many root branches were re-enumerated *)
  roots_skipped : int;
      (** affected roots whose branch fingerprint was unchanged, so they
          were neither retracted nor re-run *)
  root_fingerprints : (int * int) list;
      (** [(root, fingerprint)] on the after-graph for every affected
          root (re-run and skipped alike), ascending — what a persistent
          {!Result_io.Index} stores. Empty when [fingerprints:false]. *)
}

val refresh :
  ?min_size:int ->
  ?cache_capacity:int ->
  ?engine:[ `Seq of algorithm | `Par of int option ] ->
  ?nh:Neighborhood.t ->
  ?edits:Sgraph.Overlay.edit list ->
  ?fingerprints:bool ->
  ?prior_fingerprint:(int -> int option) ->
  before:Sgraph.Graph.t ->
  after:Sgraph.Graph.t ->
  touched:int list ->
  s:int ->
  prior:Sgraph.Node_set.t list ->
  unit ->
  refresh_delta
(** Incremental re-enumeration after edge churn. [before] and [after]
    are the same node set differing only by edge edits whose endpoints
    all appear in [touched] (order/duplicates irrelevant); [prior] is
    the complete answer on [before], {b sorted} in [Node_set.compare]
    order (the sorted-input contract, asserted under debug: every
    producer — {!sorted_results}, a prior delta's [results], a sorted
    stream load — already delivers it, so refresh no longer pays an
    O(|answer| log |answer|) sort per edit; same [min_size]).

    By the paper's distance-s locality, a result can appear, vanish or
    change only if one of its members has a changed N{^s} ball or
    changed incident edges — putting that member within distance s-1 of
    a touched endpoint for a single edit; since members are pairwise
    within distance s, the {e root} (minimum member) of any such result
    lies one radius-s ball further out. For a batch, passing the
    effective edit script as [edits] replays that single-edit argument
    against each intermediate graph (kept as one uncompacted overlay),
    so every edit contributes only the radius-(s-1) balls of its own
    endpoints; without [edits] the whole-batch bound pays one hop of
    slack (radius-s D around all touched nodes at once).

    Within the affected-root set, each root's branch fingerprint
    ({!Neighborhood.root_fingerprint}) is compared across the edit and
    provably-unchanged branches are {e skipped} — neither retracted nor
    re-run ([roots_skipped]). [prior_fingerprint] supplies stored
    before-graph fingerprints (e.g. from a {!Result_io.Index} sidecar),
    eliminating the before-graph digests; absent ones are computed.
    [fingerprints:false] disables the gate (every affected root re-runs,
    the pre-fingerprint behavior — the benchmark baseline).

    The surviving roots re-run on [after] — sequentially with a rooted
    algorithm ([`Seq], default [`Seq Cs2_pf]) or via
    {!Parallel.enumerate_roots} ([`Par workers]) — and everything else
    is spliced through untouched, so [results] is bit-identical to a
    full re-enumeration.

    A caller-supplied [nh] oracle (currently bound to [before], with
    matching [s]) is advanced to [after] via {!Neighborhood.invalidate}
    — dropping only the stale balls — and reused by the [`Seq] engine,
    so back-to-back refreshes keep the ball cache warm.

    @raise Invalid_argument when [s < 1], the node counts differ, a
    touched id is out of range, [edits] disagrees with [touched], the
    oracle's [s] mismatches, or a [`Seq] algorithm has no rooted
    decomposition ([Poly_delay], [Brute]). *)

val all_results :
  ?min_size:int ->
  ?optimized:bool ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list
(** Materialized {!iter}, results in generation order. *)

val first_n :
  ?min_size:int ->
  ?optimized:bool ->
  ?cache_capacity:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  int ->
  Sgraph.Node_set.t list
(** The first [n] results (fewer when the graph has fewer); enumeration
    stops as soon as the quota is reached — the paper's "time to return
    100 connected s-cliques" measurement shape. *)

val count : ?min_size:int -> ?cache_capacity:int -> algorithm -> Sgraph.Graph.t -> s:int -> int
(** Number of maximal connected s-cliques (of size ≥ [min_size]). *)

val sorted_results :
  ?min_size:int -> ?cache_capacity:int -> algorithm -> Sgraph.Graph.t -> s:int ->
  Sgraph.Node_set.t list
(** {!all_results} sorted by {!Sgraph.Node_set.compare} — canonical form
    for cross-algorithm comparison in tests. *)

val largest :
  ?cache_capacity:int ->
  ?should_continue:(unit -> bool) ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  int ->
  Sgraph.Node_set.t list
(** [largest alg g ~s k] is the [k] biggest maximal connected s-cliques
    (fewer when the graph has fewer), largest first, ties broken by
    {!Sgraph.Node_set.compare}. A full enumeration is performed, keeping
    only a size-[k] heap of champions — the "find the top communities" use
    case of the paper's introduction. *)
