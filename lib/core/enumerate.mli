(** Unified front-end over every enumeration algorithm in the library.

    The variants carry the names used in the paper's plots:
    [PD] (PolyDelayEnum), [CS1] (CsCliques1), [CS2] with optional [P]
    (pivoting) and [F] (feasibility) suffixes, plus the brute-force
    oracle. The benchmark harness, CLI, and tests all dispatch through
    this module so an algorithm is always selected the same way. *)

type algorithm =
  | Poly_delay  (** paper "PD" *)
  | Cs1  (** "CSCliques1" *)
  | Cs2  (** "CSCliques2", no optimizations *)
  | Cs2_f  (** + feasibility check *)
  | Cs2_p  (** + pivoting *)
  | Cs2_pf  (** + pivoting and feasibility *)
  | Brute  (** exhaustive oracle, tiny graphs only *)

val all : algorithm list
(** Every variant, in the order above. *)

val name : algorithm -> string
(** Paper-style name, e.g. ["CSCliques2PF"]. *)

val of_name : string -> algorithm option
(** Case-insensitive inverse of {!name}; also accepts the short aliases
    ["pd"], ["cs1"], ["cs2"], ["cs2f"], ["cs2p"], ["cs2pf"], ["brute"]. *)

val iter :
  ?min_size:int ->
  ?optimized:bool ->
  ?cache_capacity:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Enumerate all maximal connected s-cliques (each exactly once) and
    pass them to the callback.

    With [obs], the selected algorithm records per-result delays and its
    counters into the handle (see {!Scliques_obs.Obs} for the counter
    vocabulary), and the N^s-cache statistics are published when the run
    ends — including runs cut short by an exception from the callback.
    Omitting [obs] (the default) leaves every hot path uninstrumented.

    [min_size] restricts the output to sets of at least that many nodes.
    With [optimized = true] (default) the §6 machinery is engaged —
    [|R| + |P|] pruning in the BK variants, a largest-first priority
    queue in PolyDelayEnum; with [optimized = false] the full enumeration
    runs and small results are merely filtered out (the paper's
    "nonoptimized" Figure 10 baseline).

    @raise Invalid_argument when [s < 1], or when [Brute] is applied to a
    graph beyond {!Brute_force.max_nodes} nodes. *)

val all_results :
  ?min_size:int ->
  ?optimized:bool ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list
(** Materialized {!iter}, results in generation order. *)

val first_n :
  ?min_size:int ->
  ?optimized:bool ->
  ?cache_capacity:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  int ->
  Sgraph.Node_set.t list
(** The first [n] results (fewer when the graph has fewer); enumeration
    stops as soon as the quota is reached — the paper's "time to return
    100 connected s-cliques" measurement shape. *)

val count : ?min_size:int -> ?cache_capacity:int -> algorithm -> Sgraph.Graph.t -> s:int -> int
(** Number of maximal connected s-cliques (of size ≥ [min_size]). *)

val sorted_results :
  ?min_size:int -> ?cache_capacity:int -> algorithm -> Sgraph.Graph.t -> s:int ->
  Sgraph.Node_set.t list
(** {!all_results} sorted by {!Sgraph.Node_set.compare} — canonical form
    for cross-algorithm comparison in tests. *)

val largest :
  ?cache_capacity:int ->
  ?should_continue:(unit -> bool) ->
  algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  int ->
  Sgraph.Node_set.t list
(** [largest alg g ~s k] is the [k] biggest maximal connected s-cliques
    (fewer when the graph has fewer), largest first, ties broken by
    {!Sgraph.Node_set.compare}. A full enumeration is performed, keeping
    only a size-[k] heap of champions — the "find the top communities" use
    case of the paper's introduction. *)
