module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let c_incr = function None -> () | Some c -> Scliques_obs.Counters.incr c

let c_set_max c n = match c with None -> () | Some c -> Scliques_obs.Counters.set_max c n

let make_recurse ~min_size ~should_continue ?obs nh yield =
  let g = Neighborhood.graph nh in
  let ctr name = Option.map (fun o -> Scliques_obs.Obs.counter o name) obs in
  let c_calls = ctr "cs1.calls" in
  let c_depth = ctr "cs1.max_depth" in
  let c_emits = ctr "cs1.emits" in
  (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
  (* frontier = N^{∃,1}(R) maintained incrementally as a running union of
     member neighborhoods; stray R-members inside it are harmless because
     P and X are always disjoint from R *)
  let rec recurse depth r p x frontier =
    c_incr c_calls;
    c_set_max c_depth depth;
    if should_continue () && Node_set.cardinal r + Node_set.cardinal p >= min_size
    then begin
      (* paper's convention: N^{∃,1}(∅) is the whole node set *)
      let p_adj, x_adj =
        if Node_set.is_empty r then (p, x)
        else begin
          (* one mask load of the frontier filters both P and X *)
          let m = Neighborhood.load_mask nh frontier in
          (Node_set.inter_bitset p m, Node_set.inter_bitset x m)
        end
      in
      if
        Node_set.is_empty p_adj
        && Node_set.is_empty x_adj
        && (not (Node_set.is_empty r))
        && Node_set.cardinal r >= min_size
      then begin
        c_incr c_emits;
        (match obs with None -> () | Some o -> Scliques_obs.Obs.tick o);
        yield r
      end;
      let branchable = p_adj in
      let p = ref p and x = ref x in
      Node_set.iter
        (fun v ->
          (* the ball mask filters P and X together; the recursion below
             reuses the scratch, so both must be computed before it *)
          let m = Neighborhood.ball_mask nh v in
          let p' = Node_set.inter_bitset !p m in
          let x' = Node_set.inter_bitset !x m in
          recurse (depth + 1) (Node_set.add v r) p' x'
            (Node_set.union frontier (Graph.neighbor_set g v));
          p := Node_set.remove v !p;
          x := Node_set.add v !x)
        branchable
    end
  in
  recurse

let iter ?(min_size = 0) ?(should_continue = fun () -> true) ?obs nh yield =
  let g = Neighborhood.graph nh in
  let recurse = make_recurse ~min_size ~should_continue ?obs nh yield in
  recurse 0 Node_set.empty (Graph.nodes g) Node_set.empty Node_set.empty;
  match obs with None -> () | Some _ -> Neighborhood.sync_obs nh

let iter_rooted ?(min_size = 0) ?(should_continue = fun () -> true) ?obs nh ~root
    yield =
  (* exactly the state the full run's top-level loop hands the branch on
     [root]: by then every u < root has moved from P to X, and the child
     P/X are filtered through ball(root) — so this subtree emits precisely
     the maximal connected s-cliques whose minimum node is [root] *)
  let g = Neighborhood.graph nh in
  let recurse = make_recurse ~min_size ~should_continue ?obs nh yield in
  let ball = Neighborhood.ball nh root in
  recurse 1 (Node_set.singleton root)
    (Node_set.filter (fun u -> u > root) ball)
    (Node_set.filter (fun u -> u < root) ball)
    (Graph.neighbor_set g root);
  match obs with None -> () | Some _ -> Neighborhood.sync_obs nh
