module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type stats = { results_per_worker : int array; time_per_worker : float array }

(* Work done by one domain: the CsCliques2 subtree of every root node
   assigned to this worker. Root branch v starts from the same state the
   sequential ascending root loop would reach at v. Each worker gets its
   own observer (domains must not share one) — merged after the join. *)
let run_worker ~g ~s ~pivot ~feasibility ~min_size ~cache_capacity ~observed roots =
  let t0 = Unix.gettimeofday () in
  let obs = if observed then Some (Scliques_obs.Obs.create ()) else None in
  let nh = Neighborhood.create ~cache_capacity ?obs ~s g in
  let results = ref [] in
  List.iter
    (fun v ->
      let ball_v = Neighborhood.ball nh v in
      let later = Node_set.filter (fun u -> u > v) ball_v in
      let earlier = Node_set.filter (fun u -> u < v) ball_v in
      (* reuse the sequential engine on the singleton-rooted subproblem:
         R = {v}, P = later s-neighbors, X = earlier ones *)
      Cs_cliques2.iter_rooted ~pivot ~feasibility ~min_size ?obs nh ~root:v ~p:later
        ~x:earlier (fun c -> results := c :: !results))
    roots;
  (!results, Unix.gettimeofday () -. t0, obs)

let enumerate_with_stats ?workers ?(pivot = true) ?(feasibility = false)
    ?(min_size = 0) ?(cache_capacity = 65536) ?obs g ~s =
  let workers =
    match workers with Some w -> w | None -> Domain.recommended_domain_count ()
  in
  if workers < 1 then invalid_arg "Parallel.enumerate: workers must be >= 1";
  let observed = obs <> None in
  let n = Graph.n g in
  let buckets = Array.make workers [] in
  for v = n - 1 downto 0 do
    buckets.(v mod workers) <- v :: buckets.(v mod workers)
  done;
  let spawn roots =
    Domain.spawn (fun () ->
        run_worker ~g ~s ~pivot ~feasibility ~min_size ~cache_capacity ~observed roots)
  in
  (* the first bucket runs in the calling domain *)
  let helpers = Array.to_list (Array.map spawn (Array.sub buckets 1 (workers - 1))) in
  let own =
    run_worker ~g ~s ~pivot ~feasibility ~min_size ~cache_capacity ~observed buckets.(0)
  in
  let parts = own :: List.map Domain.join helpers in
  let results_per_worker =
    Array.of_list (List.map (fun (r, _, _) -> List.length r) parts)
  in
  let time_per_worker = Array.of_list (List.map (fun (_, t, _) -> t) parts) in
  (* canonical output: sorted by Node_set.compare, so the result list is
     identical for every worker count (root branches partition the output,
     only their arrival order differs) *)
  let all =
    List.sort Node_set.compare (List.concat_map (fun (r, _, _) -> r) parts)
  in
  (match obs with
  | None -> ()
  | Some into ->
      List.iteri
        (fun i (r, _, worker_obs) ->
          match worker_obs with
          | None -> ()
          | Some o ->
              Scliques_obs.Counters.set
                (Scliques_obs.Obs.counter into (Printf.sprintf "par.worker%d.results" i))
                (List.length r);
              Scliques_obs.Obs.merge_into ~into o)
        parts;
      let set name v =
        Scliques_obs.Counters.set (Scliques_obs.Obs.counter into name) v
      in
      set "par.workers" workers;
      set "par.results" (List.length all);
      set "par.max_worker_results" (Array.fold_left max 0 results_per_worker);
      set "par.min_worker_results"
        (Array.fold_left min max_int results_per_worker));
  (all, { results_per_worker; time_per_worker })

let enumerate ?workers ?pivot ?feasibility ?min_size ?cache_capacity ?obs g ~s =
  fst
    (enumerate_with_stats ?workers ?pivot ?feasibility ?min_size ?cache_capacity ?obs g
       ~s)
