module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type stats = {
  results_per_worker : int array;
  time_per_worker : float array;
  tasks_per_worker : int array;
  steals : int;
  splits : int;
}

(* A unit of schedulable work. Roots travel as bare ids so the ball
   computation that materializes the root state happens on whichever
   worker executes (or steals) it, not serially up front. Subtrees carry
   the id of the root branch they came from: budgeted runs account
   results and completion per root. *)
type work =
  | Root of int
  | Sub of int * Cs_cliques2.task

(* Per-root completion tracking for budgeted runs. [root_pending.(v)]
   counts v's outstanding work items (the root item itself, plus every
   split-off subtree; children register before their parent retires, so
   0 means the whole branch ran). The worker whose decrement hits 0
   COMMITS the root — flushes its buffered results and records it
   retired — but only while the budget is live: the trip flag is sticky,
   so any trip that pruned part of the branch (or crashed a task, which
   skips the decrement entirely) is visible here and the root stays
   uncommitted, to be rerun in full by a resume. *)
type rooted = {
  root_pending : int Atomic.t array;
  stripes : Mutex.t array; (* buffer shards: root land 63 *)
  buffers : Node_set.t list array; (* per-root results, under the stripe *)
  commit_lock : Mutex.t; (* serializes commits and the retired list *)
  mutable retired : int list;
  mutable committed : Node_set.t list;
  budget : Budget.t;
  on_root_retired : (int -> Node_set.t list -> unit) option;
  fault : Scoll.Fault.t;
}

let commit_root rooted root =
  if Budget.live rooted.budget then
    Scoll.Sync.with_lock rooted.commit_lock (fun () ->
        let rs =
          List.rev
            (Scoll.Sync.with_lock rooted.stripes.(root land 63) (fun () ->
                 rooted.buffers.(root)))
        in
        (* the caller's sink runs FIRST: only once it has durably accepted
           the whole root (it may raise — injected fault, full disk) is
           the root recorded as retired. A sink failure therefore leaves
           the root uncommitted and a resume reruns it; the caller is
           responsible for discarding whatever partial output its sink
           produced before failing (the stream format's clean-prefix
           truncation exists for exactly that). *)
        (match rooted.on_root_retired with None -> () | Some f -> f root rs);
        List.iter (fun _ -> Budget.note_result rooted.budget) rs;
        rooted.retired <- root :: rooted.retired;
        rooted.committed <- List.rev_append rs rooted.committed)

type shared = {
  deques : work Scoll.Deque.t array; (* one per worker, mutex-sharded *)
  locks : Mutex.t array;
  pending : int Atomic.t;
      (* work items created and not yet retired; children are registered
         before their parent retires, so 0 means no work exists anywhere *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first task crash, re-raised after the join. Without this a
         crashed task never retires its pending count, so every other
         worker sleeps on [pending > 0] forever *)
}

(* What one worker hands back after the join. *)
type worker_result = {
  w_results : Node_set.t list;
  w_time : float;
  w_tasks : int;
  w_steals : int;
  w_splits : int;
  w_obs : Scliques_obs.Obs.t option;
}

let run_worker ~id ~g ~s ~pivot ~feasibility ~min_size ~cache_capacity ~observed
    ~split_depth ~split_width ~split_min_subtree ~shared ~rooted () =
  let t0 = Scliques_obs.Clock.now () in
  (* per-worker observer, oracle and sink: domains share only the
     immutable graph and the scheduler state *)
  let obs = if observed then Some (Scliques_obs.Obs.create ()) else None in
  let nh = Neighborhood.create ~cache_capacity ?obs ~s g in
  let results = ref [] in
  (* which root branch the task being executed belongs to; set by
     [execute] before the task body runs, read by the budgeted sink *)
  let cur_root = ref (-1) in
  let yield, should_continue =
    match rooted with
    | None -> ((fun c -> results := c :: !results), fun () -> true)
    | Some r ->
        ( (fun c ->
            let root = !cur_root in
            Scoll.Sync.with_lock r.stripes.(root land 63) (fun () ->
                r.buffers.(root) <- c :: r.buffers.(root))),
          (* each worker gets its own checker: the countdown is local *)
          Budget.checker r.budget )
  in
  let rn =
    Cs_cliques2.make_runner ~pivot ~feasibility ~min_size ~should_continue ?obs nh
      yield
  in
  let tasks = ref 0 and steals = ref 0 and splits = ref 0 in
  let workers = Array.length shared.deques in
  let pop_own () =
    Scoll.Sync.with_lock shared.locks.(id) (fun () ->
        Scoll.Deque.pop_back_opt shared.deques.(id))
  in
  let steal () =
    (* SAFETY: victims longest-backlog first; the unlocked length reads are
       only a heuristic ordering — the pop itself is under the victim's
       lock, so a torn or stale length costs a wasted probe, never a task *)
    let victims =
      List.init workers (fun j ->
          ( (Scoll.Deque.length shared.deques.(j) [@lint.allow "atomicity"]
             [@lint.allow "domain-escape"]),
            j ))
      |> List.filter (fun (len, j) -> j <> id && len > 0)
      |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
    in
    List.fold_left
      (fun acc (_, j) ->
        match acc with
        | Some _ -> acc
        | None ->
            Scoll.Sync.with_lock shared.locks.(j) (fun () ->
                Scoll.Deque.pop_front_opt shared.deques.(j)))
      None victims
  in
  let push_children root children =
    ignore (Atomic.fetch_and_add shared.pending (List.length children));
    (match rooted with
    | None -> ()
    | Some r ->
        ignore
          (Atomic.fetch_and_add r.root_pending.(root) (List.length children)));
    Scoll.Sync.with_lock shared.locks.(id) (fun () ->
        List.iter
          (fun c -> Scoll.Deque.push_back shared.deques.(id) (Sub (root, c)))
          children)
  in
  let execute w =
    incr tasks;
    (* full budget poll at every task pickup — [Budget.poll], not the
       cadenced checker, so a cancel (client disconnect) or deadline is
       observed at the next work item even between the checker's
       [poll_every] strides. Once the budget is dead the task body is
       skipped entirely: materializing a [Root] costs a ball BFS, and a
       cancelled query must drain its queue in O(pending) bookkeeping,
       not O(pending) BFS work. Only the scheduler accounting below runs
       (a dead budget makes [commit_root] a no-op). *)
    let live =
      match rooted with None -> true | Some r -> Budget.poll r.budget
    in
    let root = match w with Root v -> v | Sub (root, _) -> root in
    if live then begin
      let t =
        match w with
        | Root v -> Cs_cliques2.root_task nh v
        | Sub (_, t) -> t
      in
      cur_root := root;
      (match rooted with
      | None -> ()
      | Some r -> Scoll.Fault.check r.fault "par.task");
      if
        Cs_cliques2.task_depth t < split_depth
        && Cs_cliques2.task_width t >= split_width
      then begin
        (* oversized shallow subtree: do one visit step (emitting if
           maximal) and requeue the children so idle workers can take
           them. Only children whose candidate set clears the
           minimum-subtree threshold are worth a deque round-trip and a
           potential steal; tiny subtrees run right here, in cache, for
           less than their scheduling would cost (the over-splitting fix
           — BENCH_parallel.json showed 24k splits for 39k results). *)
        let children = Cs_cliques2.expand_task rn t in
        let stealable, tiny =
          List.partition
            (fun c -> Cs_cliques2.task_width c >= split_min_subtree)
            children
        in
        (match stealable with
        | [] -> ()
        | _ :: _ ->
            incr splits;
            push_children root stealable);
        List.iter (Cs_cliques2.run_task rn) tiny
      end
      else Cs_cliques2.run_task rn t
    end;
    (match rooted with
    | None -> ()
    | Some r ->
        (* children were registered above, so 1 -> 0 means the whole
           branch has run; the unique winner of that decrement commits *)
        if Atomic.fetch_and_add r.root_pending.(root) (-1) = 1 then
          commit_root r root);
    Atomic.decr shared.pending
  in
  let execute w =
    (* a crash in a task body would leave [pending] above zero forever
       and put every other worker to sleep on it; record the first
       failure instead and let all loops drain. The handler does not
       re-raise here by design: [enumerate_with_stats] re-raises with
       the original backtrace after the domains are joined. *)
    (try execute w
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set shared.failed None (Some (e, bt))))
    [@lint.allow "exception-swallow"]
  in
  let backoff = ref 1e-5 in
  let rec loop () =
    match Atomic.get shared.failed with
    | Some _ -> () (* another worker crashed: stop draining, go join *)
    | None -> (
        match pop_own () with
        | Some w ->
            backoff := 1e-5;
            execute w;
            loop ()
        | None ->
            if Atomic.get shared.pending > 0 then begin
              (match steal () with
              | Some w ->
                  backoff := 1e-5;
                  incr steals;
                  execute w
              | None ->
                  (* work is in flight but nothing is stealable: sleep rather
                     than spin — the machine may have fewer cores than
                     workers, and a spinning thief would starve the owner *)
                  Unix.sleepf !backoff;
                  backoff := Float.min (2. *. !backoff) 1e-3);
              loop ()
            end)
  in
  loop ();
  (match obs with None -> () | Some _ -> Neighborhood.sync_obs nh);
  {
    w_results = !results;
    w_time = Scliques_obs.Clock.now () -. t0;
    w_tasks = !tasks;
    w_steals = !steals;
    w_splits = !splits;
    w_obs = obs;
  }

let enumerate_with_stats ?workers ?(split_depth = 3) ?(split_width = 8)
    ?(split_min_subtree = 8) ?(pivot = true) ?(feasibility = false)
    ?(min_size = 0) ?(cache_capacity = 65536) ?obs g ~s =
  let workers =
    match workers with Some w -> w | None -> Domain.recommended_domain_count ()
  in
  if workers < 1 then invalid_arg "Parallel.enumerate: workers must be >= 1";
  let observed = Option.is_some obs in
  let n = Graph.n g in
  let shared =
    {
      deques = Array.init workers (fun _ -> Scoll.Deque.create ());
      locks = Array.init workers (fun _ -> Mutex.create ());
      pending = Atomic.make n;
      failed = Atomic.make None;
    }
  in
  (* deal roots round-robin, ascending toward the back: owners drain their
     own deque newest-first, so thieves (who take the front) steal the
     SMALLEST remaining root id — the branch with the largest candidate
     set, i.e. the heaviest work, which is what balancing wants moved *)
  for v = 0 to n - 1 do
    (* SAFETY: pre-spawn dealing — no helper domain exists yet, so these
       unlocked pushes cannot race with the locked owner/thief accesses *)
    (Scoll.Deque.push_back shared.deques.(v mod workers) (Root v)
    [@lint.allow "atomicity"])
  done;
  let worker id () =
    run_worker ~id ~g ~s ~pivot ~feasibility ~min_size ~cache_capacity ~observed
      ~split_depth ~split_width ~split_min_subtree ~shared ~rooted:None ()
  in
  let helpers = List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  (* worker 0 runs in the calling domain *)
  let own = worker 0 () in
  let parts = own :: List.map Domain.join helpers in
  (* only now, with every domain joined, surface a task crash: raising
     earlier would leak helper domains still sleeping on [pending] *)
  (match Atomic.get shared.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let arr f = Array.of_list (List.map f parts) in
  let results_per_worker = arr (fun p -> List.length p.w_results) in
  let time_per_worker = arr (fun p -> p.w_time) in
  let tasks_per_worker = arr (fun p -> p.w_tasks) in
  let steals = List.fold_left (fun acc p -> acc + p.w_steals) 0 parts in
  let splits = List.fold_left (fun acc p -> acc + p.w_splits) 0 parts in
  (* canonical output: sorted by Node_set.compare, so the result list is
     identical for every worker count and every steal schedule (tasks
     partition the output, only their placement varies; sorting removes
     the arrival order) *)
  let all = List.sort Node_set.compare (List.concat_map (fun p -> p.w_results) parts) in
  (match obs with
  | None -> ()
  | Some into ->
      List.iteri
        (fun i p ->
          match p.w_obs with
          | None -> ()
          | Some o ->
              let set name v =
                Scliques_obs.Counters.set
                  (Scliques_obs.Obs.counter into (Printf.sprintf "par.worker%d.%s" i name))
                  v
              in
              set "results" (List.length p.w_results);
              set "tasks" p.w_tasks;
              Scliques_obs.Obs.merge_into ~into o)
        parts;
      let set name v = Scliques_obs.Counters.set (Scliques_obs.Obs.counter into name) v in
      set "par.workers" workers;
      set "par.results" (List.length all);
      set "par.tasks" (Array.fold_left ( + ) 0 tasks_per_worker);
      set "par.steals" steals;
      set "par.splits" splits;
      set "par.max_worker_results" (Array.fold_left Int.max 0 results_per_worker);
      set "par.min_worker_results" (Array.fold_left Int.min max_int results_per_worker));
  (all, { results_per_worker; time_per_worker; tasks_per_worker; steals; splits })

let enumerate ?workers ?split_depth ?split_width ?split_min_subtree ?pivot
    ?feasibility ?min_size ?cache_capacity ?obs g ~s =
  fst
    (enumerate_with_stats ?workers ?split_depth ?split_width ?split_min_subtree
       ?pivot ?feasibility ?min_size ?cache_capacity ?obs g ~s)

let enumerate_budgeted ?workers ?(split_depth = 3) ?(split_width = 8)
    ?(split_min_subtree = 8) ?(pivot = true) ?(feasibility = false)
    ?(min_size = 0) ?(cache_capacity = 65536) ?obs ?(fault = Scoll.Fault.none)
    ?(skip_roots = []) ?on_root_retired ~budget g ~s =
  let workers =
    match workers with Some w -> w | None -> Domain.recommended_domain_count ()
  in
  if workers < 1 then invalid_arg "Parallel.enumerate_budgeted: workers must be >= 1";
  let observed = Option.is_some obs in
  let n = Graph.n g in
  let skip = Array.make (max n 1) false in
  List.iter (fun v -> if v >= 0 && v < n then skip.(v) <- true) skip_roots;
  let roots = List.filter (fun v -> not skip.(v)) (List.init n Fun.id) in
  let shared =
    {
      deques = Array.init workers (fun _ -> Scoll.Deque.create ());
      locks = Array.init workers (fun _ -> Mutex.create ());
      pending = Atomic.make (List.length roots);
      failed = Atomic.make None;
    }
  in
  (* SAFETY: pre-spawn dealing, as in [enumerate] above *)
  List.iteri
    (fun i v ->
      (Scoll.Deque.push_back shared.deques.(i mod workers) (Root v)
      [@lint.allow "atomicity"]))
    roots;
  let rooted =
    {
      root_pending =
        Array.init (max n 1) (fun v -> Atomic.make (if skip.(v) then 0 else 1));
      stripes = Array.init 64 (fun _ -> Mutex.create ());
      buffers = Array.make (max n 1) [];
      commit_lock = Mutex.create ();
      retired = [];
      committed = [];
      budget;
      on_root_retired;
      fault;
    }
  in
  let worker id () =
    run_worker ~id ~g ~s ~pivot ~feasibility ~min_size ~cache_capacity ~observed
      ~split_depth ~split_width ~split_min_subtree ~shared ~rooted:(Some rooted) ()
  in
  let helpers = List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  let own = worker 0 () in
  let parts = own :: List.map Domain.join helpers in
  (* surface a task (or sink) crash only after every domain is joined —
     the caller can still checkpoint what [on_root_retired] delivered
     before the crash, since uncommitted roots simply rerun on resume *)
  (match Atomic.get shared.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  (match obs with
  | None -> ()
  | Some into ->
      List.iter
        (fun p ->
          match p.w_obs with None -> () | Some o -> Scliques_obs.Obs.merge_into ~into o)
        parts;
      Scliques_obs.Counters.set
        (Scliques_obs.Obs.counter into "par.workers")
        workers);
  (* SAFETY: every helper domain is joined above — these reads happen after
     quiescence, sequentially, so the commit lock is not needed *)
  ( List.sort Node_set.compare (rooted.committed [@lint.allow "atomicity"]),
    Budget.status budget,
    List.sort Int.compare (rooted.retired [@lint.allow "atomicity"]) )

let enumerate_roots ?workers ?split_depth ?split_width ?split_min_subtree
    ?pivot ?feasibility ?min_size ?cache_capacity ?obs ~roots g ~s =
  let n = Graph.n g in
  let keep = Array.make (max n 1) false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Parallel.enumerate_roots: root out of range";
      keep.(v) <- true)
    roots;
  let skip_roots = List.filter (fun v -> not keep.(v)) (List.init n Fun.id) in
  let results, _outcome, _retired =
    (* an unlimited budget never trips, so every kept root commits and the
       committed list is exactly the union of the requested branches *)
    enumerate_budgeted ?workers ?split_depth ?split_width ?split_min_subtree
      ?pivot ?feasibility ?min_size ?cache_capacity ?obs ~skip_roots
      ~budget:(Budget.unlimited ()) g ~s
  in
  results
