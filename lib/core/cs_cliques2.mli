(** CsCliques2 (paper Fig. 7): Bron–Kerbosch adaptation in which the
    growing set [R] is an s-clique that may be temporarily disconnected;
    connectivity is only required at print time.

    Allowing a disconnected [R] costs exploration of branches that can
    never print, but unlocks the two optimizations of the paper's §5.3:

    - {b pivoting} ([~pivot:true], "P" in the paper's plots): choose
      [u ∈ (P ∪ X) ∩ N^{∃,1}(R)] minimizing [|P − N^s(u)|] and branch only
      on [P − N^s(u)]. The pivot must be adjacent to [R] (Prop. 5.5's
      third case), so no pivot is applied while [R = ∅]. If no candidate
      pivot exists, no extension of [R] can be connected-maximal through
      new adjacent nodes and the branch only needs its print check.
    - {b feasibility} ([~feasibility:true], "F"): before branching on [v],
      require [R ∪ {v}] to lie inside a single connected component of
      [G[R ∪ {v} ∪ (P ∩ N^s(v))]]; infeasible [v] are dropped from [P]
      outright (they can never complete to a connected s-clique with [R],
      so they are not needed in [X] either). Complete pruning is
      NP-complete (Thm. 5.6); this check is the paper's sound
      approximation. *)

type pivot_rule =
  | Min_uncovered
      (** the paper's rule: minimize [|P − N^s(u)|] over the candidates *)
  | First_candidate
      (** take the smallest-id candidate without scoring — a cheaper but
          weaker choice, exposed for the pivot ablation benchmark *)

type root_order =
  | Ascending  (** Fig. 7 verbatim: the root loop scans node ids upward *)
  | Power_degeneracy
      (** footnote 1's Eppstein–Löffler–Strash adaptation: the root
          branches in a degeneracy ordering of the power graph [G^s], so
          each root call's candidate set is bounded by the s-degeneracy.
          Costs building [G^s] up front — the trade-off the
          [abl_degeneracy] benchmark measures. *)

val iter :
  ?pivot:bool ->
  ?pivot_rule:pivot_rule ->
  ?feasibility:bool ->
  ?root_order:root_order ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Call the function on every maximal connected s-clique exactly once.
    Defaults: [pivot = false], [pivot_rule = Min_uncovered],
    [feasibility = false]. [min_size] enables the §6 pruning and filters
    the output; [should_continue] is polled at every recursion entry.

    With [obs], the delay recorder ticks per emission and the counters
    [cs2.calls], [cs2.max_depth], [cs2.emits], [cs2.pivot_prunes]
    (candidates removed from branching by the §5.3 pivot) and
    [cs2.feasibility_prunes] (nodes dropped by the §5.3 feasibility
    check) are maintained; without it the search is uninstrumented. *)

val iter_rooted :
  ?pivot:bool ->
  ?pivot_rule:pivot_rule ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  root:int ->
  p:Sgraph.Node_set.t ->
  x:Sgraph.Node_set.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Explore only the subtree rooted at [R = {root}] with the given
    candidate and exclusion sets — the state the ascending root loop
    reaches at [root] is [p = N^s(root) ∩ {u > root}],
    [x = N^s(root) ∩ {u < root}]. Disjoint root branches partition the
    output, which is what {!Parallel} exploits. *)
