(** CsCliques2 (paper Fig. 7): Bron–Kerbosch adaptation in which the
    growing set [R] is an s-clique that may be temporarily disconnected;
    connectivity is only required at print time.

    Allowing a disconnected [R] costs exploration of branches that can
    never print, but unlocks the two optimizations of the paper's §5.3:

    - {b pivoting} ([~pivot:true], "P" in the paper's plots): choose
      [u ∈ (P ∪ X) ∩ N^{∃,1}(R)] minimizing [|P − N^s(u)|] and branch only
      on [P − N^s(u)]. The pivot must be adjacent to [R] (Prop. 5.5's
      third case), so no pivot is applied while [R = ∅]. If no candidate
      pivot exists, no extension of [R] can be connected-maximal through
      new adjacent nodes and the branch only needs its print check.
    - {b feasibility} ([~feasibility:true], "F"): before branching on [v],
      require [R ∪ {v}] to lie inside a single connected component of
      [G[R ∪ {v} ∪ (P ∩ N^s(v))]]; infeasible [v] are dropped from [P]
      outright (they can never complete to a connected s-clique with [R],
      so they are not needed in [X] either). Complete pruning is
      NP-complete (Thm. 5.6); this check is the paper's sound
      approximation. *)

type pivot_rule =
  | Min_uncovered
      (** the paper's rule: minimize [|P − N^s(u)|] over the candidates *)
  | First_candidate
      (** take the smallest-id candidate without scoring — a cheaper but
          weaker choice, exposed for the pivot ablation benchmark *)

type root_order =
  | Ascending  (** Fig. 7 verbatim: the root loop scans node ids upward *)
  | Power_degeneracy
      (** footnote 1's Eppstein–Löffler–Strash adaptation: the root
          branches in a degeneracy ordering of the power graph [G^s], so
          each root call's candidate set is bounded by the s-degeneracy.
          Costs building [G^s] up front — the trade-off the
          [abl_degeneracy] benchmark measures. *)

val iter :
  ?pivot:bool ->
  ?pivot_rule:pivot_rule ->
  ?feasibility:bool ->
  ?root_order:root_order ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Call the function on every maximal connected s-clique exactly once.
    Defaults: [pivot = false], [pivot_rule = Min_uncovered],
    [feasibility = false]. [min_size] enables the §6 pruning and filters
    the output; [should_continue] is polled at every recursion entry.

    With [obs], the delay recorder ticks per emission and the counters
    [cs2.calls], [cs2.max_depth], [cs2.emits], [cs2.pivot_prunes]
    (candidates removed from branching by the §5.3 pivot) and
    [cs2.feasibility_prunes] (nodes dropped by the §5.3 feasibility
    check) are maintained; without it the search is uninstrumented. *)

val iter_rooted :
  ?pivot:bool ->
  ?pivot_rule:pivot_rule ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  root:int ->
  p:Sgraph.Node_set.t ->
  x:Sgraph.Node_set.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Explore only the subtree rooted at [R = {root}] with the given
    candidate and exclusion sets — the state the ascending root loop
    reaches at [root] is [p = N^s(root) ∩ {u > root}],
    [x = N^s(root) ∩ {u < root}]. Disjoint root branches partition the
    output, which is what {!Parallel} exploits. *)

(** {2 Explicit task interface}

    The work-stealing {!Parallel} scheduler needs the recursion as
    first-class subproblems it can move between workers. A {!task} is one
    node of the recursion tree — the state [(depth, R, P, X, frontier)] —
    and a {!runner} bundles a search configuration with its output sink.
    {!run_task} explores a subtree depth-first exactly as {!iter} would;
    {!expand_task} performs ONE visit step (emitting [R] if it is a
    maximal connected s-clique) and returns the child subproblems in
    branch order. Both paths execute the same shared visit code, and
    every child state is fully computed before any child runs, so
    running the children in any order — or on any worker — explores
    exactly the subtree [run_task] would: the emitted multiset is
    schedule-independent. *)

type task

val task_depth : task -> int
(** Distance from the task's originating root call (the split-depth
    knob's unit). *)

val task_width : task -> int
(** [|P|] — the branching factor bound the scheduler's split-width
    threshold compares against. *)

type runner

val make_runner :
  ?pivot:bool ->
  ?pivot_rule:pivot_rule ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  runner
(** Same configuration surface as {!iter}. Emissions go to the given
    sink; counters (when [obs] is set) use the same [cs2.*] vocabulary.
    The runner is only as thread-safe as its neighborhood oracle and
    sink: give each worker its own. The caller is responsible for
    {!Neighborhood.sync_obs} when a run ends. *)

val root_task : Neighborhood.t -> int -> task
(** [root_task nh v] is the state the ascending root loop reaches at
    [v]: [R = {v}], [p = N^s(v) ∩ {u > v}], [x = N^s(v) ∩ {u < v}].
    The tasks of all roots partition the output. *)

val run_task : runner -> task -> unit
(** Explore the whole subtree depth-first. *)

val expand_task : runner -> task -> task list
(** One visit step: emit [R] if maximal, return the children. An empty
    list means the subtree is exhausted. *)
