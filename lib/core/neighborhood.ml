module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

(* weight ≈ heap bytes of a cached ball: the sorted id array (one word
   per member) plus record/array headers *)
let ball_weight b = (8 * Node_set.cardinal b) + 32

(* A cached ball N^s(k) changes iff k lies within distance s of a
   touched endpoint in the old graph (a path it used was cut) or in the
   new one (a path it gains) — so the stale key set is exactly the union
   of the closed radius-s balls of [touched] in both graphs. Everything
   else stays warm. *)
let drop_stale cache ~before ~after ~s ~touched =
  match touched with
  | [] -> ()
  | _ :: _ when s = 1 -> () (* s = 1 reads rows straight off the graph *)
  | _ :: _ ->
      let stale =
        Node_set.union
          (Sgraph.Bfs.ball_multi before ~srcs:touched ~radius:s)
          (Sgraph.Bfs.ball_multi after ~srcs:touched ~radius:s)
      in
      let doomed =
        Scoll.Lri_cache.fold
          (fun k _ acc -> if Node_set.mem k stale then k :: acc else acc)
          cache []
      in
      List.iter (Scoll.Lri_cache.remove cache) doomed

module Shared = struct
  type store = {
    lock : Mutex.t;
    mutable st_graph : Graph.t;
    mutable st_epoch : int;
    st_s : int;
    st_cache : Node_set.t Scoll.Lri_cache.t;
  }

  let create ?(cache_capacity = 65536) ~s graph =
    if s < 1 then invalid_arg "Neighborhood.Shared.create: s must be >= 1";
    {
      lock = Mutex.create ();
      st_graph = graph;
      st_epoch = 0;
      st_s = s;
      st_cache = Scoll.Lri_cache.create ~weight:ball_weight ~capacity:cache_capacity ();
    }

  let graph st = Scoll.Sync.with_lock st.lock (fun () -> st.st_graph)

  let s st = st.st_s

  let epoch st = Scoll.Sync.with_lock st.lock (fun () -> st.st_epoch)

  let bytes st =
    Scoll.Sync.with_lock st.lock (fun () -> Scoll.Lri_cache.total_weight st.st_cache)

  let length st =
    Scoll.Sync.with_lock st.lock (fun () -> Scoll.Lri_cache.length st.st_cache)

  let stats st = Scoll.Sync.with_lock st.lock (fun () -> Scoll.Lri_cache.stats st.st_cache)

  let recount_bytes st =
    Scoll.Sync.with_lock st.lock (fun () ->
        Scoll.Lri_cache.fold (fun _ b acc -> acc + ball_weight b) st.st_cache 0)

  let invalidate st ~after ~touched =
    Scoll.Sync.with_lock st.lock (fun () ->
        if Graph.n after <> Graph.n st.st_graph then
          invalid_arg "Neighborhood.Shared.invalidate: node counts differ";
        drop_stale st.st_cache ~before:st.st_graph ~after ~s:st.st_s ~touched;
        st.st_graph <- after;
        st.st_epoch <- st.st_epoch + 1)

  let advance st ~after ~touched =
    Scoll.Sync.with_lock st.lock (fun () ->
        if Graph.n after <> Graph.n st.st_graph then
          invalid_arg "Neighborhood.Shared.advance: node counts differ";
        let next =
          {
            lock = Mutex.create ();
            st_graph = after;
            st_epoch = st.st_epoch + 1;
            st_s = st.st_s;
            st_cache =
              Scoll.Lri_cache.create ~weight:ball_weight
                ~capacity:(Scoll.Lri_cache.capacity st.st_cache) ();
          }
        in
        (* copy forward every ball the churn locality proof keeps valid
           (the complement of drop_stale's stale set); [next] is private
           until returned, so filling its cache needs no lock *)
        (match touched with
        | _ when st.st_s = 1 -> () (* s = 1 reads rows straight off the graph *)
        | [] ->
            Scoll.Lri_cache.fold
              (fun k b () -> Scoll.Lri_cache.add next.st_cache k b)
              st.st_cache ()
        | _ :: _ ->
            let stale =
              Node_set.union
                (Sgraph.Bfs.ball_multi st.st_graph ~srcs:touched ~radius:st.st_s)
                (Sgraph.Bfs.ball_multi after ~srcs:touched ~radius:st.st_s)
            in
            Scoll.Lri_cache.fold
              (fun k b () ->
                if not (Node_set.mem k stale) then
                  Scoll.Lri_cache.add next.st_cache k b)
              st.st_cache ());
        next)
end

type backend =
  | Private of Node_set.t Scoll.Lri_cache.t
  | Shared_store of Shared.store * int (* the store, and its epoch at attach *)

type t = {
  mutable graph : Graph.t; (* swapped by [invalidate] after edge churn *)
  mutable epoch : int;
  s : int;
  backend : backend;
  obs : Scliques_obs.Obs.t option;
  c_bfs : Scliques_obs.Counters.counter option;
      (* resolved once at creation so each cached-miss BFS costs one add *)
  mask : Scoll.Bitset.t;
      (* scratch membership mask over the node ids, loaded with one set at
         a time (a ball, a frontier) and filtered against with O(1)
         word-indexed tests; invalidated by the next load *)
  mutable mask_loaded : Node_set.t; (* current mask contents, for O(|prev|) clears *)
  acc : Scoll.Bitset.t; (* scratch accumulator for unions (adjacent_any) *)
}

let make ~backend ~obs ~s graph epoch =
  {
    graph;
    epoch;
    s;
    backend;
    obs;
    c_bfs = Option.map (fun o -> Scliques_obs.Obs.counter o "nh.bfs_expansions") obs;
    mask = Scoll.Bitset.create (Graph.n graph);
    mask_loaded = Node_set.empty;
    acc = Scoll.Bitset.create (Graph.n graph);
  }

let create ?(cache_capacity = 65536) ?obs ~s graph =
  if s < 1 then invalid_arg "Neighborhood.create: s must be >= 1";
  let cache = Scoll.Lri_cache.create ~weight:ball_weight ~capacity:cache_capacity () in
  make ~backend:(Private cache) ~obs ~s graph 0

let of_shared ?obs store =
  let graph, epoch =
    Scoll.Sync.with_lock store.Shared.lock (fun () ->
        (store.Shared.st_graph, store.Shared.st_epoch))
  in
  make ~backend:(Shared_store (store, epoch)) ~obs ~s:store.Shared.st_s graph epoch

let graph t = t.graph

let s t = t.s

let epoch t = t.epoch

let stale t =
  match t.backend with
  | Private _ -> false
  | Shared_store (st, birth) -> Shared.epoch st <> birth

let invalidate t ~after ~touched =
  match t.backend with
  | Shared_store _ ->
      invalid_arg
        "Neighborhood.invalidate: shared-backed oracle (invalidate the store and \
         re-attach)"
  | Private cache ->
      if Graph.n after <> Graph.n t.graph then
        invalid_arg "Neighborhood.invalidate: node counts differ";
      drop_stale cache ~before:t.graph ~after ~s:t.s ~touched;
      t.graph <- after;
      t.epoch <- t.epoch + 1

let bfs_ball t v =
  let b = Sgraph.Bfs.ball t.graph v ~radius:t.s in
  (match t.c_bfs with
  | None -> ()
  | Some c -> Scliques_obs.Counters.add c (Node_set.cardinal b + 1));
  b

let ball t v =
  if t.s = 1 then Graph.neighbor_set t.graph v (* already materialized *)
  else
    match t.backend with
    | Private cache -> Scoll.Lri_cache.find_or_add cache v ~compute:(fun v -> bfs_ball t v)
    | Shared_store (st, birth) -> (
        (* double-checked: probe under the lock, but run the BFS outside
           it (Bfs.ball is pure), so one slow miss never serializes the
           sibling queries sharing the store. Both the probe and the
           insert check the epoch: a stale oracle must not read hits the
           store cached for a *newer* graph (it answers for its birth
           graph, and falls back to its own BFS instead), and a
           concurrent [Shared.invalidate] must not be undone by a ball
           computed against the pre-churn graph. The insert also skips
           keys another query already filled, keeping the weight ledger
           exact. *)
        match
          Scoll.Sync.with_lock st.Shared.lock (fun () ->
              if st.Shared.st_epoch = birth then
                Scoll.Lri_cache.find_opt st.Shared.st_cache v
              else None)
        with
        | Some b -> b
        | None ->
            let b = bfs_ball t v in
            Scoll.Sync.with_lock st.Shared.lock (fun () ->
                if st.Shared.st_epoch = birth && not (Scoll.Lri_cache.mem st.Shared.st_cache v)
                then Scoll.Lri_cache.add st.Shared.st_cache v b);
            b)

let load_mask t set =
  (* clears only the previously loaded members, not the whole capacity *)
  Node_set.load_bitset t.mask ~prev:t.mask_loaded set;
  t.mask_loaded <- set;
  t.mask

let ball_mask t v = load_mask t (ball t v)

let ball_forall t c =
  if Node_set.is_empty c then Graph.nodes t.graph
  else
    (* intersect balls smallest-first so intermediate results shrink fast.
       This op stays on sorted merges rather than the mask: once the
       accumulator collapses, Node_set.inter gallops in |acc|·log|ball|,
       while a mask-based step cannot avoid an O(|ball|) load — measured
       ~2x in favor of the merges on the kernel benchmarks *)
    let balls = List.map (ball t) (Node_set.to_list c) in
    let balls =
      List.sort (fun a b -> compare (Node_set.cardinal a) (Node_set.cardinal b)) balls
    in
    match balls with
    | [] -> assert false
    | first :: rest ->
        let inter =
          List.fold_left
            (fun acc b -> if Node_set.is_empty acc then acc else Node_set.inter acc b)
            first rest
        in
        Node_set.diff inter c

let adjacent_any t c =
  (* word-parallel union: scatter every member's neighbor row into the
     accumulator bitset, then collect — O(sum degrees + n/64) instead of
     one sorted merge per member *)
  Scoll.Bitset.clear t.acc;
  let csr = Graph.csr t.graph in
  let off = Sgraph.Csr.offsets csr and nbr = Sgraph.Csr.adjacency csr in
  (* SAFETY: [acc] is sized to Graph.n and every neighbor id and member
     of [c] is a valid node id, so all bit indices are below capacity;
     the [off..off+len) slice is a CSR row, in bounds by construction *)
  (Node_set.iter
     (fun v ->
       Scoll.Bitset.unsafe_add_sub t.acc nbr ~off:off.(v) ~len:(off.(v + 1) - off.(v)))
     c [@lint.allow "unsafe-allowlist"]);
  (Node_set.iter (Scoll.Bitset.unsafe_remove t.acc) c
  [@lint.allow "unsafe-allowlist"]);
  Node_set.of_bitset t.acc

let within_distance t u v = u = v || Node_set.mem v (ball t u)

let cache_stats t =
  match t.backend with
  | Private cache -> Scoll.Lri_cache.stats cache
  | Shared_store (st, _) -> Shared.stats st

let cache_bytes t =
  match t.backend with
  | Private cache -> Scoll.Lri_cache.total_weight cache
  | Shared_store (st, _) -> Shared.bytes st

(* Per-root branch fingerprints (the sublinear-refresh skip test).

   The results rooted at r are a function of (a) the membership of the
   closed ball B(r, rho_s) and (b) the edge set incident to its members,
   where rho_s = s + (s-1)/2. Why rho_s: every member of a result rooted
   at r lies in the closed N^s(r); deciding membership, pairwise
   s-distances and maximality only ever asks for paths of length <= s
   between nodes of the closed N^s(r), and every edge of such a path has
   an endpoint within (s-1)/2 hops of one of the path's ends — so within
   s + (s-1)/2 of r. Hashing each B(r, rho_s) member's full adjacency
   row covers exactly that data: if the digests match across an edit,
   the BFS from r explores identical rows, so the ball, every witnessing
   path and every maximality check are identical, and the branch's
   output is unchanged (up to a CRC-32 collision, ~2^-32 — the same
   trust the result stream already places in CRC-32). *)

let fingerprint_radius ~s =
  if s < 1 then invalid_arg "Neighborhood.fingerprint_radius: s must be >= 1";
  s + ((s - 1) / 2)

let root_fingerprint ~s g root =
  if root < 0 || root >= Graph.n g then
    invalid_arg
      (Printf.sprintf "Neighborhood.root_fingerprint: node %d out of range (n=%d)"
         root (Graph.n g));
  let radius = fingerprint_radius ~s in
  let members = Node_set.add root (Sgraph.Bfs.ball g root ~radius) in
  let buf = Buffer.create 256 in
  let add v = Buffer.add_int32_le buf (Int32.of_int v) in
  Node_set.iter
    (fun v ->
      add v;
      Graph.iter_neighbors add g v;
      (* row terminator: -1 is no node id, so (member, row) framing is
         unambiguous and shifting ids across rows cannot collide *)
      add (-1))
    members;
  Scoll.Crc32.string (Buffer.contents buf)

let sync_obs t =
  match t.obs with
  | None -> ()
  | Some o ->
      let stats = cache_stats t in
      let set name v = Scliques_obs.Counters.set (Scliques_obs.Obs.counter o name) v in
      set "nh.cache_hits" stats.Scoll.Lri_cache.hits;
      set "nh.cache_misses" stats.Scoll.Lri_cache.misses;
      set "nh.cache_evictions" stats.Scoll.Lri_cache.evictions
