module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type t = {
  graph : Graph.t;
  s : int;
  cache : (int, Node_set.t) Scoll.Lri_cache.t;
  obs : Scliques_obs.Obs.t option;
  c_bfs : Scliques_obs.Counters.counter option;
      (* resolved once at creation so each cached-miss BFS costs one add *)
}

let create ?(cache_capacity = 65536) ?obs ~s graph =
  if s < 1 then invalid_arg "Neighborhood.create: s must be >= 1";
  {
    graph;
    s;
    cache = Scoll.Lri_cache.create ~capacity:cache_capacity ();
    obs;
    c_bfs = Option.map (fun o -> Scliques_obs.Obs.counter o "nh.bfs_expansions") obs;
  }

let graph t = t.graph

let s t = t.s

let ball t v =
  if t.s = 1 then Graph.neighbor_set t.graph v (* already materialized *)
  else
    Scoll.Lri_cache.find_or_add t.cache v ~compute:(fun v ->
        let b = Sgraph.Bfs.ball t.graph v ~radius:t.s in
        (match t.c_bfs with
        | None -> ()
        | Some c -> Scliques_obs.Counters.add c (Node_set.cardinal b + 1));
        b)

let ball_forall t c =
  if Node_set.is_empty c then Graph.nodes t.graph
  else
    (* intersect balls smallest-first so intermediate results shrink fast *)
    let balls = List.map (ball t) (Node_set.to_list c) in
    let balls =
      List.sort (fun a b -> compare (Node_set.cardinal a) (Node_set.cardinal b)) balls
    in
    match balls with
    | [] -> assert false
    | first :: rest ->
        let inter = List.fold_left Node_set.inter first rest in
        Node_set.diff inter c

let adjacent_any t c =
  let acc = ref Node_set.empty in
  Node_set.iter
    (fun v -> acc := Node_set.union !acc (Graph.neighbor_set t.graph v))
    c;
  Node_set.diff !acc c

let within_distance t u v = u = v || Node_set.mem v (ball t u)

let cache_stats t = Scoll.Lri_cache.stats t.cache

let sync_obs t =
  match t.obs with
  | None -> ()
  | Some o ->
      let stats = Scoll.Lri_cache.stats t.cache in
      let set name v = Scliques_obs.Counters.set (Scliques_obs.Obs.counter o name) v in
      set "nh.cache_hits" stats.Scoll.Lri_cache.hits;
      set "nh.cache_misses" stats.Scoll.Lri_cache.misses;
      set "nh.cache_evictions" stats.Scoll.Lri_cache.evictions
