module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type t = {
  graph : Graph.t;
  s : int;
  cache : (int, Node_set.t) Scoll.Lri_cache.t;
}

let create ?(cache_capacity = 65536) ~s graph =
  if s < 1 then invalid_arg "Neighborhood.create: s must be >= 1";
  { graph; s; cache = Scoll.Lri_cache.create ~capacity:cache_capacity () }

let graph t = t.graph

let s t = t.s

let ball t v =
  if t.s = 1 then Graph.neighbor_set t.graph v (* already materialized *)
  else
    Scoll.Lri_cache.find_or_add t.cache v ~compute:(fun v ->
        Sgraph.Bfs.ball t.graph v ~radius:t.s)

let ball_forall t c =
  if Node_set.is_empty c then Graph.nodes t.graph
  else
    (* intersect balls smallest-first so intermediate results shrink fast *)
    let balls = List.map (ball t) (Node_set.to_list c) in
    let balls =
      List.sort (fun a b -> compare (Node_set.cardinal a) (Node_set.cardinal b)) balls
    in
    match balls with
    | [] -> assert false
    | first :: rest ->
        let inter = List.fold_left Node_set.inter first rest in
        Node_set.diff inter c

let adjacent_any t c =
  let acc = ref Node_set.empty in
  Node_set.iter
    (fun v -> acc := Node_set.union !acc (Graph.neighbor_set t.graph v))
    c;
  Node_set.diff !acc c

let within_distance t u v = u = v || Node_set.mem v (ball t u)

let cache_stats t = Scoll.Lri_cache.stats t.cache
