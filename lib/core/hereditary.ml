module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type property = {
  name : string;
  build : Graph.t -> Node_set.t -> bool;
  carve_unique : bool;
}

let clique =
  { name = "clique"; build = (fun g u -> Verify.is_clique g u); carve_unique = true }

let s_clique ~s =
  if s < 1 then invalid_arg "Hereditary.s_clique: s must be >= 1";
  let build g =
    (* memoized distance-ball oracle shared by all queries on this graph *)
    let nh = Neighborhood.create ~s g in
    fun u ->
      Node_set.for_all
        (fun v ->
          let ball = Neighborhood.ball nh v in
          Node_set.for_all (fun w -> w = v || Node_set.mem w ball) u)
        u
  in
  { name = Printf.sprintf "%d-clique" s; build; carve_unique = true }

let k_plex ~k =
  if k < 1 then invalid_arg "Hereditary.k_plex: k must be >= 1";
  let build g u =
    let size = Node_set.cardinal u in
    Node_set.for_all (fun v -> Quasi_clique.internal_degree g u v >= size - k) u
  in
  { name = Printf.sprintf "%d-plex" k; build; carve_unique = false }

(* Greedy growth to a maximal connected satisfying set — exact because
   the property is connected-hereditary (see the .mli). Deterministic:
   the smallest eligible adjacent node joins first. *)
let extend_max g holds seed =
  let result = ref seed in
  let continue_ = ref true in
  while !continue_ do
    let frontier =
      Node_set.diff
        (Node_set.fold
           (fun v acc -> Node_set.union acc (Graph.neighbor_set g v))
           !result Node_set.empty)
        !result
    in
    match
      Node_set.fold
        (fun v found ->
          match found with
          | Some _ -> found
          | None -> if holds (Node_set.add v !result) then Some v else None)
        frontier None
    with
    | Some v -> result := Node_set.add v !result
    | None -> continue_ := false
  done;
  !result

(* Carve step (paper line 10 generalized): the restricted problem on
   G[C ∪ {v}] — membership and connectivity live in the induced
   subgraph, but the property itself stays that of the ORIGINAL graph.
   The distinction only matters for non-local properties: an s-clique's
   witness paths may leave the universe (§3 measures distances in the
   ambient graph), so rebuilding the predicate on the induced subgraph
   would lose results (the same trap as Extend_max.in_induced). Local
   properties (cliques, k-plexes) read only internal edges and cannot
   tell the difference. For carve-unique properties the greedy growth
   from {v} is the (single) answer; otherwise every maximal restricted
   solution containing v is enumerated by brute force — CKS's
   input-restricted problem. *)
let carve g property ~holds ~emitted v =
  let universe = Node_set.add v emitted in
  let sub, back = Graph.induced g universe in
  let fwd = Hashtbl.create (2 * Node_set.cardinal universe) in
  Array.iteri (fun i orig -> Hashtbl.replace fwd orig i) back;
  let v_sub = Hashtbl.find fwd v in
  let to_original grown =
    Node_set.of_list (List.map (fun i -> back.(i)) (Node_set.to_list grown))
  in
  let holds_sub u = holds (to_original u) in
  if property.carve_unique then
    [ to_original (extend_max sub holds_sub (Node_set.singleton v_sub)) ]
  else begin
    let k = Graph.n sub in
    if k > Brute_force.max_nodes then
      invalid_arg
        (Printf.sprintf
           "Hereditary.iter: %s restricted instance has %d nodes (cap %d); this \
            property needs a dedicated restricted-problem solver beyond that"
           property.name k Brute_force.max_nodes);
    let qualifies u = Sgraph.Bfs.is_connected_subset sub u && holds_sub u in
    let solutions = ref [] in
    for mask = 1 to (1 lsl k) - 1 do
      if mask land (1 lsl v_sub) <> 0 then begin
        let members = ref [] in
        for i = k - 1 downto 0 do
          if mask land (1 lsl i) <> 0 then members := i :: !members
        done;
        let u = Node_set.of_list !members in
        if qualifies u then begin
          (* maximal within the restricted instance: single-node extension
             is exact for connected-hereditary properties *)
          let extensible = ref false in
          for w = 0 to k - 1 do
            if (not (Node_set.mem w u)) && qualifies (Node_set.add w u) then
              extensible := true
          done;
          if not !extensible then solutions := to_original u :: !solutions
        end
      end
    done;
    !solutions
  end

let iter ?budget ?(should_continue = fun () -> true) g property yield =
  let should_continue =
    match budget with
    | None -> should_continue
    | Some b ->
        let check = Budget.checker b in
        fun () -> check () && should_continue ()
  in
  let yield =
    match budget with
    | None -> yield
    | Some b ->
        fun c ->
          yield c;
          Budget.note_result b
  in
  let holds = property.build g in
  let queue = Scoll.Fifo_queue.create () in
  let index = Scoll.Btree.create ~cmp:Node_set.compare () in
  let register c = if Scoll.Btree.add index c then Scoll.Fifo_queue.push queue c in
  List.iter
    (fun comp ->
      register (extend_max g holds (Node_set.singleton (Node_set.min_elt comp))))
    (Sgraph.Components.components g);
  let running = ref true in
  while !running do
    if not (should_continue ()) then running := false
    else
      match Scoll.Fifo_queue.pop_opt queue with
      | None -> running := false
      | Some c ->
          yield c;
          let frontier =
            Node_set.diff
              (Node_set.fold
                 (fun v acc -> Node_set.union acc (Graph.neighbor_set g v))
                 c Node_set.empty)
              c
          in
          Node_set.iter
            (fun v ->
              List.iter
                (fun carved -> register (extend_max g holds carved))
                (carve g property ~holds ~emitted:c v))
            frontier
  done

let all g property =
  let acc = ref [] in
  iter g property (fun c -> acc := c :: !acc);
  List.sort Node_set.compare !acc

let brute_force g property =
  if Graph.n g > Brute_force.max_nodes then
    invalid_arg
      (Printf.sprintf "Hereditary.brute_force: graph has %d nodes, limit is %d"
         (Graph.n g) Brute_force.max_nodes);
  let holds = property.build g in
  let n = Graph.n g in
  let qualifies u = Sgraph.Bfs.is_connected_subset g u && holds u in
  let sets = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let members = ref [] in
    for v = n - 1 downto 0 do
      if mask land (1 lsl v) <> 0 then members := v :: !members
    done;
    let u = Node_set.of_list !members in
    if qualifies u then begin
      let extensible = ref false in
      for v = 0 to n - 1 do
        if (not (Node_set.mem v u)) && qualifies (Node_set.add v u) then
          extensible := true
      done;
      if not !extensible then sets := u :: !sets
    end
  done;
  List.sort Node_set.compare !sets
