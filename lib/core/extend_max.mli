(** The ExtendMax sub-procedure of PolyDelayEnum (paper Fig. 4).

    ExtendMax greedily grows a connected s-clique [C] by repeatedly adding
    a node from [N^{∀,s}(C) ∩ N^{∃,1}(C)] — a node close enough (distance
    ≤ s) to every member and adjacent to at least one — until no such node
    exists. The result is a maximal connected s-clique containing [C].
    Both call sites of the paper are covered:

    - line 3 / line 11 extend with respect to the {e whole} graph
      ({!in_graph});
    - line 10 extends [{v}] inside the induced subgraph [G\[C ∪ {v}\]],
      where distances are measured {e in the induced subgraph}
      ({!in_induced}) — this is what lets the algorithm carve the portion
      of [C] compatible with [v].

    Node choice is deterministic: the smallest eligible id is added first,
    so results are reproducible across runs. *)

val in_graph : Neighborhood.t -> Sgraph.Node_set.t -> Sgraph.Node_set.t
(** [in_graph nh c] grows the connected s-clique [c] to a maximal one in
    the whole graph. An empty [c] starts from node 0 (the paper's
    "arbitrary node"); the empty graph yields the empty set. The caller
    must pass a connected s-clique. *)

val in_induced :
  Neighborhood.t ->
  universe:Sgraph.Node_set.t ->
  seed:Sgraph.Node_set.t ->
  Sgraph.Node_set.t
(** [in_induced nh ~universe ~seed] runs ExtendMax(seed, G[universe], s):
    distances and adjacency are those of the induced subgraph. [seed] must
    be a nonempty connected s-clique of G[universe] and a subset of
    [universe]. O(|universe|^2 + |universe| * edges-in-universe). *)
