(** The ExtendMax sub-procedure of PolyDelayEnum (paper Fig. 4).

    ExtendMax greedily grows a connected s-clique [C] by repeatedly adding
    a node from [N^{∀,s}(C) ∩ N^{∃,1}(C)] — a node close enough (distance
    ≤ s) to every member and adjacent to at least one — until no such node
    exists. The result is a maximal connected s-clique containing [C].
    Both call sites of the paper are covered:

    - line 3 / line 11 extend with respect to the {e whole} graph
      ({!in_graph});
    - line 10 extends [{v}] inside the induced subgraph [G\[C ∪ {v}\]]
      ({!in_induced}) — this is what lets the algorithm carve the portion
      of [C] compatible with [v]. The restriction applies to membership
      and to the adjacency driving connected growth only; distances are
      still those of the whole graph, because §3 defines s-cliques by
      ambient distances (witness paths may leave the set — and hence the
      universe). Restricting distances too would drop members of [C]
      whose only witness path to [v] runs outside [C ∪ {v}] and lose
      results, violating Theorem 4.2.

    Node choice is deterministic: the smallest eligible id is added first,
    so results are reproducible across runs. *)

val in_graph : Neighborhood.t -> Sgraph.Node_set.t -> Sgraph.Node_set.t
(** [in_graph nh c] grows the connected s-clique [c] to a maximal one in
    the whole graph. An empty [c] starts from node 0 (the paper's
    "arbitrary node"); the empty graph yields the empty set. The caller
    must pass a connected s-clique. *)

val in_induced :
  Neighborhood.t ->
  universe:Sgraph.Node_set.t ->
  seed:Sgraph.Node_set.t ->
  Sgraph.Node_set.t
(** [in_induced nh ~universe ~seed] runs ExtendMax(seed, G[universe], s):
    only members of [universe] may join and growth follows adjacency
    within the universe, but distance-s closeness is decided in the whole
    graph (see the module comment). [seed] must be a nonempty connected
    s-clique and a subset of [universe]. *)
