(** Classic Bron–Kerbosch maximal {e clique} enumeration (paper Fig. 5).

    This is the baseline the paper's adaptations generalize, in its three
    standard incarnations: the 1973 original, the Tomita–Tanaka–Takahashi
    pivoting variant (worst-case O(3^{n/3}), the paper's §5.1), and the
    Eppstein–Löffler–Strash degeneracy-ordered variant for sparse graphs
    (footnote 1). For [s = 1] maximal cliques coincide with maximal
    connected s-cliques; combined with {!Sgraph.Power}, [Pivot] also
    implements Remark 1's reduction for not-necessarily-connected
    s-cliques ({!maximal_s_cliques_via_power}). *)

type strategy =
  | Plain  (** Fig. 5 verbatim: branch on every node of [P] *)
  | Pivot  (** branch on [P − N(u)], [u ∈ P ∪ X] maximizing [|P ∩ N(u)|] *)
  | Degeneracy
      (** outer level in degeneracy order, pivoting below: delay bounded
          by the graph's degeneracy rather than its max degree *)

val iter :
  ?budget:Budget.t ->
  ?strategy:strategy ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  Sgraph.Graph.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Call the function on every maximal clique exactly once (default
    strategy [Pivot]). [min_size] prunes branches with [|R| + |P| < k].
    [should_continue] is polled at every recursion entry. [budget] is an
    alternative spelling of the same protocol: its {!Budget.checker} is
    conjoined with [should_continue] and each emission is counted via
    {!Budget.note_result}, so deadlines, result caps and cancellation
    work here exactly as in the s-clique enumerators (truncation only —
    maximal-clique runs are not checkpointable). *)

val maximal_cliques :
  ?budget:Budget.t ->
  ?should_continue:(unit -> bool) ->
  ?strategy:strategy ->
  Sgraph.Graph.t ->
  Sgraph.Node_set.t list

val maximal_s_cliques_via_power : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t list
(** Remark 1: the maximal (not necessarily connected) s-cliques of [g] are
    the maximal cliques of the power graph [g^s]. *)

val max_clique_size : Sgraph.Graph.t -> int
(** Size of a maximum clique (0 for the empty graph). *)
