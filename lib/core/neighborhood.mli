(** Cached distance-s neighborhoods — the N-operators of the paper's §3.

    Every algorithm in the paper is phrased in terms of three operators
    over a graph [G] and parameter [s]:
    - [N^s(v)]     — nodes at distance 1..s from [v] ({!ball});
    - [N^{∀,s}(C)] — nodes at distance ≤ s from {e all} of [C] ({!ball_forall});
    - [N^{∃,1}(C)] — nodes adjacent to {e at least one} node of [C]
      ({!adjacent_any}).

    Computing [N^s(v)] (a bounded BFS) is "one of the most costly
    operations in all algorithms" (§7), so the paper memoizes it in a hash
    table with LRI eviction under a memory cap. A [Neighborhood.t] bundles
    the graph, [s], and that cache; all enumeration algorithms take one. *)

type t

(** A thread-safe ball store that many oracles — one per concurrent
    query — can share, so every query against the same graph warms the
    same [N^s] cache. The store holds the graph, [s], an epoch counter
    and the weighted LRI cache behind one mutex; {!of_shared} attaches a
    per-query [t] whose scratch bitsets stay thread-confined while its
    {!ball} lookups go through the store.

    Lookups use double-checked locking: the probe and the insert each
    take the lock, but a missing ball's BFS runs {e outside} it
    ([Sgraph.Bfs.ball] is pure), so a slow miss never serializes sibling
    queries. Both sides are epoch-guarded: once the store's epoch moved
    past an oracle's attach point, that oracle neither reads hits (they
    may describe the newer graph) nor writes fills (computed against the
    older one) — it keeps answering for its birth graph from its own
    BFS. An insert is also skipped when a sibling already filled the
    key, so the weight ledger counts every cached ball exactly once. *)
module Shared : sig
  type store

  val create : ?cache_capacity:int -> s:int -> Sgraph.Graph.t -> store
  (** [cache_capacity] bounds the number of memoized balls across {e all}
      attached oracles (default [65536]).
      @raise Invalid_argument when [s < 1]. *)

  val graph : store -> Sgraph.Graph.t

  val s : store -> int

  val epoch : store -> int
  (** 0 at creation, +1 per {!invalidate}. *)

  val invalidate : store -> after:Sgraph.Graph.t -> touched:int list -> unit
  (** Switch the store to [after], dropping exactly the balls a radius-s
      change can reach (the same locality rule as the per-oracle
      {!Neighborhood.invalidate}) and bumping the epoch. Oracles already
      attached keep answering for their birth graph — their inserts are
      discarded from then on (see {!Neighborhood.stale}); attach fresh
      ones to serve the new graph.
      @raise Invalid_argument when the node counts differ. *)

  val advance : store -> after:Sgraph.Graph.t -> touched:int list -> store
  (** [advance store ~after ~touched] is the copy-on-write sibling of
      {!invalidate}: a {e fresh} store for [after] (epoch + 1, same [s]
      and capacity), pre-warmed with every cached ball the radius-s
      locality rule proves still valid, leaving [store] {b untouched} —
      its graph, epoch and cache are exactly as before, so oracles
      attached to it keep their warm hits for as long as they live. This
      is what an epoch-pinned server wants on mutation: in-flight
      queries finish on the old store, new admissions attach to the
      returned one. With an empty [touched] every ball is carried over.
      @raise Invalid_argument when the node counts differ. *)

  val bytes : store -> int
  (** Approximate heap bytes of the cached balls (the incrementally
      maintained weight ledger). *)

  val length : store -> int
  (** Number of cached balls. *)

  val recount_bytes : store -> int
  (** {!bytes} recomputed from scratch by walking every cached ball —
      O(cached). Equal to {!bytes} unless the ledger leaked; tests
      compare the two after fault drills. *)

  val stats : store -> Scoll.Lri_cache.stats
end

val create : ?cache_capacity:int -> ?obs:Scliques_obs.Obs.t -> s:int -> Sgraph.Graph.t -> t
(** [create ~s g] prepares a neighborhood oracle for [g] with parameter
    [s >= 1]. [cache_capacity] bounds the number of memoized balls
    (default [65536]; [0] disables caching — every query recomputes).
    With [obs], each ball BFS adds its visited-node count to the
    [nh.bfs_expansions] counter as it happens; cache counters are
    published on {!sync_obs}.
    @raise Invalid_argument when [s < 1]. *)

val of_shared : ?obs:Scliques_obs.Obs.t -> Shared.store -> t
(** [of_shared store] is a per-query oracle backed by [store]'s ball
    cache: same operator surface as a {!create}d one, but every cache hit
    and fill is shared with the store's other attachees. The oracle's
    scratch bitsets are its own — a [t] must still be confined to one
    thread at a time; only the {e store} is safe to share. The graph and
    [s] are the store's at attach time. *)

val stale : t -> bool
(** Whether the backing {!Shared.store} was {!Shared.invalidate}d since
    this oracle attached (always [false] for a {!create}d oracle). A
    stale oracle still answers consistently for its birth graph — it
    stops reading {e and} writing the shared cache (a hit filled for the
    newer graph must not leak into its answers) and recomputes balls
    itself. *)

val graph : t -> Sgraph.Graph.t
(** The graph the oracle currently answers for (the {!create} argument,
    or the latest {!invalidate} replacement). *)

val s : t -> int

val epoch : t -> int
(** Graph-version counter: 0 at creation, +1 per {!invalidate}. Consumers
    holding data derived from this oracle (checkpoints, result caches)
    can compare epochs to detect that the graph changed underneath. *)

val invalidate : t -> after:Sgraph.Graph.t -> touched:int list -> unit
(** [invalidate t ~after ~touched] switches the oracle to [after], a
    graph differing from the current one only by edge edits whose
    endpoints are all listed in [touched] (order and duplicates
    irrelevant). Instead of clearing the ball cache wholesale, it drops
    exactly the balls a radius-s change can reach — the cached keys
    within distance s of a touched endpoint in either graph — and keeps
    the rest warm; the epoch is bumped. With an empty [touched] (an
    empty edit batch) nothing is dropped.
    @raise Invalid_argument when the node counts differ, a touched id is
    out of range, or the oracle is {!of_shared}-backed (churn goes
    through {!Shared.invalidate} instead). *)

val ball : t -> int -> Sgraph.Node_set.t
(** [ball t v] is [N^s(v)], {b excluding} [v] itself. Cached. *)

val ball_forall : t -> Sgraph.Node_set.t -> Sgraph.Node_set.t
(** [ball_forall t c] is [N^{∀,s}(c)]: nodes (outside [c]) at distance at
    most [s] in the whole graph from every node of [c]. For an empty [c]
    it returns every node of the graph (an empty conjunction holds). *)

val adjacent_any : t -> Sgraph.Node_set.t -> Sgraph.Node_set.t
(** [adjacent_any t c] is [N^{∃,1}(c)]: nodes outside [c] adjacent to at
    least one member. Empty for an empty [c]. *)

val load_mask : t -> Sgraph.Node_set.t -> Scoll.Bitset.t
(** [load_mask t c] loads [c] into the oracle's scratch membership bitset
    and returns it, so several sorted sets can be filtered against [c]
    with {!Sgraph.Node_set.inter_bitset} / [diff_bitset] at O(1) per
    element. Clearing is O(|previous load|), not O(n). The returned
    bitset is only valid until the next [load_mask] / {!ball_mask} call
    on [t] — do not hold on to it across other oracle operations. *)

val ball_mask : t -> int -> Scoll.Bitset.t
(** [ball_mask t v] is [load_mask t (ball t v)] — the ball of [v] as a
    scratch bitset, with the same single-load validity rule. *)

val within_distance : t -> int -> int -> bool
(** [within_distance t u v] decides [dist(u,v) <= s] using the cache
    ([u = v] counts as within distance). *)

val cache_stats : t -> Scoll.Lri_cache.stats
(** Hit/miss/eviction counters of the ball cache (for the ablation
    benchmark). *)

val cache_bytes : t -> int
(** Approximate heap bytes held by the memoized balls — the probe behind
    [Budget.max_cache_bytes]. Constant time. *)

val fingerprint_radius : s:int -> int
(** The branch-fingerprint ball radius [rho_s = s + (s-1)/2]. The results
    rooted at [r] are a function of the closed ball [B(r, rho_s)] and the
    edges incident to its members: every witnessing path of length [<= s]
    between members of the closed [N^s(r)] has all of its edges incident
    to a node within [(s-1)/2] hops of one of the path's endpoints, hence
    within [rho_s] of [r].
    @raise Invalid_argument when [s < 1]. *)

val root_fingerprint : s:int -> Sgraph.Graph.t -> int -> int
(** [root_fingerprint ~s g r] digests the branch of root [r]: a CRC-32
    over the sorted members of the closed [B(r, rho_s)] ball and each
    member's full adjacency row. Equal fingerprints across an edge edit
    imply the branch's result set is unchanged (up to a CRC-32 collision,
    [~2^-32] — the same trust the result stream places in CRC-32), which
    is what lets {!Enumerate.refresh} skip re-running the root. O(ball +
    incident edges); uncached — refresh calls it on balls the churn just
    invalidated anyway.
    @raise Invalid_argument when [s < 1] or [r] is out of range. *)

val sync_obs : t -> unit
(** Publish the ball cache's cumulative hit/miss/eviction counts into the
    observer's [nh.cache_hits] / [nh.cache_misses] / [nh.cache_evictions]
    counters (overwriting — the LRI cache is the source of truth). No-op
    without an observer. Algorithms call this once when a run ends so the
    per-query path stays counter-free. *)
