(** Size statistics over enumeration results (the paper's Figure 11
    "average and max sizes" measurement, and the per-run size summaries
    quoted throughout §7). *)

type t = {
  count : int;
  min_size : int;  (** 0 when [count = 0] *)
  max_size : int;  (** 0 when [count = 0] *)
  avg_size : float;  (** 0. when [count = 0] *)
  total_nodes : int;  (** sum of sizes *)
}

val of_results : Sgraph.Node_set.t list -> t

val of_sizes : int list -> t

val sample :
  ?cache_capacity:int ->
  Enumerate.algorithm ->
  Sgraph.Graph.t ->
  s:int ->
  int ->
  t
(** [sample alg g ~s n] summarizes the first [n] maximal connected
    s-cliques returned by [alg] — the paper's Fig. 11 protocol of sampling
    100 s-cliques per dataset and value of s. *)

val pp : Format.formatter -> t -> unit
