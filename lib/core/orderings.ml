module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let omega2 c = Node_set.to_list c

let is_connected_prefix_order g order =
  let rec go prefix = function
    | [] -> true
    | v :: rest ->
        let prefix = Node_set.add v prefix in
        Sgraph.Bfs.is_connected_subset g prefix && go prefix rest
  in
  go Node_set.empty order

let omega1 g c =
  if not (Sgraph.Bfs.is_connected_subset g c) then
    invalid_arg "Orderings.omega1: set does not induce a connected subgraph";
  if Node_set.is_empty c then []
  else begin
    let first = Node_set.min_elt c in
    let rec grow chosen order remaining =
      if Node_set.is_empty remaining then List.rev order
      else begin
        (* ≺-first remaining member adjacent to the chosen prefix *)
        let next =
          Node_set.fold
            (fun v found ->
              match found with
              | Some _ -> found
              | None ->
                  if
                    Node_set.exists (fun u -> Graph.mem_edge g u v) chosen
                  then Some v
                  else None)
            remaining None
        in
        match next with
        | None -> assert false (* impossible: C induces a connected graph *)
        | Some v ->
            grow (Node_set.add v chosen) (v :: order) (Node_set.remove v remaining)
      end
    in
    grow (Node_set.singleton first) [ first ] (Node_set.remove first c)
  end
