type t = {
  clock : unit -> float;
  start : float;
  mutable last : float;
  mutable results : int;
  mutable first_gap : float option;  (** delay before the first result *)
  mutable max_gap : float;
  mutable sum_gaps : float;
  mutable gaps : int;
  mutable finished : bool;
}

let create ?(clock = Scliques_obs.Clock.now) () =
  let now = clock () in
  {
    clock;
    start = now;
    last = now;
    results = 0;
    first_gap = None;
    max_gap = 0.;
    sum_gaps = 0.;
    gaps = 0;
    finished = false;
  }

let observe_gap t now =
  let gap = now -. t.last in
  if Option.is_none t.first_gap then t.first_gap <- Some gap;
  t.max_gap <- Float.max t.max_gap gap;
  t.sum_gaps <- t.sum_gaps +. gap;
  t.gaps <- t.gaps + 1;
  t.last <- now

let tick t =
  if t.finished then invalid_arg "Delay.tick: already finished";
  observe_gap t (t.clock ());
  t.results <- t.results + 1

let wrap t yield c =
  tick t;
  yield c

let finish t =
  if not t.finished then begin
    observe_gap t (t.clock ());
    t.finished <- true
  end

type report = {
  results : int;
  total : float;
  first : float;
  max_gap : float;
  mean_gap : float;
}

let report t =
  let total = t.last -. t.start in
  {
    results = t.results;
    total;
    first = Option.value ~default:total t.first_gap;
    max_gap = t.max_gap;
    mean_gap = (if t.gaps = 0 then 0. else t.sum_gaps /. float_of_int t.gaps);
  }

let pp_report fmt r =
  Format.fprintf fmt "results=%d total=%.3fs first=%.3fs max_gap=%.3fs mean_gap=%.4fs"
    r.results r.total r.first r.max_gap r.mean_gap
