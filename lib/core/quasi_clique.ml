module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let internal_degree g u v = Node_set.inter_cardinal u (Graph.neighbor_set g v)

let min_internal_degree g u =
  if Node_set.cardinal u <= 1 then 0
  else Node_set.fold (fun v acc -> min acc (internal_degree g u v)) u max_int

let is_gamma_quasi_clique g ~gamma u =
  if gamma < 0. || gamma > 1. then
    invalid_arg "Quasi_clique.is_gamma_quasi_clique: gamma outside [0,1]";
  let k = Node_set.cardinal u in
  k <= 1
  || float_of_int (min_internal_degree g u) >= gamma *. float_of_int (k - 1)

let induced_diameter g u =
  let k = Node_set.cardinal u in
  if k <= 1 then 0
  else begin
    let sub, _ = Graph.induced g u in
    let worst = ref 0 in
    for v = 0 to k - 1 do
      let dist = Sgraph.Bfs.distances sub v in
      Array.iter
        (fun d -> if d < 0 then worst := max_int else worst := max !worst d)
        dist
    done;
    !worst
  end
