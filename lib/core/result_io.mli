(** Serialization of enumeration results.

    The CLI's output format, round-trippable so that results can be piped
    between tools and re-certified later: one node set per line, members
    as whitespace-separated ids; [#] lines are comments. Parsing validates
    that members are distinct. *)

val to_string : Sgraph.Node_set.t list -> string

val save : Sgraph.Node_set.t list -> string -> unit

val parse_string : string -> Sgraph.Node_set.t list
(** @raise Failure with a line-numbered message on malformed input. *)

val load : string -> Sgraph.Node_set.t list
(** @raise Sys_error when the file cannot be read.
    @raise Failure on malformed input. *)

(** Crash-safe append-only record stream — the on-disk format behind
    [--checkpoint] result streaming and checkpoint files.

    Byte layout: the 7-byte magic ["SCLQS1\n"], then zero or more records
    of [u32le payload length | u32le CRC-32 of payload | payload].
    A record becomes durable the instant its last byte hits the disk; a
    process killed mid-write leaves a {e torn tail} (short header, bogus
    length, CRC mismatch) which {!Stream.read_records} detects, drops,
    and reports as [`Torn] — everything before it is trusted. *)
module Stream : sig
  val magic : string

  val max_record_len : int
  (** Hard ceiling on one record's payload length: a corrupt length word
      in a torn file must never drive a giant allocation. *)

  val encode_record : string -> string
  (** The raw framing of one record —
      [u32le payload length | u32le CRC-32 of payload | payload] — as the
      exact bytes {!write_record} appends. The daemon's [SCLQRPC1] wire
      protocol reuses this framing for its socket messages, so one
      encoder (and one fuzz surface) covers both.
      @raise Invalid_argument on a payload above {!max_record_len}. *)

  type writer

  val open_writer : ?fault:Scoll.Fault.t -> string -> writer
  (** Create or truncate [path] and write the magic. [fault] arms the
      [stream.write] / [stream.flush] injection sites. *)

  val open_append : ?fault:Scoll.Fault.t -> string -> clean_len:int -> writer
  (** Reopen an existing stream for appending after truncating it to
      [clean_len] bytes — the clean-prefix length returned by
      {!read_records} — so a torn tail from a crashed run is cut off
      before new records land. Falls back to {!open_writer} when the file
      is missing or [clean_len] does not even cover the magic. *)

  val write_record : writer -> string -> unit
  (** Append one record. Not flushed — see {!flush}.
      @raise Scoll.Fault.Injected when the armed fault fires. *)

  val write_set : writer -> Sgraph.Node_set.t -> unit
  (** [write_record] of {!encode_set}. *)

  val flush : writer -> unit

  val close : writer -> unit
  (** Flush and close. Idempotent. *)

  val read_records : string -> string list * int * [ `Clean | `Torn ]
  (** [read_records path] is [(payloads, clean_len, tail)]: every intact
      record in order, the byte length of the intact prefix, and whether
      a torn tail was dropped.
      @raise Sys_error when the file cannot be read.
      @raise Failure when the file does not start with the magic (it is
      not a stream at all, as opposed to a torn one). *)

  val encode_set : Sgraph.Node_set.t -> string

  val decode_set : string -> Sgraph.Node_set.t
  (** @raise Failure on a payload {!encode_set} could not have produced
      (possible only for hand-built files — CRC-validated records from
      this writer always decode). *)

  val read_results : string -> Sgraph.Node_set.t list * [ `Clean | `Torn ]
  (** {!read_records} + {!decode_set}. *)
end

(** The [SCLQIDX1] root→results index — a CRC'd sidecar beside a
    root-grouped result stream, mapping every root to its branch
    fingerprint ({!Neighborhood.root_fingerprint}) and the byte extent of
    its records in the stream. It is what makes refresh sublinear at the
    file level: stored fingerprints decide which roots to re-run without
    touching the before-graph, and {!Index.splice} rewrites a stream by
    copying unchanged extents verbatim — seek-and-patch instead of
    load-sort-partition-merge.

    Unlike the stream, the index is refused outright on {e any}
    corruption — truncation, byte flip, or disagreement with the
    stream's byte length — with a typed [Sgraph.Io_error.Parse_error]:
    it is derived data, so a refusal costs one {!Index.build}, while a
    trusted half-written index would patch bytes into the wrong
    extents. *)
module Index : sig
  val magic : string

  type entry = {
    fingerprint : int;  (** branch fingerprint on the indexed graph *)
    offset : int;  (** byte offset of the root's first record, from file start *)
    extent : int;  (** total bytes of the root's records; [0] = no results *)
    count : int;  (** number of result records for the root *)
  }

  type t = {
    stream_len : int;
        (** byte length of the (clean) stream this index describes;
            {!splice} and consumers refuse a stream whose size differs *)
    s : int;
    entries : entry array;  (** [entries.(root)], one per root *)
  }

  val n : t -> int
  (** Number of roots ([Array.length entries]). *)

  val path_for : string -> string
  (** The sidecar path convention: [STREAM.idx]. *)

  val to_string : t -> string

  val of_string : file:string -> string -> t
  (** Strict decode.
      @raise Sgraph.Io_error.Parse_error on any corruption. *)

  val save : t -> string -> unit
  (** Atomic (write-to-temp + rename). *)

  val load : string -> t
  (** @raise Sgraph.Io_error.Parse_error on any corruption.
      @raise Sys_error when the file cannot be read. *)

  val build : s:int -> n:int -> fingerprint:(int -> int) -> string -> t
  (** [build ~s ~n ~fingerprint path] scans a clean root-grouped stream
      (ascending or any root-contiguous order — parallel streams commit
      roots in retirement order) and records every root's extent;
      [fingerprint] supplies the branch digest for each of the [n] roots
      (including rootless ones, so a later refresh never needs the
      before-graph).
      @raise Sgraph.Io_error.Parse_error when the stream is torn, not
      root-grouped, or contains a record no root-decomposed run could
      have written. *)

  type splice_stats = {
    roots_patched : int;
    fresh_bytes : int;  (** bytes newly encoded for patched roots *)
    copied_bytes : int;  (** bytes copied verbatim, never decoded *)
  }

  val splice :
    old_stream:string ->
    index:t ->
    patched:(int * int * Sgraph.Node_set.t list) list ->
    out:string ->
    t * splice_stats
  (** [splice ~old_stream ~index ~patched ~out] writes a new stream at
      [out] (atomically, so [out = old_stream] is fine) equal to the old
      one with each patched root's records replaced: [patched] lists
      [(root, new fingerprint, new results)] for exactly the roots a
      refresh re-ran (an empty result list drops the root). Every other
      root's bytes are copied by extent without decoding, output is
      normalized to ascending-root order, and the updated index is saved
      at [path_for out] and returned.
      @raise Sgraph.Io_error.Parse_error when the index is stale (the
      old stream's size changed).
      @raise Invalid_argument on an out-of-range or duplicate patched
      root. *)
end
