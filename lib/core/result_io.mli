(** Serialization of enumeration results.

    The CLI's output format, round-trippable so that results can be piped
    between tools and re-certified later: one node set per line, members
    as whitespace-separated ids; [#] lines are comments. Parsing validates
    that members are distinct. *)

val to_string : Sgraph.Node_set.t list -> string

val save : Sgraph.Node_set.t list -> string -> unit

val parse_string : string -> Sgraph.Node_set.t list
(** @raise Failure with a line-numbered message on malformed input. *)

val load : string -> Sgraph.Node_set.t list
(** @raise Sys_error when the file cannot be read.
    @raise Failure on malformed input. *)

(** Crash-safe append-only record stream — the on-disk format behind
    [--checkpoint] result streaming and checkpoint files.

    Byte layout: the 7-byte magic ["SCLQS1\n"], then zero or more records
    of [u32le payload length | u32le CRC-32 of payload | payload].
    A record becomes durable the instant its last byte hits the disk; a
    process killed mid-write leaves a {e torn tail} (short header, bogus
    length, CRC mismatch) which {!Stream.read_records} detects, drops,
    and reports as [`Torn] — everything before it is trusted. *)
module Stream : sig
  val magic : string

  val max_record_len : int
  (** Hard ceiling on one record's payload length: a corrupt length word
      in a torn file must never drive a giant allocation. *)

  val encode_record : string -> string
  (** The raw framing of one record —
      [u32le payload length | u32le CRC-32 of payload | payload] — as the
      exact bytes {!write_record} appends. The daemon's [SCLQRPC1] wire
      protocol reuses this framing for its socket messages, so one
      encoder (and one fuzz surface) covers both.
      @raise Invalid_argument on a payload above {!max_record_len}. *)

  type writer

  val open_writer : ?fault:Scoll.Fault.t -> string -> writer
  (** Create or truncate [path] and write the magic. [fault] arms the
      [stream.write] / [stream.flush] injection sites. *)

  val open_append : ?fault:Scoll.Fault.t -> string -> clean_len:int -> writer
  (** Reopen an existing stream for appending after truncating it to
      [clean_len] bytes — the clean-prefix length returned by
      {!read_records} — so a torn tail from a crashed run is cut off
      before new records land. Falls back to {!open_writer} when the file
      is missing or [clean_len] does not even cover the magic. *)

  val write_record : writer -> string -> unit
  (** Append one record. Not flushed — see {!flush}.
      @raise Scoll.Fault.Injected when the armed fault fires. *)

  val write_set : writer -> Sgraph.Node_set.t -> unit
  (** [write_record] of {!encode_set}. *)

  val flush : writer -> unit

  val close : writer -> unit
  (** Flush and close. Idempotent. *)

  val read_records : string -> string list * int * [ `Clean | `Torn ]
  (** [read_records path] is [(payloads, clean_len, tail)]: every intact
      record in order, the byte length of the intact prefix, and whether
      a torn tail was dropped.
      @raise Sys_error when the file cannot be read.
      @raise Failure when the file does not start with the magic (it is
      not a stream at all, as opposed to a torn one). *)

  val encode_set : Sgraph.Node_set.t -> string

  val decode_set : string -> Sgraph.Node_set.t
  (** @raise Failure on a payload {!encode_set} could not have produced
      (possible only for hand-built files — CRC-validated records from
      this writer always decode). *)

  val read_results : string -> Sgraph.Node_set.t list * [ `Clean | `Torn ]
  (** {!read_records} + {!decode_set}. *)
end
