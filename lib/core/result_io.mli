(** Serialization of enumeration results.

    The CLI's output format, round-trippable so that results can be piped
    between tools and re-certified later: one node set per line, members
    as whitespace-separated ids; [#] lines are comments. Parsing validates
    that members are distinct. *)

val to_string : Sgraph.Node_set.t list -> string

val save : Sgraph.Node_set.t list -> string -> unit

val parse_string : string -> Sgraph.Node_set.t list
(** @raise Failure with a line-numbered message on malformed input. *)

val load : string -> Sgraph.Node_set.t list
(** @raise Sys_error when the file cannot be read.
    @raise Failure on malformed input. *)
