type t = {
  count : int;
  min_size : int;
  max_size : int;
  avg_size : float;
  total_nodes : int;
}

let of_sizes sizes =
  match sizes with
  | [] -> { count = 0; min_size = 0; max_size = 0; avg_size = 0.; total_nodes = 0 }
  | first :: rest ->
      let count = List.length sizes in
      let min_size = List.fold_left Int.min first rest in
      let max_size = List.fold_left Int.max first rest in
      let total_nodes = List.fold_left ( + ) 0 sizes in
      {
        count;
        min_size;
        max_size;
        avg_size = float_of_int total_nodes /. float_of_int count;
        total_nodes;
      }

let of_results results = of_sizes (List.map Sgraph.Node_set.cardinal results)

let sample ?cache_capacity algorithm g ~s n =
  of_results (Enumerate.first_n ?cache_capacity algorithm g ~s n)

let pp fmt t =
  Format.fprintf fmt "count=%d min=%d avg=%.2f max=%d" t.count t.min_size t.avg_size
    t.max_size
