(** Enumeration budgets: deadlines, result caps, memory caps, cancel.

    Maximal connected s-clique enumeration is output-polynomial but the
    output can be exponential in the graph size, so any production run
    needs a way to stop early {e without} losing the work already done.
    A [Budget.t] bundles every stop condition behind one cooperative
    protocol:

    - a wall-clock {b deadline} (monotonic, NTP-immune);
    - a {b result cap} ([max_results]);
    - a {b memory cap} on the memoized N^s balls ([max_cache_bytes],
      probed via {!Neighborhood.cache_bytes});
    - an external {b cancel token} ({!request_cancel}, tripped by the
      CLI's SIGINT handler).

    The protocol is {e sticky}: the first condition to fire records its
    {!reason} and every later check fails fast, so an enumeration winds
    down promptly and {!status} reports a single truncation cause.
    Budgets are domain-safe — one budget is shared by all workers of a
    parallel run — and the hot path is allocation-free: {!checker}
    returns a closure whose common case is one atomic load plus one
    integer decrement, with the expensive clock/probe checks amortized
    over [poll_every] calls. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Max_results  (** the result cap was reached *)
  | Max_cache_bytes  (** the N^s ball cache outgrew its byte cap *)
  | Cancelled  (** {!request_cancel} was called (e.g. SIGINT) *)

type outcome =
  | Complete  (** the enumeration ran to exhaustion: the output is everything *)
  | Truncated of reason
      (** the run stopped early; paired with a checkpoint it can be
          resumed. A run that hits [max_results] on its final result
          reports [Truncated Max_results] even if nothing else remained —
          completeness past the cap is unknowable without running on. *)

val reason_to_string : reason -> string
(** [deadline], [max-results], [max-cache-bytes], [cancelled] — the
    spellings the CLI prints and cram tests match. *)

type t

val create :
  ?deadline_s:float ->
  ?max_results:int ->
  ?max_cache_bytes:int ->
  ?cache_bytes:(unit -> int) ->
  ?poll_every:int ->
  unit ->
  t
(** [deadline_s] is {e relative} seconds from now on the monotonic clock
    ([0.] trips on the very first poll — useful for deterministic
    truncation tests). [cache_bytes] is the probe [Max_cache_bytes] is
    judged against (default: constantly [0], so the cap never fires).
    [poll_every] (default [1024]) is how many {!checker} calls elapse
    between expensive polls. Omitted limits never fire; [create ()] is a
    budget that never trips on its own but can still be cancelled.
    @raise Invalid_argument on a negative limit or [poll_every < 1]. *)

val unlimited : unit -> t
(** [create ()] — fresh each call because a budget is single-run state. *)

val request_cancel : t -> unit
(** Trip the cancel token. Async-signal-safe (one atomic store): this is
    what a SIGINT handler calls. The trip is observed at the next poll. *)

val trip : t -> reason -> unit
(** Force-trip with an explicit reason. First trip wins; later calls are
    no-ops. *)

val live : t -> bool
(** [true] while nothing has tripped. One atomic load. *)

val status : t -> outcome

val poll : t -> bool
(** Full check — cancel token, deadline, cache probe — tripping the
    budget and returning [false] on the first violated limit. Safe from
    any domain. Prefer {!checker} in hot loops. *)

val checker : t -> unit -> bool
(** [checker t] is a [should_continue] closure for one worker/run: each
    call is an atomic load plus a local countdown, and every
    [poll_every]-th call (plus the very first) runs a full {!poll}.
    Each worker of a parallel run must get its {e own} closure — the
    countdown is deliberately unsynchronized. *)

val note_result : t -> unit
(** Record one emitted result; trips [Max_results] the moment the count
    reaches the cap (the capping result itself is kept). Call after the
    sink has accepted the result. *)

val preload_results : t -> int -> unit
(** Seed the result count with results streamed by an earlier,
    interrupted run — so [max_results] counts the {e total} across
    resumes, not per process.
    @raise Invalid_argument on a negative count. *)

val results : t -> int
(** Results noted so far (including any preload). *)
