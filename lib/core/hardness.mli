(** The NP-completeness reduction of the paper's Theorem 5.6.

    Theorem 5.6: given a graph [G], [s > 1] and an s-clique [R], deciding
    whether some connected s-clique [C ⊇ R] exists is NP-complete — this
    is why CsCliques2's feasibility check must be incomplete. The proof
    reduces from 3-SAT; this module implements that reduction so the
    construction is executable and testable: a formula [ψ] maps to a graph
    and a seed s-clique [R] such that [R] extends to a connected s-clique
    iff [ψ] is satisfiable.

    Construction (§5.3): per clause [i] a chain [c_i^1 .. c_i^s], a node
    [x_i^j] per literal, and a terminal [f]; chains, literal nodes and [f]
    are wired in sequence, then every non-conflicting pair of original
    nodes at distance > s is joined by a fresh path of length [s]
    (conflicting = two literal nodes, one the negation of the other). *)

type literal = { variable : int; negated : bool }
(** Variables are non-negative integers. *)

type clause = literal * literal * literal

type cnf = clause list
(** The paper assumes no clause contains both a variable and its
    negation; {!reduce} checks this. *)

val satisfiable : cnf -> bool
(** Brute-force SAT over all assignments — the reference the reduction is
    validated against. Exponential in the number of distinct variables
    (capped at 20). *)

type reduction = {
  graph : Sgraph.Graph.t;
  seed : Sgraph.Node_set.t;  (** the s-clique [R] of the theorem *)
  s : int;
  literal_node : int -> int -> int;
      (** [literal_node i j] is the node [x_i^j] of clause [i] (0-based),
          literal position [j ∈ 0..2] *)
  original_nodes : Sgraph.Node_set.t;  (** [V_0]: the pre-path-filling nodes *)
}

val reduce : cnf -> s:int -> reduction
(** Build the reduction graph. Requires [s > 1] and a nonempty formula in
    which no clause contains a variable and its negation.
    @raise Invalid_argument otherwise. *)

val seed_is_s_clique : reduction -> bool
(** Sanity of the construction: [R] must itself be an s-clique. *)

val feasible : reduction -> bool
(** Does a connected s-clique containing [seed] exist? Decided by
    enumerating maximal connected s-cliques (early exit on the first
    superset) — exponential, as the theorem says it must be in the worst
    case. [feasible (reduce ψ ~s) = satisfiable ψ]. *)

val witness_of_assignment : reduction -> cnf -> (int -> bool) -> Sgraph.Node_set.t
(** [witness_of_assignment r ψ truth] is the set [C = R ∪ {x_i^j : literal
    j of clause i satisfied under truth}] from the proof's forward
    direction — a connected s-clique whenever [truth] satisfies [ψ]. *)
