(** Work-stealing parallel enumeration across OCaml 5 domains — the
    paper's future-work direction ("adapting the algorithms to a
    distributed environment", §8).

    The root level of CsCliques2 is embarrassingly parallel: branch [v]
    explores exactly the maximal connected s-cliques whose smallest node
    is [v], so distinct root branches never produce the same result. A
    static deal of roots balances badly, though — on a scale-free graph
    the hub-rooted branches dwarf the rest, and whichever worker drew
    them runs long after the others go idle. This module therefore
    schedules dynamically:

    - every worker owns a mutex-sharded deque of subproblems, seeded with
      the root branches round-robin;
    - owners pop the {e back} (newest first, cache-hot); an idle worker
      steals from the {e front} of the longest backlog, which holds the
      smallest remaining root id — the heaviest branch;
    - a popped subproblem that is still shallow ([depth < split_depth])
      and wide ([|P| >= split_width]) is not recursed in place: one
      {!Cs_cliques2.expand_task} visit step runs and the child subtrees
      are requeued, so an oversized branch becomes stealable pieces
      instead of one worker's fate;
    - a global atomic pending count (children registered before their
      parent retires) detects termination; starved workers sleep with
      exponential backoff rather than spin.

    Each worker keeps a private [N^s] cache, observer and result sink;
    the only shared mutable state is the scheduler's. Task placement
    never affects the result {e set} — every subproblem's state is fully
    computed before it is queued — so the canonicalized output is
    schedule-independent. *)

type stats = {
  results_per_worker : int array;
  time_per_worker : float array;  (** wall-clock seconds in each domain *)
  tasks_per_worker : int array;
      (** scheduler work items (roots + split-off subtrees) each worker
          executed — the load-balance measure that, unlike results, also
          counts fruitless subtrees *)
  steals : int;  (** work items taken from another worker's deque *)
  splits : int;  (** oversized subproblems expanded into requeued children *)
}

val enumerate :
  ?workers:int ->
  ?split_depth:int ->
  ?split_width:int ->
  ?split_min_subtree:int ->
  ?pivot:bool ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list
(** All maximal connected s-cliques, each exactly once, {b canonicalized}:
    sorted in increasing {!Sgraph.Node_set.compare} order, so the returned
    list is identical for every [workers], [split_depth] and [split_width]
    value (subproblems partition the output; only arrival order varies,
    and sorting removes it). [workers] defaults to
    [Domain.recommended_domain_count ()]; [pivot] defaults to [true].
    Subtrees at recursion depth below [split_depth] (default [3]) with at
    least [split_width] (default [8]) candidates are split for stealing
    rather than run in place; [split_depth <= 0] disables splitting.
    When a split fires, only the children with at least
    [split_min_subtree] (default [8]) candidates are queued for stealing
    — smaller ones are run inline by the splitting worker, since queueing
    a near-leaf subtree costs more in deque traffic than it buys in
    parallelism; [split_min_subtree <= 0] queues every child (the
    pre-threshold behavior).
    @raise Invalid_argument when [workers < 1] or [s < 1]. *)

val enumerate_with_stats :
  ?workers:int ->
  ?split_depth:int ->
  ?split_width:int ->
  ?split_min_subtree:int ->
  ?pivot:bool ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list * stats
(** Same, plus scheduler statistics. With [obs], every worker runs its
    own observer (domains never share one): per-worker delay recorders
    and recursion counters are merged into [obs] after the join, and the
    scheduler counters [par.workers], [par.results], [par.tasks],
    [par.steals], [par.splits], [par.worker<i>.results],
    [par.worker<i>.tasks], [par.max_worker_results] and
    [par.min_worker_results] are published. *)

val enumerate_roots :
  ?workers:int ->
  ?split_depth:int ->
  ?split_width:int ->
  ?split_min_subtree:int ->
  ?pivot:bool ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  roots:int list ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list
(** Like {!enumerate} but restricted to the given root branches: exactly
    the maximal connected s-cliques whose {e smallest member} is listed in
    [roots], canonically sorted. Duplicates in [roots] are fine. This is
    the parallel engine behind [Enumerate.refresh]'s re-enumeration of
    the affected roots after an edit batch.
    @raise Invalid_argument when a root is outside [0 .. n-1]. *)

val enumerate_budgeted :
  ?workers:int ->
  ?split_depth:int ->
  ?split_width:int ->
  ?split_min_subtree:int ->
  ?pivot:bool ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  ?fault:Scoll.Fault.t ->
  ?skip_roots:int list ->
  ?on_root_retired:(int -> Sgraph.Node_set.t list -> unit) ->
  budget:Budget.t ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list * Budget.outcome * int list
(** Budget-aware {!enumerate} with per-root completion tracking. Returns
    [(results, outcome, retired)]: the canonically sorted results of every
    {e committed} root, the budget's verdict, and the sorted committed
    root ids (excluding [skip_roots]) — ready for a
    [Checkpoint.Roots { retired = skip_roots @ retired }].

    A root commits when its whole branch has executed and the budget is
    still live at that moment; the trip flag is sticky, so a deadline or
    cancel that pruned any subtree leaves its root uncommitted, and a
    resume ([skip_roots] = previously retired) reruns exactly the
    uncommitted roots. A deadline or cancel is honored within one poll
    cadence per worker ({!Budget.create}'s [poll_every] recursion
    entries) {e and} at every task pickup, where the budget is polled in
    full; once tripped, remaining queued work drains as pure bookkeeping
    — no root-ball BFS, no visits — so a disconnected client's query
    stops paying for enumeration within [poll_every] extend-calls.
    [Max_results] is root-atomic: the capping root's results are all
    kept.

    [on_root_retired root results] runs {b in a worker domain}, serialized
    under the commit lock, {e before} the root is recorded retired — the
    streaming sink. If it raises, the root stays uncommitted and the
    exception aborts the run (re-raised after every domain joins, like a
    task crash); roots already committed remain valid for checkpointing,
    which the caller observed through earlier callbacks.

    [fault] arms the [par.task] injection site (the crash drill: the Nth
    executed work item raises). A crashed task's root can never commit —
    the failure cannot corrupt the retired set — and termination is
    unaffected because every worker drains as soon as the failure is
    recorded.

    Each callback result was already counted via {!Budget.note_result};
    on a resume, seed the budget with {!Budget.preload_results}. *)
