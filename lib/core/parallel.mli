(** Parallel enumeration across OCaml 5 domains — the paper's future-work
    direction ("adapting the algorithms to a distributed environment", §8).

    The root level of CsCliques2 is embarrassingly parallel: branch [v]
    explores exactly the maximal connected s-cliques whose smallest node
    is [v] (its candidate set is [N^s(v) ∩ {u > v}] and its exclusion set
    [N^s(v) ∩ {u < v}]), so distinct root branches never produce the same
    result. This module deals the root branches round-robin across
    [workers] domains, each with a private graph-shared-but-immutable view
    and its own [N^s] cache (the cache is the only mutable state, so no
    synchronization is needed), and merges the outputs.

    The same decomposition would ship each branch to a remote machine in a
    genuinely distributed setting; per-worker load statistics are exposed
    because balance — not correctness — is the open problem the paper
    alludes to (hub-rooted branches of a scale-free graph dwarf the
    rest). *)

type stats = {
  results_per_worker : int array;
  time_per_worker : float array;  (** wall-clock seconds in each domain *)
}

val enumerate :
  ?workers:int ->
  ?pivot:bool ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list
(** All maximal connected s-cliques, each exactly once, {b canonicalized}:
    sorted in increasing {!Sgraph.Node_set.compare} order, so the returned
    list is identical for every [workers] value (the root decomposition
    partitions the output; only arrival order varies, and sorting removes
    it). [workers] defaults to [Domain.recommended_domain_count ()];
    [pivot] defaults to [true].
    @raise Invalid_argument when [workers < 1] or [s < 1]. *)

val enumerate_with_stats :
  ?workers:int ->
  ?pivot:bool ->
  ?feasibility:bool ->
  ?min_size:int ->
  ?cache_capacity:int ->
  ?obs:Scliques_obs.Obs.t ->
  Sgraph.Graph.t ->
  s:int ->
  Sgraph.Node_set.t list * stats
(** Same, plus per-worker load statistics. With [obs], every worker runs
    its own observer (domains never share one): per-worker delay
    recorders and recursion counters are merged into [obs] after the
    join, and the imbalance counters [par.workers], [par.results],
    [par.worker<i>.results], [par.max_worker_results] and
    [par.min_worker_results] are published. *)
