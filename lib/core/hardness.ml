module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type literal = { variable : int; negated : bool }

type clause = literal * literal * literal

type cnf = clause list

let literals (a, b, c) = [ a; b; c ]

let variables cnf =
  List.sort_uniq Int.compare
    (List.concat_map (fun cl -> List.map (fun l -> l.variable) (literals cl)) cnf)

let clause_satisfied truth cl =
  List.exists (fun l -> truth l.variable <> l.negated) (literals cl)

let satisfiable cnf =
  let vars = variables cnf in
  let k = List.length vars in
  if k > 20 then invalid_arg "Hardness.satisfiable: too many variables";
  let vars = Array.of_list vars in
  let rec try_mask mask =
    if mask >= 1 lsl k then false
    else begin
      let truth v =
        let rec index i = if vars.(i) = v then i else index (i + 1) in
        mask land (1 lsl index 0) <> 0
      in
      List.for_all (clause_satisfied truth) cnf || try_mask (mask + 1)
    end
  in
  List.is_empty cnf || try_mask 0

type reduction = {
  graph : Graph.t;
  seed : Node_set.t;
  s : int;
  literal_node : int -> int -> int;
  original_nodes : Node_set.t;
}

let conflicting cnf i j i' j' =
  let l = List.nth (literals (List.nth cnf i)) j in
  let l' = List.nth (literals (List.nth cnf i')) j' in
  l.variable = l'.variable && l.negated <> l'.negated

let reduce cnf ~s =
  if s <= 1 then invalid_arg "Hardness.reduce: requires s > 1";
  if List.is_empty cnf then invalid_arg "Hardness.reduce: empty formula";
  List.iter
    (fun cl ->
      let ls = literals cl in
      List.iter
        (fun l ->
          List.iter
            (fun l' ->
              if l.variable = l'.variable && l.negated <> l'.negated then
                invalid_arg "Hardness.reduce: clause contains a variable and its negation")
            ls)
        ls)
    cnf;
  let m = List.length cnf in
  (* node layout: chain node c_i^k (k ∈ 1..s) = i*s + (k-1);
     literal node x_i^j = m*s + 3i + j; f = m*s + 3m; fresh path nodes
     follow *)
  let chain i k = (i * s) + (k - 1) in
  let literal_node i j = (m * s) + (3 * i) + j in
  let f_node = (m * s) + (3 * m) in
  let v0_count = f_node + 1 in
  let builder = Sgraph.Builder.create () in
  (* G_0 edges *)
  for i = 0 to m - 1 do
    for k = 1 to s - 1 do
      Sgraph.Builder.add_edge builder (chain i k) (chain i (k + 1))
    done;
    for j = 0 to 2 do
      Sgraph.Builder.add_edge builder (chain i s) (literal_node i j);
      if i < m - 1 then Sgraph.Builder.add_edge builder (literal_node i j) (chain (i + 1) 1)
      else Sgraph.Builder.add_edge builder (literal_node i j) f_node
    done
  done;
  let g0 = Sgraph.Builder.build builder in
  (* pairwise G_0 distances between original nodes *)
  let dist0 = Array.init v0_count (fun v -> Sgraph.Bfs.distances g0 v) in
  let is_literal v = v >= m * s && v < f_node in
  let lit_indices v =
    let off = v - (m * s) in
    (off / 3, off mod 3)
  in
  let pair_conflicting u v =
    is_literal u && is_literal v
    &&
    let i, j = lit_indices u and i', j' = lit_indices v in
    conflicting cnf i j i' j'
  in
  (* fill: a fresh path of length s between every non-conflicting pair of
     original nodes at G_0-distance > s *)
  let next = ref v0_count in
  for u = 0 to v0_count - 1 do
    for v = u + 1 to v0_count - 1 do
      let d = dist0.(u).(v) in
      if (d < 0 || d > s) && not (pair_conflicting u v) then begin
        let prev = ref u in
        for _ = 1 to s - 1 do
          Sgraph.Builder.add_edge builder !prev !next;
          prev := !next;
          incr next
        done;
        Sgraph.Builder.add_edge builder !prev v
      end
    done
  done;
  let graph = Sgraph.Builder.build builder in
  let seed =
    Node_set.of_list
      (f_node :: List.concat (List.init m (fun i -> List.init s (fun k -> chain i (k + 1)))))
  in
  { graph; seed; s; literal_node; original_nodes = Node_set.range 0 v0_count }

let seed_is_s_clique r = Verify.is_s_clique r.graph ~s:r.s r.seed

exception Found

let feasible r =
  try
    Enumerate.iter Enumerate.Cs2_pf r.graph ~s:r.s (fun c ->
        if Node_set.subset r.seed c then raise Found);
    false
  with Found -> true

let witness_of_assignment r cnf truth =
  let chosen = ref r.seed in
  List.iteri
    (fun i cl ->
      List.iteri
        (fun j l ->
          if truth l.variable <> l.negated then
            chosen := Node_set.add (r.literal_node i j) !chosen)
        (literals cl))
    cnf;
  !chosen
