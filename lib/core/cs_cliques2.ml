module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

(* R ∪ {v} must sit inside one connected component of
   G[R ∪ {v} ∪ (P ∩ N^s(v))] for v to ever reach a connected s-clique
   together with R (§5.3). BFS from v restricted to that universe. *)
let feasible nh r v p_cap_ball =
  let g = Neighborhood.graph nh in
  let universe = Node_set.add v (Node_set.union r p_cap_ball) in
  let reached = Sgraph.Bfs.reachable_within g ~universe v in
  Node_set.subset r reached

type pivot_rule = Min_uncovered | First_candidate

let select_pivot nh rule p x frontier =
  (* candidates are (P ∪ X) ∩ N^{∃,1}(R): a pivot must neighbor R *)
  let candidates = Node_set.inter (Node_set.union p x) frontier in
  if Node_set.is_empty candidates then None
  else
    match rule with
    | First_candidate -> Some (Node_set.min_elt candidates)
    | Min_uncovered ->
        (* smallest |P − N^s(u)|; ties go to the smaller node id (first
           scanned) for determinism *)
        let best = ref (-1) and best_cost = ref max_int in
        Node_set.iter
          (fun u ->
            let cost = Node_set.diff_cardinal p (Neighborhood.ball nh u) in
            if cost < !best_cost then begin
              best := u;
              best_cost := cost
            end)
          candidates;
        Some !best

type root_order = Ascending | Power_degeneracy

let c_incr = function None -> () | Some c -> Scliques_obs.Counters.incr c

let c_add c n = match c with None -> () | Some c -> Scliques_obs.Counters.add c n

let c_set_max c n = match c with None -> () | Some c -> Scliques_obs.Counters.set_max c n

(* The recursion shared by [iter] (whole graph) and [iter_rooted] (a
   single root branch, used by the Parallel decomposition). *)
let make_recurse ~pivot ~pivot_rule ~feasibility ~min_size ~should_continue ?obs nh
    yield =
  let g = Neighborhood.graph nh in
  let ctr name = Option.map (fun o -> Scliques_obs.Obs.counter o name) obs in
  let c_calls = ctr "cs2.calls" in
  let c_depth = ctr "cs2.max_depth" in
  let c_emits = ctr "cs2.emits" in
  let c_pivot_prunes = ctr "cs2.pivot_prunes" in
  let c_feas_prunes = ctr "cs2.feasibility_prunes" in
  let rec recurse depth r p x frontier =
    c_incr c_calls;
    c_set_max c_depth depth;
    if should_continue () && Node_set.cardinal r + Node_set.cardinal p >= min_size
    then begin
      let r_empty = Node_set.is_empty r in
      let p_adj = if r_empty then p else Node_set.inter p frontier in
      let x_adj = if r_empty then x else Node_set.inter x frontier in
      if
        Node_set.is_empty p_adj
        && Node_set.is_empty x_adj
        && (not r_empty)
        && Node_set.cardinal r >= min_size
        && Sgraph.Bfs.is_connected_subset g r
      then begin
        c_incr c_emits;
        (match obs with None -> () | Some o -> Scliques_obs.Obs.tick o);
        yield r
      end;
      let branchable =
        if not pivot then p
        else if r_empty then p (* a pivot must neighbor R: none exists yet *)
        else
          match select_pivot nh pivot_rule p x frontier with
          | None ->
              (* no node of P ∪ X touches R: R cannot grow connectedly,
                 and disconnected growth can never reconnect either *)
              c_add c_pivot_prunes (Node_set.cardinal p);
              Node_set.empty
          | Some u ->
              let kept = Node_set.diff p (Neighborhood.ball nh u) in
              c_add c_pivot_prunes (Node_set.cardinal p - Node_set.cardinal kept);
              kept
      in
      let p = ref p and x = ref x in
      Node_set.iter
        (fun v ->
          let ball_v = Neighborhood.ball nh v in
          let p_cap_ball = Node_set.inter !p ball_v in
          if feasibility && (not r_empty) && not (feasible nh r v p_cap_ball) then begin
            c_incr c_feas_prunes;
            p := Node_set.remove v !p
          end
          else begin
            recurse (depth + 1) (Node_set.add v r) p_cap_ball
              (Node_set.inter !x ball_v)
              (Node_set.union frontier (Graph.neighbor_set g v));
            p := Node_set.remove v !p;
            x := Node_set.add v !x
          end)
        branchable
    end
  in
  (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
  recurse 0

let iter ?(pivot = false) ?(pivot_rule = Min_uncovered) ?(feasibility = false)
    ?(root_order = Ascending) ?(min_size = 0) ?(should_continue = fun () -> true) ?obs
    nh yield =
  let g = Neighborhood.graph nh in
  let recurse =
    make_recurse ~pivot ~pivot_rule ~feasibility ~min_size ~should_continue ?obs nh
      yield
  in
  (match root_order with
  | Ascending -> recurse Node_set.empty (Graph.nodes g) Node_set.empty Node_set.empty
  | Power_degeneracy ->
      (* branch the root in a degeneracy order of G^s: each root call's P
         is v's later s-neighbors, X its earlier ones — exactly the state
         the ascending root loop would reach, but with |P| bounded by the
         s-degeneracy instead of the max ball size *)
      let gs = Sgraph.Power.power g ~s:(Neighborhood.s nh) in
      let order = Sgraph.Degeneracy.ordering gs in
      let position = Array.make (Graph.n g) 0 in
      Array.iteri (fun i v -> position.(v) <- i) order;
      Array.iter
        (fun v ->
          if should_continue () then begin
            let ball_v = Neighborhood.ball nh v in
            let later = Node_set.filter (fun u -> position.(u) > position.(v)) ball_v in
            let earlier = Node_set.filter (fun u -> position.(u) < position.(v)) ball_v in
            recurse (Node_set.singleton v) later earlier (Graph.neighbor_set g v)
          end)
        order);
  match obs with None -> () | Some _ -> Neighborhood.sync_obs nh

let iter_rooted ?(pivot = false) ?(pivot_rule = Min_uncovered) ?(feasibility = false)
    ?(min_size = 0) ?(should_continue = fun () -> true) ?obs nh ~root ~p ~x yield =
  let g = Neighborhood.graph nh in
  let recurse =
    make_recurse ~pivot ~pivot_rule ~feasibility ~min_size ~should_continue ?obs nh
      yield
  in
  recurse (Node_set.singleton root) p x (Graph.neighbor_set g root);
  match obs with None -> () | Some _ -> Neighborhood.sync_obs nh
