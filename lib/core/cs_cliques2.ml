module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

(* R ∪ {v} must sit inside one connected component of
   G[R ∪ {v} ∪ (P ∩ N^s(v))] for v to ever reach a connected s-clique
   together with R (§5.3). BFS from v restricted to that universe. *)
let feasible nh r v p_cap_ball =
  let g = Neighborhood.graph nh in
  let universe = Node_set.add v (Node_set.union r p_cap_ball) in
  let reached = Sgraph.Bfs.reachable_within g ~universe v in
  Node_set.subset r reached

type pivot_rule = Min_uncovered | First_candidate

let select_pivot nh rule p candidates =
  if Node_set.is_empty candidates then None
  else
    match rule with
    | First_candidate -> Some (Node_set.min_elt candidates)
    | Min_uncovered ->
        (* smallest |P − N^s(u)|; ties go to the smaller node id (first
           scanned) for determinism. P is loaded into the mask ONCE and
           each candidate's ball scanned against it — |ball(u)| reads per
           candidate, no per-candidate mask reload — using
           |P − ball(u)| = |P| − |ball(u) ∩ P|. *)
        let p_mask = Neighborhood.load_mask nh p in
        let p_size = Node_set.cardinal p in
        let best = ref (-1) and best_cost = ref max_int in
        Node_set.iter
          (fun u ->
            let covered =
              Node_set.inter_bitset_cardinal (Neighborhood.ball nh u) p_mask
            in
            let cost = p_size - covered in
            if cost < !best_cost then begin
              best := u;
              best_cost := cost
            end)
          candidates;
        Some !best

type root_order = Ascending | Power_degeneracy

let c_incr = function None -> () | Some c -> Scliques_obs.Counters.incr c

let c_add c n = match c with None -> () | Some c -> Scliques_obs.Counters.add c n

let c_set_max c n = match c with None -> () | Some c -> Scliques_obs.Counters.set_max c n

(* One node of the recursion tree, as movable state. *)
type task = {
  depth : int;
  r : Node_set.t;
  p : Node_set.t;
  x : Node_set.t;
  frontier : Node_set.t; (* N^{∃,1}(R), maintained as a running union *)
}

let task_depth t = t.depth

let task_width t = Node_set.cardinal t.p

type runner = {
  nh : Neighborhood.t;
  pivot : bool;
  pivot_rule : pivot_rule;
  feasibility : bool;
  min_size : int;
  should_continue : unit -> bool;
  obs : Scliques_obs.Obs.t option;
  c_calls : Scliques_obs.Counters.counter option;
  c_depth : Scliques_obs.Counters.counter option;
  c_emits : Scliques_obs.Counters.counter option;
  c_pivot_prunes : Scliques_obs.Counters.counter option;
  c_feas_prunes : Scliques_obs.Counters.counter option;
  yield : Node_set.t -> unit;
}

let make_runner ?(pivot = false) ?(pivot_rule = Min_uncovered) ?(feasibility = false)
    ?(min_size = 0) ?(should_continue = fun () -> true) ?obs nh yield =
  let ctr name = Option.map (fun o -> Scliques_obs.Obs.counter o name) obs in
  (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
  {
    nh;
    pivot;
    pivot_rule;
    feasibility;
    min_size;
    should_continue;
    obs;
    c_calls = ctr "cs2.calls";
    c_depth = ctr "cs2.max_depth";
    c_emits = ctr "cs2.emits";
    c_pivot_prunes = ctr "cs2.pivot_prunes";
    c_feas_prunes = ctr "cs2.feasibility_prunes";
    yield;
  }

(* The single visit step shared by the sequential recursion and the
   work-stealing task expansion, so the task tree IS the recursion tree:
   emit R when it is a maximal connected s-clique, then hand each child
   state to [child] in branch order. Every child state is fully computed
   before [child] sees it, so the set of children — and hence the emitted
   multiset — does not depend on when or where the children run. *)
let visit rn ~child { depth; r; p; x; frontier } =
  let nh = rn.nh in
  let g = Neighborhood.graph nh in
  c_incr rn.c_calls;
  c_set_max rn.c_depth depth;
  if rn.should_continue () && Node_set.cardinal r + Node_set.cardinal p >= rn.min_size
  then begin
    let r_empty = Node_set.is_empty r in
    (* paper's convention: N^{∃,1}(∅) is the whole node set *)
    let p_adj, x_adj =
      if r_empty then (p, x)
      else begin
        (* one mask load of the frontier filters both P and X *)
        let m = Neighborhood.load_mask nh frontier in
        (Node_set.inter_bitset p m, Node_set.inter_bitset x m)
      end
    in
    if
      Node_set.is_empty p_adj
      && Node_set.is_empty x_adj
      && (not r_empty)
      && Node_set.cardinal r >= rn.min_size
      && Sgraph.Bfs.is_connected_subset g r
    then begin
      c_incr rn.c_emits;
      (match rn.obs with None -> () | Some o -> Scliques_obs.Obs.tick o);
      rn.yield r
    end;
    let branchable =
      if not rn.pivot then p
      else if r_empty then p (* a pivot must neighbor R: none exists yet *)
      else
        (* the candidate pivots (P ∪ X) ∩ N^{∃,1}(R) are exactly
           p_adj ∪ x_adj — both already frontier-filtered above *)
        match select_pivot nh rn.pivot_rule p (Node_set.union p_adj x_adj) with
        | None ->
            (* no node of P ∪ X touches R: R cannot grow connectedly,
               and disconnected growth can never reconnect either *)
            c_add rn.c_pivot_prunes (Node_set.cardinal p);
            Node_set.empty
        | Some u ->
            let kept = Node_set.diff_bitset p (Neighborhood.ball_mask nh u) in
            c_add rn.c_pivot_prunes (Node_set.cardinal p - Node_set.cardinal kept);
            kept
    in
    let p = ref p and x = ref x in
    Node_set.iter
      (fun v ->
        (* the ball mask filters P and X together; both child sets must be
           read off before anything below reloads the scratch *)
        let m = Neighborhood.ball_mask nh v in
        let p_cap_ball = Node_set.inter_bitset !p m in
        let x_cap_ball = Node_set.inter_bitset !x m in
        if rn.feasibility && (not r_empty) && not (feasible nh r v p_cap_ball)
        then begin
          c_incr rn.c_feas_prunes;
          p := Node_set.remove v !p
        end
        else begin
          child
            {
              depth = depth + 1;
              r = Node_set.add v r;
              p = p_cap_ball;
              x = x_cap_ball;
              frontier = Node_set.union frontier (Graph.neighbor_set g v);
            };
          p := Node_set.remove v !p;
          x := Node_set.add v !x
        end)
      branchable
  end

let rec run_task rn t = visit rn ~child:(fun c -> run_task rn c) t

let expand_task rn t =
  let acc = ref [] in
  visit rn ~child:(fun c -> acc := c :: !acc) t;
  List.rev !acc

let root_task nh root =
  let g = Neighborhood.graph nh in
  let ball_v = Neighborhood.ball nh root in
  {
    depth = 0;
    r = Node_set.singleton root;
    p = Node_set.filter (fun u -> u > root) ball_v;
    x = Node_set.filter (fun u -> u < root) ball_v;
    frontier = Graph.neighbor_set g root;
  }

let iter ?pivot ?pivot_rule ?feasibility ?(root_order = Ascending) ?min_size
    ?should_continue ?obs nh yield =
  let rn = make_runner ?pivot ?pivot_rule ?feasibility ?min_size ?should_continue ?obs nh
      yield
  in
  let g = Neighborhood.graph nh in
  (match root_order with
  | Ascending ->
      run_task rn
        {
          depth = 0;
          r = Node_set.empty;
          p = Graph.nodes g;
          x = Node_set.empty;
          frontier = Node_set.empty;
        }
  | Power_degeneracy ->
      (* branch the root in a degeneracy order of G^s: each root call's P
         is v's later s-neighbors, X its earlier ones — exactly the state
         the ascending root loop would reach, but with |P| bounded by the
         s-degeneracy instead of the max ball size *)
      let gs = Sgraph.Power.power g ~s:(Neighborhood.s nh) in
      let order = Sgraph.Degeneracy.ordering gs in
      let position = Array.make (Graph.n g) 0 in
      Array.iteri (fun i v -> position.(v) <- i) order;
      Array.iter
        (fun v ->
          if rn.should_continue () then begin
            let ball_v = Neighborhood.ball nh v in
            let later = Node_set.filter (fun u -> position.(u) > position.(v)) ball_v in
            let earlier = Node_set.filter (fun u -> position.(u) < position.(v)) ball_v in
            run_task rn
              {
                depth = 0;
                r = Node_set.singleton v;
                p = later;
                x = earlier;
                frontier = Graph.neighbor_set g v;
              }
          end)
        order);
  match obs with None -> () | Some _ -> Neighborhood.sync_obs nh

let iter_rooted ?pivot ?pivot_rule ?feasibility ?min_size ?should_continue ?obs nh
    ~root ~p ~x yield =
  let rn = make_runner ?pivot ?pivot_rule ?feasibility ?min_size ?should_continue ?obs nh
      yield
  in
  let g = Neighborhood.graph nh in
  run_task rn
    {
      depth = 0;
      r = Node_set.singleton root;
      p;
      x;
      frontier = Graph.neighbor_set g root;
    };
  match obs with None -> () | Some _ -> Neighborhood.sync_obs nh
