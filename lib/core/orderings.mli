(** The ω-orderings of the paper's correctness proof (Lemma 5.3).

    Fix the total order ≺ on nodes (here: increasing id). For a connected
    s-clique [C] the proof uses two total orderings of [C]'s members:

    - [ω2(C)] — plainly ≺-sorted; the order in which CsCliques2's
      execution tree reaches [C];
    - [ω1(C)] — starts at [C]'s ≺-minimum and repeatedly appends the
      ≺-first unused member that keeps the prefix connected; the order in
      which CsCliques1 reaches [C] (Property 6 of Lemma 5.3: [ωi(C)] is a
      path in the execution tree [Ti]).

    Exposed primarily for the test suite, which checks the paper's worked
    Example 5.2 and the prefix-connectivity invariant on random inputs. *)

val omega2 : Sgraph.Node_set.t -> int list
(** Members in increasing id order. *)

val omega1 : Sgraph.Graph.t -> Sgraph.Node_set.t -> int list
(** Members ordered by connected-prefix insertion. The set must induce a
    connected subgraph.
    @raise Invalid_argument when [G\[C\]] is not connected. *)

val is_connected_prefix_order : Sgraph.Graph.t -> int list -> bool
(** Does every nonempty prefix of the list induce a connected subgraph?
    (Defines validity of an ω1-style ordering.) *)
