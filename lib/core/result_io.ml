module Node_set = Sgraph.Node_set

let to_string results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %d node sets\n" (List.length results));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int (Node_set.to_list c)));
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let save results path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string results);
      close_out oc)

let parse_line lineno line =
  let fail msg = failwith (Printf.sprintf "results line %d: %s" lineno msg) in
  let tokens =
    List.filter
      (fun t -> String.length t > 0)
      (String.split_on_char ' '
         (String.map (function '\t' | '\r' -> ' ' | c -> c) line))
  in
  let members =
    List.map
      (fun tok ->
        match int_of_string_opt tok with
        | Some v when v >= 0 -> v
        | Some _ -> fail (Printf.sprintf "negative node id %S" tok)
        | None -> fail (Printf.sprintf "expected a node id, got %S" tok))
      tokens
  in
  let set = Node_set.of_list members in
  if Node_set.cardinal set <> List.length members then fail "duplicate node in set";
  set

let parse_string s =
  let lines = String.split_on_char '\n' s in
  List.concat
    (List.mapi
       (fun i line ->
         let trimmed = String.trim line in
         if String.length trimmed = 0 || trimmed.[0] = '#' then []
         else [ parse_line (i + 1) line ])
       lines)

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_string contents
