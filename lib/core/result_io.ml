module Node_set = Sgraph.Node_set

let to_string results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %d node sets\n" (List.length results));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int (Node_set.to_list c)));
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let save results path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string results);
      close_out oc)

let parse_line lineno line =
  let fail msg = failwith (Printf.sprintf "results line %d: %s" lineno msg) in
  let tokens =
    List.filter
      (fun t -> String.length t > 0)
      (String.split_on_char ' '
         (String.map (function '\t' | '\r' -> ' ' | c -> c) line))
  in
  let members =
    List.map
      (fun tok ->
        match int_of_string_opt tok with
        | Some v when v >= 0 -> v
        | Some _ -> fail (Printf.sprintf "negative node id %S" tok)
        | None -> fail (Printf.sprintf "expected a node id, got %S" tok))
      tokens
  in
  let set = Node_set.of_list members in
  if Node_set.cardinal set <> List.length members then fail "duplicate node in set";
  set

let parse_string s =
  let lines = String.split_on_char '\n' s in
  List.concat
    (List.mapi
       (fun i line ->
         let trimmed = String.trim line in
         if String.length trimmed = 0 || trimmed.[0] = '#' then []
         else [ parse_line (i + 1) line ])
       lines)

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_string contents

module Stream = struct
  (* Crash-safe append-only record stream.

     Layout: a 7-byte magic ["SCLQS1\n"], then records of
     [u32le payload length | u32le CRC-32 of payload | payload bytes].
     A process killed mid-write leaves a torn tail — a partial header,
     an oversized length, or a CRC mismatch — which readers detect and
     drop, reporting [`Torn] together with the byte length of the clean
     prefix so a resuming writer can truncate back to it and append. *)

  let magic = "SCLQS1\n"

  (* Corrupt length words must not drive a giant allocation: no record
     written by this module approaches this. *)
  let max_record_len = 1 lsl 28

  type writer = { oc : out_channel; fault : Scoll.Fault.t; mutable closed : bool }

  let open_writer ?(fault = Scoll.Fault.none) path =
    let oc = open_out_bin path in
    output_string oc magic;
    { oc; fault; closed = false }

  let open_append ?(fault = Scoll.Fault.none) path ~clean_len =
    if clean_len < String.length magic || not (Sys.file_exists path) then
      open_writer ~fault path
    else begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      match
        Unix.ftruncate fd clean_len;
        ignore (Unix.lseek fd clean_len Unix.SEEK_SET : int)
      with
      | () -> { oc = Unix.out_channel_of_descr fd; fault; closed = false }
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    end

  let encode_record payload =
    let len = String.length payload in
    if len > max_record_len then invalid_arg "Stream.encode_record: oversized";
    let b = Bytes.create (8 + len) in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.set_int32_le b 4 (Int32.of_int (Scoll.Crc32.string payload));
    Bytes.blit_string payload 0 b 8 len;
    Bytes.to_string b

  let write_record w payload =
    Scoll.Fault.check w.fault "stream.write";
    output_string w.oc (encode_record payload)

  let flush w =
    Scoll.Fault.check w.fault "stream.flush";
    Stdlib.flush w.oc

  let close w =
    if not w.closed then begin
      w.closed <- true;
      close_out w.oc
    end

  let encode_set set = String.concat " " (List.map string_of_int (Node_set.to_list set))

  let decode_set payload =
    (* the CRC already vouched for the bytes; a malformed payload means a
       foreign or buggy writer, which is a hard error, not a torn tail *)
    let members =
      List.filter_map
        (fun tok -> if String.length tok = 0 then None else Some (int_of_string tok))
        (String.split_on_char ' ' payload)
    in
    Node_set.of_list members

  let write_set w set = write_record w (encode_set set)

  let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

  let read_records path =
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let total = String.length contents in
    let mlen = String.length magic in
    if total < mlen then begin
      (* a crash can even tear the magic itself; any prefix of it is a
         torn empty stream, anything else is not ours *)
      if String.equal contents (String.sub magic 0 total) then ([], 0, `Torn)
      else failwith (path ^ ": not a scliques stream (bad magic)")
    end
    else if not (String.equal (String.sub contents 0 mlen) magic) then
      failwith (path ^ ": not a scliques stream (bad magic)")
    else begin
      let records = ref [] in
      let off = ref mlen in
      let clean = ref mlen in
      let torn = ref false in
      while (not !torn) && !off < total do
        if total - !off < 8 then torn := true
        else begin
          let len = u32_at contents !off in
          let crc = u32_at contents (!off + 4) in
          if len > max_record_len || total - (!off + 8) < len then torn := true
          else begin
            let payload = String.sub contents (!off + 8) len in
            if Scoll.Crc32.string payload <> crc then torn := true
            else begin
              records := payload :: !records;
              off := !off + 8 + len;
              clean := !off
            end
          end
        end
      done;
      (List.rev !records, !clean, if !torn then `Torn else `Clean)
    end

  let read_results path =
    let records, _, tail = read_records path in
    (List.map decode_set records, tail)
end

module Index = struct
  (* Persistent root->results index: the [SCLQIDX1] sidecar beside a
     root-grouped [SCLQS1] stream.

     Layout (all little-endian), mirroring the SGRDIFF1 record
     discipline — every record is [payload | u32le CRC-32 of payload]:

       magic   "SCLQIDX1"                                      8 bytes
       header  u64 stream_len | u32 s | u32 n                 24 + 4
       entry   u32 root | u32 fingerprint | u64 offset
               | u64 extent | u32 count                       28 + 4

     Exactly [n] entries follow the header, one per root in ascending
     order, so a refresh finds every root's branch fingerprint without
     touching the stream — roots with no results carry a zero extent.
     [offset]/[extent] delimit the root's contiguous run of records in
     the stream ([offset] from the start of the file), which is what
     turns retract-and-splice into seek-and-patch.

     Unlike the stream it describes, the index is a transaction, not an
     append log: any truncation, byte flip or mismatch against the
     stream's byte length is refused outright with a typed
     [Io_error.Parse_error]. A refused index costs only a rebuild from
     the stream (it is derived data), whereas trusting a half-written
     one would patch result bytes into the wrong extents. *)

  let magic = "SCLQIDX1"

  let failf path fmt = Sgraph.Io_error.failf ~file:path ~line:0 fmt

  type entry = { fingerprint : int; offset : int; extent : int; count : int }

  type t = {
    stream_len : int; (* clean byte length of the stream this indexes *)
    s : int;
    entries : entry array; (* entries.(root), one per root *)
  }

  let n t = Array.length t.entries

  let path_for stream_path = stream_path ^ ".idx"

  let record payload =
    let crc = Bytes.create 4 in
    Bytes.set_int32_le crc 0 (Int32.of_int (Scoll.Crc32.bytes payload));
    Bytes.to_string payload ^ Bytes.to_string crc

  let header_payload t =
    let b = Bytes.create 24 in
    Bytes.set_int64_le b 0 (Int64.of_int t.stream_len);
    Bytes.set_int32_le b 8 (Int32.of_int t.s);
    Bytes.set_int32_le b 12 (Int32.of_int (Array.length t.entries));
    Bytes.set_int64_le b 16 0L (* reserved *);
    b

  let entry_payload root e =
    let b = Bytes.create 28 in
    Bytes.set_int32_le b 0 (Int32.of_int root);
    Bytes.set_int32_le b 4 (Int32.of_int e.fingerprint);
    Bytes.set_int64_le b 8 (Int64.of_int e.offset);
    Bytes.set_int64_le b 16 (Int64.of_int e.extent);
    Bytes.set_int32_le b 24 (Int32.of_int e.count);
    b

  let to_string t =
    let buf = Buffer.create (8 + 28 + (32 * Array.length t.entries)) in
    Buffer.add_string buf magic;
    Buffer.add_string buf (record (header_payload t));
    Array.iteri
      (fun root e -> Buffer.add_string buf (record (entry_payload root e)))
      t.entries;
    Buffer.contents buf

  let save t path =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (to_string t);
        close_out oc);
    Sys.rename tmp path

  (* {2 Strict reading} — cursor + per-record CRC, as in Sgraph.Diff *)

  type cursor = { src : string; mutable pos : int }

  let read_exact path c len what =
    if c.pos + len > String.length c.src then
      failf path "index truncated reading %s" what;
    let b = Bytes.create len in
    Bytes.blit_string c.src c.pos b 0 len;
    c.pos <- c.pos + len;
    b

  let check_crc path c payload what =
    let crc = read_exact path c 4 (what ^ " CRC") in
    let stored = Int32.to_int (Bytes.get_int32_le crc 0) land 0xFFFFFFFF in
    let computed = Scoll.Crc32.bytes payload in
    if stored <> computed then
      failf path "index %s CRC mismatch (stored %08x, computed %08x)" what stored
        computed

  let decode_u64 path b off what =
    let hi = Char.code (Bytes.get b (off + 7)) in
    if hi >= 0x40 then
      failf path "index %s %Ld out of range" what (Bytes.get_int64_le b off);
    Int64.to_int (Bytes.get_int64_le b off)

  let decode_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

  let structured ~file f =
    try f () with
    | Sgraph.Io_error.Parse_error _ as e -> raise e
    | Sys_error _ as e -> raise e
    | (Out_of_memory | Stack_overflow) as e -> raise e
    | e ->
        Sgraph.Io_error.fail ~file ~line:0
          ("unexpected parser failure: " ^ Printexc.to_string e)

  let max_node_count = 1 lsl 30

  let of_string ~file src =
    structured ~file (fun () ->
        let c = { src; pos = 0 } in
        let m8 = read_exact file c 8 "magic" in
        if not (String.equal (Bytes.to_string m8) magic) then
          failf file "not an index: bad magic %S (expected %S)"
            (Bytes.to_string m8) magic;
        let hb = read_exact file c 24 "header" in
        check_crc file c hb "header";
        let stream_len = decode_u64 file hb 0 "stream length" in
        let s = decode_u32 hb 8 in
        let count = decode_u32 hb 12 in
        if s < 1 then failf file "index has s = %d (must be >= 1)" s;
        if count > max_node_count then
          failf file "index root count %d exceeds the %d limit" count
            max_node_count;
        if stream_len < String.length Stream.magic then
          failf file "index claims a stream of %d bytes (shorter than the \
                      stream magic)" stream_len;
        let covered = ref 0 in
        let entries =
          Array.init count (fun root ->
              let eb = read_exact file c 28 "entry record" in
              check_crc file c eb "entry record";
              let r = decode_u32 eb 0 in
              if r <> root then
                failf file "index entry %d names root %d (entries must be \
                            ascending and complete)" root r;
              let fingerprint = decode_u32 eb 4 in
              let offset = decode_u64 file eb 8 "entry offset" in
              let extent = decode_u64 file eb 16 "entry extent" in
              let count = decode_u32 eb 24 in
              if (count = 0) <> (extent = 0) then
                failf file "index root %d has %d records in %d bytes" root
                  count extent;
              if extent > 0 then begin
                if offset < String.length Stream.magic then
                  failf file "index root %d extent starts inside the stream \
                              magic" root;
                if offset + extent > stream_len then
                  failf file "index root %d extent ends past the stream \
                              (%d+%d > %d)" root offset extent stream_len;
                covered := !covered + extent
              end;
              { fingerprint; offset; extent; count })
        in
        if c.pos <> String.length src then
          failf file "index has %d trailing bytes" (String.length src - c.pos);
        if !covered + String.length Stream.magic <> stream_len then
          failf file "index extents cover %d of %d stream payload bytes"
            !covered
            (stream_len - String.length Stream.magic);
        { stream_len; s; entries })

  let load path =
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string ~file:path contents

  (* {2 Building from a stream} *)

  let build ~s ~n ~fingerprint path =
    if s < 1 then invalid_arg "Index.build: s must be >= 1";
    if n < 0 then invalid_arg "Index.build: negative node count";
    let records, clean_len, tail = Stream.read_records path in
    (match tail with
    | `Clean -> ()
    | `Torn -> failf path "torn stream cannot be indexed");
    let entries =
      Array.init n (fun root ->
          { fingerprint = fingerprint root; offset = 0; extent = 0; count = 0 })
    in
    let seen = Array.make (max n 1) false in
    let cur = ref (-1) in
    let cur_off = ref 0 in
    let cur_extent = ref 0 in
    let cur_count = ref 0 in
    let flush_group () =
      if !cur >= 0 then begin
        entries.(!cur) <-
          {
            (entries.(!cur)) with
            offset = !cur_off;
            extent = !cur_extent;
            count = !cur_count;
          };
        seen.(!cur) <- true
      end
    in
    let off = ref (String.length Stream.magic) in
    List.iter
      (fun payload ->
        let set = Stream.decode_set payload in
        if Node_set.is_empty set then
          failf path "stream has an empty result record";
        let root = Node_set.min_elt set in
        if root >= n then
          failf path "stream result rooted at %d, but the graph has %d nodes"
            root n;
        if root <> !cur then begin
          flush_group ();
          if seen.(root) then
            failf path
              "stream is not grouped by root (root %d appears twice)" root;
          cur := root;
          cur_off := !off;
          cur_extent := 0;
          cur_count := 0
        end;
        let len = 8 + String.length payload in
        cur_extent := !cur_extent + len;
        incr cur_count;
        off := !off + len)
      records;
    flush_group ();
    { stream_len = clean_len; s; entries }

  (* {2 Seek-and-patch splice} *)

  type splice_stats = {
    roots_patched : int;
    fresh_bytes : int; (* bytes newly encoded for patched roots *)
    copied_bytes : int; (* bytes copied verbatim, never decoded *)
  }

  let copy_extent ic oc ~offset ~extent =
    seek_in ic offset;
    let buf = Bytes.create (min extent 65536) in
    let remaining = ref extent in
    while !remaining > 0 do
      let k = min !remaining (Bytes.length buf) in
      really_input ic buf 0 k;
      output oc buf 0 k;
      remaining := !remaining - k
    done

  let splice ~old_stream ~index ~patched ~out =
    let n = Array.length index.entries in
    let actual =
      let ic = open_in_bin old_stream in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
    in
    if actual <> index.stream_len then
      failf old_stream
        "index is stale: it describes a stream of %d bytes, the file has %d"
        index.stream_len actual;
    let patch = Array.make (max n 1) None in
    List.iter
      (fun ((root, _, _) as p) ->
        if root < 0 || root >= n then
          invalid_arg "Index.splice: patched root out of range";
        if Option.is_some patch.(root) then
          invalid_arg "Index.splice: duplicate patched root";
        patch.(root) <- Some p)
      patched;
    let tmp = out ^ ".tmp" in
    let ic = open_in_bin old_stream in
    let oc = open_out_bin tmp in
    let entries = Array.make (max n 1) { fingerprint = 0; offset = 0; extent = 0; count = 0 } in
    let fresh = ref 0 and copied = ref 0 and roots_patched = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        close_out_noerr oc)
      (fun () ->
        output_string oc Stream.magic;
        let pos = ref (String.length Stream.magic) in
        for root = 0 to n - 1 do
          let old = index.entries.(root) in
          match patch.(root) with
          | Some (_, fingerprint, sets) ->
              incr roots_patched;
              let extent = ref 0 and count = ref 0 in
              List.iter
                (fun set ->
                  let r = Stream.encode_record (Stream.encode_set set) in
                  output_string oc r;
                  extent := !extent + String.length r;
                  incr count)
                sets;
              fresh := !fresh + !extent;
              entries.(root) <-
                {
                  fingerprint;
                  offset = (if !count = 0 then 0 else !pos);
                  extent = !extent;
                  count = !count;
                };
              pos := !pos + !extent
          | None ->
              if old.extent > 0 then begin
                copy_extent ic oc ~offset:old.offset ~extent:old.extent;
                copied := !copied + old.extent
              end;
              entries.(root) <-
                { old with offset = (if old.extent = 0 then 0 else !pos) };
              pos := !pos + old.extent
        done;
        close_out oc);
    Sys.rename tmp out;
    let stream_len =
      let ic = open_in_bin out in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
    in
    let t = { stream_len; s = index.s; entries } in
    save t (path_for out);
    ( t,
      {
        roots_patched = !roots_patched;
        fresh_bytes = !fresh;
        copied_bytes = !copied;
      } )
end
