module Node_set = Sgraph.Node_set

let to_string results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %d node sets\n" (List.length results));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int (Node_set.to_list c)));
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let save results path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string results);
      close_out oc)

let parse_line lineno line =
  let fail msg = failwith (Printf.sprintf "results line %d: %s" lineno msg) in
  let tokens =
    List.filter
      (fun t -> String.length t > 0)
      (String.split_on_char ' '
         (String.map (function '\t' | '\r' -> ' ' | c -> c) line))
  in
  let members =
    List.map
      (fun tok ->
        match int_of_string_opt tok with
        | Some v when v >= 0 -> v
        | Some _ -> fail (Printf.sprintf "negative node id %S" tok)
        | None -> fail (Printf.sprintf "expected a node id, got %S" tok))
      tokens
  in
  let set = Node_set.of_list members in
  if Node_set.cardinal set <> List.length members then fail "duplicate node in set";
  set

let parse_string s =
  let lines = String.split_on_char '\n' s in
  List.concat
    (List.mapi
       (fun i line ->
         let trimmed = String.trim line in
         if String.length trimmed = 0 || trimmed.[0] = '#' then []
         else [ parse_line (i + 1) line ])
       lines)

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_string contents

module Stream = struct
  (* Crash-safe append-only record stream.

     Layout: a 7-byte magic ["SCLQS1\n"], then records of
     [u32le payload length | u32le CRC-32 of payload | payload bytes].
     A process killed mid-write leaves a torn tail — a partial header,
     an oversized length, or a CRC mismatch — which readers detect and
     drop, reporting [`Torn] together with the byte length of the clean
     prefix so a resuming writer can truncate back to it and append. *)

  let magic = "SCLQS1\n"

  (* Corrupt length words must not drive a giant allocation: no record
     written by this module approaches this. *)
  let max_record_len = 1 lsl 28

  type writer = { oc : out_channel; fault : Scoll.Fault.t; mutable closed : bool }

  let open_writer ?(fault = Scoll.Fault.none) path =
    let oc = open_out_bin path in
    output_string oc magic;
    { oc; fault; closed = false }

  let open_append ?(fault = Scoll.Fault.none) path ~clean_len =
    if clean_len < String.length magic || not (Sys.file_exists path) then
      open_writer ~fault path
    else begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      match
        Unix.ftruncate fd clean_len;
        ignore (Unix.lseek fd clean_len Unix.SEEK_SET : int)
      with
      | () -> { oc = Unix.out_channel_of_descr fd; fault; closed = false }
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    end

  let encode_record payload =
    let len = String.length payload in
    if len > max_record_len then invalid_arg "Stream.encode_record: oversized";
    let b = Bytes.create (8 + len) in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.set_int32_le b 4 (Int32.of_int (Scoll.Crc32.string payload));
    Bytes.blit_string payload 0 b 8 len;
    Bytes.to_string b

  let write_record w payload =
    Scoll.Fault.check w.fault "stream.write";
    output_string w.oc (encode_record payload)

  let flush w =
    Scoll.Fault.check w.fault "stream.flush";
    Stdlib.flush w.oc

  let close w =
    if not w.closed then begin
      w.closed <- true;
      close_out w.oc
    end

  let encode_set set = String.concat " " (List.map string_of_int (Node_set.to_list set))

  let decode_set payload =
    (* the CRC already vouched for the bytes; a malformed payload means a
       foreign or buggy writer, which is a hard error, not a torn tail *)
    let members =
      List.filter_map
        (fun tok -> if String.length tok = 0 then None else Some (int_of_string tok))
        (String.split_on_char ' ' payload)
    in
    Node_set.of_list members

  let write_set w set = write_record w (encode_set set)

  let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

  let read_records path =
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let total = String.length contents in
    let mlen = String.length magic in
    if total < mlen then begin
      (* a crash can even tear the magic itself; any prefix of it is a
         torn empty stream, anything else is not ours *)
      if String.equal contents (String.sub magic 0 total) then ([], 0, `Torn)
      else failwith (path ^ ": not a scliques stream (bad magic)")
    end
    else if not (String.equal (String.sub contents 0 mlen) magic) then
      failwith (path ^ ": not a scliques stream (bad magic)")
    else begin
      let records = ref [] in
      let off = ref mlen in
      let clean = ref mlen in
      let torn = ref false in
      while (not !torn) && !off < total do
        if total - !off < 8 then torn := true
        else begin
          let len = u32_at contents !off in
          let crc = u32_at contents (!off + 4) in
          if len > max_record_len || total - (!off + 8) < len then torn := true
          else begin
            let payload = String.sub contents (!off + 8) len in
            if Scoll.Crc32.string payload <> crc then torn := true
            else begin
              records := payload :: !records;
              off := !off + 8 + len;
              clean := !off
            end
          end
        end
      done;
      (List.rev !records, !clean, if !torn then `Torn else `Clean)
    end

  let read_results path =
    let records, _, tail = read_records path in
    (List.map decode_set records, tail)
end
