module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let max_nodes = 16

let is_s_club g ~s u =
  let k = Node_set.cardinal u in
  if k <= 1 then true
  else begin
    let sub, _ = Graph.induced g u in
    let ok = ref true in
    for v = 0 to k - 1 do
      if !ok then begin
        let dist = Sgraph.Bfs.distances sub v in
        for w = 0 to k - 1 do
          if dist.(w) < 0 || dist.(w) > s then ok := false
        done
      end
    done;
    !ok
  end

let check_size g =
  if Graph.n g > max_nodes then
    invalid_arg
      (Printf.sprintf "S_club: graph has %d nodes, limit is %d" (Graph.n g) max_nodes)

(* bitmask club test over the precomputed adjacency masks *)
let club_mask adj s mask =
  (* BFS from each member restricted to the mask, depth-bounded *)
  let n = Array.length adj in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok && mask land (1 lsl v) <> 0 then begin
      let reached = ref (1 lsl v) in
      let frontier = ref (1 lsl v) in
      let depth = ref 0 in
      while !frontier <> 0 && !depth < s do
        incr depth;
        let next = ref 0 in
        let rest = ref !frontier in
        while !rest <> 0 do
          let u = ref 0 in
          while !rest land (1 lsl !u) = 0 do
            incr u
          done;
          rest := !rest land lnot (1 lsl !u);
          next := !next lor (adj.(!u) land mask land lnot !reached)
        done;
        reached := !reached lor !next;
        frontier := !next
      done;
      if !reached land mask <> mask then ok := false
    end
  done;
  !ok

let adjacency g =
  Array.init (Graph.n g) (fun v ->
      Graph.fold_neighbors (fun acc u -> acc lor (1 lsl u)) 0 g v)

let mask_to_set mask =
  let members = ref [] in
  let v = ref 0 in
  let rest = ref mask in
  while !rest <> 0 do
    if !rest land 1 = 1 then members := !v :: !members;
    rest := !rest lsr 1;
    incr v
  done;
  Node_set.of_list !members

let all_club_masks g ~s =
  check_size g;
  let n = Graph.n g in
  let adj = adjacency g in
  let clubs = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    if club_mask adj s mask then clubs := mask :: !clubs
  done;
  !clubs

let maximal_s_clubs g ~s =
  let clubs = all_club_masks g ~s in
  (* non-hereditary family: maximal = not strictly contained in any club *)
  let maximal =
    List.filter
      (fun m ->
        not (List.exists (fun m' -> m' <> m && m land m' = m) clubs))
      clubs
  in
  List.sort Node_set.compare (List.map mask_to_set maximal)

let is_maximal_s_club g ~s u =
  check_size g;
  let n = Graph.n g in
  let adj = adjacency g in
  let mask = Node_set.fold (fun v acc -> acc lor (1 lsl v)) u 0 in
  if not (club_mask adj s mask) then false
  else begin
    (* enumerate strict supersets: any club among them kills maximality *)
    let outside = lnot mask land ((1 lsl n) - 1) in
    let rec subsets bits acc =
      if bits = 0 then acc
      else begin
        let low = bits land -bits in
        subsets (bits lxor low) (List.concat_map (fun m -> [ m; m lor low ]) acc)
      end
    in
    not
      (List.exists
         (fun extra -> extra <> 0 && club_mask adj s (mask lor extra))
         (subsets outside [ 0 ]))
  end

let non_hereditary_witness () =
  (* the 5-cycle with one chord is overkill; the canonical example is the
     star: {hub, leaves} is a 2-club, the leaves alone are not *)
  let g = Sgraph.Gen.star 4 in
  let club = Node_set.of_list [ 0; 1; 2; 3 ] in
  let subset = Node_set.of_list [ 1; 2; 3 ] in
  assert (is_s_club g ~s:2 club);
  assert (not (is_s_club g ~s:2 subset));
  (g, club, subset)
