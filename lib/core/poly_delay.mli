(** PolyDelayEnum (paper Fig. 4): enumeration with polynomial delay.

    The algorithm maintains a queue [Q] of maximal connected s-cliques
    still to be processed and an index [I] (a B-tree over canonical node
    sets, {!Scoll.Btree}) of everything generated so far. It seeds [Q]
    with one maximal set obtained by ExtendMax from an arbitrary node,
    then, for each dequeued [C] and each neighbor [v] of [C]:
    [C' = ExtendMax({v}, G[C ∪ {v}], s)] (carve the part of [C] compatible
    with [v]) and [C'' = ExtendMax(C', G, s)] (re-maximize); new [C''] are
    queued. The paper's Theorem 4.2: every maximal connected s-clique is
    printed exactly once, with O(|V|^3) delay.

    The paper assumes a connected input; this implementation seeds one
    initial set per connected component, which extends the theorem to
    arbitrary graphs (s-clique distances never cross components).

    §6 large-results mode: with [~queue_mode:Largest_first] the FIFO is
    replaced by a max-size priority queue, and with [~min_size:k] only
    results of size ≥ k are reported (everything is still explored —
    smaller sets may lead to large undiscovered ones). *)

type queue_mode =
  | Fifo  (** paper Fig. 4: breadth-first over the solution graph *)
  | Largest_first  (** §6 heuristic: priority queue, larger sets first *)

type index_mode =
  | Btree  (** the paper's suggestion — O(log n) worst case per operation *)
  | Hashtable
      (** amortized O(1) expected per operation; trades the B-tree's
          worst-case delay guarantee for hashing. Exposed for the index
          ablation benchmark. *)

val iter :
  ?queue_mode:queue_mode ->
  ?index_mode:index_mode ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  unit
(** Call the function on each maximal connected s-clique, exactly once.
    [should_continue] is polled once per dequeue; returning [false]
    abandons the remaining work (used by time-budgeted benchmarks).

    With [obs], the run is instrumented: the delay recorder ticks on each
    emission (the paper's per-result delay), and the counters
    [pd.dequeues], [pd.emits], [pd.extend_max_calls], [pd.index_inserts],
    [pd.index_duplicates], [pd.queue_high_water] and the deterministic
    delay proxy [pd.max_extend_calls_between_emits] (most ExtendMax
    invocations between two consecutive emissions) are maintained.
    Without [obs] the loop is unchanged — no clock reads, no counters. *)

type run_stats = {
  results : int;  (** sets reported *)
  generated : int;  (** sets inserted into the index *)
  index_height : int;  (** final B-tree height *)
}

val iter_with_stats :
  ?queue_mode:queue_mode ->
  ?index_mode:index_mode ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  run_stats
(** Same, returning counters about the run (exposed for the index
    ablation benchmark and the memory discussion of §7). *)

type frontier = {
  f_index : Sgraph.Node_set.t list;  (** every set registered, in order *)
  f_queue : Sgraph.Node_set.t list;  (** the unprocessed subset of it *)
}
(** A stopped run's complete restart state. The sets already emitted are
    exactly the index minus the queue (filtered by [min_size]), so a
    resumed run re-emits nothing: re-registering [f_index] makes every
    old set a known duplicate, and processing restarts from [f_queue]. *)

val run :
  ?queue_mode:queue_mode ->
  ?index_mode:index_mode ->
  ?min_size:int ->
  ?should_continue:(unit -> bool) ->
  ?init:frontier ->
  ?obs:Scliques_obs.Obs.t ->
  Neighborhood.t ->
  (Sgraph.Node_set.t -> unit) ->
  run_stats * frontier
(** {!iter_with_stats} that can start from — and always reports — a
    {!frontier}. Without [init] it seeds per component as usual; the
    returned frontier has an empty [f_queue] iff the run exhausted the
    solution graph (it is only worth persisting otherwise). [run_stats]
    counts this call's work only, but an [init] index's sets do count
    into [generated]. Resuming under a different [queue_mode]/[index_mode]
    is sound — the disciplines change order, never the result set. *)
