module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type queue_mode = Fifo | Largest_first

type index_mode = Btree | Hashtable

type run_stats = { results : int; generated : int; index_height : int }

(* Index front-end: the paper asks for logarithmic-time membership and
   insert ("I can be implemented as a BTree"); the hashtable alternative is
   kept for the ablation benchmark. add returns true when the key is new. *)
type index =
  | I_btree of Node_set.t Scoll.Btree.t
  | I_hash of (Node_set.t, unit) Hashtbl.t * int ref

let index_create = function
  | Btree -> I_btree (Scoll.Btree.create ~cmp:Node_set.compare ())
  | Hashtable ->
      (* structural hashing/equality over whole Node_set.t keys (sorted
         int arrays) is the point of this ablation variant — the generic
         primitives are intentional here, not an accident *)
      I_hash ((Hashtbl.create 4096 [@lint.allow "poly-compare"]), ref 0)

let index_add index c =
  match index with
  | I_btree t -> Scoll.Btree.add t c
  | I_hash (h, size) ->
      if Hashtbl.mem h c then false
      else begin
        Hashtbl.replace h c ();
        incr size;
        true
      end

let index_length = function
  | I_btree t -> Scoll.Btree.length t
  | I_hash (_, size) -> !size

let index_to_list = function
  | I_btree t -> Scoll.Btree.to_list t
  | I_hash (h, _) ->
      (* hash order is unspecified; sort so checkpoints are deterministic *)
      List.sort Node_set.compare (Hashtbl.fold (fun k () acc -> k :: acc) h [])

let index_height = function I_btree t -> Scoll.Btree.height t | I_hash _ -> 0

(* Queue front-end over the two §6 disciplines. Largest-first breaks ties
   lexicographically so runs stay deterministic. *)
type queue =
  | Q_fifo of Node_set.t Scoll.Fifo_queue.t
  | Q_heap of Node_set.t Scoll.Binary_heap.t

let queue_create = function
  | Fifo -> Q_fifo (Scoll.Fifo_queue.create ())
  | Largest_first ->
      let cmp a b =
        let c = compare (Node_set.cardinal b) (Node_set.cardinal a) in
        if c <> 0 then c else Node_set.compare a b
      in
      Q_heap (Scoll.Binary_heap.create ~cmp ())

let queue_push q x =
  match q with
  | Q_fifo f -> Scoll.Fifo_queue.push f x
  | Q_heap h -> Scoll.Binary_heap.push h x

let queue_pop_opt q =
  match q with
  | Q_fifo f -> Scoll.Fifo_queue.pop_opt f
  | Q_heap h -> Scoll.Binary_heap.pop_opt h

(* optional-counter helpers: one [match] on the off path, a field write on *)
let c_incr = function None -> () | Some c -> Scliques_obs.Counters.incr c

let c_set_max c n = match c with None -> () | Some c -> Scliques_obs.Counters.set_max c n

type frontier = { f_index : Node_set.t list; f_queue : Node_set.t list }

let run ?(queue_mode = Fifo) ?(index_mode = Btree) ?(min_size = 0)
    ?(should_continue = fun () -> true) ?init ?obs nh yield =
  let g = Neighborhood.graph nh in
  let queue = queue_create queue_mode in
  let index = index_create index_mode in
  let results = ref 0 in
  (* counter handles resolved once; all None when running unobserved *)
  let ctr name = Option.map (fun o -> Scliques_obs.Obs.counter o name) obs in
  let c_dequeues = ctr "pd.dequeues" in
  let c_emits = ctr "pd.emits" in
  let c_extend = ctr "pd.extend_max_calls" in
  let c_inserts = ctr "pd.index_inserts" in
  let c_duplicates = ctr "pd.index_duplicates" in
  let c_qhw = ctr "pd.queue_high_water" in
  let c_gap_work = ctr "pd.max_extend_calls_between_emits" in
  let qlen = ref 0 in
  (* ExtendMax invocations since the last emission: a deterministic,
     machine-independent proxy for Theorem 4.2's delay *)
  let work_since_emit = ref 0 in
  let extend_in_graph c =
    c_incr c_extend;
    incr work_since_emit;
    Extend_max.in_graph nh c
  in
  let extend_in_induced ~universe ~seed =
    c_incr c_extend;
    incr work_since_emit;
    Extend_max.in_induced nh ~universe ~seed
  in
  let register c =
    if index_add index c then begin
      c_incr c_inserts;
      queue_push queue c;
      incr qlen;
      c_set_max c_qhw !qlen
    end
    else c_incr c_duplicates
  in
  (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
  (match init with
  | None ->
      (* one seed per connected component: distances never cross
         components, so the connected graph assumed by the paper
         generalizes *)
      List.iter
        (fun comp ->
          let seed = Node_set.singleton (Node_set.min_elt comp) in
          register (extend_in_graph seed))
        (Sgraph.Components.components g)
  | Some { f_index; f_queue } ->
      (* resume from a checkpoint: everything in the index was already
         registered (and, if absent from the queue, already emitted) by
         the interrupted run, so it re-enters the index silently — only
         the saved queue is put back up for processing *)
      List.iter (fun c -> ignore (index_add index c : bool)) f_index;
      List.iter
        (fun c ->
          queue_push queue c;
          incr qlen)
        f_queue);
  let running = ref true in
  while !running do
    if not (should_continue ()) then running := false
    else
      match queue_pop_opt queue with
      | None -> running := false
      | Some c ->
          decr qlen;
          c_incr c_dequeues;
          if Node_set.cardinal c >= min_size then begin
            incr results;
            c_incr c_emits;
            c_set_max c_gap_work !work_since_emit;
            work_since_emit := 0;
            (match obs with None -> () | Some o -> Scliques_obs.Obs.tick o);
            yield c
          end;
          Node_set.iter
            (fun v ->
              let universe = Node_set.add v c in
              let carved =
                extend_in_induced ~universe ~seed:(Node_set.singleton v)
              in
              register (extend_in_graph carved))
            (Neighborhood.adjacent_any nh c)
  done;
  (match obs with None -> () | Some _ -> Neighborhood.sync_obs nh);
  let stats =
    {
      results = !results;
      generated = index_length index;
      index_height = index_height index;
    }
  in
  let frontier =
    {
      f_index = index_to_list index;
      f_queue =
        (match queue with
        | Q_fifo f -> Scoll.Fifo_queue.to_list f
        | Q_heap h -> Scoll.Binary_heap.pop_all h);
    }
  in
  (stats, frontier)

let iter_with_stats ?queue_mode ?index_mode ?min_size ?should_continue ?obs nh yield =
  fst (run ?queue_mode ?index_mode ?min_size ?should_continue ?obs nh yield)

let iter ?queue_mode ?index_mode ?min_size ?should_continue ?obs nh yield =
  ignore
    (iter_with_stats ?queue_mode ?index_mode ?min_size ?should_continue ?obs nh yield
      : run_stats)
