module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

type queue_mode = Fifo | Largest_first

type index_mode = Btree | Hashtable

type run_stats = { results : int; generated : int; index_height : int }

(* Index front-end: the paper asks for logarithmic-time membership and
   insert ("I can be implemented as a BTree"); the hashtable alternative is
   kept for the ablation benchmark. add returns true when the key is new. *)
type index =
  | I_btree of Node_set.t Scoll.Btree.t
  | I_hash of (Node_set.t, unit) Hashtbl.t * int ref

let index_create = function
  | Btree -> I_btree (Scoll.Btree.create ~cmp:Node_set.compare ())
  | Hashtable -> I_hash (Hashtbl.create 4096, ref 0)

let index_add index c =
  match index with
  | I_btree t -> Scoll.Btree.add t c
  | I_hash (h, size) ->
      if Hashtbl.mem h c then false
      else begin
        Hashtbl.replace h c ();
        incr size;
        true
      end

let index_length = function
  | I_btree t -> Scoll.Btree.length t
  | I_hash (_, size) -> !size

let index_height = function I_btree t -> Scoll.Btree.height t | I_hash _ -> 0

(* Queue front-end over the two §6 disciplines. Largest-first breaks ties
   lexicographically so runs stay deterministic. *)
type queue =
  | Q_fifo of Node_set.t Scoll.Fifo_queue.t
  | Q_heap of Node_set.t Scoll.Binary_heap.t

let queue_create = function
  | Fifo -> Q_fifo (Scoll.Fifo_queue.create ())
  | Largest_first ->
      let cmp a b =
        let c = compare (Node_set.cardinal b) (Node_set.cardinal a) in
        if c <> 0 then c else Node_set.compare a b
      in
      Q_heap (Scoll.Binary_heap.create ~cmp ())

let queue_push q x =
  match q with
  | Q_fifo f -> Scoll.Fifo_queue.push f x
  | Q_heap h -> Scoll.Binary_heap.push h x

let queue_pop_opt q =
  match q with
  | Q_fifo f -> Scoll.Fifo_queue.pop_opt f
  | Q_heap h -> Scoll.Binary_heap.pop_opt h

let iter_with_stats ?(queue_mode = Fifo) ?(index_mode = Btree) ?(min_size = 0)
    ?(should_continue = fun () -> true) nh yield =
  let g = Neighborhood.graph nh in
  let queue = queue_create queue_mode in
  let index = index_create index_mode in
  let results = ref 0 in
  let register c = if index_add index c then queue_push queue c in
  (* one seed per connected component: distances never cross components,
     so the connected graph assumed by the paper generalizes *)
  List.iter
    (fun comp ->
      let seed = Node_set.singleton (Node_set.min_elt comp) in
      register (Extend_max.in_graph nh seed))
    (Sgraph.Components.components g);
  let running = ref true in
  while !running do
    if not (should_continue ()) then running := false
    else
      match queue_pop_opt queue with
      | None -> running := false
      | Some c ->
          if Node_set.cardinal c >= min_size then begin
            incr results;
            yield c
          end;
          Node_set.iter
            (fun v ->
              let universe = Node_set.add v c in
              let carved =
                Extend_max.in_induced nh ~universe ~seed:(Node_set.singleton v)
              in
              register (Extend_max.in_graph nh carved))
            (Neighborhood.adjacent_any nh c)
  done;
  {
    results = !results;
    generated = index_length index;
    index_height = index_height index;
  }

let iter ?queue_mode ?index_mode ?min_size ?should_continue nh yield =
  ignore (iter_with_stats ?queue_mode ?index_mode ?min_size ?should_continue nh yield)
