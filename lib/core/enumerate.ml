module Node_set = Sgraph.Node_set

type algorithm = Poly_delay | Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf | Brute

let all = [ Poly_delay; Cs1; Cs2; Cs2_f; Cs2_p; Cs2_pf; Brute ]

let name = function
  | Poly_delay -> "PD"
  | Cs1 -> "CSCliques1"
  | Cs2 -> "CSCliques2"
  | Cs2_f -> "CSCliques2F"
  | Cs2_p -> "CSCliques2P"
  | Cs2_pf -> "CSCliques2PF"
  | Brute -> "BruteForce"

let of_name n =
  match String.lowercase_ascii n with
  | "pd" | "polydelayenum" | "poly_delay" -> Some Poly_delay
  | "cs1" | "cscliques1" -> Some Cs1
  | "cs2" | "cscliques2" -> Some Cs2
  | "cs2f" | "cscliques2f" -> Some Cs2_f
  | "cs2p" | "cscliques2p" -> Some Cs2_p
  | "cs2pf" | "cscliques2pf" -> Some Cs2_pf
  | "brute" | "bruteforce" -> Some Brute
  | _ -> None

let iter ?(min_size = 0) ?(optimized = true) ?cache_capacity
    ?(should_continue = fun () -> true) ?obs algorithm g ~s yield =
  (* Without the §6 optimizations the full enumeration runs and the size
     bound is applied only at the output (Fig. 10's baseline). *)
  let pushed_min = if optimized then min_size else 0 in
  let yield = if optimized then yield
    else fun c -> if Node_set.cardinal c >= min_size then yield c
  in
  match algorithm with
  | Brute ->
      if s < 1 then invalid_arg "Enumerate.iter: s must be >= 1";
      let c_emits = Option.map (fun o -> Scliques_obs.Obs.counter o "brute.emits") obs in
      (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
      (* scan cooperatively so a tripped [should_continue] stops the
         exponential subset walk itself, not just the emission loop *)
      let acc = ref [] in
      let (_ : int) =
        Brute_force.iter_masks ~should_continue g ~s (fun c -> acc := c :: !acc)
      in
      List.iter
        (fun c ->
          if Node_set.cardinal c >= min_size then begin
            (match (obs, c_emits) with
            | Some o, Some ctr ->
                Scliques_obs.Counters.incr ctr;
                Scliques_obs.Obs.tick o
            | _ -> ());
            yield c
          end)
        (List.sort Node_set.compare !acc)
  | _ ->
      let nh = Neighborhood.create ?cache_capacity ?obs ~s g in
      let run () =
        match algorithm with
        | Poly_delay ->
            let queue_mode =
              if optimized && min_size > 0 then Poly_delay.Largest_first
              else Poly_delay.Fifo
            in
            Poly_delay.iter ~queue_mode ~min_size:pushed_min ~should_continue ?obs nh
              yield
        | Cs1 -> Cs_cliques1.iter ~min_size:pushed_min ~should_continue ?obs nh yield
        | Cs2 ->
            Cs_cliques2.iter ~pivot:false ~feasibility:false ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_f ->
            Cs_cliques2.iter ~pivot:false ~feasibility:true ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_p ->
            Cs_cliques2.iter ~pivot:true ~feasibility:false ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_pf ->
            Cs_cliques2.iter ~pivot:true ~feasibility:true ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Brute -> assert false
      in
      (match obs with
      | None -> run ()
      | Some _ ->
          (* early termination escapes via the caller's exception (e.g.
             [first_n]'s quota): still publish the cache counters *)
          Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) run)

type run_report = {
  outcome : Budget.outcome;
  resumable : Checkpoint.state option;
  emitted : int;
}

let checkpoint_family = function
  | Poly_delay -> "pd"
  | Brute -> "brute"
  | Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf -> "roots"

let run ?(min_size = 0) ?cache_capacity ?obs ?budget ?resume algorithm g ~s yield =
  if s < 1 then invalid_arg "Enumerate.run: s must be >= 1";
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  (match resume with
  | Some st
    when not (String.equal (Checkpoint.family st) (checkpoint_family algorithm)) ->
      failwith
        (Printf.sprintf
           "cannot resume a %S checkpoint with algorithm %s (it needs a %S one)"
           (Checkpoint.family st) (name algorithm) (checkpoint_family algorithm))
  | _ -> ());
  let emitted = ref 0 in
  let commit c =
    yield c;
    incr emitted;
    Budget.note_result budget
  in
  let resumable =
    match algorithm with
    | Brute ->
        let from_mask =
          match resume with
          | Some (Checkpoint.Brute_mask { next_mask }) -> Some next_mask
          | _ -> None
        in
        let check = Budget.checker budget in
        let next_mask =
          Brute_force.iter_masks ~should_continue:check ?from_mask g ~s (fun c ->
              if Node_set.cardinal c >= min_size then commit c)
        in
        fun () -> Checkpoint.Brute_mask { next_mask }
    | Poly_delay ->
        let nh = Neighborhood.create ?cache_capacity ?obs ~s g in
        let init =
          match resume with
          | Some (Checkpoint.Pd_frontier { index; queue }) ->
              Some { Poly_delay.f_index = index; f_queue = queue }
          | _ -> None
        in
        let queue_mode =
          if min_size > 0 then Poly_delay.Largest_first else Poly_delay.Fifo
        in
        let check = Budget.checker budget in
        let finish () =
          let (_ : Poly_delay.run_stats), frontier =
            Poly_delay.run ~queue_mode ~min_size ~should_continue:check ?init ?obs
              nh commit
          in
          fun () ->
            Checkpoint.Pd_frontier
              { index = frontier.f_index; queue = frontier.f_queue }
        in
        (match obs with
        | None -> finish ()
        | Some _ -> Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) finish)
    | (Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf) as alg ->
        let nh = Neighborhood.create ?cache_capacity ?obs ~s g in
        let check = Budget.checker budget in
        let iter_root ~root sink =
          match alg with
          | Cs1 ->
              Cs_cliques1.iter_rooted ~min_size ~should_continue:check ?obs nh
                ~root sink
          | _ ->
              let pivot = match alg with Cs2_p | Cs2_pf -> true | _ -> false in
              let feasibility =
                match alg with Cs2_f | Cs2_pf -> true | _ -> false
              in
              let ball = Neighborhood.ball nh root in
              Cs_cliques2.iter_rooted ~pivot ~feasibility ~min_size
                ~should_continue:check ?obs nh ~root
                ~p:(Node_set.filter (fun u -> u > root) ball)
                ~x:(Node_set.filter (fun u -> u < root) ball)
                sink
        in
        let n = Sgraph.Graph.n g in
        let skip = Array.make (max n 1) false in
        let retired =
          ref
            (match resume with
            | Some (Checkpoint.Roots { retired }) ->
                List.iter (fun v -> if v >= 0 && v < n then skip.(v) <- true) retired;
                List.rev retired
            | _ -> [])
        in
        let finish () =
          (* roots are explored one at a time with their results held
             back; a root COMMITS — streams its buffer and joins the
             retired set — only if the budget is still live when its
             whole subtree has run. The trip flag is sticky, so a trip
             that pruned any part of the subtree is still visible here:
             pruned roots never commit, and uncommitted roots rerun in
             full on resume. Commits are root-atomic — a [Max_results]
             trip mid-commit still flushes the rest of that root's
             buffer (bounded overshoot) rather than splitting a root. *)
          let buffer = ref [] in
          let v = ref 0 in
          while !v < n && Budget.live budget do
            let root = !v in
            if not skip.(root) then begin
              buffer := [];
              iter_root ~root (fun c -> buffer := c :: !buffer);
              if Budget.live budget then begin
                List.iter commit (List.rev !buffer);
                retired := root :: !retired
              end
            end;
            incr v
          done;
          fun () -> Checkpoint.Roots { retired = List.sort Int.compare !retired }
        in
        (match obs with
        | None -> finish ()
        | Some _ -> Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) finish)
  in
  let outcome = Budget.status budget in
  {
    outcome;
    resumable =
      (match outcome with
      | Budget.Complete -> None
      | Budget.Truncated _ -> Some (resumable ()));
    emitted = !emitted;
  }

let all_results ?min_size ?optimized ?cache_capacity ?obs algorithm g ~s =
  let acc = ref [] in
  iter ?min_size ?optimized ?cache_capacity ?obs algorithm g ~s
    (fun c -> acc := c :: !acc);
  List.rev !acc

exception Enough

let first_n ?min_size ?optimized ?cache_capacity ?(should_continue = fun () -> true)
    ?obs algorithm g ~s n =
  let acc = ref [] in
  let got = ref 0 in
  (try
     iter ?min_size ?optimized ?cache_capacity ~should_continue ?obs algorithm g ~s
       (fun c ->
         acc := c :: !acc;
         incr got;
         if !got >= n then raise Enough)
   with Enough -> ());
  List.rev !acc

let count ?min_size ?cache_capacity algorithm g ~s =
  let total = ref 0 in
  iter ?min_size ?cache_capacity algorithm g ~s (fun _ -> incr total);
  !total

let sorted_results ?min_size ?cache_capacity algorithm g ~s =
  List.sort Node_set.compare (all_results ?min_size ?cache_capacity algorithm g ~s)

let largest ?cache_capacity ?should_continue algorithm g ~s k =
  if k < 0 then invalid_arg "Enumerate.largest: negative k";
  (* min-heap of the current champions: the root is the smallest kept set,
     evicted whenever something bigger arrives *)
  let cmp a b =
    let c = compare (Node_set.cardinal a) (Node_set.cardinal b) in
    if c <> 0 then c else Node_set.compare b a
  in
  let heap = Scoll.Binary_heap.create ~cmp () in
  iter ?cache_capacity ?should_continue algorithm g ~s (fun c ->
      if Scoll.Binary_heap.length heap < k then Scoll.Binary_heap.push heap c
      else if k > 0 && cmp c (Scoll.Binary_heap.peek heap) > 0 then begin
        ignore (Scoll.Binary_heap.pop heap);
        Scoll.Binary_heap.push heap c
      end);
  List.rev (Scoll.Binary_heap.pop_all heap)
