module Node_set = Sgraph.Node_set

type algorithm = Poly_delay | Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf | Brute

let all = [ Poly_delay; Cs1; Cs2; Cs2_f; Cs2_p; Cs2_pf; Brute ]

let name = function
  | Poly_delay -> "PD"
  | Cs1 -> "CSCliques1"
  | Cs2 -> "CSCliques2"
  | Cs2_f -> "CSCliques2F"
  | Cs2_p -> "CSCliques2P"
  | Cs2_pf -> "CSCliques2PF"
  | Brute -> "BruteForce"

let of_name n =
  match String.lowercase_ascii n with
  | "pd" | "polydelayenum" | "poly_delay" -> Some Poly_delay
  | "cs1" | "cscliques1" -> Some Cs1
  | "cs2" | "cscliques2" -> Some Cs2
  | "cs2f" | "cscliques2f" -> Some Cs2_f
  | "cs2p" | "cscliques2p" -> Some Cs2_p
  | "cs2pf" | "cscliques2pf" -> Some Cs2_pf
  | "brute" | "bruteforce" -> Some Brute
  | _ -> None

let iter ?(min_size = 0) ?(optimized = true) ?cache_capacity
    ?(should_continue = fun () -> true) ?obs algorithm g ~s yield =
  (* Without the §6 optimizations the full enumeration runs and the size
     bound is applied only at the output (Fig. 10's baseline). *)
  let pushed_min = if optimized then min_size else 0 in
  let yield = if optimized then yield
    else fun c -> if Node_set.cardinal c >= min_size then yield c
  in
  match algorithm with
  | Brute ->
      if s < 1 then invalid_arg "Enumerate.iter: s must be >= 1";
      let c_emits = Option.map (fun o -> Scliques_obs.Obs.counter o "brute.emits") obs in
      (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
      List.iter
        (fun c ->
          if Node_set.cardinal c >= min_size then begin
            (match (obs, c_emits) with
            | Some o, Some ctr ->
                Scliques_obs.Counters.incr ctr;
                Scliques_obs.Obs.tick o
            | _ -> ());
            yield c
          end)
        (Brute_force.maximal_connected_s_cliques g ~s)
  | _ ->
      let nh = Neighborhood.create ?cache_capacity ?obs ~s g in
      let run () =
        match algorithm with
        | Poly_delay ->
            let queue_mode =
              if optimized && min_size > 0 then Poly_delay.Largest_first
              else Poly_delay.Fifo
            in
            Poly_delay.iter ~queue_mode ~min_size:pushed_min ~should_continue ?obs nh
              yield
        | Cs1 -> Cs_cliques1.iter ~min_size:pushed_min ~should_continue ?obs nh yield
        | Cs2 ->
            Cs_cliques2.iter ~pivot:false ~feasibility:false ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_f ->
            Cs_cliques2.iter ~pivot:false ~feasibility:true ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_p ->
            Cs_cliques2.iter ~pivot:true ~feasibility:false ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_pf ->
            Cs_cliques2.iter ~pivot:true ~feasibility:true ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Brute -> assert false
      in
      (match obs with
      | None -> run ()
      | Some _ ->
          (* early termination escapes via the caller's exception (e.g.
             [first_n]'s quota): still publish the cache counters *)
          Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) run)

let all_results ?min_size ?optimized ?cache_capacity ?obs algorithm g ~s =
  let acc = ref [] in
  iter ?min_size ?optimized ?cache_capacity ?obs algorithm g ~s
    (fun c -> acc := c :: !acc);
  List.rev !acc

exception Enough

let first_n ?min_size ?optimized ?cache_capacity ?(should_continue = fun () -> true)
    ?obs algorithm g ~s n =
  let acc = ref [] in
  let got = ref 0 in
  (try
     iter ?min_size ?optimized ?cache_capacity ~should_continue ?obs algorithm g ~s
       (fun c ->
         acc := c :: !acc;
         incr got;
         if !got >= n then raise Enough)
   with Enough -> ());
  List.rev !acc

let count ?min_size ?cache_capacity algorithm g ~s =
  let total = ref 0 in
  iter ?min_size ?cache_capacity algorithm g ~s (fun _ -> incr total);
  !total

let sorted_results ?min_size ?cache_capacity algorithm g ~s =
  List.sort Node_set.compare (all_results ?min_size ?cache_capacity algorithm g ~s)

let largest ?cache_capacity ?should_continue algorithm g ~s k =
  if k < 0 then invalid_arg "Enumerate.largest: negative k";
  (* min-heap of the current champions: the root is the smallest kept set,
     evicted whenever something bigger arrives *)
  let cmp a b =
    let c = compare (Node_set.cardinal a) (Node_set.cardinal b) in
    if c <> 0 then c else Node_set.compare b a
  in
  let heap = Scoll.Binary_heap.create ~cmp () in
  iter ?cache_capacity ?should_continue algorithm g ~s (fun c ->
      if Scoll.Binary_heap.length heap < k then Scoll.Binary_heap.push heap c
      else if k > 0 && cmp c (Scoll.Binary_heap.peek heap) > 0 then begin
        ignore (Scoll.Binary_heap.pop heap);
        Scoll.Binary_heap.push heap c
      end);
  List.rev (Scoll.Binary_heap.pop_all heap)
