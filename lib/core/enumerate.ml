module Node_set = Sgraph.Node_set

type algorithm = Poly_delay | Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf | Brute

let all = [ Poly_delay; Cs1; Cs2; Cs2_f; Cs2_p; Cs2_pf; Brute ]

let name = function
  | Poly_delay -> "PD"
  | Cs1 -> "CSCliques1"
  | Cs2 -> "CSCliques2"
  | Cs2_f -> "CSCliques2F"
  | Cs2_p -> "CSCliques2P"
  | Cs2_pf -> "CSCliques2PF"
  | Brute -> "BruteForce"

let of_name n =
  match String.lowercase_ascii n with
  | "pd" | "polydelayenum" | "poly_delay" -> Some Poly_delay
  | "cs1" | "cscliques1" -> Some Cs1
  | "cs2" | "cscliques2" -> Some Cs2
  | "cs2f" | "cscliques2f" -> Some Cs2_f
  | "cs2p" | "cscliques2p" -> Some Cs2_p
  | "cs2pf" | "cscliques2pf" -> Some Cs2_pf
  | "brute" | "bruteforce" -> Some Brute
  | _ -> None

let iter ?(min_size = 0) ?(optimized = true) ?cache_capacity
    ?(should_continue = fun () -> true) ?obs algorithm g ~s yield =
  (* Without the §6 optimizations the full enumeration runs and the size
     bound is applied only at the output (Fig. 10's baseline). *)
  let pushed_min = if optimized then min_size else 0 in
  let yield = if optimized then yield
    else fun c -> if Node_set.cardinal c >= min_size then yield c
  in
  match algorithm with
  | Brute ->
      if s < 1 then invalid_arg "Enumerate.iter: s must be >= 1";
      let c_emits = Option.map (fun o -> Scliques_obs.Obs.counter o "brute.emits") obs in
      (match obs with None -> () | Some o -> Scliques_obs.Obs.reset_clock o);
      (* scan cooperatively so a tripped [should_continue] stops the
         exponential subset walk itself, not just the emission loop *)
      let acc = ref [] in
      let (_ : int) =
        Brute_force.iter_masks ~should_continue g ~s (fun c -> acc := c :: !acc)
      in
      List.iter
        (fun c ->
          if Node_set.cardinal c >= min_size then begin
            (match (obs, c_emits) with
            | Some o, Some ctr ->
                Scliques_obs.Counters.incr ctr;
                Scliques_obs.Obs.tick o
            | _ -> ());
            yield c
          end)
        (List.sort Node_set.compare !acc)
  | _ ->
      let nh = Neighborhood.create ?cache_capacity ?obs ~s g in
      let run () =
        match algorithm with
        | Poly_delay ->
            let queue_mode =
              if optimized && min_size > 0 then Poly_delay.Largest_first
              else Poly_delay.Fifo
            in
            Poly_delay.iter ~queue_mode ~min_size:pushed_min ~should_continue ?obs nh
              yield
        | Cs1 -> Cs_cliques1.iter ~min_size:pushed_min ~should_continue ?obs nh yield
        | Cs2 ->
            Cs_cliques2.iter ~pivot:false ~feasibility:false ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_f ->
            Cs_cliques2.iter ~pivot:false ~feasibility:true ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_p ->
            Cs_cliques2.iter ~pivot:true ~feasibility:false ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Cs2_pf ->
            Cs_cliques2.iter ~pivot:true ~feasibility:true ~min_size:pushed_min
              ~should_continue ?obs nh yield
        | Brute -> assert false
      in
      (match obs with
      | None -> run ()
      | Some _ ->
          (* early termination escapes via the caller's exception (e.g.
             [first_n]'s quota): still publish the cache counters *)
          Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) run)

type run_report = {
  outcome : Budget.outcome;
  resumable : Checkpoint.state option;
  emitted : int;
}

let checkpoint_family = function
  | Poly_delay -> "pd"
  | Brute -> "brute"
  | Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf -> "roots"

let run ?(min_size = 0) ?cache_capacity ?obs ?nh ?budget ?resume algorithm g ~s yield =
  if s < 1 then invalid_arg "Enumerate.run: s must be >= 1";
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  (* the daemon's warm path: queries against the same graph inject one
     shared-backed oracle instead of each run cold-starting its own *)
  let oracle () =
    match nh with
    | Some o ->
        if Neighborhood.s o <> s then
          invalid_arg "Enumerate.run: oracle has a different s";
        if Sgraph.Graph.n (Neighborhood.graph o) <> Sgraph.Graph.n g then
          invalid_arg "Enumerate.run: oracle graph has a different node count";
        o
    | None -> Neighborhood.create ?cache_capacity ?obs ~s g
  in
  (match resume with
  | Some st
    when not (String.equal (Checkpoint.family st) (checkpoint_family algorithm)) ->
      failwith
        (Printf.sprintf
           "cannot resume a %S checkpoint with algorithm %s (it needs a %S one)"
           (Checkpoint.family st) (name algorithm) (checkpoint_family algorithm))
  | _ -> ());
  let emitted = ref 0 in
  let commit c =
    yield c;
    incr emitted;
    Budget.note_result budget
  in
  let resumable =
    match algorithm with
    | Brute ->
        let from_mask =
          match resume with
          | Some (Checkpoint.Brute_mask { next_mask }) -> Some next_mask
          | _ -> None
        in
        let check = Budget.checker budget in
        let next_mask =
          Brute_force.iter_masks ~should_continue:check ?from_mask g ~s (fun c ->
              if Node_set.cardinal c >= min_size then commit c)
        in
        fun () -> Checkpoint.Brute_mask { next_mask }
    | Poly_delay ->
        let nh = oracle () in
        let init =
          match resume with
          | Some (Checkpoint.Pd_frontier { index; queue }) ->
              Some { Poly_delay.f_index = index; f_queue = queue }
          | _ -> None
        in
        let queue_mode =
          if min_size > 0 then Poly_delay.Largest_first else Poly_delay.Fifo
        in
        let check = Budget.checker budget in
        let finish () =
          let (_ : Poly_delay.run_stats), frontier =
            Poly_delay.run ~queue_mode ~min_size ~should_continue:check ?init ?obs
              nh commit
          in
          fun () ->
            Checkpoint.Pd_frontier
              { index = frontier.f_index; queue = frontier.f_queue }
        in
        (match obs with
        | None -> finish ()
        | Some _ -> Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) finish)
    | (Cs1 | Cs2 | Cs2_f | Cs2_p | Cs2_pf) as alg ->
        let nh = oracle () in
        let check = Budget.checker budget in
        let iter_root ~root sink =
          match alg with
          | Cs1 ->
              Cs_cliques1.iter_rooted ~min_size ~should_continue:check ?obs nh
                ~root sink
          | _ ->
              let pivot = match alg with Cs2_p | Cs2_pf -> true | _ -> false in
              let feasibility =
                match alg with Cs2_f | Cs2_pf -> true | _ -> false
              in
              let ball = Neighborhood.ball nh root in
              Cs_cliques2.iter_rooted ~pivot ~feasibility ~min_size
                ~should_continue:check ?obs nh ~root
                ~p:(Node_set.filter (fun u -> u > root) ball)
                ~x:(Node_set.filter (fun u -> u < root) ball)
                sink
        in
        let n = Sgraph.Graph.n g in
        let skip = Array.make (max n 1) false in
        let retired =
          ref
            (match resume with
            | Some (Checkpoint.Roots { retired }) ->
                List.iter (fun v -> if v >= 0 && v < n then skip.(v) <- true) retired;
                List.rev retired
            | _ -> [])
        in
        let finish () =
          (* roots are explored one at a time with their results held
             back; a root COMMITS — streams its buffer and joins the
             retired set — only if the budget is still live when its
             whole subtree has run. The trip flag is sticky, so a trip
             that pruned any part of the subtree is still visible here:
             pruned roots never commit, and uncommitted roots rerun in
             full on resume. Commits are root-atomic — a [Max_results]
             trip mid-commit still flushes the rest of that root's
             buffer (bounded overshoot) rather than splitting a root. *)
          let buffer = ref [] in
          let v = ref 0 in
          while !v < n && Budget.live budget do
            let root = !v in
            if not skip.(root) then begin
              buffer := [];
              iter_root ~root (fun c -> buffer := c :: !buffer);
              if Budget.live budget then begin
                List.iter commit (List.rev !buffer);
                retired := root :: !retired
              end
            end;
            incr v
          done;
          fun () -> Checkpoint.Roots { retired = List.sort Int.compare !retired }
        in
        (match obs with
        | None -> finish ()
        | Some _ -> Fun.protect ~finally:(fun () -> Neighborhood.sync_obs nh) finish)
  in
  let outcome = Budget.status budget in
  {
    outcome;
    resumable =
      (match outcome with
      | Budget.Complete -> None
      | Budget.Truncated _ -> Some (resumable ()));
    emitted = !emitted;
  }

type refresh_delta = {
  results : Node_set.t list;
  added : Node_set.t list;
  removed : Node_set.t list;
  roots_rerun : int;
  roots_skipped : int;
  root_fingerprints : (int * int) list;
}

(* the sorted-input contract on [prior], checked only under asserts: a
   linear scan, where the sort it replaces cost O(|answer| log |answer|)
   on every refresh of an already-sorted answer *)
let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> Node_set.compare a b <= 0 && is_sorted rest

(* The affected-root set R for a batch replayed edit by edit: balls are
   taken in the actual intermediate graphs (kept as one uncompacted
   Overlay, rewound one edit when the pre-edit graph is needed again),
   so each edit contributes only the radius-(s-1) D of its own endpoints
   instead of the radius-s blanket a whole-batch bound needs. *)
let per_edit_affected_roots ~before ~s edits =
  let o = Sgraph.Overlay.of_graph before in
  let n = Sgraph.Overlay.n o in
  let ball srcs radius =
    Sgraph.Bfs.ball_multi_rows
      ~iter_row:(fun f v -> Sgraph.Overlay.iter_row f o v)
      ~n ~srcs ~radius
  in
  let invert = function
    | Sgraph.Overlay.Insert (u, v) -> Sgraph.Overlay.Delete (u, v)
    | Sgraph.Overlay.Delete (u, v) -> Sgraph.Overlay.Insert (u, v)
  in
  List.fold_left
    (fun acc e ->
      let u, v = Sgraph.Overlay.edit_endpoints e in
      let srcs = [ u; v ] in
      (* D_i: the radius-(s-1) balls of the endpoints in G_i and G_{i+1} *)
      let d_pre = ball srcs (s - 1) in
      Sgraph.Overlay.apply o [ e ] (* strict: a stale edit list must not
                                      silently yield a wrong R *);
      let d = Node_set.to_list (Node_set.union d_pre (ball srcs (s - 1))) in
      (* R_i: radius-s balls of D_i in both graphs; rewind for G_i *)
      let r_post = ball d s in
      Sgraph.Overlay.apply o [ invert e ];
      let r_pre = ball d s in
      Sgraph.Overlay.apply o [ e ];
      Node_set.union acc (Node_set.union r_pre r_post))
    Node_set.empty edits

(* a \ b over lists sorted by Node_set.compare, single merge pass *)
let sorted_diff a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ -> List.rev acc
    | _, [] -> List.rev_append acc a
    | x :: ta, y :: tb ->
        let c = Node_set.compare x y in
        if c = 0 then go acc ta tb
        else if c < 0 then go (x :: acc) ta b
        else go acc a tb
  in
  go [] a b

let refresh ?(min_size = 0) ?cache_capacity ?(engine = `Seq Cs2_pf) ?nh ?edits
    ?(fingerprints = true) ?prior_fingerprint ~before ~after ~touched ~s ~prior
    () =
  if s < 1 then invalid_arg "Enumerate.refresh: s must be >= 1";
  let n = Sgraph.Graph.n after in
  if Sgraph.Graph.n before <> n then
    invalid_arg "Enumerate.refresh: node counts differ";
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Enumerate.refresh: touched node out of range")
    touched;
  (match engine with
  | `Seq alg when not (String.equal (checkpoint_family alg) "roots") ->
      invalid_arg
        (Printf.sprintf
           "Enumerate.refresh: %s cannot re-enumerate single roots (use the \
            CS1/CS2 family or the parallel engine)"
           (name alg))
  | _ -> ());
  let touched = List.sort_uniq Int.compare touched in
  (match edits with
  | None -> ()
  | Some es ->
      (* [edits] must be the exact effective batch between the graphs:
         its endpoint set is [touched] by construction, so a mismatch
         means the caller paired a stale script with the wrong graphs *)
      if not (List.equal Int.equal (Sgraph.Overlay.touched es) touched) then
        invalid_arg "Enumerate.refresh: edits do not match touched");
  (* keep a caller-supplied warm oracle in lockstep with the graph even
     when it is not the engine doing the re-enumeration *)
  Option.iter (fun oracle ->
      if Neighborhood.s oracle <> s then
        invalid_arg "Enumerate.refresh: oracle has a different s";
      Neighborhood.invalidate oracle ~after ~touched)
    nh;
  (* sorted-input contract: [prior] arrives in Node_set.compare order
     (every producer here — sorted_results, a prior delta's [results], a
     sorted stream load — already has it), so refresh stops paying an
     O(|answer| log |answer|) sort per edit *)
  assert (is_sorted prior);
  match touched with
  | [] ->
      {
        results = prior;
        added = [];
        removed = [];
        roots_rerun = 0;
        roots_skipped = 0;
        root_fingerprints = [];
      }
  | _ :: _ ->
      (* Locality (paper §3: members of a result are pairwise within
         distance s). Let D be the set of nodes whose edge-relevant
         neighborhood changed: a node k with N^s(k) or its incident
         edges differing between the graphs. Any result that appears,
         vanishes or changes across the edit has a member in D, and its
         root (minimum member) is within distance s of that member in
         whichever graph the result lives in — so the affected roots lie
         in R = the union of the closed radius-s balls of D in both
         graphs. Retract every prior result rooted in R, re-enumerate
         exactly the roots of R on the after-graph, and keep the rest
         byte-identical.

         For a single edit, k's ball changes only when a witnessing
         ≤s-path runs through the edited edge, which puts k within
         distance s-1 of an endpoint in the graph holding that path; the
         radius-(s-1) balls of the endpoints are exactly D. With the
         edit script in hand, a batch is that single-edit argument
         replayed per step against the actual intermediate graphs
         ([per_edit_affected_roots]); without it, the whole-batch bound
         pays one hop of slack — intermediate graphs can mix edges from
         both ends of the sequence into one path — so D widens to
         radius s. Two touched nodes means one edit (effective edit
         lists carry each pair at most once). *)
      let r =
        match edits with
        | Some es when List.length es > 1 -> per_edit_affected_roots ~before ~s es
        | _ ->
            let d_radius = if List.length touched <= 2 then s - 1 else s in
            let d =
              Node_set.union
                (Sgraph.Bfs.ball_multi before ~srcs:touched ~radius:d_radius)
                (Sgraph.Bfs.ball_multi after ~srcs:touched ~radius:d_radius)
            in
            let dl = Node_set.to_list d in
            Node_set.union
              (Sgraph.Bfs.ball_multi before ~srcs:dl ~radius:s)
              (Sgraph.Bfs.ball_multi after ~srcs:dl ~radius:s)
      in
      (* fingerprint gate: within R, a root whose branch digest is equal
         on both endpoint graphs provably re-derives its exact prior
         results, so it neither retracts nor re-runs. (Only the endpoint
         graphs matter — fingerprint equality certifies equal branch
         output regardless of what the intermediate graphs did.) *)
      let roots, skipped, root_fingerprints =
        if not fingerprints then (Node_set.to_list r, 0, [])
        else begin
          let fp_before root =
            match prior_fingerprint with
            | Some f -> (
                match f root with
                | Some fp -> fp
                | None -> Neighborhood.root_fingerprint ~s before root)
            | None -> Neighborhood.root_fingerprint ~s before root
          in
          let rerun = ref [] and skipped = ref 0 and fps = ref [] in
          Node_set.iter
            (fun root ->
              let fp_after = Neighborhood.root_fingerprint ~s after root in
              fps := (root, fp_after) :: !fps;
              if fp_after = fp_before root then incr skipped
              else rerun := root :: !rerun)
            r;
          (List.rev !rerun, !skipped, List.rev !fps)
        end
      in
      let rerun_set = Node_set.of_list roots in
      let kept, dropped =
        List.partition
          (fun c -> not (Node_set.mem (Node_set.min_elt c) rerun_set))
          prior
      in
      let fresh =
        match (roots, engine) with
        | [], _ -> [] (* every affected root fingerprint-skipped *)
        | _, `Par workers ->
            Parallel.enumerate_roots ?workers ~min_size ?cache_capacity ~roots
              after ~s
        | _, `Seq alg ->
            let oracle =
              match nh with
              | Some oracle -> oracle
              | None -> Neighborhood.create ?cache_capacity ~s after
            in
            let acc = ref [] in
            let sink c = acc := c :: !acc in
            List.iter
              (fun root ->
                match alg with
                | Cs1 -> Cs_cliques1.iter_rooted ~min_size oracle ~root sink
                | _ ->
                    let pivot =
                      match alg with Cs2_p | Cs2_pf -> true | _ -> false
                    in
                    let feasibility =
                      match alg with Cs2_f | Cs2_pf -> true | _ -> false
                    in
                    let ball = Neighborhood.ball oracle root in
                    Cs_cliques2.iter_rooted ~pivot ~feasibility ~min_size oracle
                      ~root
                      ~p:(Node_set.filter (fun u -> u > root) ball)
                      ~x:(Node_set.filter (fun u -> u < root) ball)
                      sink)
              roots;
            List.sort Node_set.compare !acc
      in
      {
        results = List.merge Node_set.compare kept fresh;
        added = sorted_diff fresh dropped;
        removed = sorted_diff dropped fresh;
        roots_rerun = List.length roots;
        roots_skipped = skipped;
        root_fingerprints;
      }

let all_results ?min_size ?optimized ?cache_capacity ?obs algorithm g ~s =
  let acc = ref [] in
  iter ?min_size ?optimized ?cache_capacity ?obs algorithm g ~s
    (fun c -> acc := c :: !acc);
  List.rev !acc

exception Enough

let first_n ?min_size ?optimized ?cache_capacity ?(should_continue = fun () -> true)
    ?obs algorithm g ~s n =
  let acc = ref [] in
  let got = ref 0 in
  (try
     iter ?min_size ?optimized ?cache_capacity ~should_continue ?obs algorithm g ~s
       (fun c ->
         acc := c :: !acc;
         incr got;
         if !got >= n then raise Enough)
   with Enough -> ());
  List.rev !acc

let count ?min_size ?cache_capacity algorithm g ~s =
  let total = ref 0 in
  iter ?min_size ?cache_capacity algorithm g ~s (fun _ -> incr total);
  !total

let sorted_results ?min_size ?cache_capacity algorithm g ~s =
  List.sort Node_set.compare (all_results ?min_size ?cache_capacity algorithm g ~s)

let largest ?cache_capacity ?should_continue algorithm g ~s k =
  if k < 0 then invalid_arg "Enumerate.largest: negative k";
  (* min-heap of the current champions: the root is the smallest kept set,
     evicted whenever something bigger arrives *)
  let cmp a b =
    let c = compare (Node_set.cardinal a) (Node_set.cardinal b) in
    if c <> 0 then c else Node_set.compare b a
  in
  let heap = Scoll.Binary_heap.create ~cmp () in
  iter ?cache_capacity ?should_continue algorithm g ~s (fun c ->
      if Scoll.Binary_heap.length heap < k then Scoll.Binary_heap.push heap c
      else if k > 0 && cmp c (Scoll.Binary_heap.peek heap) > 0 then begin
        ignore (Scoll.Binary_heap.pop heap);
        Scoll.Binary_heap.push heap c
      end);
  List.rev (Scoll.Binary_heap.pop_all heap)
