(** s-clubs — the rival clique relaxation discussed in the paper's §2.

    A node set [U] is an {e s-club} when the {e induced} subgraph [G\[U\]]
    has diameter at most [s]: every pair must be joined by a short path
    {e inside} [U], whereas an s-clique may route its short paths through
    the rest of the graph. Consequences the paper leans on:

    - every s-club is a connected s-clique, but not conversely;
    - s-clubs are not hereditary, so a non-maximal s-club can have
      {e no} single-node extension — maximality testing is NP-complete
      (Pajouh & Balasundaram, cited as \[28\]), and no polynomial-delay
      enumeration can exist (§2), in contrast to this library's main
      result for connected s-cliques;
    - on some graph classes the notions coincide (\[28\]); e.g. on trees,
      maximal s-clubs equal maximal connected s-cliques — property-tested
      in the test suite.

    Everything here is an exponential-time reference implementation for
    small graphs, used to compare the notions experimentally. *)

val is_s_club : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t -> bool
(** Diameter of the induced subgraph at most [s]. Empty sets and
    singletons qualify. *)

val is_maximal_s_club : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t -> bool
(** No strict superset is an s-club. Because s-clubs are not hereditary
    this requires scanning supersets of every size — exponential; capped
    at {!max_nodes} nodes. *)

val maximal_s_clubs : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t list
(** All maximal s-clubs, in increasing {!Sgraph.Node_set.compare} order.
    Exponential; graphs are capped at {!max_nodes} nodes.
    @raise Invalid_argument beyond the cap. *)

val max_nodes : int
(** Size cap for the exhaustive routines (16). *)

val non_hereditary_witness : unit -> Sgraph.Graph.t * Sgraph.Node_set.t * Sgraph.Node_set.t
(** A concrete demonstration that s-clubs are not hereditary: returns
    [(g, club, subset)] where [club] is a 2-club of [g], [subset ⊂ club],
    and [subset] is {e not} a 2-club. *)
