module Node_set = Sgraph.Node_set
module Graph = Sgraph.Graph

let max_nodes = 22

let check_size g =
  if Graph.n g > max_nodes then
    invalid_arg
      (Printf.sprintf "Brute_force: graph has %d nodes, limit is %d" (Graph.n g)
         max_nodes)

(* close.(v) = bitmask of nodes within distance s of v (excluding v) *)
let closeness g ~s =
  Array.init (Graph.n g) (fun v ->
      Node_set.fold (fun u acc -> acc lor (1 lsl u)) (Sgraph.Bfs.ball g v ~radius:s) 0)

(* adj.(v) = bitmask of direct neighbors *)
let adjacency g =
  Array.init (Graph.n g) (fun v ->
      Graph.fold_neighbors (fun acc u -> acc lor (1 lsl u)) 0 g v)

let is_s_clique_mask close mask =
  let ok = ref true in
  let rest = ref mask in
  while !rest <> 0 do
    let v = ref 0 in
    while !rest land (1 lsl !v) = 0 do
      incr v
    done;
    rest := !rest land lnot (1 lsl !v);
    (* every other member must be within distance s of v *)
    if mask land lnot (close.(!v) lor (1 lsl !v)) <> 0 then ok := false
  done;
  !ok

let is_connected_mask adj mask =
  if mask = 0 then true
  else begin
    let start = ref 0 in
    while mask land (1 lsl !start) = 0 do
      incr start
    done;
    let reached = ref (1 lsl !start) in
    let changed = ref true in
    while !changed do
      changed := false;
      let frontier = ref !reached in
      while !frontier <> 0 do
        let v = ref 0 in
        while !frontier land (1 lsl !v) = 0 do
          incr v
        done;
        frontier := !frontier land lnot (1 lsl !v);
        let expand = adj.(!v) land mask land lnot !reached in
        if expand <> 0 then begin
          reached := !reached lor expand;
          changed := true
        end
      done
    done;
    !reached = mask
  end

let mask_to_set mask =
  let members = ref [] in
  let rest = ref mask in
  let v = ref 0 in
  while !rest <> 0 do
    if !rest land 1 = 1 then members := !v :: !members;
    rest := !rest lsr 1;
    incr v
  done;
  Node_set.of_list !members

let enumerate g ~s ~require_connected ~only_maximal =
  check_size g;
  let n = Graph.n g in
  let close = closeness g ~s in
  let adj = adjacency g in
  let qualifies mask =
    is_s_clique_mask close mask
    && ((not require_connected) || is_connected_mask adj mask)
  in
  let results = ref [] in
  for mask = (1 lsl n) - 1 downto 1 do
    if qualifies mask then begin
      let maximal =
        (not only_maximal)
        ||
        let extensible = ref false in
        for v = 0 to n - 1 do
          if mask land (1 lsl v) = 0 && qualifies (mask lor (1 lsl v)) then
            extensible := true
        done;
        not !extensible
      in
      if maximal then results := mask_to_set mask :: !results
    end
  done;
  List.sort Node_set.compare !results

let iter_masks ?(should_continue = fun () -> true) ?from_mask g ~s yield =
  check_size g;
  let n = Graph.n g in
  let close = closeness g ~s in
  let adj = adjacency g in
  let qualifies mask =
    is_s_clique_mask close mask && is_connected_mask adj mask
  in
  let start =
    match from_mask with
    | None -> (1 lsl n) - 1
    | Some m ->
        if m < 0 || m > (1 lsl n) - 1 then
          invalid_arg "Brute_force.iter_masks: from_mask out of range";
        m
  in
  let mask = ref start in
  let running = ref true in
  while !running && !mask >= 1 do
    if not (should_continue ()) then running := false
    else begin
      let m = !mask in
      if qualifies m then begin
        let extensible = ref false in
        for v = 0 to n - 1 do
          if m land (1 lsl v) = 0 && qualifies (m lor (1 lsl v)) then
            extensible := true
        done;
        if not !extensible then yield (mask_to_set m)
      end;
      decr mask
    end
  done;
  (* the first untested mask: 0 when the scan finished *)
  !mask

let maximal_connected_s_cliques g ~s =
  enumerate g ~s ~require_connected:true ~only_maximal:true

let connected_s_cliques g ~s =
  enumerate g ~s ~require_connected:true ~only_maximal:false

let maximal_s_cliques g ~s = enumerate g ~s ~require_connected:false ~only_maximal:true
