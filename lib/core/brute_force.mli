(** Exhaustive-oracle enumeration over bitmask subsets.

    The reference implementation every algorithm is validated against in
    the test suite: enumerate all 2^n node subsets, keep those that are
    connected s-cliques, and report the ones no single node extends
    (single-node extension testing is exact for maximality because
    connected s-cliques are a connected-hereditary family). Exponential in
    [n], so inputs are capped at 22 nodes. *)

val max_nodes : int
(** Largest accepted graph size (22). *)

val maximal_connected_s_cliques : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t list
(** All maximal connected s-cliques, in increasing {!Sgraph.Node_set.compare}
    order. @raise Invalid_argument when the graph exceeds {!max_nodes}. *)

val connected_s_cliques : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t list
(** All (not only maximal) nonempty connected s-cliques, in increasing
    order. @raise Invalid_argument when the graph exceeds {!max_nodes}. *)

val maximal_s_cliques : Sgraph.Graph.t -> s:int -> Sgraph.Node_set.t list
(** All maximal {e not-necessarily-connected} s-cliques (oracle for the
    Remark 1 reduction). @raise Invalid_argument on oversized graphs. *)

val iter_masks :
  ?should_continue:(unit -> bool) ->
  ?from_mask:int ->
  Sgraph.Graph.t ->
  s:int ->
  (Sgraph.Node_set.t -> unit) ->
  int
(** Streaming, interruptible form of {!maximal_connected_s_cliques}: scan
    subset masks from [from_mask] (default [2^n - 1]) {e descending},
    yielding each maximal connected s-clique as its mask is reached —
    in scan order, {b not} sorted. [should_continue] is polled once per
    mask. Returns the first untested mask: [0] after a complete scan,
    otherwise the value to pass back as [from_mask] to resume exactly
    where the scan stopped (each result belongs to one mask, so the split
    is emission-exact). @raise Invalid_argument on oversized graphs or an
    out-of-range [from_mask]. *)
