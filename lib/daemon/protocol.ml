module E = Scliques_core.Enumerate
module Budget = Scliques_core.Budget
module Ckpt = Scliques_core.Checkpoint
module Node_set = Sgraph.Node_set

type error =
  | Bad_magic of string
  | Truncated of string
  | Oversized of int
  | Crc_mismatch
  | Bad_opcode of int
  | Bad_payload of string

exception Error of error

let error_to_string = function
  | Bad_magic got -> Printf.sprintf "bad magic %S (not an SCLQRPC1 peer)" got
  | Truncated what -> Printf.sprintf "truncated %s" what
  | Oversized len -> Printf.sprintf "oversized frame (%d bytes)" len
  | Crc_mismatch -> "frame CRC mismatch"
  | Bad_opcode op -> Printf.sprintf "unknown opcode %d" op
  | Bad_payload what -> Printf.sprintf "malformed payload (%s)" what

let fail e = raise (Error e)

let magic = "SCLQRPC1"

let max_payload = 1 lsl 26

type engine = Alg of E.algorithm | Par

type query = {
  q_id : int;
  q_engine : engine;
  q_graph : string;
  q_s : int;
  q_min_size : int;
  q_deadline_s : float option;
  q_max_results : int option;
  q_resume : Ckpt.state option;
}

type mutate = { m_id : int; m_graph : string; m_script : string }

type request =
  | Query of query
  | Mutate of mutate
  | Reload of { rl_id : int; rl_graph : string }
  | Cancel of int
  | Hello of { h_token : string }
  | List_graphs
  | Ping

type done_info = {
  d_id : int;
  d_outcome : Budget.outcome;
  d_emitted : int;
  d_resume : Ckpt.state option;
}

type error_code = Bad_request | Server_error

type graph_info = { g_name : string; g_n : int; g_m : int; g_epoch : int }

type response =
  | Result of int * string
  | Done of done_info
  | Busy of { b_id : int; b_running : int; b_queued : int }
  | Retry_after of { ra_id : int; ra_seconds : float }
  | Mutated of { mu_id : int; mu_epoch : int; mu_edits : int; mu_n : int; mu_m : int }
  | Reloaded of { rl_id : int; rl_epoch : int; rl_n : int; rl_m : int }
  | Error_resp of { e_id : int; e_code : error_code; e_msg : string }
  | Graphs of graph_info list
  | Pong

(* ---------- little-endian primitives ---------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u16 b v = Buffer.add_uint16_le b v

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

(* Strict cursor over a payload: every read names the field it is after,
   so a short buffer surfaces as a typed [Bad_payload] rather than an
   [Invalid_argument] from the string primitives. *)
type cursor = { buf : string; mutable pos : int }

let need c n what =
  if n < 0 || String.length c.buf - c.pos < n then
    fail (Bad_payload ("truncated " ^ what))

let u8 c what =
  need c 1 what;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c what =
  need c 2 what;
  let v = String.get_uint16_le c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_le c.buf c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let u64 c what =
  need c 8 what;
  let v = Int64.to_int (String.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let f64 c what =
  need c 8 what;
  let v = Int64.float_of_bits (String.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let bytes_of c len what =
  need c len what;
  let v = String.sub c.buf c.pos len in
  c.pos <- c.pos + len;
  v

let finish c =
  if c.pos <> String.length c.buf then fail (Bad_payload "trailing garbage")

(* ---------- engines and outcomes ---------- *)

let engine_code = function
  | Alg E.Poly_delay -> 0
  | Alg E.Cs1 -> 1
  | Alg E.Cs2 -> 2
  | Alg E.Cs2_f -> 3
  | Alg E.Cs2_p -> 4
  | Alg E.Cs2_pf -> 5
  | Alg E.Brute -> 6
  | Par -> 7

let engine_of_code = function
  | 0 -> Alg E.Poly_delay
  | 1 -> Alg E.Cs1
  | 2 -> Alg E.Cs2
  | 3 -> Alg E.Cs2_f
  | 4 -> Alg E.Cs2_p
  | 5 -> Alg E.Cs2_pf
  | 6 -> Alg E.Brute
  | 7 -> Par
  | n -> fail (Bad_payload (Printf.sprintf "unknown engine code %d" n))

let outcome_code = function
  | Budget.Complete -> 0
  | Budget.Truncated Budget.Deadline -> 1
  | Budget.Truncated Budget.Max_results -> 2
  | Budget.Truncated Budget.Max_cache_bytes -> 3
  | Budget.Truncated Budget.Cancelled -> 4

let outcome_of_code = function
  | 0 -> Budget.Complete
  | 1 -> Budget.Truncated Budget.Deadline
  | 2 -> Budget.Truncated Budget.Max_results
  | 3 -> Budget.Truncated Budget.Max_cache_bytes
  | 4 -> Budget.Truncated Budget.Cancelled
  | n -> fail (Bad_payload (Printf.sprintf "unknown outcome code %d" n))

(* ---------- resume tokens ---------- *)

(* wire shape of a Checkpoint.state:
   1 (roots)  u32 count, count x u32 retired root ids
   2 (pd)     two set lists (index, queue), each u32 nsets then per set
              u32 cardinality + that many u32 node ids
   3 (brute)  u64 next scan mask *)

let add_set_list b sets =
  add_u32 b (List.length sets);
  List.iter
    (fun set ->
      add_u32 b (Node_set.cardinal set);
      Node_set.iter (fun v -> add_u32 b v) set)
    sets

(* List.init does not pin the order its thunk runs in; cursor reads must
   be strictly left-to-right, so collect with an explicit countdown *)
let read_list count f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go count []

let read_set_list c what =
  let nsets = u32 c (what ^ " count") in
  need c (4 * nsets) what;
  read_list nsets (fun () ->
      let card = u32 c (what ^ " set size") in
      need c (4 * card) (what ^ " set members");
      Node_set.of_list (read_list card (fun () -> u32 c what)))

let add_state b = function
  | Ckpt.Roots { retired } ->
      add_u8 b 1;
      add_u32 b (List.length retired);
      List.iter (fun v -> add_u32 b v) retired
  | Ckpt.Pd_frontier { index; queue } ->
      add_u8 b 2;
      add_set_list b index;
      add_set_list b queue
  | Ckpt.Brute_mask { next_mask } ->
      add_u8 b 3;
      add_u64 b next_mask

let read_state c =
  match u8 c "resume token family" with
  | 1 ->
      let count = u32 c "retired root count" in
      need c (4 * count) "retired root ids";
      Ckpt.Roots { retired = read_list count (fun () -> u32 c "retired root id") }
  | 2 ->
      let index = read_set_list c "pd index" in
      let queue = read_set_list c "pd queue" in
      Ckpt.Pd_frontier { index; queue }
  | 3 -> Ckpt.Brute_mask { next_mask = u64 c "brute mask" }
  | n -> fail (Bad_payload (Printf.sprintf "unknown resume token family %d" n))

let add_state_opt b = function
  | None -> add_u8 b 0
  | Some st ->
      add_u8 b 1;
      add_state b st

let read_state_opt c =
  match u8 c "resume token flag" with
  | 0 -> None
  | 1 -> Some (read_state c)
  | n -> fail (Bad_payload (Printf.sprintf "bad resume token flag %d" n))

(* ---------- requests ---------- *)

let encode_request req =
  let b = Buffer.create 64 in
  (match req with
  | Query q ->
      Buffer.add_char b 'Q';
      add_u32 b q.q_id;
      add_u8 b (engine_code q.q_engine);
      add_u32 b q.q_s;
      add_u32 b q.q_min_size;
      (match q.q_deadline_s with
      | None -> add_u8 b 0
      | Some d ->
          add_u8 b 1;
          add_f64 b d);
      (match q.q_max_results with
      | None -> add_u8 b 0
      | Some m ->
          add_u8 b 1;
          add_u32 b m);
      add_u16 b (String.length q.q_graph);
      Buffer.add_string b q.q_graph;
      add_state_opt b q.q_resume
  | Mutate m ->
      Buffer.add_char b 'M';
      add_u32 b m.m_id;
      add_u16 b (String.length m.m_graph);
      Buffer.add_string b m.m_graph;
      add_u32 b (String.length m.m_script);
      Buffer.add_string b m.m_script
  | Reload { rl_id; rl_graph } ->
      Buffer.add_char b 'R';
      add_u32 b rl_id;
      add_u16 b (String.length rl_graph);
      Buffer.add_string b rl_graph
  | Cancel id ->
      Buffer.add_char b 'C';
      add_u32 b id
  | Hello { h_token } ->
      Buffer.add_char b 'H';
      add_u16 b (String.length h_token);
      Buffer.add_string b h_token
  | List_graphs -> Buffer.add_char b 'L'
  | Ping -> Buffer.add_char b 'P');
  Buffer.contents b

let decode_request payload =
  let c = { buf = payload; pos = 0 } in
  let req =
    match u8 c "opcode" with
    | 0x51 (* 'Q' *) ->
        let q_id = u32 c "query id" in
        let q_engine = engine_of_code (u8 c "engine") in
        let q_s = u32 c "s" in
        let q_min_size = u32 c "min size" in
        let q_deadline_s =
          match u8 c "deadline flag" with
          | 0 -> None
          | 1 -> Some (f64 c "deadline")
          | n -> fail (Bad_payload (Printf.sprintf "bad deadline flag %d" n))
        in
        let q_max_results =
          match u8 c "max-results flag" with
          | 0 -> None
          | 1 -> Some (u32 c "max results")
          | n -> fail (Bad_payload (Printf.sprintf "bad max-results flag %d" n))
        in
        let name_len = u16 c "graph name length" in
        let q_graph = bytes_of c name_len "graph name" in
        let q_resume = read_state_opt c in
        Query { q_id; q_engine; q_graph; q_s; q_min_size; q_deadline_s; q_max_results; q_resume }
    | 0x4D (* 'M' *) ->
        let m_id = u32 c "mutation id" in
        let name_len = u16 c "graph name length" in
        let m_graph = bytes_of c name_len "graph name" in
        let script_len = u32 c "script length" in
        let m_script = bytes_of c script_len "edit script" in
        Mutate { m_id; m_graph; m_script }
    | 0x52 (* 'R' *) ->
        let rl_id = u32 c "reload id" in
        let name_len = u16 c "graph name length" in
        let rl_graph = bytes_of c name_len "graph name" in
        Reload { rl_id; rl_graph }
    | 0x43 (* 'C' *) -> Cancel (u32 c "cancel id")
    | 0x48 (* 'H' *) ->
        let token_len = u16 c "token length" in
        let h_token = bytes_of c token_len "client token" in
        Hello { h_token }
    | 0x4C (* 'L' *) -> List_graphs
    | 0x50 (* 'P' *) -> Ping
    | op -> fail (Bad_opcode op)
  in
  finish c;
  req

(* ---------- responses ---------- *)

let error_code_byte = function Bad_request -> 1 | Server_error -> 2

let error_code_of_byte = function
  | 1 -> Bad_request
  | 2 -> Server_error
  | n -> fail (Bad_payload (Printf.sprintf "unknown error code %d" n))

let encode_response resp =
  let b = Buffer.create 64 in
  (match resp with
  | Result (id, set) ->
      Buffer.add_char b 'R';
      add_u32 b id;
      Buffer.add_string b set
  | Done d ->
      Buffer.add_char b 'D';
      add_u32 b d.d_id;
      add_u8 b (outcome_code d.d_outcome);
      add_u64 b d.d_emitted;
      add_state_opt b d.d_resume
  | Busy { b_id; b_running; b_queued } ->
      Buffer.add_char b 'B';
      add_u32 b b_id;
      add_u32 b b_running;
      add_u32 b b_queued
  | Retry_after { ra_id; ra_seconds } ->
      Buffer.add_char b 'A';
      add_u32 b ra_id;
      add_f64 b ra_seconds
  | Mutated { mu_id; mu_epoch; mu_edits; mu_n; mu_m } ->
      Buffer.add_char b 'M';
      add_u32 b mu_id;
      add_u64 b mu_epoch;
      add_u32 b mu_edits;
      add_u32 b mu_n;
      add_u64 b mu_m
  | Reloaded { rl_id; rl_epoch; rl_n; rl_m } ->
      Buffer.add_char b 'H';
      add_u32 b rl_id;
      add_u64 b rl_epoch;
      add_u32 b rl_n;
      add_u64 b rl_m
  | Error_resp { e_id; e_code; e_msg } ->
      Buffer.add_char b 'E';
      add_u32 b e_id;
      add_u8 b (error_code_byte e_code);
      Buffer.add_string b e_msg
  | Graphs infos ->
      Buffer.add_char b 'G';
      add_u16 b (List.length infos);
      List.iter
        (fun { g_name; g_n; g_m; g_epoch } ->
          add_u16 b (String.length g_name);
          Buffer.add_string b g_name;
          add_u32 b g_n;
          add_u64 b g_m;
          add_u64 b g_epoch)
        infos
  | Pong -> Buffer.add_char b 'O');
  Buffer.contents b

let decode_response payload =
  let c = { buf = payload; pos = 0 } in
  let resp =
    match u8 c "opcode" with
    | 0x52 (* 'R' *) ->
        let id = u32 c "query id" in
        let set = bytes_of c (String.length payload - c.pos) "result set" in
        Result (id, set)
    | 0x44 (* 'D' *) ->
        let d_id = u32 c "query id" in
        let d_outcome = outcome_of_code (u8 c "outcome") in
        let d_emitted = u64 c "emitted count" in
        let d_resume = read_state_opt c in
        Done { d_id; d_outcome; d_emitted; d_resume }
    | 0x42 (* 'B' *) ->
        let b_id = u32 c "query id" in
        let b_running = u32 c "running count" in
        let b_queued = u32 c "queued count" in
        Busy { b_id; b_running; b_queued }
    | 0x41 (* 'A' *) ->
        let ra_id = u32 c "query id" in
        let ra_seconds = f64 c "retry delay" in
        Retry_after { ra_id; ra_seconds }
    | 0x4D (* 'M' *) ->
        let mu_id = u32 c "mutation id" in
        let mu_epoch = u64 c "epoch" in
        let mu_edits = u32 c "edit count" in
        let mu_n = u32 c "node count" in
        let mu_m = u64 c "edge count" in
        Mutated { mu_id; mu_epoch; mu_edits; mu_n; mu_m }
    | 0x48 (* 'H' *) ->
        let rl_id = u32 c "reload id" in
        let rl_epoch = u64 c "epoch" in
        let rl_n = u32 c "node count" in
        let rl_m = u64 c "edge count" in
        Reloaded { rl_id; rl_epoch; rl_n; rl_m }
    | 0x45 (* 'E' *) ->
        let e_id = u32 c "query id" in
        let e_code = error_code_of_byte (u8 c "error code") in
        let e_msg = bytes_of c (String.length payload - c.pos) "error message" in
        Error_resp { e_id; e_code; e_msg }
    | 0x47 (* 'G' *) ->
        let count = u16 c "graph count" in
        Graphs
          (read_list count (fun () ->
               let name_len = u16 c "graph name length" in
               let g_name = bytes_of c name_len "graph name" in
               let g_n = u32 c "node count" in
               let g_m = u64 c "edge count" in
               let g_epoch = u64 c "epoch" in
               { g_name; g_n; g_m; g_epoch }))
    | 0x4F (* 'O' *) -> Pong
    | op -> fail (Bad_opcode op)
  in
  finish c;
  resp

(* ---------- frame layer ---------- *)

let encode_frame payload =
  if String.length payload > max_payload then invalid_arg "Protocol.encode_frame: oversized";
  Scliques_core.Result_io.Stream.encode_record payload

let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

let decode_frame buf ~pos =
  if pos < 0 || pos > String.length buf then invalid_arg "Protocol.decode_frame: pos";
  if String.length buf - pos < 8 then fail (Truncated "frame header");
  let len = u32_at buf pos in
  let crc = u32_at buf (pos + 4) in
  if len > max_payload then fail (Oversized len);
  if String.length buf - (pos + 8) < len then fail (Truncated "frame payload");
  let payload = String.sub buf (pos + 8) len in
  if Scoll.Crc32.string payload <> crc then fail Crc_mismatch;
  (payload, pos + 8 + len)

(* ---------- channel I/O ---------- *)

let output_magic oc = output_string oc magic

let input_magic ic =
  let got =
    try really_input_string ic (String.length magic)
    with End_of_file -> fail (Truncated "connection magic")
  in
  if not (String.equal got magic) then fail (Bad_magic got)

let output_frame oc payload = output_string oc (encode_frame payload)

let input_frame ic =
  (* the first byte separates a clean EOF (the peer closed between
     frames) from a torn one (it died mid-frame) *)
  match input_char ic with
  | exception End_of_file -> None
  | first ->
      let rest =
        try really_input_string ic 7 with End_of_file -> fail (Truncated "frame header")
      in
      let header = String.make 1 first ^ rest in
      let len = u32_at header 0 in
      let crc = u32_at header 4 in
      if len > max_payload then fail (Oversized len);
      let payload =
        try really_input_string ic len
        with End_of_file -> fail (Truncated "frame payload")
      in
      if Scoll.Crc32.string payload <> crc then fail Crc_mismatch;
      Some payload
