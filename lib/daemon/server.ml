module E = Scliques_core.Enumerate
module Budget = Scliques_core.Budget
module Ckpt = Scliques_core.Checkpoint
module Neighborhood = Scliques_core.Neighborhood
module Stream = Scliques_core.Result_io.Stream
module Overlay = Sgraph.Overlay
module Diff = Sgraph.Diff

type addr = Unix_socket of string | Tcp of string * int

module Smap = Hashtbl.Make (String)

(* ---------- epoch cells and durable state ---------- *)

(* One serving epoch of a graph: an immutable CSR plus the per-s shared
   ball stores warmed against exactly that CSR. A query pins the cell it
   was admitted under and keeps using it even after a mutation installs
   a successor — old cells stay alive (and their stores warm) for as
   long as any pinned query holds them, then the GC takes the lot. *)
type epoch_cell = {
  ec_epoch : int; (* edits applied since load: offset + journal count *)
  ec_graph : Sgraph.Graph.t;
  ec_stores : (int, Neighborhood.Shared.store) Hashtbl.t;
}

(* Durable state of one graph under --state-dir: a generation-numbered
   base snapshot + append-only SGRDIFF1 journal pair, switched by an
   atomically renamed manifest. The journal fd is plain O_WRONLY (not
   O_APPEND) so a failed append can be truncated back to the last acked
   record. *)
type persist = {
  p_dir : string;
  p_name : string;
  mutable p_gen : int;
  mutable p_journal : Unix.file_descr;
  mutable p_journal_len : int; (* bytes acked so far — the truncate target *)
}

(* One preloaded graph. [ge_tip] tracks the persisted base plus every
   journaled edit; [ge_cell] is the epoch currently offered to new
   queries (always a compact CSR of the tip). [ge_pins] counts admitted
   queries holding any cell of this graph — the ledger the teardown
   tests drive to zero. *)
type graph_entry = {
  ge_name : string;
  ge_source : (unit -> Sgraph.Graph.t) option; (* Reload re-reads this *)
  ge_lock : Mutex.t; (* tip, cell, pins, counters, persist *)
  mutable ge_tip : Overlay.t;
  mutable ge_cell : epoch_cell;
  mutable ge_offset : int; (* edits folded into the persisted base *)
  mutable ge_jcount : int; (* edits in the live journal *)
  mutable ge_pins : int;
  ge_persist : persist option;
}

(* What [register] records per admitted query: the budget (for Cancel)
   and the entry whose pin must be released exactly once. *)
type admitted = { aq_budget : Budget.t; aq_entry : graph_entry }

type session = {
  sid : int;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t; (* serializes response frames from all query domains *)
  slock : Mutex.t; (* guards [alive] transitions, [queries] and [squota] *)
  mutable squota : Quota.t option;
      (* the client-identity bucket this connection bills to; None =
         unlimited. Rebound when a [Hello] announces a token. *)
  mutable alive : bool;
  mutable queries : (int * admitted) list; (* admitted, not yet answered *)
}

(* A keyed quota bucket shared by every connection of one client
   identity; [q_seen] is the last lookup time, the idle-sweep clock. *)
type qentry = { q_quota : Quota.t; mutable q_seen : float }

type t = {
  t_addr : addr;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  fault : Scoll.Fault.t;
  graphs : graph_entry Smap.t;
  t_names : string list; (* listing order = the create argument's *)
  par_workers : int;
  cache_capacity : int;
  compact_threshold : int;
  quota : Quota.config option;
  qtable : qentry Smap.t; (* identity key -> shared bucket *)
  qlock : Mutex.t; (* guards [qtable]; never held with another lock *)
  lock : Mutex.t; (* sessions table + stopping flag *)
  mutable sessions : (session * Thread.t) list;
  mutable stopping : bool;
  mutable next_sid : int;
  mutable accept_thread : Thread.t option;
}

(* Raised (only internally) when a response cannot reach the client —
   the session is already marked dead and its budgets cancelled by the
   time this propagates. *)
exception Write_failed

let now () = Unix.gettimeofday ()

(* ---------- per-client quota identity ---------- *)

(* Buckets are keyed by who the client {e is}, not by which connection it
   happens to use: the token a [Hello] announced ("tok:..."), else the
   TCP peer address ("ip:...", port excluded — reconnects come from
   ephemeral ports), else — Unix sockets carry no usable peer address —
   a private per-session bucket. Keyed buckets live in [qtable] and are
   inherited across reconnects, which closes the redial loophole:
   dropping a throttled connection and dialing again resumes the same
   drained bucket instead of minting a full one. *)

let quota_idle_s = 600.

let shared_quota srv cfg key =
  let t = now () in
  Scoll.Sync.with_lock srv.qlock (fun () ->
      (* sweep idle entries on the way in — lookups happen only on
         connect and Hello, and the table holds one entry per recently
         seen client, so a linear pass is cheap *)
      let stale =
        Smap.fold
          (fun k e acc -> if t -. e.q_seen > quota_idle_s then k :: acc else acc)
          srv.qtable []
      in
      List.iter (Smap.remove srv.qtable) stale;
      match Smap.find_opt srv.qtable key with
      | Some e ->
          e.q_seen <- t;
          e.q_quota
      | None ->
          let q = Quota.create cfg ~now:t in
          Smap.add srv.qtable key { q_quota = q; q_seen = t };
          q)

let peer_quota_key fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (ip, _port) -> Some ("ip:" ^ Unix.string_of_inet_addr ip)
  | Unix.ADDR_UNIX _ -> None
  | exception Unix.Unix_error _ -> None

(* The bucket to bill a request to, snapshotted once per request so the
   admit and any later refund hit the same bucket even if a [Hello]
   rebinds the session mid-flight. *)
let session_quota sess = Scoll.Sync.with_lock sess.slock (fun () -> sess.squota)

(* ---------- durable state plumbing ---------- *)

let manifest_magic = "SGRMANI1"

let manifest_path ~dir ~name = Filename.concat dir (name ^ ".manifest")

let base_path ~dir ~name gen =
  Filename.concat dir (Printf.sprintf "%s.base.%d.sgr" name gen)

let journal_path ~dir ~name gen =
  Filename.concat dir (Printf.sprintf "%s.journal.%d" name gen)

(* Only names that are safe as file-name stems may be persisted (or
   reloaded by generation): the wire allows any bytes in a graph name,
   the filesystem does not. *)
let state_name_ok name =
  (not (String.equal name ""))
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       name

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off = if off < len then go (off + Unix.write fd b off (len - off)) in
  go 0

(* The manifest is one line, replaced atomically: a crash mid-rebase
   leaves either the old generation fully live or the new one. *)
let write_manifest path ~gen ~offset =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s %d %d\n" manifest_magic gen offset;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let read_manifest path =
  let ic = open_in_bin path in
  let line =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> try input_line ic with End_of_file -> "")
  in
  let malformed () =
    Sgraph.Io_error.failf ~file:path ~line:1 "malformed manifest %S" line
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ m; g; o ] when String.equal m manifest_magic -> (
      match (int_of_string_opt g, int_of_string_opt o) with
      | Some gen, Some offset when gen >= 0 && offset >= 0 -> (gen, offset)
      | _ -> malformed ())
  | _ -> malformed ()

(* Start a fresh journal for [graph] at generation [gen]: header image,
   fsynced, fd left open at the append position. *)
let open_fresh_journal ~dir ~name gen graph =
  let path = journal_path ~dir ~name gen in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let header =
    Diff.encode_header ~base_n:(Sgraph.Graph.n graph) ~base_m:(Sgraph.Graph.m graph)
  in
  (try
     write_all fd header;
     Unix.fsync fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (fd, String.length header)

(* Fold the journal into a new generation: snapshot [graph], start an
   empty journal beside it, then flip the manifest — the only moment the
   new generation becomes live. Raises on I/O failure with the old
   generation still fully intact (at worst a dead [.base]/[.journal]
   file of the never-activated generation remains). *)
let persist_rebase p graph ~epoch =
  let dir = p.p_dir and name = p.p_name in
  let gen = p.p_gen + 1 in
  Sgraph.Snapshot.save graph (base_path ~dir ~name gen);
  let fd, len = open_fresh_journal ~dir ~name gen graph in
  (try write_manifest (manifest_path ~dir ~name) ~gen ~offset:epoch
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.close p.p_journal with Unix.Unix_error _ -> ());
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ base_path ~dir ~name p.p_gen; journal_path ~dir ~name p.p_gen ];
  p.p_gen <- gen;
  p.p_journal <- fd;
  p.p_journal_len <- len

(* Attach a graph to the state dir: resume from the manifest when one
   exists (base snapshot + strict journal replay — a torn or corrupt
   journal tail is refused, exactly like any SGRDIFF1 script, and the
   server fails to start), else persist the provided graph as
   generation 0. Returns (tip, serving graph, offset, jcount, persist).
   When persisted state exists it wins over the provided graph: the
   state dir is the durable truth, [Reload] is the way back to the
   source. *)
let attach_state ~dir name g =
  let mpath = manifest_path ~dir ~name in
  if Sys.file_exists mpath then begin
    let gen, offset = read_manifest mpath in
    let jpath = journal_path ~dir ~name gen in
    let base = Sgraph.Snapshot.load (base_path ~dir ~name gen) in
    let header, edits = Diff.load jpath in
    Diff.check_base ~file:jpath header base;
    let tip = Overlay.of_graph base in
    (match Overlay.apply tip edits with
    | () -> ()
    | exception Invalid_argument msg ->
        Sgraph.Io_error.failf ~file:jpath ~line:0 "journal replay failed: %s" msg);
    let serving = match edits with [] -> base | _ :: _ -> Overlay.compact tip in
    (* ownership of the journal fd transfers to the persist record
       below; it is closed by [persist_rebase] (generation flip) or by
       [stop] once every session is gone *)
    let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
    let len =
      try Unix.lseek fd 0 Unix.SEEK_END
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    in
    ( tip,
      serving,
      offset,
      List.length edits,
      { p_dir = dir; p_name = name; p_gen = gen; p_journal = fd; p_journal_len = len } )
  end
  else begin
    Sgraph.Snapshot.save g (base_path ~dir ~name 0);
    let fd, len = open_fresh_journal ~dir ~name 0 g in
    write_manifest mpath ~gen:0 ~offset:0;
    ( Overlay.of_graph g,
      g,
      0,
      0,
      { p_dir = dir; p_name = name; p_gen = 0; p_journal = fd; p_journal_len = len } )
  end

(* ---------- session plumbing ---------- *)

let register sess id aq =
  Scoll.Sync.with_lock sess.slock (fun () -> sess.queries <- (id, aq) :: sess.queries)

let unpin entry =
  Scoll.Sync.with_lock entry.ge_lock (fun () -> entry.ge_pins <- entry.ge_pins - 1)

(* Remove the query and release its epoch pin. Exactly-once by
   construction: the remove under [slock] decides a single winner among
   the racing callers (normal completion, the job's finally, an abort,
   session teardown), and only the winner unpins. *)
let unregister sess id =
  let removed =
    Scoll.Sync.with_lock sess.slock (fun () ->
        match List.assoc_opt id sess.queries with
        | None -> None
        | Some aq ->
            sess.queries <- List.filter (fun (i, _) -> i <> id) sess.queries;
            Some aq)
  in
  match removed with None -> () | Some aq -> unpin aq.aq_entry

let lookup sess id =
  Scoll.Sync.with_lock sess.slock (fun () ->
      Option.map (fun aq -> aq.aq_budget) (List.assoc_opt id sess.queries))

let live_query sess id =
  Scoll.Sync.with_lock sess.slock (fun () ->
      List.exists (fun (i, _) -> i = id) sess.queries)

(* First failure wins: mark the session dead, cancel every budget it
   admitted (a worker mid-enumeration observes the trip at its next
   poll), drop its queued jobs, and wake anything blocked on its socket.
   The file descriptors are closed later, by the session thread itself,
   so no other thread ever touches a recycled fd. Pins and quota tokens
   are released by the per-query unregister/abort paths this triggers,
   never here — releasing them twice would corrupt the ledgers. *)
let kill_session srv sess =
  let first =
    Scoll.Sync.with_lock sess.slock (fun () ->
        if sess.alive then begin
          sess.alive <- false;
          true
        end
        else false)
  in
  if first then begin
    List.iter
      (fun (_, aq) -> Budget.request_cancel aq.aq_budget)
      (Scoll.Sync.with_lock sess.slock (fun () -> sess.queries));
    Scheduler.retire_lane srv.sched sess.sid;
    try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

(* Send one response frame. Any failure — the peer vanished (EPIPE /
   reset surfaces as [Sys_error] through the channel), or an injected
   [daemon.write]/[daemon.flush] fault — kills the session and raises
   [Write_failed]: the caller's query dies, its siblings never notice. *)
let send srv sess resp =
  let payload = Protocol.encode_response resp in
  match
    Scoll.Sync.with_lock sess.wlock (fun () ->
        if not sess.alive then raise Write_failed;
        Scoll.Fault.check srv.fault "daemon.write";
        (* SAFETY: [wlock] exists precisely to serialize frame writes; a
           slow peer stalls only this session's writers, and a vanished
           peer surfaces as Sys_error, killing the session below *)
        (Protocol.output_frame sess.oc payload [@lint.allow "lock-order"]);
        Scoll.Fault.check srv.fault "daemon.flush";
        (flush sess.oc [@lint.allow "lock-order"]))
  with
  | () -> ()
  | exception Write_failed -> raise Write_failed
  | exception (Sys_error _ | Unix.Unix_error _ | Scoll.Fault.Injected _) ->
      kill_session srv sess;
      raise Write_failed

let try_send srv sess resp = try send srv sess resp with Write_failed -> ()

(* ---------- query execution (on a scheduler worker domain) ---------- *)

(* The per-s store of a {e pinned} cell — lazily created against the
   cell's own graph, so a query that outlives a mutation keeps warming
   (and hitting) balls of the epoch it was admitted under. *)
let store_for srv entry cell s =
  Scoll.Sync.with_lock entry.ge_lock (fun () ->
      match Hashtbl.find_opt cell.ec_stores s with
      | Some st -> st
      | None ->
          let st =
            Neighborhood.Shared.create ~cache_capacity:srv.cache_capacity ~s
              cell.ec_graph
          in
          Hashtbl.add cell.ec_stores s st;
          st)

let cancelled_done id =
  Protocol.Done
    {
      d_id = id;
      d_outcome = Budget.Truncated Budget.Cancelled;
      d_emitted = 0;
      d_resume = None;
    }

let exec_query srv sess entry cell (q : Protocol.query) budget =
  let emitted = ref 0 in
  let yield set =
    send srv sess (Protocol.Result (q.q_id, Stream.encode_set set));
    incr emitted
  in
  match q.q_engine with
  | Protocol.Alg alg ->
      (* the brute oracle never consults an N^s oracle; every other
         sequential engine attaches to the shared warm cache *)
      let nh =
        match alg with
        | E.Brute -> None
        | _ -> Some (Neighborhood.of_shared (store_for srv entry cell q.q_s))
      in
      let report =
        E.run ~min_size:q.q_min_size ?nh ~budget ?resume:q.q_resume alg
          cell.ec_graph ~s:q.q_s yield
      in
      (* unregister before the terminal frame: the moment the client
         reads Done, the id is free to reuse on this connection *)
      unregister sess q.q_id;
      send srv sess
        (Protocol.Done
           {
             d_id = q.q_id;
             d_outcome = report.E.outcome;
             d_emitted = !emitted;
             d_resume = report.E.resumable;
           })
  | Protocol.Par ->
      let skip_roots =
        match q.q_resume with
        | Some (Ckpt.Roots { retired }) -> retired
        | _ -> []
      in
      let on_root_retired _root results = List.iter yield results in
      let _, outcome, retired =
        Scliques_core.Parallel.enumerate_budgeted ~workers:srv.par_workers
          ~min_size:q.q_min_size ~budget ~skip_roots ~on_root_retired
          cell.ec_graph ~s:q.q_s
      in
      let d_resume =
        match outcome with
        | Budget.Complete -> None
        | Budget.Truncated _ ->
            Some
              (Ckpt.Roots
                 { retired = List.sort Int.compare (skip_roots @ retired) })
      in
      unregister sess q.q_id;
      send srv sess
        (Protocol.Done
           {
             d_id = q.q_id;
             d_outcome = outcome;
             d_emitted = !emitted;
             d_resume;
           })

let run_job srv sess entry cell (q : Protocol.query) budget =
  Fun.protect
    ~finally:(fun () -> unregister sess q.q_id)
    (fun () ->
      match exec_query srv sess entry cell q budget with
      | () -> ()
      | exception Write_failed ->
          (* the session is dead and its budgets cancelled; nothing left
             to tell anyone *)
          ()
      | exception e ->
          (* engine failure (oversized Brute graph, resume mismatch the
             upfront validation missed, an injected par.task fault):
             contained to this one query as a typed error response *)
          (let msg =
             match e with
             | Failure m | Invalid_argument m -> m
             | e -> Printexc.to_string e
           in
           try_send srv sess
             (Protocol.Error_resp
                { e_id = q.q_id; e_code = Protocol.Server_error; e_msg = msg }))
          [@lint.allow "exception-swallow"])

(* ---------- request dispatch (on the session thread) ---------- *)

let validate srv sess (q : Protocol.query) =
  match Smap.find_opt srv.graphs q.q_graph with
  | None -> Error (Printf.sprintf "unknown graph %S" q.q_graph)
  | Some entry ->
      if q.q_s < 1 then Error "s must be >= 1"
      else if q.q_min_size < 0 then Error "min-size must be >= 0"
      else if live_query sess q.q_id then
        Error (Printf.sprintf "query id %d is already in flight" q.q_id)
      else begin
        let family =
          match q.q_engine with
          | Protocol.Alg alg -> E.checkpoint_family alg
          | Protocol.Par -> "roots"
        in
        match q.q_resume with
        | Some st when not (String.equal (Ckpt.family st) family) ->
            Error
              (Printf.sprintf "resume token is %S but the engine needs %S"
                 (Ckpt.family st) family)
        | _ -> Ok entry
      end

let handle_query srv sess (q : Protocol.query) =
  match validate srv sess q with
  | Error msg ->
      try_send srv sess
        (Protocol.Error_resp
           { e_id = q.q_id; e_code = Protocol.Bad_request; e_msg = msg })
  | Ok entry -> (
      match
        Budget.create ?deadline_s:q.q_deadline_s ?max_results:q.q_max_results
          ()
      with
      | exception Invalid_argument msg ->
          try_send srv sess
            (Protocol.Error_resp
               { e_id = q.q_id; e_code = Protocol.Bad_request; e_msg = msg })
      | budget -> (
          (* per-client quota first (a refusal is free and typed), then
             the scheduler's global backlog *)
          let squota = session_quota sess in
          let quota_ok =
            match squota with
            | None -> Ok ()
            | Some qt -> Quota.admit_query qt ~now:(now ())
          in
          match quota_ok with
          | Error wait ->
              try_send srv sess
                (Protocol.Retry_after { ra_id = q.q_id; ra_seconds = wait })
          | Ok () -> (
              let refund () =
                match squota with
                | None -> ()
                | Some qt -> Quota.refund_query qt
              in
              (* pin the serving epoch, then register — so a [Cancel] can
                 hit a query that is still queued, and the job's
                 run/abort paths release both through unregister *)
              let cell =
                Scoll.Sync.with_lock entry.ge_lock (fun () ->
                    entry.ge_pins <- entry.ge_pins + 1;
                    entry.ge_cell)
              in
              register sess q.q_id { aq_budget = budget; aq_entry = entry };
              let job =
                {
                  Scheduler.run =
                    (fun () -> run_job srv sess entry cell q budget);
                  abort =
                    (fun () ->
                      (* dropped before running: the pin and the quota
                         token both come back *)
                      unregister sess q.q_id;
                      refund ();
                      try_send srv sess (cancelled_done q.q_id));
                }
              in
              match Scheduler.submit srv.sched ~lane:sess.sid job with
              | `Accepted -> ()
              | `Busy (running, queued) ->
                  unregister sess q.q_id;
                  refund ();
                  try_send srv sess
                    (Protocol.Busy
                       { b_id = q.q_id; b_running = running; b_queued = queued })
              | `Shutdown ->
                  unregister sess q.q_id;
                  refund ();
                  try_send srv sess (cancelled_done q.q_id))))

(* ---------- mutation (on the session thread) ---------- *)

(* Append the accepted edits to the journal and fsync, with the
   [daemon.mutate.journal] / [daemon.mutate.flush] fault sites armed.
   On any failure the journal is truncated back to the last acked
   record, so the on-disk script is always exactly the acked prefix —
   the crash drill replays it to a well-defined epoch. *)
let journal_append srv entry edits =
  match entry.ge_persist with
  | None -> Ok ()
  | Some p -> (
      let image = String.concat "" (List.map Diff.encode_edit edits) in
      match
        Scoll.Fault.check srv.fault "daemon.mutate.journal";
        (* SAFETY: the append runs under [ge_lock] deliberately — the
           flush-before-ack ordering and the journal's "acked prefix"
           invariant need the tip, the journal and the epoch counters to
           move together; queries never block on [ge_lock] for longer
           than a store probe, and only mutations of this one graph wait *)
        (write_all p.p_journal image [@lint.allow "lock-order"]);
        Scoll.Fault.check srv.fault "daemon.mutate.flush";
        (Unix.fsync p.p_journal [@lint.allow "lock-order"])
      with
      | () ->
          p.p_journal_len <- p.p_journal_len + String.length image;
          Ok ()
      | exception ((Scoll.Fault.Injected _ | Unix.Unix_error _) as e) ->
          (try
             (* SAFETY: same critical section as the failed append; the
                truncate restores the acked-prefix invariant *)
             (Unix.ftruncate p.p_journal p.p_journal_len
             [@lint.allow "lock-order"]);
             ignore (Unix.lseek p.p_journal p.p_journal_len Unix.SEEK_SET)
           with Unix.Unix_error _ -> ());
          Error ("mutation journal append failed: " ^ Printexc.to_string e))

(* Fold the tip into a fresh generation once the delta grew past the
   threshold. Persist failure is not fatal: the current generation's
   journal keeps growing and the rebase retries at the next crossing. *)
(* SAFETY: called only from [apply_mutation], i.e. under [ge_lock] — the
   fact collector is per-call-site for held locks, so the ge_* field
   accesses below look unlocked to it *)
let[@lint.allow "atomicity"] try_rebase entry after =
  let epoch = entry.ge_offset + entry.ge_jcount in
  let ok =
    match entry.ge_persist with
    | None -> true
    | Some p -> (
        (* SAFETY: rebase I/O under [ge_lock] — see journal_append; it
           runs once per [compact_threshold] edits, not per mutation *)
        match (persist_rebase p after ~epoch [@lint.allow "lock-order"]) with
        | () -> true
        | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
            prerr_endline
              (Printf.sprintf
                 "scliques-daemon: rebase of %S deferred (%s); journal keeps \
                  growing"
                 entry.ge_name (Printexc.to_string e));
            false)
  in
  if ok then begin
    entry.ge_tip <- Overlay.of_graph after;
    entry.ge_offset <- epoch;
    entry.ge_jcount <- 0
  end

(* The mutation body, under [ge_lock]: strict apply with inverse-edit
   rollback, flush-before-ack journaling, then a fresh epoch cell whose
   stores carry forward every ball the locality radius keeps valid. The
   old cell — and any query pinned to it — is untouched. *)
(* SAFETY: the single caller in [handle_mutate] holds [ge_lock] for the
   whole body; every ge_* access here is inside that critical section *)
let[@lint.allow "atomicity"] apply_mutation srv entry (header : Diff.header) edits =
  let tip = entry.ge_tip in
  if header.base_n <> Overlay.n tip || header.base_m <> Overlay.m tip then
    Error
      ( Protocol.Bad_request,
        Printf.sprintf
          "diff base mismatch: script against n=%d m=%d, graph %S is at n=%d \
           m=%d (epoch %d)"
          header.base_n header.base_m entry.ge_name (Overlay.n tip)
          (Overlay.m tip)
          (entry.ge_offset + entry.ge_jcount) )
  else begin
    (* [Overlay.apply] is strict but leaves a failed batch half-applied;
       the wire path must be atomic, so apply edit-by-edit and undo the
       applied prefix with inverse edits (guaranteed effective: each
       undoes an edit that just succeeded) on the first ineffective one *)
    let rollback applied =
      List.iter
        (fun e ->
          let undone =
            match e with
            | Overlay.Insert (u, v) -> Overlay.delete_edge tip u v
            | Overlay.Delete (u, v) -> Overlay.insert_edge tip u v
          in
          assert undone)
        applied
    in
    let rec apply_all applied = function
      | [] -> Ok applied
      | e :: rest ->
          let effective =
            match e with
            | Overlay.Insert (u, v) -> Overlay.insert_edge tip u v
            | Overlay.Delete (u, v) -> Overlay.delete_edge tip u v
          in
          if effective then apply_all (e :: applied) rest
          else begin
            rollback applied;
            Error
              (Format.asprintf
                 "ineffective edit %a (inserting a live edge, or deleting an \
                  absent one)"
                 Overlay.pp_edit e)
          end
    in
    match apply_all [] edits with
    | Error msg -> Error (Protocol.Bad_request, msg)
    | Ok applied_rev -> (
        match journal_append srv entry edits with
        | Error msg ->
            rollback applied_rev;
            Error (Protocol.Server_error, msg)
        | Ok () ->
            entry.ge_jcount <- entry.ge_jcount + List.length edits;
            let after = Overlay.compact tip in
            let touched = Overlay.touched edits in
            let stores = Hashtbl.create 4 in
            Hashtbl.iter
              (fun s st ->
                Hashtbl.replace stores s
                  (Neighborhood.Shared.advance st ~after ~touched))
              entry.ge_cell.ec_stores;
            let epoch = entry.ge_offset + entry.ge_jcount in
            entry.ge_cell <- { ec_epoch = epoch; ec_graph = after; ec_stores = stores };
            if Overlay.delta_size tip >= srv.compact_threshold then
              try_rebase entry after;
            Ok (epoch, Sgraph.Graph.n after, Sgraph.Graph.m after))
  end

let handle_mutate srv sess (m : Protocol.mutate) =
  let refuse code msg =
    try_send srv sess
      (Protocol.Error_resp { e_id = m.m_id; e_code = code; e_msg = msg })
  in
  match Smap.find_opt srv.graphs m.m_graph with
  | None -> refuse Protocol.Bad_request (Printf.sprintf "unknown graph %S" m.m_graph)
  | Some entry -> (
      if live_query sess m.m_id then
        refuse Protocol.Bad_request
          (Printf.sprintf "id %d is already in flight as a query" m.m_id)
      else
        let bytes = String.length m.m_script in
        let squota = session_quota sess in
        let quota_ok =
          match squota with
          | None -> Ok ()
          | Some qt -> Quota.admit_mutation qt ~now:(now ()) ~bytes
        in
        match quota_ok with
        | Error wait ->
            try_send srv sess
              (Protocol.Retry_after { ra_id = m.m_id; ra_seconds = wait })
        | Ok () -> (
            (* refusals below hand the bytes back: nothing was journaled,
               so the client should not stay charged for them *)
            let refund () =
              match squota with
              | None -> ()
              | Some qt -> Quota.refund_mutation qt ~bytes
            in
            match Diff.of_string ~file:"<wire>" m.m_script with
            | exception Sgraph.Io_error.Parse_error { msg; _ } ->
                refund ();
                refuse Protocol.Bad_request ("bad edit script: " ^ msg)
            | header, edits -> (
                match
                  Scoll.Sync.with_lock entry.ge_lock (fun () ->
                      (* SAFETY: flush-before-ack by design — the journal
                         write/fsync must share the critical section with
                         the tip and epoch update (see journal_append) *)
                      (apply_mutation srv entry header edits
                      [@lint.allow "lock-order"]))
                with
                | Ok (epoch, n, m_edges) ->
                    try_send srv sess
                      (Protocol.Mutated
                         {
                           mu_id = m.m_id;
                           mu_epoch = epoch;
                           mu_edits = List.length edits;
                           mu_n = n;
                           mu_m = m_edges;
                         })
                | Error (code, msg) ->
                    refund ();
                    refuse code msg)))

(* ---------- reload ---------- *)

(* Hot-swap one graph. With a source loader: re-read it and install a
   fresh epoch-0 cell with cold stores (the graph may be arbitrarily
   different). Without one: fold the journal into a new generation (a
   forced rebase) without changing the serving graph. Sessions survive
   either way, and queries already admitted finish on their pinned
   cell. *)
let reload srv ~graph =
  match Smap.find_opt srv.graphs graph with
  | None -> Error (Printf.sprintf "unknown graph %S" graph)
  | Some entry -> (
      (* file I/O outside the lock: loading must not stall admissions *)
      let loaded =
        match entry.ge_source with
        | None -> Ok None
        | Some load -> (
            match load () with
            | g -> Ok (Some g)
            | exception Sgraph.Io_error.Parse_error { file; line; msg } ->
                Error (Sgraph.Io_error.to_string ~file ~line msg)
            | exception Sys_error msg -> Error msg)
      in
      match loaded with
      | Error _ as e -> e
      | Ok source -> (
          match
            Scoll.Sync.with_lock entry.ge_lock (fun () ->
                Scoll.Fault.check srv.fault "daemon.reload";
                match source with
                | Some g ->
                    (match entry.ge_persist with
                    | None -> ()
                    | Some p ->
                        (* SAFETY: rebase I/O under ge_lock — reload is a
                           rare admin action; see journal_append *)
                        (persist_rebase p g ~epoch:0
                        [@lint.allow "lock-order"]));
                    entry.ge_tip <- Overlay.of_graph g;
                    entry.ge_offset <- 0;
                    entry.ge_jcount <- 0;
                    entry.ge_cell <-
                      {
                        ec_epoch = 0;
                        ec_graph = g;
                        ec_stores = Hashtbl.create 4;
                      };
                    (0, Sgraph.Graph.n g, Sgraph.Graph.m g)
                | None ->
                    let g = entry.ge_cell.ec_graph in
                    let epoch = entry.ge_offset + entry.ge_jcount in
                    (match entry.ge_persist with
                    | None -> ()
                    | Some p ->
                        (* SAFETY: see above *)
                        (persist_rebase p g ~epoch
                        [@lint.allow "lock-order"]));
                    entry.ge_tip <- Overlay.of_graph g;
                    entry.ge_offset <- epoch;
                    entry.ge_jcount <- 0;
                    (epoch, Sgraph.Graph.n g, Sgraph.Graph.m g))
          with
          | result -> Ok result
          | exception Scoll.Fault.Injected site ->
              Error ("injected fault at " ^ site)
          | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
              Error ("reload failed: " ^ Printexc.to_string e)))

let handle_reload srv sess ~rl_id ~rl_graph =
  match reload srv ~graph:rl_graph with
  | Ok (epoch, n, m) ->
      try_send srv sess
        (Protocol.Reloaded { rl_id; rl_epoch = epoch; rl_n = n; rl_m = m })
  | Error msg ->
      try_send srv sess
        (Protocol.Error_resp
           { e_id = rl_id; e_code = Protocol.Server_error; e_msg = msg })

(* ---------- listing ---------- *)

let graph_infos srv =
  List.map
    (fun name ->
      let entry = Smap.find srv.graphs name in
      Scoll.Sync.with_lock entry.ge_lock (fun () ->
          {
            Protocol.g_name = name;
            g_n = Sgraph.Graph.n entry.ge_cell.ec_graph;
            g_m = Sgraph.Graph.m entry.ge_cell.ec_graph;
            g_epoch = entry.ge_cell.ec_epoch;
          }))
    srv.t_names

(* ---------- session loop ---------- *)

let session_loop srv sess =
  match
    Protocol.output_magic sess.oc;
    flush sess.oc;
    Protocol.input_magic sess.ic;
    let rec loop () =
      match Protocol.input_frame sess.ic with
      | None -> () (* clean EOF at a frame boundary: the client left *)
      | Some payload ->
          (match Protocol.decode_request payload with
          | Protocol.Ping -> try_send srv sess Protocol.Pong
          | Protocol.List_graphs ->
              try_send srv sess (Protocol.Graphs (graph_infos srv))
          | Protocol.Cancel id -> (
              match lookup sess id with
              | Some budget -> Budget.request_cancel budget
              | None -> () (* already answered, or never ours: a no-op *))
          | Protocol.Hello { h_token } -> (
              (* rebind the session to the token's shared bucket;
                 fire-and-forget like Cancel. An empty token names
                 nobody and keeps the connection's current identity. *)
              match srv.quota with
              | None -> ()
              | Some cfg ->
                  if not (String.equal h_token "") then begin
                    let qt = shared_quota srv cfg ("tok:" ^ h_token) in
                    Scoll.Sync.with_lock sess.slock (fun () ->
                        sess.squota <- Some qt)
                  end)
          | Protocol.Query q -> handle_query srv sess q
          | Protocol.Mutate m -> handle_mutate srv sess m
          | Protocol.Reload { rl_id; rl_graph } ->
              handle_reload srv sess ~rl_id ~rl_graph);
          loop ()
    in
    loop ()
  with
  | () -> ()
  | exception Protocol.Error e ->
      (* a malformed frame or payload: answer with the typed refusal,
         then drop the connection — after a framing error the byte
         stream cannot be trusted to resynchronize *)
      try_send srv sess
        (Protocol.Error_resp
           {
             e_id = 0;
             e_code = Protocol.Bad_request;
             e_msg = Protocol.error_to_string e;
           })
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _ | Write_failed)
    ->
      ()

let session_thread srv sess () =
  Fun.protect
    ~finally:(fun () ->
      kill_session srv sess;
      (* SAFETY: only this thread closes the fds, and only with the session
         dead (workers check [alive] under [wlock] before touching [oc]);
         the close under [wlock] waits out at most one in-flight frame *)
      Scoll.Sync.with_lock sess.wlock (fun () ->
          (close_out_noerr sess.oc [@lint.allow "lock-order"]));
      close_in_noerr sess.ic;
      Scoll.Sync.with_lock srv.lock (fun () ->
          srv.sessions <-
            List.filter (fun (s, _) -> s.sid <> sess.sid) srv.sessions))
    (fun () -> session_loop srv sess)

(* ---------- accept loop ---------- *)

let spawn_session srv fd =
  (* resolve the connection's initial quota identity before taking
     [srv.lock]: [shared_quota] takes [qlock], and the two locks are
     never held together *)
  let squota =
    match srv.quota with
    | None -> None
    | Some cfg -> (
        match peer_quota_key fd with
        | Some key -> Some (shared_quota srv cfg key)
        | None -> Some (Quota.create cfg ~now:(now ())))
  in
  Scoll.Sync.with_lock srv.lock (fun () ->
      if srv.stopping then raise Write_failed;
      let sess =
        {
          sid = srv.next_sid;
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          wlock = Mutex.create ();
          slock = Mutex.create ();
          squota;
          alive = true;
          queries = [];
        }
      in
      srv.next_sid <- srv.next_sid + 1;
      let th = Thread.create (session_thread srv sess) () in
      srv.sessions <- (sess, th) :: srv.sessions)

let accept_loop srv () =
  let rec loop () =
    let stop = Scoll.Sync.with_lock srv.lock (fun () -> srv.stopping) in
    if not stop then begin
      (match Unix.select [ srv.listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept srv.listen_fd with
          | exception Unix.Unix_error _ -> () (* racing stop, or transient *)
          | fd, _ -> (
              match Scoll.Fault.check srv.fault "daemon.accept" with
              | () -> (
                  try spawn_session srv fd
                  with Write_failed ->
                    (* stop began between select and accept *)
                    (try Unix.close fd with Unix.Unix_error _ -> ()))
              | exception Scoll.Fault.Injected _ ->
                  (* injected accept failure: this one connection is
                     refused (the peer sees EOF instead of the magic);
                     the daemon keeps accepting *)
                  (try Unix.close fd with Unix.Unix_error _ -> ())))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let addr t = t.t_addr

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> 0

type stats = { running : int; queued : int; sessions : int; live_queries : int }

let stats srv =
  let sessions, live_queries =
    Scoll.Sync.with_lock srv.lock (fun () ->
        ( List.length srv.sessions,
          List.fold_left
            (fun acc (sess, _) ->
              acc
              + Scoll.Sync.with_lock sess.slock (fun () ->
                    List.length sess.queries))
            0 srv.sessions ))
  in
  {
    running = Scheduler.running srv.sched;
    queued = Scheduler.queued srv.sched;
    sessions;
    live_queries;
  }

let store srv ~graph ~s =
  match Smap.find_opt srv.graphs graph with
  | None -> None
  | Some entry ->
      Scoll.Sync.with_lock entry.ge_lock (fun () ->
          Hashtbl.find_opt entry.ge_cell.ec_stores s)

let graph_epoch srv ~graph =
  Option.map
    (fun entry ->
      Scoll.Sync.with_lock entry.ge_lock (fun () -> entry.ge_cell.ec_epoch))
    (Smap.find_opt srv.graphs graph)

let pinned srv ~graph =
  Option.map
    (fun entry -> Scoll.Sync.with_lock entry.ge_lock (fun () -> entry.ge_pins))
    (Smap.find_opt srv.graphs graph)

let reload_all srv =
  List.map (fun name -> (name, reload srv ~graph:name)) srv.t_names

let create ?(workers = 2) ?(max_queue = 16) ?(par_workers = 1)
    ?(cache_capacity = 65536) ?(compact_threshold = 1024) ?quota ?state_dir
    ?(sources = []) ?(fault = Scoll.Fault.none) ~graphs addr =
  if par_workers < 1 then
    invalid_arg "Server.create: par_workers must be >= 1";
  if compact_threshold < 1 then
    invalid_arg "Server.create: compact_threshold must be >= 1";
  (match quota with
  | None -> ()
  | Some c -> (
      match Quota.config_ok c with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Server.create: " ^ msg)));
  if List.is_empty graphs then invalid_arg "Server.create: no graphs to serve";
  (* a vanished client must surface as a write error, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let table = Smap.create 8 in
  List.iter
    (fun (name, g) ->
      if String.length name > 0xFFFF then
        invalid_arg "Server.create: graph name exceeds the wire length field";
      if Smap.mem table name then
        invalid_arg (Printf.sprintf "Server.create: duplicate graph %S" name);
      (match state_dir with
      | Some _ when not (state_name_ok name) ->
          invalid_arg
            (Printf.sprintf
               "Server.create: graph name %S cannot be persisted (allowed: \
                letters, digits, '.', '_', '-')"
               name)
      | _ -> ());
      let tip, serving, offset, jcount, persist =
        match state_dir with
        | None -> (Overlay.of_graph g, g, 0, 0, None)
        | Some dir ->
            let tip, serving, offset, jcount, p = attach_state ~dir name g in
            (tip, serving, offset, jcount, Some p)
      in
      Smap.add table name
        {
          ge_name = name;
          ge_source = List.assoc_opt name sources;
          ge_lock = Mutex.create ();
          ge_tip = tip;
          ge_cell =
            {
              ec_epoch = offset + jcount;
              ec_graph = serving;
              ec_stores = Hashtbl.create 4;
            };
          ge_offset = offset;
          ge_jcount = jcount;
          ge_pins = 0;
          ge_persist = persist;
        })
    graphs;
  let listen_fd =
    match addr with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        (* bind under a temp name and rename only after [listen]: the
           file at [path] appearing means a listener is behind it, so a
           watcher polling for the socket can never connect into the
           bind-to-listen window (real on single-core boxes, where the
           daemon may be preempted between the two syscalls) *)
        let tmp = Printf.sprintf "%s.%d.bind" path (Unix.getpid ()) in
        if Sys.file_exists tmp then Sys.remove tmp;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX tmp);
           Unix.listen fd 64;
           Unix.rename tmp path
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e);
        fd
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                invalid_arg
                  (Printf.sprintf "Server.create: host %S has no address" host)
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found ->
                invalid_arg
                  (Printf.sprintf "Server.create: unknown host %S" host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (ip, port));
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
  in
  let srv =
    {
      t_addr = addr;
      listen_fd;
      sched = Scheduler.create ~workers ~max_queue;
      fault;
      graphs = table;
      t_names = List.map fst graphs;
      par_workers;
      cache_capacity;
      compact_threshold;
      quota;
      qtable = Smap.create 8;
      qlock = Mutex.create ();
      lock = Mutex.create ();
      sessions = [];
      stopping = false;
      next_sid = 1;
      accept_thread = None;
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let stop ?(drain = true) srv =
  let first =
    Scoll.Sync.with_lock srv.lock (fun () ->
        if srv.stopping then false
        else begin
          srv.stopping <- true;
          true
        end)
  in
  if first then begin
    (match srv.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (match srv.t_addr with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    if not drain then
      (* truncate the in-flight queries: each answers Done (cancelled,
         with whatever resume token its engine can produce) promptly *)
      List.iter
        (fun (sess, _) ->
          List.iter
            (fun (_, aq) -> Budget.request_cancel aq.aq_budget)
            (Scoll.Sync.with_lock sess.slock (fun () -> sess.queries)))
        (Scoll.Sync.with_lock srv.lock (fun () -> srv.sessions));
    (* refuse new work, abort the backlog (each queued query is answered
       with a cancelled Done), wait for the running queries to finish
       streaming, and join the worker domains *)
    Scheduler.shutdown srv.sched;
    let sessions = Scoll.Sync.with_lock srv.lock (fun () -> srv.sessions) in
    List.iter
      (fun (sess, _) ->
        try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      sessions;
    List.iter (fun (_, th) -> Thread.join th) sessions;
    (* every session is gone: the journals can close *)
    Smap.iter
      (fun _ entry ->
        match entry.ge_persist with
        | None -> ()
        | Some p -> ( try Unix.close p.p_journal with Unix.Unix_error _ -> ()))
      srv.graphs
  end
  else
    (* a concurrent stop owns the teardown; wait until it finished *)
    let rec wait () =
      let busy =
        Scoll.Sync.with_lock srv.lock (fun () ->
            not (List.is_empty srv.sessions))
      in
      if busy then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ()
