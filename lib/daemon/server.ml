module E = Scliques_core.Enumerate
module Budget = Scliques_core.Budget
module Ckpt = Scliques_core.Checkpoint
module Neighborhood = Scliques_core.Neighborhood
module Stream = Scliques_core.Result_io.Stream

type addr = Unix_socket of string | Tcp of string * int

module Smap = Hashtbl.Make (String)

(* One preloaded graph plus its lazily created per-s shared ball caches:
   every query against (name, s) attaches to the same store, so the
   first query warms the cache for all its siblings. *)
type graph_entry = {
  ge_graph : Sgraph.Graph.t;
  ge_lock : Mutex.t;
  ge_stores : (int, Neighborhood.Shared.store) Hashtbl.t;
}

type session = {
  sid : int;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t; (* serializes response frames from all query domains *)
  slock : Mutex.t; (* guards [alive] transitions and [queries] *)
  mutable alive : bool;
  mutable queries : (int * Budget.t) list; (* admitted, not yet answered *)
}

type t = {
  t_addr : addr;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  fault : Scoll.Fault.t;
  graphs : graph_entry Smap.t;
  graph_infos : Protocol.graph_info list;
  par_workers : int;
  cache_capacity : int;
  lock : Mutex.t; (* sessions table + stopping flag *)
  mutable sessions : (session * Thread.t) list;
  mutable stopping : bool;
  mutable next_sid : int;
  mutable accept_thread : Thread.t option;
}

(* Raised (only internally) when a response cannot reach the client —
   the session is already marked dead and its budgets cancelled by the
   time this propagates. *)
exception Write_failed

(* ---------- session plumbing ---------- *)

let register sess id budget =
  Scoll.Sync.with_lock sess.slock (fun () ->
      sess.queries <- (id, budget) :: sess.queries)

let unregister sess id =
  Scoll.Sync.with_lock sess.slock (fun () ->
      sess.queries <- List.filter (fun (i, _) -> i <> id) sess.queries)

let lookup sess id =
  Scoll.Sync.with_lock sess.slock (fun () -> List.assoc_opt id sess.queries)

let live_query sess id =
  Scoll.Sync.with_lock sess.slock (fun () ->
      List.exists (fun (i, _) -> i = id) sess.queries)

(* First failure wins: mark the session dead, cancel every budget it
   admitted (a worker mid-enumeration observes the trip at its next
   poll), drop its queued jobs, and wake anything blocked on its socket.
   The file descriptors are closed later, by the session thread itself,
   so no other thread ever touches a recycled fd. *)
let kill_session srv sess =
  let first =
    Scoll.Sync.with_lock sess.slock (fun () ->
        if sess.alive then begin
          sess.alive <- false;
          true
        end
        else false)
  in
  if first then begin
    List.iter
      (fun (_, b) -> Budget.request_cancel b)
      (Scoll.Sync.with_lock sess.slock (fun () -> sess.queries));
    Scheduler.retire_lane srv.sched sess.sid;
    try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

(* Send one response frame. Any failure — the peer vanished (EPIPE /
   reset surfaces as [Sys_error] through the channel), or an injected
   [daemon.write]/[daemon.flush] fault — kills the session and raises
   [Write_failed]: the caller's query dies, its siblings never notice. *)
let send srv sess resp =
  let payload = Protocol.encode_response resp in
  match
    Scoll.Sync.with_lock sess.wlock (fun () ->
        if not sess.alive then raise Write_failed;
        Scoll.Fault.check srv.fault "daemon.write";
        (* SAFETY: [wlock] exists precisely to serialize frame writes; a
           slow peer stalls only this session's writers, and a vanished
           peer surfaces as Sys_error, killing the session below *)
        (Protocol.output_frame sess.oc payload [@lint.allow "lock-order"]);
        Scoll.Fault.check srv.fault "daemon.flush";
        (flush sess.oc [@lint.allow "lock-order"]))
  with
  | () -> ()
  | exception Write_failed -> raise Write_failed
  | exception (Sys_error _ | Unix.Unix_error _ | Scoll.Fault.Injected _) ->
      kill_session srv sess;
      raise Write_failed

let try_send srv sess resp = try send srv sess resp with Write_failed -> ()

(* ---------- query execution (on a scheduler worker domain) ---------- *)

let store_for srv entry s =
  Scoll.Sync.with_lock entry.ge_lock (fun () ->
      match Hashtbl.find_opt entry.ge_stores s with
      | Some st -> st
      | None ->
          let st =
            Neighborhood.Shared.create ~cache_capacity:srv.cache_capacity ~s
              entry.ge_graph
          in
          Hashtbl.add entry.ge_stores s st;
          st)

let cancelled_done id =
  Protocol.Done
    {
      d_id = id;
      d_outcome = Budget.Truncated Budget.Cancelled;
      d_emitted = 0;
      d_resume = None;
    }

let exec_query srv sess entry (q : Protocol.query) budget =
  let emitted = ref 0 in
  let yield set =
    send srv sess (Protocol.Result (q.q_id, Stream.encode_set set));
    incr emitted
  in
  match q.q_engine with
  | Protocol.Alg alg ->
      (* the brute oracle never consults an N^s oracle; every other
         sequential engine attaches to the shared warm cache *)
      let nh =
        match alg with
        | E.Brute -> None
        | _ -> Some (Neighborhood.of_shared (store_for srv entry q.q_s))
      in
      let report =
        E.run ~min_size:q.q_min_size ?nh ~budget ?resume:q.q_resume alg
          entry.ge_graph ~s:q.q_s yield
      in
      (* unregister before the terminal frame: the moment the client
         reads Done, the id is free to reuse on this connection *)
      unregister sess q.q_id;
      send srv sess
        (Protocol.Done
           {
             d_id = q.q_id;
             d_outcome = report.E.outcome;
             d_emitted = !emitted;
             d_resume = report.E.resumable;
           })
  | Protocol.Par ->
      let skip_roots =
        match q.q_resume with
        | Some (Ckpt.Roots { retired }) -> retired
        | _ -> []
      in
      let on_root_retired _root results = List.iter yield results in
      let _, outcome, retired =
        Scliques_core.Parallel.enumerate_budgeted ~workers:srv.par_workers
          ~min_size:q.q_min_size ~budget ~skip_roots ~on_root_retired
          entry.ge_graph ~s:q.q_s
      in
      let d_resume =
        match outcome with
        | Budget.Complete -> None
        | Budget.Truncated _ ->
            Some
              (Ckpt.Roots
                 { retired = List.sort Int.compare (skip_roots @ retired) })
      in
      unregister sess q.q_id;
      send srv sess
        (Protocol.Done
           {
             d_id = q.q_id;
             d_outcome = outcome;
             d_emitted = !emitted;
             d_resume;
           })

let run_job srv sess entry (q : Protocol.query) budget =
  Fun.protect
    ~finally:(fun () -> unregister sess q.q_id)
    (fun () ->
      match exec_query srv sess entry q budget with
      | () -> ()
      | exception Write_failed ->
          (* the session is dead and its budgets cancelled; nothing left
             to tell anyone *)
          ()
      | exception e ->
          (* engine failure (oversized Brute graph, resume mismatch the
             upfront validation missed, an injected par.task fault):
             contained to this one query as a typed error response *)
          (let msg =
             match e with
             | Failure m | Invalid_argument m -> m
             | e -> Printexc.to_string e
           in
           try_send srv sess
             (Protocol.Error_resp
                { e_id = q.q_id; e_code = Protocol.Server_error; e_msg = msg }))
          [@lint.allow "exception-swallow"])

(* ---------- request dispatch (on the session thread) ---------- *)

let validate srv sess (q : Protocol.query) =
  match Smap.find_opt srv.graphs q.q_graph with
  | None -> Error (Printf.sprintf "unknown graph %S" q.q_graph)
  | Some entry ->
      if q.q_s < 1 then Error "s must be >= 1"
      else if q.q_min_size < 0 then Error "min-size must be >= 0"
      else if live_query sess q.q_id then
        Error (Printf.sprintf "query id %d is already in flight" q.q_id)
      else begin
        let family =
          match q.q_engine with
          | Protocol.Alg alg -> E.checkpoint_family alg
          | Protocol.Par -> "roots"
        in
        match q.q_resume with
        | Some st when not (String.equal (Ckpt.family st) family) ->
            Error
              (Printf.sprintf "resume token is %S but the engine needs %S"
                 (Ckpt.family st) family)
        | _ -> Ok entry
      end

let handle_query srv sess (q : Protocol.query) =
  match validate srv sess q with
  | Error msg ->
      try_send srv sess
        (Protocol.Error_resp
           { e_id = q.q_id; e_code = Protocol.Bad_request; e_msg = msg })
  | Ok entry -> (
      match
        Budget.create ?deadline_s:q.q_deadline_s ?max_results:q.q_max_results
          ()
      with
      | exception Invalid_argument msg ->
          try_send srv sess
            (Protocol.Error_resp
               { e_id = q.q_id; e_code = Protocol.Bad_request; e_msg = msg })
      | budget -> (
          (* registered before submission so a [Cancel] can hit a query
             that is still queued; the job's run/abort unregisters *)
          register sess q.q_id budget;
          let job =
            {
              Scheduler.run = (fun () -> run_job srv sess entry q budget);
              abort =
                (fun () ->
                  unregister sess q.q_id;
                  try_send srv sess (cancelled_done q.q_id));
            }
          in
          match Scheduler.submit srv.sched ~lane:sess.sid job with
          | `Accepted -> ()
          | `Busy (running, queued) ->
              unregister sess q.q_id;
              try_send srv sess
                (Protocol.Busy
                   { b_id = q.q_id; b_running = running; b_queued = queued })
          | `Shutdown ->
              unregister sess q.q_id;
              try_send srv sess (cancelled_done q.q_id)))

let session_loop srv sess =
  match
    Protocol.output_magic sess.oc;
    flush sess.oc;
    Protocol.input_magic sess.ic;
    let rec loop () =
      match Protocol.input_frame sess.ic with
      | None -> () (* clean EOF at a frame boundary: the client left *)
      | Some payload ->
          (match Protocol.decode_request payload with
          | Protocol.Ping -> try_send srv sess Protocol.Pong
          | Protocol.List_graphs ->
              try_send srv sess (Protocol.Graphs srv.graph_infos)
          | Protocol.Cancel id -> (
              match lookup sess id with
              | Some budget -> Budget.request_cancel budget
              | None -> () (* already answered, or never ours: a no-op *))
          | Protocol.Query q -> handle_query srv sess q);
          loop ()
    in
    loop ()
  with
  | () -> ()
  | exception Protocol.Error e ->
      (* a malformed frame or payload: answer with the typed refusal,
         then drop the connection — after a framing error the byte
         stream cannot be trusted to resynchronize *)
      try_send srv sess
        (Protocol.Error_resp
           {
             e_id = 0;
             e_code = Protocol.Bad_request;
             e_msg = Protocol.error_to_string e;
           })
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _ | Write_failed)
    ->
      ()

let session_thread srv sess () =
  Fun.protect
    ~finally:(fun () ->
      kill_session srv sess;
      (* SAFETY: only this thread closes the fds, and only with the session
         dead (workers check [alive] under [wlock] before touching [oc]);
         the close under [wlock] waits out at most one in-flight frame *)
      Scoll.Sync.with_lock sess.wlock (fun () ->
          (close_out_noerr sess.oc [@lint.allow "lock-order"]));
      close_in_noerr sess.ic;
      Scoll.Sync.with_lock srv.lock (fun () ->
          srv.sessions <-
            List.filter (fun (s, _) -> s.sid <> sess.sid) srv.sessions))
    (fun () -> session_loop srv sess)

(* ---------- accept loop ---------- *)

let spawn_session srv fd =
  Scoll.Sync.with_lock srv.lock (fun () ->
      if srv.stopping then raise Write_failed;
      let sess =
        {
          sid = srv.next_sid;
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          wlock = Mutex.create ();
          slock = Mutex.create ();
          alive = true;
          queries = [];
        }
      in
      srv.next_sid <- srv.next_sid + 1;
      let th = Thread.create (session_thread srv sess) () in
      srv.sessions <- (sess, th) :: srv.sessions)

let accept_loop srv () =
  let rec loop () =
    let stop = Scoll.Sync.with_lock srv.lock (fun () -> srv.stopping) in
    if not stop then begin
      (match Unix.select [ srv.listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept srv.listen_fd with
          | exception Unix.Unix_error _ -> () (* racing stop, or transient *)
          | fd, _ -> (
              match Scoll.Fault.check srv.fault "daemon.accept" with
              | () -> (
                  try spawn_session srv fd
                  with Write_failed ->
                    (* stop began between select and accept *)
                    (try Unix.close fd with Unix.Unix_error _ -> ()))
              | exception Scoll.Fault.Injected _ ->
                  (* injected accept failure: this one connection is
                     refused (the peer sees EOF instead of the magic);
                     the daemon keeps accepting *)
                  (try Unix.close fd with Unix.Unix_error _ -> ())))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let addr t = t.t_addr

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> 0

type stats = { running : int; queued : int; sessions : int; live_queries : int }

let stats srv =
  let sessions, live_queries =
    Scoll.Sync.with_lock srv.lock (fun () ->
        ( List.length srv.sessions,
          List.fold_left
            (fun acc (sess, _) ->
              acc
              + Scoll.Sync.with_lock sess.slock (fun () ->
                    List.length sess.queries))
            0 srv.sessions ))
  in
  {
    running = Scheduler.running srv.sched;
    queued = Scheduler.queued srv.sched;
    sessions;
    live_queries;
  }

let store srv ~graph ~s =
  match Smap.find_opt srv.graphs graph with
  | None -> None
  | Some entry ->
      Scoll.Sync.with_lock entry.ge_lock (fun () ->
          Hashtbl.find_opt entry.ge_stores s)

let create ?(workers = 2) ?(max_queue = 16) ?(par_workers = 1)
    ?(cache_capacity = 65536) ?(fault = Scoll.Fault.none) ~graphs addr =
  if par_workers < 1 then
    invalid_arg "Server.create: par_workers must be >= 1";
  if List.is_empty graphs then invalid_arg "Server.create: no graphs to serve";
  (* a vanished client must surface as a write error, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let table = Smap.create 8 in
  List.iter
    (fun (name, g) ->
      if String.length name > 0xFFFF then
        invalid_arg "Server.create: graph name exceeds the wire length field";
      if Smap.mem table name then
        invalid_arg (Printf.sprintf "Server.create: duplicate graph %S" name);
      Smap.add table name
        { ge_graph = g; ge_lock = Mutex.create (); ge_stores = Hashtbl.create 4 })
    graphs;
  let graph_infos =
    List.map
      (fun (name, g) ->
        {
          Protocol.g_name = name;
          g_n = Sgraph.Graph.n g;
          g_m = Sgraph.Graph.m g;
        })
      graphs
  in
  let listen_fd =
    match addr with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                invalid_arg
                  (Printf.sprintf "Server.create: host %S has no address" host)
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found ->
                invalid_arg
                  (Printf.sprintf "Server.create: unknown host %S" host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (ip, port));
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
  in
  let srv =
    {
      t_addr = addr;
      listen_fd;
      sched = Scheduler.create ~workers ~max_queue;
      fault;
      graphs = table;
      graph_infos;
      par_workers;
      cache_capacity;
      lock = Mutex.create ();
      sessions = [];
      stopping = false;
      next_sid = 1;
      accept_thread = None;
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let stop ?(drain = true) srv =
  let first =
    Scoll.Sync.with_lock srv.lock (fun () ->
        if srv.stopping then false
        else begin
          srv.stopping <- true;
          true
        end)
  in
  if first then begin
    (match srv.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (match srv.t_addr with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    if not drain then
      (* truncate the in-flight queries: each answers Done (cancelled,
         with whatever resume token its engine can produce) promptly *)
      List.iter
        (fun (sess, _) ->
          List.iter
            (fun (_, b) -> Budget.request_cancel b)
            (Scoll.Sync.with_lock sess.slock (fun () -> sess.queries)))
        (Scoll.Sync.with_lock srv.lock (fun () -> srv.sessions));
    (* refuse new work, abort the backlog (each queued query is answered
       with a cancelled Done), wait for the running queries to finish
       streaming, and join the worker domains *)
    Scheduler.shutdown srv.sched;
    let sessions = Scoll.Sync.with_lock srv.lock (fun () -> srv.sessions) in
    List.iter
      (fun (sess, _) ->
        try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      sessions;
    List.iter (fun (_, th) -> Thread.join th) sessions
  end
  else
    (* a concurrent stop owns the teardown; wait until it finished *)
    let rec wait () =
      let busy =
        Scoll.Sync.with_lock srv.lock (fun () ->
            not (List.is_empty srv.sessions))
      in
      if busy then begin
        Thread.yield ();
        wait ()
      end
    in
    wait ()
