(** The s-clique query daemon: concurrent [SCLQRPC1] serving over a
    Unix-domain or TCP socket.

    A server preloads named graphs (the CLI loads [.sgr] snapshots),
    listens on one socket, and answers each connection on its own
    thread. [Query] requests are admitted through the {!Scheduler} —
    bounded backlog, one fair round-robin lane per connection — and
    execute on its shared pool of worker domains, streaming one
    [Result] frame per maximal connected s-clique and a terminal [Done]
    (outcome + resume token) through the session's frame-atomic writer.
    Queries against the same graph and [s] share one warm epoch-tagged
    N{^s} ball cache ({!Scliques_core.Neighborhood.Shared}), created
    lazily per [(graph, s)].

    Failure containment is the design invariant: a malformed request, a
    client that disconnects mid-stream, a blocked or broken socket
    write, or an injected {!Scoll.Fault} at [daemon.accept] /
    [daemon.write] / [daemon.flush] degrades to a per-query error or a
    dead session — the daemon itself, its worker pool and its sibling
    queries keep running, and the dead session's budgets are cancelled
    and its scheduler lane retired so nothing leaks. The fault-drill
    suite in [test_daemon.ml] pins all of this down. *)

type addr =
  | Unix_socket of string  (** path; a stale socket file is replaced *)
  | Tcp of string * int  (** host, port; port [0] picks a free one *)

type t

val create :
  ?workers:int ->
  ?max_queue:int ->
  ?par_workers:int ->
  ?cache_capacity:int ->
  ?fault:Scoll.Fault.t ->
  graphs:(string * Sgraph.Graph.t) list ->
  addr ->
  t
(** Bind, listen, spawn [workers] (default 2) query domains and the
    accept thread; returns once the socket accepts connections.
    [max_queue] (default 16) bounds admitted-but-not-running queries —
    past it, submission answers [Busy]. [par_workers] (default 1) is the
    domain count a [Par]-engine query may use {e in addition to} its
    scheduler worker. [cache_capacity] bounds each shared ball cache.
    [fault] arms the [daemon.accept]/[daemon.write]/[daemon.flush]
    injection sites.
    @raise Invalid_argument on an empty or duplicate-name graph list, a
    graph name longer than the wire's u16 length field, or bad limits.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val addr : t -> addr

val port : t -> int
(** The bound TCP port ([Tcp (_, 0)] resolves to the kernel's pick);
    [0] for a Unix socket. *)

type stats = {
  running : int;  (** queries executing on a worker domain right now *)
  queued : int;  (** admitted queries waiting for a worker *)
  sessions : int;  (** live client connections *)
  live_queries : int;
      (** queries admitted and not yet answered with a terminal frame —
          running, queued, or streaming; [0] when the daemon is idle *)
}

val stats : t -> stats

val store :
  t -> graph:string -> s:int -> Scliques_core.Neighborhood.Shared.store option
(** The shared N{^s} ball cache for [(graph, s)] — [None] until a first
    query created it. The fault drill uses this to check the weight
    ledger after sessions die mid-query. *)

val stop : ?drain:bool -> t -> unit
(** Shut down: stop accepting, refuse new submissions, abort queued
    queries (each is answered with a cancelled [Done]), then wait for
    the running queries to finish streaming, close every session and
    join every thread and domain. A [Unix_socket] file is removed. With
    [~drain:false] the in-flight queries' budgets are cancelled first,
    so they truncate at their next poll instead of running out.
    Idempotent; concurrent calls wait for the first. *)
