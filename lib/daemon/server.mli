(** The s-clique query daemon: concurrent [SCLQRPC1] serving over a
    Unix-domain or TCP socket, with live wire-level mutations.

    A server preloads named graphs (the CLI loads [.sgr] snapshots),
    listens on one socket, and answers each connection on its own
    thread. [Query] requests are admitted through the {!Scheduler} —
    bounded backlog, one fair round-robin lane per connection — and
    execute on its shared pool of worker domains, streaming one
    [Result] frame per maximal connected s-clique and a terminal [Done]
    (outcome + resume token) through the session's frame-atomic writer.

    {2 Epoch-pinned serving}

    Each graph is an {e epoch-tracked cell}: an immutable CSR plus the
    per-[s] warm N{^s} ball caches ({!Scliques_core.Neighborhood.Shared})
    built against exactly that CSR. A query pins the cell it was
    admitted under, for its whole lifetime — so a [Mutate] or [Reload]
    that lands mid-enumeration never changes a running query's answer;
    the query finishes against its pinned epoch, and the old cell (with
    its warm caches) is reclaimed by the GC once the last pin drops.
    [Mutate] applies a strict [SGRDIFF1] script atomically (all edits or
    none, with inverse-edit rollback), then installs a successor cell
    whose caches carry forward every ball outside the edits' radius-[s]
    locality ({!Scliques_core.Neighborhood.Shared.advance}). The epoch
    number is the count of edits applied since the graph was loaded —
    stable across restarts, because it is exactly what the journal
    replays.

    {2 Durability}

    With [~state_dir], every accepted [Mutate] is appended to a
    per-graph CRC'd [SGRDIFF1] journal and [fsync]ed {e before} the
    [Mutated] ack — a crash after the ack can never lose an
    acknowledged edit, and a crash before it leaves a journal whose
    strict replay ({!Sgraph.Diff}: torn tails refused) reproduces a
    well-defined epoch. On restart the state dir wins over the graphs
    passed to {!create}: the base snapshot of the live generation is
    loaded and its journal replayed. Once a graph's overlay delta
    crosses [compact_threshold] edits, the journal is folded into a new
    generation (snapshot + empty journal, switched by an atomically
    renamed manifest).

    {2 Admission}

    Per-client token-bucket {!Quota}s (queries, and mutation bytes) sit
    in front of the scheduler's global backlog: a client over its quota
    is refused with a typed [Retry_after] carrying an honest wait, and
    its siblings' throughput is unaffected. Refused or aborted
    admissions refund their tokens.

    Failure containment remains the design invariant: a malformed
    request, a client that disconnects mid-stream (or mid-mutation), a
    blocked or broken socket write, or an injected {!Scoll.Fault} at
    [daemon.accept] / [daemon.write] / [daemon.flush] /
    [daemon.mutate.journal] / [daemon.mutate.flush] / [daemon.reload]
    degrades to a per-request error or a dead session — the daemon
    itself, its worker pool and its sibling queries keep running; the
    dead session's budgets are cancelled, its scheduler lane retired,
    its epoch pins released and its quota tokens refunded, so nothing
    leaks (the [pinned] and cache-ledger checks in [test_daemon.ml]
    assert exactly this). A fault between the journal append and the
    ack truncates the journal back to the acked prefix, so the disk
    image is always a prefix of the acked history. *)

type addr =
  | Unix_socket of string  (** path; a stale socket file is replaced *)
  | Tcp of string * int  (** host, port; port [0] picks a free one *)

type t

val create :
  ?workers:int ->
  ?max_queue:int ->
  ?par_workers:int ->
  ?cache_capacity:int ->
  ?compact_threshold:int ->
  ?quota:Quota.config ->
  ?state_dir:string ->
  ?sources:(string * (unit -> Sgraph.Graph.t)) list ->
  ?fault:Scoll.Fault.t ->
  graphs:(string * Sgraph.Graph.t) list ->
  addr ->
  t
(** Bind, listen, spawn [workers] (default 2) query domains and the
    accept thread; returns once the socket accepts connections.
    [max_queue] (default 16) bounds admitted-but-not-running queries —
    past it, submission answers [Busy]. [par_workers] (default 1) is the
    domain count a [Par]-engine query may use {e in addition to} its
    scheduler worker. [cache_capacity] bounds each shared ball cache.
    [compact_threshold] (default 1024) is the overlay delta size past
    which a mutation folds the journal into a fresh generation. [quota]
    arms per-client admission buckets (default: unlimited). [state_dir]
    makes mutations durable (see above); graph names must then be plain
    file-name stems ([A-Za-z0-9._-]). [sources] maps graph names to
    loader thunks that [Reload] re-reads — a graph without one reloads
    as a journal fold of its current state. [fault] arms the injection
    sites listed above.
    @raise Invalid_argument on an empty or duplicate-name graph list, a
    graph name longer than the wire's u16 length field (or not
    persistable under [state_dir]), or bad limits.
    @raise Unix.Unix_error when the socket cannot be bound.
    @raise Sgraph.Io_error.Parse_error when [state_dir] holds a corrupt
    manifest, base snapshot, or journal (a torn journal tail refuses to
    start — recover by truncating the journal to a record boundary or
    removing the graph's state). *)

val addr : t -> addr

val port : t -> int
(** The bound TCP port ([Tcp (_, 0)] resolves to the kernel's pick);
    [0] for a Unix socket. *)

type stats = {
  running : int;  (** queries executing on a worker domain right now *)
  queued : int;  (** admitted queries waiting for a worker *)
  sessions : int;  (** live client connections *)
  live_queries : int;
      (** queries admitted and not yet answered with a terminal frame —
          running, queued, or streaming; [0] when the daemon is idle *)
}

val stats : t -> stats

val store :
  t -> graph:string -> s:int -> Scliques_core.Neighborhood.Shared.store option
(** The {e current} epoch's shared N{^s} ball cache for [(graph, s)] —
    [None] until a query of the current epoch created it. The fault
    drill uses this to check the weight ledger after sessions die
    mid-query. *)

val graph_epoch : t -> graph:string -> int option
(** The serving epoch: edits applied since load. [None] for an unknown
    graph. *)

val pinned : t -> graph:string -> int option
(** Queries currently holding an epoch pin on the graph — the teardown
    ledger; [Some 0] when the daemon is idle. [None] for an unknown
    graph. *)

val reload : t -> graph:string -> (int * int * int, string) result
(** Hot-swap one graph, returning [(epoch, n, m)]. With a [sources]
    loader: re-read it and serve the result at epoch 0 with cold caches
    (and, under [state_dir], persist it as a fresh generation {e
    before} the swap — a failed load or persist leaves the graph
    exactly as it was). Without one: fold the journal into a fresh
    generation without changing the serving graph. Sessions survive,
    and queries already admitted finish on their pinned epoch. Also
    reachable over the wire ([Reload]) and via SIGHUP in the daemon
    binary. *)

val reload_all : t -> (string * (int * int * int, string) result) list
(** {!reload} every graph, in listing order. *)

val stop : ?drain:bool -> t -> unit
(** Shut down: stop accepting, refuse new submissions, abort queued
    queries (each is answered with a cancelled [Done]), then wait for
    the running queries to finish streaming, close every session and
    join every thread and domain, and close every journal. A
    [Unix_socket] file is removed. With [~drain:false] the in-flight
    queries' budgets are cancelled first, so they truncate at their
    next poll instead of running out. Idempotent; concurrent calls wait
    for the first. *)
