(** Fair, bounded scheduling of query jobs onto a shared worker pool.

    The daemon runs every query body on one of [workers] dedicated
    domains; sessions submit jobs into per-{e lane} FIFO queues (one lane
    per connection) and the workers drain the lanes round-robin — after a
    lane yields one job it goes to the back of the rotation, so a client
    that floods queries cannot starve its siblings. Admission is bounded:
    a submit that finds every worker busy {e and} the backlog at
    [max_queue] is refused with [`Busy], the wire protocol's typed
    pushback.

    Jobs carry two closures: [run] executes on a worker; [abort] is
    called instead (on the caller of {!retire_lane}/{!shutdown}) when the
    job is dropped before running — the session uses it to answer the
    query with a cancelled [Done] and release its accounting. Exactly one
    of the two is invoked, exactly once. *)

type t

type job = { run : unit -> unit; abort : unit -> unit }

val create : workers:int -> max_queue:int -> t
(** Spawn [workers] domains ready to drain jobs. [max_queue] bounds the
    jobs accepted but not yet running (0 = refuse whenever all workers
    are busy).
    @raise Invalid_argument when [workers < 1] or [max_queue < 0]. *)

val submit : t -> lane:int -> job -> [ `Accepted | `Busy of int * int | `Shutdown ]
(** Enqueue on the lane. [`Busy (running, queued)] when admission refused
    it; [`Shutdown] after {!shutdown} began. Accepted jobs run in FIFO
    order within their lane. *)

val retire_lane : t -> int -> unit
(** Drop the lane's queued jobs (their [abort]s run in this thread, in
    FIFO order) — the session died; whatever it had running is cancelled
    separately through its budget. *)

val running : t -> int

val queued : t -> int

val shutdown : t -> unit
(** Graceful drain: refuse new submits, [abort] every queued job, then
    block until the running jobs finish and every worker domain is
    joined. Idempotent; concurrent calls block until the first completes. *)
