(** Blocking [SCLQRPC1] client — the CLI's [client] subcommand, the
    differential/fault test harnesses and the serving benchmark all talk
    to the daemon through this module.

    A {!t} is one connection: {!connect} performs the mutual magic
    exchange and every call below runs on the caller's thread. The
    protocol itself is fully asynchronous (a [Cancel] may be sent while
    a query streams), but this client keeps the common case simple:
    {!run_query} drives one query to its terminal frame. *)

type t

val connect : Server.addr -> t
(** Open the socket and exchange magics ([Tcp] resolves the host).
    @raise Protocol.Error when the peer does not lead with the magic.
    @raise Unix.Unix_error when the daemon is not there. *)

val close : t -> unit
(** Idempotent. *)

val send_request : t -> Protocol.request -> unit

val read_response : t -> Protocol.response option
(** Next frame from the daemon; [None] on a clean EOF (daemon closed the
    connection at a frame boundary).
    @raise Protocol.Error on a torn or corrupt frame. *)

val send_raw : t -> string -> unit
(** Write bytes with no framing — the corrupt-frame drill: the test and
    the CLI's [--corrupt] flag use this to prove a hostile byte stream
    is refused with a typed error, not a hang. *)

val ping : t -> bool
(** [true] iff the daemon answered [Pong]. *)

val list_graphs : t -> Protocol.graph_info list
(** @raise Failure on an unexpected terminal answer. *)

val cancel : t -> int -> unit
(** Fire-and-forget [Cancel id]; the streaming query answers with a
    cancelled (or complete, if the race is lost) [Done]. *)

val hello : t -> token:string -> unit
(** Fire-and-forget [Hello]: bind this connection's quota accounting to
    [token]. Connections announcing the same token share one token
    bucket, and the bucket survives reconnects — send it first, right
    after {!connect}, or the connection bills to its peer-address (TCP)
    or per-session (Unix socket) identity until the [Hello] arrives. *)

type query_outcome =
  | Finished of Protocol.done_info
      (** terminal [Done] — inspect [d_outcome] for complete/truncated *)
  | Refused of { running : int; queued : int }  (** admission said [Busy] *)
  | Throttled of float
      (** the per-client quota said [Retry_after]: sleep this many
          seconds, then retry *)
  | Failed of { code : Protocol.error_code; msg : string }
  | Disconnected  (** EOF before the terminal frame *)

val run_query :
  ?on_result:(string -> unit) -> t -> Protocol.query -> query_outcome
(** Send the query and pump responses until its terminal frame, feeding
    each streamed result set (the space-separated node ids of one
    maximal connected s-clique) to [on_result] in emission order.
    Responses tagged with other query ids are skipped — this call owns
    the connection while it runs.
    @raise Protocol.Error on a corrupt frame. *)

type mutate_outcome =
  | Applied of { epoch : int; edits : int; n : int; m : int }
      (** journaled (flushed) and applied: the graph's new epoch/size *)
  | Mutate_throttled of float  (** quota said [Retry_after]: sleep, retry *)
  | Mutate_failed of { code : Protocol.error_code; msg : string }
  | Mutate_disconnected

val mutate : t -> id:int -> graph:string -> script:string -> mutate_outcome
(** Send a complete [SGRDIFF1] image ({!Sgraph.Diff.to_string}) whose
    header names the graph's current (n, m), and wait for the ack.
    @raise Protocol.Error on a corrupt frame. *)

type reload_outcome =
  | Swapped of { epoch : int; n : int; m : int }
  | Reload_failed of { code : Protocol.error_code; msg : string }
  | Reload_disconnected

val reload : t -> id:int -> graph:string -> reload_outcome
(** Ask the daemon to hot-swap a graph from its source.
    @raise Protocol.Error on a corrupt frame. *)
