type job = { run : unit -> unit; abort : unit -> unit }

type t = {
  lock : Mutex.t;
  wake : Condition.t; (* signalled on submit and on shutdown *)
  idle : Condition.t; (* broadcast when a running job finishes *)
  lanes : (int, job Queue.t) Hashtbl.t; (* only lanes with queued jobs *)
  rotation : int Queue.t; (* round-robin order; each queued lane exactly once *)
  mutable queued : int;
  mutable running : int;
  mutable stopping : bool;
  workers : int;
  max_queue : int;
  mutable domains : unit Domain.t array; (* filled once, right after create *)
}

(* Pop the next job under the lock, blocking on [wake]; [None] means the
   scheduler is stopping and the backlog is gone — the worker exits. The
   served lane rotates to the back, so lanes interleave one job at a
   time regardless of how deep any one lane's queue is. *)
let next t =
  Scoll.Sync.with_lock t.lock (fun () ->
      while (not t.stopping) && t.queued = 0 do
        Condition.wait t.wake t.lock
      done;
      if t.queued = 0 then None
      else begin
        let lane = Queue.pop t.rotation in
        let q = Hashtbl.find t.lanes lane in
        let job = Queue.pop q in
        t.queued <- t.queued - 1;
        if Queue.is_empty q then Hashtbl.remove t.lanes lane
        else Queue.push lane t.rotation;
        t.running <- t.running + 1;
        Some job
      end)

let worker t () =
  let rec loop () =
    match next t with
    | None -> ()
    | Some job ->
        (* a job body that escapes with an exception must not kill the
           worker domain — the session layer already converts failures
           into Error responses, so anything reaching here is a bug in
           that layer, contained to losing one query *)
        (try job.run () with _ -> ()) [@lint.allow "exception-swallow"];
        Scoll.Sync.with_lock t.lock (fun () ->
            t.running <- t.running - 1;
            Condition.broadcast t.idle);
        loop ()
  in
  loop ()

let create ~workers ~max_queue =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  if max_queue < 0 then invalid_arg "Scheduler.create: negative max_queue";
  let t =
    {
      lock = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      lanes = Hashtbl.create 16;
      rotation = Queue.create ();
      queued = 0;
      running = 0;
      stopping = false;
      workers;
      max_queue;
      domains = [||];
    }
  in
  (* the workers must close over the same record whose [queued]/[stopping]
     fields [submit]/[shutdown] mutate — a [{ t with ... }] copy here would
     leave them watching a dead snapshot *)
  t.domains <- Array.init workers (fun _ -> Domain.spawn (worker t));
  t

let submit t ~lane job =
  Scoll.Sync.with_lock t.lock (fun () ->
      if t.stopping then `Shutdown
      else if t.queued >= t.max_queue && t.running >= t.workers then
        `Busy (t.running, t.queued)
      else begin
        let q =
          match Hashtbl.find_opt t.lanes lane with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.add t.lanes lane q;
              Queue.push lane t.rotation;
              q
        in
        Queue.push job q;
        t.queued <- t.queued + 1;
        Condition.signal t.wake;
        `Accepted
      end)

let retire_lane t lane =
  let dropped =
    Scoll.Sync.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.lanes lane with
        | None -> []
        | Some q ->
            Hashtbl.remove t.lanes lane;
            let keep = Queue.create () in
            Queue.iter (fun l -> if l <> lane then Queue.push l keep) t.rotation;
            Queue.clear t.rotation;
            Queue.transfer keep t.rotation;
            let jobs = List.of_seq (Queue.to_seq q) in
            t.queued <- t.queued - List.length jobs;
            jobs)
  in
  List.iter (fun job -> job.abort ()) dropped

let running t = Scoll.Sync.with_lock t.lock (fun () -> t.running)

let queued t = Scoll.Sync.with_lock t.lock (fun () -> t.queued)

let shutdown t =
  let dropped, join =
    Scoll.Sync.with_lock t.lock (fun () ->
        let first = not t.stopping in
        t.stopping <- true;
        let jobs =
          Hashtbl.fold (fun _ q acc -> List.of_seq (Queue.to_seq q) :: acc) t.lanes []
          |> List.concat
        in
        Hashtbl.reset t.lanes;
        Queue.clear t.rotation;
        t.queued <- 0;
        Condition.broadcast t.wake;
        (jobs, first))
  in
  List.iter (fun job -> job.abort ()) dropped;
  if join then Array.iter Domain.join t.domains
  else
    (* a concurrent shutdown already owns the join; wait for the drain *)
    Scoll.Sync.with_lock t.lock (fun () ->
        while t.running > 0 do
          Condition.wait t.idle t.lock
        done)
