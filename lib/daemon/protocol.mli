(** SCLQRPC1 — the daemon's length-prefixed, CRC-checked wire protocol.

    A connection opens with both ends sending the 8-byte magic
    ["SCLQRPC1"]. Everything after is a stream of {e frames} in the exact
    byte framing of the [SCLQS1] result stream
    ([u32le payload length | u32le CRC-32 of payload | payload], via
    {!Scliques_core.Result_io.Stream.encode_record}), so one encoder and
    one fuzz surface cover both the on-disk and on-wire formats. A frame
    payload's first byte is an opcode; clients send {!request} payloads,
    the daemon answers with {!response} payloads.

    Decoding is strict and total: any byte sequence either decodes or
    raises {!Error} with a typed {!error} — truncation at every boundary,
    oversized length prefixes, CRC mismatches, unknown opcodes and
    trailing garbage are all distinguished, and no other exception
    escapes the decoders. That property is what the byte-level fuzz suite
    in [test_daemon.ml] pins down. *)

type error =
  | Bad_magic of string  (** the peer's 8 connection-opening bytes *)
  | Truncated of string  (** EOF or short buffer inside the named unit *)
  | Oversized of int  (** frame length prefix above {!max_payload} *)
  | Crc_mismatch  (** frame payload does not match its CRC-32 *)
  | Bad_opcode of int  (** unknown payload opcode byte *)
  | Bad_payload of string  (** opcode-specific field malformed, or trailing garbage *)

exception Error of error

val error_to_string : error -> string

val magic : string
(** ["SCLQRPC1"] — 8 bytes, sent by both ends before any frame. *)

val max_payload : int
(** Hard per-frame payload ceiling (64 MiB): a corrupt or hostile length
    word must never drive a giant allocation. Below the [SCLQS1] record
    ceiling, so every protocol frame is also a valid stream record. *)

(** Which enumeration engine a query runs: one of the sequential
    {!Scliques_core.Enumerate.algorithm}s, or the work-stealing parallel
    pool over the CS2 family. *)
type engine = Alg of Scliques_core.Enumerate.algorithm | Par

type query = {
  q_id : int;  (** client-chosen, echoed on every response to this query *)
  q_engine : engine;
  q_graph : string;  (** preloaded graph name on the daemon *)
  q_s : int;
  q_min_size : int;
  q_deadline_s : float option;  (** per-query budget: seconds from admission *)
  q_max_results : int option;
  q_resume : Scliques_core.Checkpoint.state option;
      (** token from a previous truncated query's [Done] *)
}

type mutate = {
  m_id : int;  (** client-chosen, echoed on the ack / refusal *)
  m_graph : string;  (** preloaded graph name on the daemon *)
  m_script : string;
      (** a complete [SGRDIFF1] image ({!Sgraph.Diff.to_string}) whose
          header names the graph's {e current} (n, m) — the daemon
          decodes it with the same strict {!Sgraph.Diff.of_string} that
          reads disk scripts and journals, so wire and disk share one
          CRC/truncation discipline *)
}

type request =
  | Query of query
  | Mutate of mutate
      (** apply an edit script to a graph and journal it durably *)
  | Reload of { rl_id : int; rl_graph : string }
      (** hot-swap the graph from its source snapshot (sessions and
          in-flight queries survive on their pinned epoch) *)
  | Cancel of int
  | Hello of { h_token : string }
      (** fire-and-forget (no response, like [Cancel]): names the client
          identity this connection's quota accounting should bill.
          Connections sharing a token share one token bucket — and keep
          it across reconnects, so dropping a throttled connection and
          redialing no longer mints a fresh quota. Anonymous connections
          are billed by peer address (TCP) or per-session (Unix
          sockets, which carry no usable address). *)
  | List_graphs
  | Ping

type done_info = {
  d_id : int;
  d_outcome : Scliques_core.Budget.outcome;
  d_emitted : int;  (** result frames streamed by this query *)
  d_resume : Scliques_core.Checkpoint.state option;
      (** present exactly when truncated and the engine can resume *)
}

type error_code = Bad_request | Server_error

type graph_info = {
  g_name : string;
  g_n : int;
  g_m : int;
  g_epoch : int;  (** edits applied since load — the serving epoch *)
}

type response =
  | Result of int * string
      (** one maximal connected s-clique: the query id and the
          space-separated member ids ({!Scliques_core.Result_io.Stream.encode_set}) *)
  | Done of done_info
  | Busy of { b_id : int; b_running : int; b_queued : int }
      (** the scheduler's global backlog refused the query; retry later *)
  | Retry_after of { ra_id : int; ra_seconds : float }
      (** the {e per-client} quota refused the request; [ra_seconds] is
          how long until the token bucket admits it — sleep that long
          instead of hammering *)
  | Mutated of { mu_id : int; mu_epoch : int; mu_edits : int; mu_n : int; mu_m : int }
      (** mutation ack, sent only {e after} the journal append was
          flushed: the new epoch, the number of edits applied, and the
          resulting graph size *)
  | Reloaded of { rl_id : int; rl_epoch : int; rl_n : int; rl_m : int }
      (** reload ack: the fresh graph's epoch and size *)
  | Error_resp of { e_id : int; e_code : error_code; e_msg : string }
      (** [e_id] is 0 when the failure was not tied to a query *)
  | Graphs of graph_info list
  | Pong

(** {2 Payload codecs} — pure string functions, the fuzz surface. *)

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> request
(** @raise Error on any malformed payload — and nothing else. *)

val decode_response : string -> response
(** @raise Error on any malformed payload — and nothing else. *)

(** {2 Frame layer} *)

val encode_frame : string -> string
(** Wrap a payload in the [u32le len | u32le crc | payload] framing.
    @raise Invalid_argument above {!max_payload}. *)

val decode_frame : string -> pos:int -> string * int
(** Decode one frame at [pos] of a byte buffer; returns the payload and
    the position after the frame.
    @raise Error ([Truncated]/[Oversized]/[Crc_mismatch]) on anything a
    torn write, bit flip, or hostile peer can produce. *)

(** {2 Channel I/O} *)

val output_magic : out_channel -> unit

val input_magic : in_channel -> unit
(** @raise Error ([Bad_magic]/[Truncated]) unless the peer leads with
    {!magic}. *)

val output_frame : out_channel -> string -> unit
(** Buffered write of {!encode_frame}; the caller flushes. *)

val input_frame : in_channel -> string option
(** Read one frame; [None] on a clean EOF at a frame boundary.
    @raise Error on a torn frame (EOF mid-frame), oversized length or CRC
    mismatch. *)
