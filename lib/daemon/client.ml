type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable open_ : bool;
}

let connect (addr : Server.addr) =
  let fd =
    match addr with
    | Server.Unix_socket path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
    | Server.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                invalid_arg
                  (Printf.sprintf "Client.connect: host %S has no address"
                     host)
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found ->
                invalid_arg
                  (Printf.sprintf "Client.connect: unknown host %S" host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (ip, port))
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let c = { fd; ic; oc; open_ = true } in
  (try
     Protocol.output_magic oc;
     flush oc;
     Protocol.input_magic ic
   with e ->
     c.open_ <- false;
     close_out_noerr oc;
     close_in_noerr ic;
     raise e);
  c

let close c =
  if c.open_ then begin
    c.open_ <- false;
    close_out_noerr c.oc;
    close_in_noerr c.ic
  end

let send_request c req =
  Protocol.output_frame c.oc (Protocol.encode_request req);
  flush c.oc

let read_response c =
  match Protocol.input_frame c.ic with
  | None -> None
  | Some payload -> Some (Protocol.decode_response payload)

let send_raw c bytes =
  output_string c.oc bytes;
  flush c.oc

let ping c =
  send_request c Protocol.Ping;
  match read_response c with Some Protocol.Pong -> true | _ -> false

let list_graphs c =
  send_request c Protocol.List_graphs;
  match read_response c with
  | Some (Protocol.Graphs gs) -> gs
  | Some _ -> failwith "Client.list_graphs: unexpected response"
  | None -> failwith "Client.list_graphs: daemon closed the connection"

let cancel c id = send_request c (Protocol.Cancel id)

let hello c ~token = send_request c (Protocol.Hello { h_token = token })

type query_outcome =
  | Finished of Protocol.done_info
  | Refused of { running : int; queued : int }
  | Throttled of float
  | Failed of { code : Protocol.error_code; msg : string }
  | Disconnected

let run_query ?(on_result = fun _ -> ()) c (q : Protocol.query) =
  send_request c (Protocol.Query q);
  let rec pump () =
    match read_response c with
    | None -> Disconnected
    | Some resp -> (
        match resp with
        | Protocol.Result (id, set) when id = q.Protocol.q_id ->
            on_result set;
            pump ()
        | Protocol.Done d when d.Protocol.d_id = q.Protocol.q_id ->
            Finished d
        | Protocol.Busy b when b.b_id = q.Protocol.q_id ->
            Refused { running = b.b_running; queued = b.b_queued }
        | Protocol.Retry_after r when r.ra_id = q.Protocol.q_id ->
            Throttled r.ra_seconds
        | Protocol.Error_resp e
          when e.e_id = q.Protocol.q_id || e.e_id = 0 ->
            Failed { code = e.e_code; msg = e.e_msg }
        | Protocol.Result _ | Protocol.Done _ | Protocol.Busy _
        | Protocol.Retry_after _ | Protocol.Mutated _ | Protocol.Reloaded _
        | Protocol.Error_resp _ | Protocol.Graphs _ | Protocol.Pong ->
            pump ())
  in
  pump ()

type mutate_outcome =
  | Applied of { epoch : int; edits : int; n : int; m : int }
  | Mutate_throttled of float
  | Mutate_failed of { code : Protocol.error_code; msg : string }
  | Mutate_disconnected

let mutate c ~id ~graph ~script =
  send_request c
    (Protocol.Mutate { m_id = id; m_graph = graph; m_script = script });
  let rec pump () =
    match read_response c with
    | None -> Mutate_disconnected
    | Some resp -> (
        match resp with
        | Protocol.Mutated mu when mu.mu_id = id ->
            Applied
              { epoch = mu.mu_epoch; edits = mu.mu_edits; n = mu.mu_n; m = mu.mu_m }
        | Protocol.Retry_after r when r.ra_id = id ->
            Mutate_throttled r.ra_seconds
        | Protocol.Error_resp e when e.e_id = id || e.e_id = 0 ->
            Mutate_failed { code = e.e_code; msg = e.e_msg }
        | _ -> pump ())
  in
  pump ()

type reload_outcome =
  | Swapped of { epoch : int; n : int; m : int }
  | Reload_failed of { code : Protocol.error_code; msg : string }
  | Reload_disconnected

let reload c ~id ~graph =
  send_request c (Protocol.Reload { rl_id = id; rl_graph = graph });
  let rec pump () =
    match read_response c with
    | None -> Reload_disconnected
    | Some resp -> (
        match resp with
        | Protocol.Reloaded r when r.rl_id = id ->
            Swapped { epoch = r.rl_epoch; n = r.rl_n; m = r.rl_m }
        | Protocol.Error_resp e when e.e_id = id || e.e_id = 0 ->
            Reload_failed { code = e.e_code; msg = e.e_msg }
        | _ -> pump ())
  in
  pump ()
