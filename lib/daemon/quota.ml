(* Continuous token buckets. Levels are floats so fractional refill
   accumulates exactly; the caller supplies [now], so nothing here reads
   a clock and the tests drive time by hand. *)

type config = {
  queries_per_sec : float;
  query_burst : int;
  mutate_bytes_per_sec : float;
  mutate_burst : int;
}

let unlimited =
  {
    queries_per_sec = infinity;
    query_burst = max_int;
    mutate_bytes_per_sec = infinity;
    mutate_burst = max_int;
  }

let config_ok c =
  let rate what r =
    if Float.is_nan r || r <= 0. then
      Error (Printf.sprintf "%s rate must be positive (got %g)" what r)
    else Ok ()
  and burst what b =
    if b <= 0 then Error (Printf.sprintf "%s burst must be positive (got %d)" what b)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = rate "query" c.queries_per_sec in
  let* () = burst "query" c.query_burst in
  let* () = rate "mutation-byte" c.mutate_bytes_per_sec in
  burst "mutation-byte" c.mutate_burst

type bucket = {
  rate : float;
  burst : float;
  mutable level : float;
  mutable at : float; (* timestamp of the last refill *)
}

type t = { lock : Mutex.t; queries : bucket; mutation : bucket }

let bucket ~rate ~burst ~now =
  { rate; burst = float_of_int burst; level = float_of_int burst; at = now }

let create c ~now =
  {
    lock = Mutex.create ();
    queries = bucket ~rate:c.queries_per_sec ~burst:c.query_burst ~now;
    mutation = bucket ~rate:c.mutate_bytes_per_sec ~burst:c.mutate_burst ~now;
  }

let refill b ~now =
  (* the [dt > 0] guard also dodges [infinity *. 0. = nan] for the
     unlimited config; time going backwards is ignored, never charged *)
  let dt = now -. b.at in
  if dt > 0. then begin
    b.at <- now;
    b.level <- Float.min b.burst (b.level +. (b.rate *. dt))
  end

let take b ~now cost =
  refill b ~now;
  if b.level >= cost then begin
    b.level <- b.level -. cost;
    Ok ()
  end
  else
    (* refusals are free; the advertised wait is until [cost] tokens are
       available — or until the bucket is full, for a cost that exceeds
       the ceiling and can therefore never be admitted whole *)
    let target = Float.min cost b.burst in
    Error ((target -. b.level) /. b.rate)

let put_back b cost = b.level <- Float.min b.burst (b.level +. cost)

let admit_query t ~now =
  Scoll.Sync.with_lock t.lock (fun () -> take t.queries ~now 1.)

let refund_query t = Scoll.Sync.with_lock t.lock (fun () -> put_back t.queries 1.)

let admit_mutation t ~now ~bytes =
  Scoll.Sync.with_lock t.lock (fun () -> take t.mutation ~now (float_of_int bytes))

let refund_mutation t ~bytes =
  Scoll.Sync.with_lock t.lock (fun () -> put_back t.mutation (float_of_int bytes))
