(** Per-client admission quotas: token buckets for queries and mutation
    bytes, layered {e under} the scheduler's global backlog (DESIGN.md
    §16).

    The scheduler's [`Busy] answer protects the server; it does nothing
    to stop one client from eating every lane. A [Quota.t] is the
    per-session guard in front of it: each session owns two token
    buckets — one counting {e queries admitted}, one counting {e
    mutation bytes accepted} — refilled continuously at a configured
    rate up to a burst ceiling. An admission that finds its bucket empty
    is refused with the number of seconds until enough tokens
    accumulate, which the server relays verbatim as the wire-level
    [Retry_after] frame; a well-behaved client sleeps exactly that long
    instead of hammering.

    Refusals are {e free}: a refused admission does not drain the
    bucket, so the advertised wait is honest. Admissions that later turn
    out not to consume the resource — a query the scheduler refused with
    [`Busy], or one aborted before running — are handed back with
    {!refund_query}, so teardown leaks no tokens (the ledger checks of
    the daemon test suite assert this).

    Time is supplied by the caller ([now], seconds, any monotonic
    origin), which keeps the arithmetic deterministic under test. All
    operations take the bucket's lock; none of them block. *)

type config = {
  queries_per_sec : float;  (** refill rate of the query bucket *)
  query_burst : int;  (** bucket ceiling: queries admittable at once *)
  mutate_bytes_per_sec : float;  (** refill rate of the mutation bucket *)
  mutate_burst : int;  (** bucket ceiling in SGRDIFF1 payload bytes *)
}

val unlimited : config
(** Rates of [infinity]: every admission succeeds. The daemon default —
    quotas are opt-in. *)

val config_ok : config -> (unit, string) result
(** Validates rates (finite values must be positive) and bursts
    (positive). *)

type t

val create : config -> now:float -> t
(** Both buckets start full. *)

val admit_query : t -> now:float -> (unit, float) result
(** Take one query token. [Error wait] leaves the bucket untouched;
    [wait > 0.] is the seconds until a token will be available. *)

val refund_query : t -> unit
(** Hand one query token back (capped at the burst ceiling) — for
    admitted queries that never consumed a scheduler slot. *)

val admit_mutation : t -> now:float -> bytes:int -> (unit, float) result
(** Take [bytes] mutation-byte tokens. A request larger than the burst
    ceiling can never succeed; it is refused with the wait for a full
    bucket, and the client should split the script or give up. *)

val refund_mutation : t -> bytes:int -> unit
(** Hand mutation bytes back (capped) — for payloads refused before any
    work was journaled (parse errors, base mismatches). *)
