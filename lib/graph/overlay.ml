type edit = Insert of int * int | Delete of int * int

type t = {
  base : Graph.t;
  adds : (int, int list) Hashtbl.t; (* sorted; disjoint from the base row *)
  dels : (int, int list) Hashtbl.t; (* sorted; subset of the base row *)
  mutable m : int;
  mutable epoch : int;
  mutable delta : int; (* edited edges = |adds|/2 + |dels|/2 *)
}

let edit_endpoints = function Insert (u, v) -> (u, v) | Delete (u, v) -> (u, v)

let pp_edit ppf = function
  | Insert (u, v) -> Format.fprintf ppf "+%d-%d" u v
  | Delete (u, v) -> Format.fprintf ppf "-%d-%d" u v

let touched edits =
  List.sort_uniq Int.compare
    (List.concat_map
       (fun e ->
         let u, v = edit_endpoints e in
         [ u; v ])
       edits)

let of_graph g =
  {
    base = g;
    adds = Hashtbl.create 16;
    dels = Hashtbl.create 16;
    m = Graph.m g;
    epoch = 0;
    delta = 0;
  }

let base t = t.base
let n t = Graph.n t.base
let m t = t.m
let epoch t = t.epoch
let delta_size t = t.delta

(* Sorted-int-list kernels. Delta lists are tiny (they are reset by
   compaction), so linked lists beat any balanced structure here. *)

let rec mem_sorted (x : int) = function
  | [] -> false
  | y :: tl -> if y < x then mem_sorted x tl else y = x

(* precondition: [x] not already present *)
let rec add_sorted (x : int) = function
  | [] -> [ x ]
  | y :: tl -> if y < x then y :: add_sorted x tl else x :: y :: tl

(* precondition: [x] present exactly once *)
let rec remove_sorted (x : int) = function
  | [] -> []
  | y :: tl -> if y < x then y :: remove_sorted x tl else tl

let find_list tbl v = match Hashtbl.find_opt tbl v with Some l -> l | None -> []

let set_list tbl v = function
  | [] -> Hashtbl.remove tbl v
  | l -> Hashtbl.replace tbl v l

let check_endpoints t name u v =
  let nn = n t in
  if u < 0 || u >= nn || v < 0 || v >= nn then
    invalid_arg (Printf.sprintf "Overlay.%s: endpoint out of range" name);
  if u = v then invalid_arg (Printf.sprintf "Overlay.%s: self-loop %d" name u)

let base_mem t u v = Csr.mem_row (Graph.csr t.base) u v

let live t u v =
  mem_sorted v (find_list t.adds u)
  || (base_mem t u v && not (mem_sorted v (find_list t.dels u)))

let mem_edge t u v =
  let nn = n t in
  if u < 0 || u >= nn || v < 0 || v >= nn || u = v then false else live t u v

let insert_edge t u v =
  check_endpoints t "insert_edge" u v;
  if live t u v then false
  else begin
    if base_mem t u v then begin
      (* re-inserting a deleted base edge cancels the delete *)
      set_list t.dels u (remove_sorted v (find_list t.dels u));
      set_list t.dels v (remove_sorted u (find_list t.dels v));
      t.delta <- t.delta - 1
    end
    else begin
      set_list t.adds u (add_sorted v (find_list t.adds u));
      set_list t.adds v (add_sorted u (find_list t.adds v));
      t.delta <- t.delta + 1
    end;
    t.m <- t.m + 1;
    t.epoch <- t.epoch + 1;
    true
  end

let delete_edge t u v =
  check_endpoints t "delete_edge" u v;
  if not (live t u v) then false
  else begin
    if base_mem t u v then begin
      set_list t.dels u (add_sorted v (find_list t.dels u));
      set_list t.dels v (add_sorted u (find_list t.dels v));
      t.delta <- t.delta + 1
    end
    else begin
      (* deleting an overlay-added edge cancels the insert *)
      set_list t.adds u (remove_sorted v (find_list t.adds u));
      set_list t.adds v (remove_sorted u (find_list t.adds v));
      t.delta <- t.delta - 1
    end;
    t.m <- t.m - 1;
    t.epoch <- t.epoch + 1;
    true
  end

let apply t edits =
  List.iter
    (fun e ->
      let effective, verb =
        match e with
        | Insert (u, v) -> (insert_edge t u v, "insert")
        | Delete (u, v) -> (delete_edge t u v, "delete")
      in
      if not effective then
        invalid_arg
          (Format.asprintf "Overlay.apply: ineffective %s %a" verb pp_edit e))
    edits

let degree t v =
  if v < 0 || v >= n t then invalid_arg "Overlay.degree: node out of range";
  Graph.degree t.base v
  + List.length (find_list t.adds v)
  - List.length (find_list t.dels v)

let iter_row f t v =
  if v < 0 || v >= n t then invalid_arg "Overlay.iter_row: node out of range";
  let csr = Graph.csr t.base in
  let off = Csr.offsets csr and adj = Csr.adjacency csr in
  let adds = ref (find_list t.adds v) and dels = ref (find_list t.dels v) in
  for i = off.(v) to off.(v + 1) - 1 do
    let u = adj.(i) in
    (* flush overlay additions below the current base entry *)
    let rec flush () =
      match !adds with
      | a :: tl when a < u ->
          f a;
          adds := tl;
          flush ()
      | _ -> ()
    in
    flush ();
    (* dels(v) is a sorted subset of the base row, consumed in lockstep *)
    match !dels with
    | d :: tl when d = u -> dels := tl
    | _ -> f u
  done;
  List.iter f !adds

let fold_row f init t v =
  let acc = ref init in
  iter_row (fun u -> acc := f !acc u) t v;
  !acc

let row t v =
  let buf = Array.make (degree t v) 0 in
  let i = ref 0 in
  iter_row
    (fun u ->
      buf.(!i) <- u;
      incr i)
    t v;
  buf

let compact t =
  let g = Graph.of_csr (Csr.of_rows (Array.init (n t) (row t))) in
  (* Graph.of_csr recounts m from the adjacency entries; agreement with the
     incrementally tracked count is the overlay's core bookkeeping
     invariant (no phantom rows, no cancelled-edit residue). *)
  assert (Graph.m g = t.m);
  g
