(** METIS graph format.

    The adjacency format used by the METIS/ParMETIS partitioners and many
    graph repositories (e.g. the 10th DIMACS challenge): a header line
    ["n m"], then one line per node (1-based) listing its neighbors
    (1-based ids). [%]-lines are comments. Only the plain unweighted
    variant is supported; headers with a format field other than ["0"]
    are rejected. *)

val parse_string : ?file:string -> string -> Graph.t
(** [file] (default ["<string>"]) names the source in error messages.
    @raise Io_error.Parse_error on malformed input, including
    non-integer tokens, out-of-range neighbor ids, inconsistent edge
    counts and asymmetric adjacency. No other exception escapes the
    parser (environment errors like [Out_of_memory] excepted). *)

val load : string -> Graph.t
(** @raise Sys_error when the file cannot be read.
    @raise Io_error.Parse_error on malformed input. *)

val to_string : Graph.t -> string

val save : Graph.t -> string -> unit
