(** METIS graph format.

    The adjacency format used by the METIS/ParMETIS partitioners and many
    graph repositories (e.g. the 10th DIMACS challenge): a header line
    ["n m"], then one line per node (1-based) listing its neighbors
    (1-based ids). [%]-lines are comments. Only the plain unweighted
    variant is supported; headers with a format field other than ["0"]
    are rejected. *)

val parse_string : string -> Graph.t
(** @raise Failure with a line-numbered message on malformed input,
    including inconsistent edge counts or asymmetric adjacency. *)

val load : string -> Graph.t
(** @raise Sys_error when the file cannot be read.
    @raise Failure on malformed input. *)

val to_string : Graph.t -> string

val save : Graph.t -> string -> unit
