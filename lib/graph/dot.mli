(** Graphviz DOT export.

    Rendering a graph together with a family of node sets (maximal
    connected s-cliques, communities) for inspection. Overlapping sets are
    shown by coloring: each node is filled with the color of the first set
    containing it and labeled with the indices of all of them. *)

val to_dot :
  ?name:(int -> string) ->
  ?highlight:Node_set.t list ->
  Graph.t ->
  string
(** [to_dot g] is a DOT [graph { ... }] document. [name] supplies node
    labels (default: the id); [highlight] assigns a color per listed set
    (cycling through a fixed palette) and annotates membership. *)

val write : ?name:(int -> string) -> ?highlight:Node_set.t list -> Graph.t -> string -> unit
(** Write the DOT document to a file. *)
