(** Structural summary statistics of a graph.

    Used by the benchmark harness to report the §7 dataset table (nodes,
    edges, density) and to sanity-check that synthetic proxies match the
    degree profile of the datasets they stand in for. *)

val avg_degree : Graph.t -> float
(** [2m / n]; 0 for the empty graph. *)

val density : Graph.t -> float
(** [m / (n choose 2)]; 0 when [n < 2]. *)

val degree_histogram : Graph.t -> int array
(** Index [d] holds the number of nodes of degree [d]. *)

val triangle_count : Graph.t -> int
(** Number of triangles, by merging sorted adjacency lists of the two
    lower-id endpoints of each edge: O(sum of deg(u)+deg(v) over edges). *)

val global_clustering : Graph.t -> float
(** Transitivity: [3 * triangles / open-or-closed wedges]; 0 when there are
    no wedges. *)

val approx_diameter : Graph.t -> int
(** Lower bound on the diameter of the largest component via a double BFS
    sweep (exact on trees, a good estimate on social graphs). 0 for graphs
    with no edges. *)

val summary : Graph.t -> string
(** One-line human-readable summary. *)
