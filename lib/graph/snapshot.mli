(** CRC-checked binary graph snapshots.

    A snapshot is the CSR representation of a {!Graph.t} written verbatim
    — magic, header, offsets record, adjacency record — so loading is a
    bulk read straight into the two backing arrays instead of a text
    parse. Each record carries a CRC-32 of its payload ({!Scoll.Crc32}),
    and {!save} commits through a temp file and atomic rename, the same
    discipline as the checkpoint writer: a reader sees either the whole
    previous snapshot or the whole new one, and a torn or bit-rotted file
    is refused on load rather than parsed as garbage.

    Byte layout (all integers little-endian):
    {v
    offset  size      field
    0       8         magic "SGRSNAP1"
    8       8         n, node count (u64)
    16      8         m, undirected edge count (u64)
    24      4         CRC-32 of bytes [8, 24)
    28      8*(n+1)   CSR offsets (u64 each)
    ...     4         CRC-32 of the offsets payload
    ...     8*2m      CSR adjacency (u64 each)
    ...     4         CRC-32 of the adjacency payload
    v}
    Trailing bytes after the adjacency CRC are an error. *)

val save : Graph.t -> string -> unit
(** [save g path] writes the snapshot of [g] to [path] atomically
    (write to [path ^ ".tmp"], fsync-free rename over [path]). *)

val load : string -> Graph.t
(** [load path] reads a snapshot back. The structural invariants are
    re-validated ({!Graph.of_csr}), so a snapshot edited by hand fails
    the same way a malformed text file would.
    @raise Io_error.Parse_error on any malformed, truncated or
    CRC-mismatching input ([line = 0]: byte offsets, not lines).
    @raise Sys_error when the file cannot be read. *)
