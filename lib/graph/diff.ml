(* Byte layout is documented in the .mli. The record helpers mirror
   Snapshot's: every multi-byte integer is little-endian, ids travel as
   u64, and a record is a payload followed by its CRC-32 as u32le. *)

type header = { base_n : int; base_m : int }

let magic = "SGRDIFF1"

let max_node_count = (1 lsl 30) - 1

let failf path fmt = Io_error.failf ~file:path ~line:0 fmt

let record payload =
  let crc = Bytes.create 4 in
  Bytes.set_int32_le crc 0 (Int32.of_int (Scoll.Crc32.bytes payload));
  Bytes.to_string payload ^ Bytes.to_string crc

let header_payload ~base_n ~base_m =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int base_n);
  Bytes.set_int64_le b 8 (Int64.of_int base_m);
  b

let edit_payload e =
  let op, u, v =
    match e with
    | Overlay.Insert (u, v) -> (0, u, v)
    | Overlay.Delete (u, v) -> (1, u, v)
  in
  let b = Bytes.create 17 in
  Bytes.set b 0 (Char.chr op);
  Bytes.set_int64_le b 1 (Int64.of_int u);
  Bytes.set_int64_le b 9 (Int64.of_int v);
  b

let encode_header ~base_n ~base_m =
  magic ^ record (header_payload ~base_n ~base_m)

let encode_edit e = record (edit_payload e)

let to_string ~base_n ~base_m edits =
  let buf = Buffer.create (28 + (21 * List.length edits)) in
  Buffer.add_string buf (encode_header ~base_n ~base_m);
  List.iter (fun e -> Buffer.add_string buf (encode_edit e)) edits;
  Buffer.contents buf

(* {2 Writing} *)

type writer = { oc : out_channel }

let open_writer ~base_n ~base_m path =
  let oc = open_out_bin path in
  (match output_string oc (encode_header ~base_n ~base_m) with
  | () -> ()
  | exception e ->
      close_out_noerr oc;
      raise e);
  { oc }

let write_edit w e = output_string w.oc (encode_edit e)

let flush w = Stdlib.flush w.oc

let close w = close_out w.oc

let save ~base_n ~base_m edits path =
  let tmp = path ^ ".tmp" in
  let w = open_writer ~base_n ~base_m tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr w.oc)
    (fun () ->
      List.iter (write_edit w) edits;
      close w);
  Sys.rename tmp path

(* {2 Reading}

   One strict decoder serves every SGRDIFF1 consumer — disk scripts,
   the daemon's mutation journal, and Mutate payloads arriving over the
   wire — so all of them share the same CRC and torn-tail discipline. It
   walks an in-memory image with a cursor; [load] is just file slurp +
   decode. *)

type cursor = { src : string; mutable pos : int }

let read_exact path c len what =
  if c.pos + len > String.length c.src then
    failf path "diff truncated reading %s" what;
  let b = Bytes.create len in
  Bytes.blit_string c.src c.pos b 0 len;
  c.pos <- c.pos + len;
  b

let check_crc path c payload what =
  let crc = read_exact path c 4 (what ^ " CRC") in
  let stored = Int32.to_int (Bytes.get_int32_le crc 0) land 0xFFFFFFFF in
  let computed = Scoll.Crc32.bytes payload in
  if stored <> computed then
    failf path "diff %s CRC mismatch (stored %08x, computed %08x)" what stored
      computed

(* Same plain-int u64 decode as Snapshot: a top byte >= 0x40 would not
   fit an OCaml int. *)
let decode_int path b off what =
  let b0 = Char.code (Bytes.get b off)
  and b1 = Char.code (Bytes.get b (off + 1))
  and b2 = Char.code (Bytes.get b (off + 2))
  and b3 = Char.code (Bytes.get b (off + 3))
  and b4 = Char.code (Bytes.get b (off + 4))
  and b5 = Char.code (Bytes.get b (off + 5))
  and b6 = Char.code (Bytes.get b (off + 6))
  and b7 = Char.code (Bytes.get b (off + 7)) in
  if b7 >= 0x40 then
    failf path "diff %s %Ld out of range" what (Bytes.get_int64_le b off);
  b0
  lor (b1 lsl 8)
  lor (b2 lsl 16)
  lor (b3 lsl 24)
  lor (b4 lsl 32)
  lor (b5 lsl 40)
  lor (b6 lsl 48)
  lor (b7 lsl 56)

(* Backstop for the totality contract: see Edge_list_io.structured. *)
let structured ~file f =
  try f () with
  | Io_error.Parse_error _ as e -> raise e
  | Sys_error _ as e -> raise e
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e -> Io_error.fail ~file ~line:0 ("unexpected parser failure: " ^ Printexc.to_string e)

let of_string ~file s =
  structured ~file (fun () ->
      let c = { src = s; pos = 0 } in
      let m8 = read_exact file c 8 "magic" in
      if not (String.equal (Bytes.to_string m8) magic) then
        failf file "not a diff: bad magic %S (expected %S)" (Bytes.to_string m8)
          magic;
      let hb = read_exact file c 16 "header" in
      check_crc file c hb "header";
      let base_n = decode_int file hb 0 "base node count" in
      let base_m = decode_int file hb 8 "base edge count" in
      if base_n > max_node_count then
        failf file "diff base node count %d exceeds the %d limit" base_n
          max_node_count;
      if base_m > base_n * (base_n - 1) / 2 then
        failf file "diff claims %d base edges for %d nodes" base_m base_n;
      let decode_edit () =
        (* a whole record must fit; a mid-record end is a torn tail and
           refused, matching the journal-replay contract *)
        let payload = read_exact file c 17 "edit record" in
        check_crc file c payload "edit record";
        let u = decode_int file payload 1 "edit endpoint" in
        let v = decode_int file payload 9 "edit endpoint" in
        if u >= base_n || v >= base_n then
          failf file "diff edit endpoint out of range (%d--%d, base n %d)" u v
            base_n;
        if u = v then failf file "diff edit is a self-loop on %d" u;
        match Char.code (Bytes.get payload 0) with
        | 0 -> Overlay.Insert (u, v)
        | 1 -> Overlay.Delete (u, v)
        | op -> failf file "diff edit has unknown opcode %d" op
      in
      let rec records acc =
        if c.pos = String.length s then List.rev acc
        else records (decode_edit () :: acc)
      in
      ({ base_n; base_m }, records []))

let load path =
  let ic = open_in_bin path in
  let image =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~file:path image

let check_base ~file h g =
  if h.base_n <> Graph.n g || h.base_m <> Graph.m g then
    failf file
      "diff base mismatch: recorded against n=%d m=%d, graph has n=%d m=%d"
      h.base_n h.base_m (Graph.n g) (Graph.m g)

(* {2 Scripts as graph deltas} *)

let between g0 g1 =
  if Graph.n g0 <> Graph.n g1 then invalid_arg "Diff.between: node counts differ";
  let csr0 = Graph.csr g0 and csr1 = Graph.csr g1 in
  let off0 = Csr.offsets csr0 and adj0 = Csr.adjacency csr0 in
  let off1 = Csr.offsets csr1 and adj1 = Csr.adjacency csr1 in
  let acc = ref [] in
  for v = 0 to Graph.n g0 - 1 do
    let i = ref off0.(v) and j = ref off1.(v) in
    let stop0 = off0.(v + 1) and stop1 = off1.(v + 1) in
    while !i < stop0 || !j < stop1 do
      let a = if !i < stop0 then adj0.(!i) else max_int in
      let b = if !j < stop1 then adj1.(!j) else max_int in
      if a = b then begin
        incr i;
        incr j
      end
      else if a < b then begin
        (* each undirected edge once, from its smaller endpoint *)
        if a > v then acc := Overlay.Delete (v, a) :: !acc;
        incr i
      end
      else begin
        if b > v then acc := Overlay.Insert (v, b) :: !acc;
        incr j
      end
    done
  done;
  List.rev !acc

let apply g edits =
  let o = Overlay.of_graph g in
  Overlay.apply o edits;
  Overlay.compact o
