type t = { adj : int array array; m : int }

let count_edges adj =
  let total = Array.fold_left (fun acc nbrs -> acc + Array.length nbrs) 0 adj in
  total / 2

let validate adj =
  let n = Array.length adj in
  Array.iteri
    (fun v nbrs ->
      Array.iteri
        (fun i u ->
          if u < 0 || u >= n then
            invalid_arg (Printf.sprintf "Graph.of_adjacency: node %d lists %d (n=%d)" v u n);
          if u = v then
            invalid_arg (Printf.sprintf "Graph.of_adjacency: self-loop at %d" v);
          if i > 0 && nbrs.(i - 1) >= u then
            invalid_arg
              (Printf.sprintf "Graph.of_adjacency: neighbors of %d not strictly sorted" v))
        nbrs)
    adj;
  (* symmetry *)
  let mem (arr : int array) (x : int) =
    let rec go lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if arr.(mid) = x then true else if arr.(mid) < x then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length arr)
  in
  Array.iteri
    (fun v nbrs ->
      Array.iter
        (fun u ->
          if not (mem adj.(u) v) then
            invalid_arg (Printf.sprintf "Graph.of_adjacency: edge %d->%d not symmetric" v u))
        nbrs)
    adj

let of_adjacency adj =
  validate adj;
  { adj; m = count_edges adj }

let sort_dedup_row (nbrs : int array) =
  Array.sort Int.compare nbrs;
  let len = Array.length nbrs in
  if len <= 1 then nbrs
  else begin
    let w = ref 1 in
    for r = 1 to len - 1 do
      if nbrs.(r) <> nbrs.(!w - 1) then begin
        nbrs.(!w) <- nbrs.(r);
        incr w
      end
    done;
    if !w = len then nbrs else Array.sub nbrs 0 !w
  end

let of_unsorted_adjacency adj = of_adjacency (Array.map sort_dedup_row adj)

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let deg = Array.make n 0 in
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.of_edges: edge (%d,%d) out of range (n=%d)" u v n)
  in
  List.iter check edges;
  let edges = List.filter (fun (u, v) -> u <> v) edges in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  of_unsorted_adjacency adj

let empty n = { adj = Array.make (max n 0) [||]; m = 0 }

let n t = Array.length t.adj

let m t = t.m

let check_node t v =
  if v < 0 || v >= Array.length t.adj then
    invalid_arg (Printf.sprintf "Graph: node %d out of range (n=%d)" v (Array.length t.adj))

let degree t v =
  check_node t v;
  Array.length t.adj.(v)

let neighbors t v =
  check_node t v;
  t.adj.(v)

let neighbor_set t v = Node_set.of_sorted_array_unchecked (neighbors t v)

let mem_edge t u v =
  check_node t u;
  check_node t v;
  if u = v then false
  else
    let arr = t.adj.(u) in
    let rec go lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if arr.(mid) = v then true else if arr.(mid) < v then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length arr)

let nodes t = Node_set.range 0 (Array.length t.adj)

let iter_nodes f t =
  for v = 0 to Array.length t.adj - 1 do
    f v
  done

let iter_edges f t =
  Array.iteri (fun u nbrs -> Array.iter (fun v -> if u < v then f u v) nbrs) t.adj

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) t;
  !acc

let edges t = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) t [])

let max_degree t = Array.fold_left (fun acc nbrs -> max acc (Array.length nbrs)) 0 t.adj

let induced t u =
  let k = Node_set.cardinal u in
  let back = Node_set.to_array u in
  (* original id -> new id, for members of u *)
  let fwd = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let adj =
    Array.init k (fun i ->
        let orig = back.(i) in
        let nbrs = t.adj.(orig) in
        let out = Array.make (Array.length nbrs) 0 in
        let w = ref 0 in
        Array.iter
          (fun nb ->
            match Hashtbl.find_opt fwd nb with
            | Some j ->
                out.(!w) <- j;
                incr w
            | None -> ())
          nbrs;
        Array.sub out 0 !w)
  in
  ({ adj; m = count_edges adj }, back)

(* explicit int loops, not structural (=) on the nested arrays: the
   polymorphic runtime compare walks every row through caml_compare *)
let equal a b =
  let n = Array.length a.adj in
  n = Array.length b.adj
  && Array.for_all2
       (fun (ra : int array) (rb : int array) ->
         let len = Array.length ra in
         len = Array.length rb
         &&
         let rec go i = i >= len || (ra.(i) = rb.(i) && go (i + 1)) in
         go 0)
       a.adj b.adj

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d, max_deg=%d)" (Array.length t.adj) t.m (max_degree t)
