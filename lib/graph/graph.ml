(* Adjacency lives in one CSR pair (Csr.t): a row-offset array plus a
   flat neighbor array. All the validated constructors below funnel into
   [of_csr_validated]; the graph-level invariants (each row strictly
   sorted, in range, loop free, symmetric) are checked once there, so
   every [t] in the program satisfies them. *)

type t = { csr : Csr.t; m : int }

let validate_csr csr =
  let n = Csr.n csr in
  let off = Csr.offsets csr and nbr = Csr.adjacency csr in
  let entries = Array.length nbr in
  let indeg = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    for i = off.(v) to off.(v + 1) - 1 do
      let u = nbr.(i) in
      if u < 0 || u >= n then
        invalid_arg (Printf.sprintf "Graph.of_adjacency: node %d lists %d (n=%d)" v u n);
      if u = v then
        invalid_arg (Printf.sprintf "Graph.of_adjacency: self-loop at %d" v);
      if i > off.(v) && nbr.(i - 1) >= u then
        invalid_arg
          (Printf.sprintf "Graph.of_adjacency: neighbors of %d not strictly sorted" v);
      indeg.(u) <- indeg.(u) + 1
    done
  done;
  (* Symmetry in O(n + m): with every row strictly sorted (checked
     above), the CSR is symmetric iff it equals its own transpose, and
     counting-sorting the entries by target builds the transpose with
     sorted rows for free. Equality of the in-degree histogram with the
     row lengths plus entrywise equality of the neighbor arrays is the
     whole check. *)
  let asymmetric_at v u =
    invalid_arg (Printf.sprintf "Graph.of_adjacency: edge %d->%d not symmetric" v u)
  in
  let cursor = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    if indeg.(v) <> off.(v + 1) - off.(v) then begin
      (* degree mismatch: some neighbor of v does not list v back (or
         lists it while v does not); name one by direct lookup *)
      for i = off.(v) to off.(v + 1) - 1 do
        if not (Csr.mem_row csr nbr.(i) v) then asymmetric_at v nbr.(i)
      done;
      for u = 0 to n - 1 do
        if Csr.mem_row csr u v && not (Csr.mem_row csr v u) then asymmetric_at u v
      done
    end;
    cursor.(v) <- off.(v)
  done;
  let tnbr = Array.make entries 0 in
  for v = 0 to n - 1 do
    for i = off.(v) to off.(v + 1) - 1 do
      let u = nbr.(i) in
      tnbr.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1
    done
  done;
  for v = 0 to n - 1 do
    for i = off.(v) to off.(v + 1) - 1 do
      if tnbr.(i) <> nbr.(i) then
        if Csr.mem_row csr nbr.(i) v then asymmetric_at tnbr.(i) v
        else asymmetric_at v nbr.(i)
    done
  done

let of_csr csr =
  validate_csr csr;
  { csr; m = Csr.entries csr / 2 }

let of_adjacency adj = of_csr (Csr.of_rows adj)

let sort_dedup_row (nbrs : int array) =
  Array.sort Int.compare nbrs;
  let len = Array.length nbrs in
  if len <= 1 then nbrs
  else begin
    let w = ref 1 in
    for r = 1 to len - 1 do
      if nbrs.(r) <> nbrs.(!w - 1) then begin
        nbrs.(!w) <- nbrs.(r);
        incr w
      end
    done;
    if !w = len then nbrs else Array.sub nbrs 0 !w
  end

let of_unsorted_adjacency adj = of_adjacency (Array.map sort_dedup_row adj)

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let deg = Array.make n 0 in
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.of_edges: edge (%d,%d) out of range (n=%d)" u v n)
  in
  List.iter check edges;
  let edges = List.filter (fun (u, v) -> u <> v) edges in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  of_unsorted_adjacency adj

let empty n =
  if n < 0 then invalid_arg (Printf.sprintf "Graph.empty: negative n (%d)" n);
  { csr = Csr.of_arrays ~offsets:(Array.make (n + 1) 0) ~adjacency:[||]; m = 0 }

let n t = Csr.n t.csr

let m t = t.m

let csr t = t.csr

let check_node t v =
  if v < 0 || v >= n t then
    invalid_arg (Printf.sprintf "Graph: node %d out of range (n=%d)" v (n t))

let degree t v =
  check_node t v;
  Csr.degree t.csr v

let neighbors t v =
  check_node t v;
  Csr.row t.csr v

let neighbor_set t v = Node_set.of_sorted_array_unchecked (neighbors t v)

let iter_neighbors f t v =
  check_node t v;
  Csr.iter_row f t.csr v

let fold_neighbors f init t v =
  check_node t v;
  Csr.fold_row f init t.csr v

let mem_edge t u v =
  check_node t u;
  check_node t v;
  u <> v && Csr.mem_row t.csr u v

let nodes t = Node_set.range 0 (n t)

let iter_nodes f t =
  for v = 0 to n t - 1 do
    f v
  done

let iter_edges f t =
  let off = Csr.offsets t.csr and nbr = Csr.adjacency t.csr in
  for u = 0 to n t - 1 do
    for i = off.(u) to off.(u + 1) - 1 do
      let v = nbr.(i) in
      if u < v then f u v
    done
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) t;
  !acc

let edges t = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) t [])

let max_degree t =
  let best = ref 0 in
  for v = 0 to n t - 1 do
    best := Int.max !best (Csr.degree t.csr v)
  done;
  !best

let induced t u =
  let k = Node_set.cardinal u in
  let back = Node_set.to_array u in
  (* original id -> new id, for members of u *)
  let fwd = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let adj =
    Array.init k (fun i ->
        let orig = back.(i) in
        let out = Array.make (Csr.degree t.csr orig) 0 in
        let w = ref 0 in
        Csr.iter_row
          (fun nb ->
            match Hashtbl.find_opt fwd nb with
            | Some j ->
                out.(!w) <- j;
                incr w
            | None -> ())
          t.csr orig;
        Array.sub out 0 !w)
  in
  let csr = Csr.of_rows adj in
  (* members keep their relative order, so rows stay sorted and the
     graph-level invariants are inherited from [t] — no re-validation *)
  ({ csr; m = Csr.entries csr / 2 }, back)

let relabel t ~order =
  let size = n t in
  if Array.length order <> size then
    invalid_arg
      (Printf.sprintf "Graph.relabel: order has %d entries for %d nodes"
         (Array.length order) size);
  (* rank.(old) = new; built while checking [order] is a permutation *)
  let rank = Array.make size (-1) in
  Array.iteri
    (fun new_id old_id ->
      if old_id < 0 || old_id >= size then
        invalid_arg
          (Printf.sprintf "Graph.relabel: order lists node %d (n=%d)" old_id size);
      if rank.(old_id) >= 0 then
        invalid_arg (Printf.sprintf "Graph.relabel: node %d listed twice" old_id);
      rank.(old_id) <- new_id)
    order;
  let rows =
    Array.init size (fun new_id ->
        let r = Csr.row t.csr order.(new_id) in
        Array.iteri (fun i u -> r.(i) <- rank.(u)) r;
        Array.sort Int.compare r;
        r)
  in
  let csr = Csr.of_rows rows in
  (* a bijective rename preserves sortedness (after the per-row sort),
     symmetry and loop-freeness, so no re-validation is needed *)
  { csr; m = t.m }

(* explicit int loops, not structural (=): the polymorphic runtime
   compare would walk the arrays through caml_compare *)
let equal a b = Csr.equal a.csr b.csr

let pp fmt t = Format.fprintf fmt "graph(n=%d, m=%d, max_deg=%d)" (n t) t.m (max_degree t)
