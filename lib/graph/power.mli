(** Graph powers: [G^s] connects every pair at distance at most [s].

    Remark 1 of the paper: the maximal {e not-necessarily-connected}
    s-cliques of [G] are exactly the maximal cliques of [G^s], so the power
    graph plus classic Bron–Kerbosch solves the unconnected variant. The
    remark also shows why this reduction is {e not} enough for connected
    s-cliques — connectivity information is lost in [G^s]. *)

val power : Graph.t -> s:int -> Graph.t
(** [power g ~s] has the same nodes as [g] and an edge [{u,v}] whenever
    [1 <= dist_g(u,v) <= s]. [power g ~s:1] equals [g]. Costs one
    radius-[s] BFS per node. @raise Invalid_argument when [s < 1]. *)
