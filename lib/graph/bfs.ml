(* Contextful bounds checks for the pairwise entry points: without them,
   [distance g v v] would report 0 for ids the graph does not even
   contain (the equality shortcut fires before any array access), and
   non-equal out-of-range ids would escape as a bare Invalid_argument
   "index out of bounds" from the distance array. *)
let check_node g fn v =
  if v < 0 || v >= Graph.n g then
    invalid_arg (Printf.sprintf "Bfs.%s: node %d out of range (n=%d)" fn v (Graph.n g))

let distances g src =
  check_node g "distances" src;
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Scoll.Fifo_queue.create () in
  dist.(src) <- 0;
  Scoll.Fifo_queue.push queue src;
  while not (Scoll.Fifo_queue.is_empty queue) do
    let v = Scoll.Fifo_queue.pop queue in
    Graph.iter_neighbors
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Scoll.Fifo_queue.push queue u
        end)
      g v
  done;
  dist

exception Reached of int

let distance g src dst =
  check_node g "distance" src;
  check_node g "distance" dst;
  if src = dst then 0
  else
    let n = Graph.n g in
    let dist = Array.make n (-1) in
    let queue = Scoll.Fifo_queue.create () in
    dist.(src) <- 0;
    Scoll.Fifo_queue.push queue src;
    try
      while not (Scoll.Fifo_queue.is_empty queue) do
        let v = Scoll.Fifo_queue.pop queue in
        Graph.iter_neighbors
          (fun u ->
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              if u = dst then raise (Reached dist.(u));
              Scoll.Fifo_queue.push queue u
            end)
          g v
      done;
      -1
    with Reached d -> d

(* Bounded BFS without an O(n) distance array: depth-synchronous frontier
   expansion with a hash table of visited nodes, so a radius-s ball over a
   huge graph costs only the size of the ball. *)
let ball g v ~radius =
  if radius < 0 then invalid_arg "Bfs.ball: negative radius";
  let visited = Hashtbl.create 64 in
  Hashtbl.replace visited v ();
  let frontier = ref [ v ] in
  let members = ref [] in
  let depth = ref 0 in
  while !depth < radius && not (List.is_empty !frontier) do
    incr depth;
    let next = ref [] in
    List.iter
      (fun x ->
        Graph.iter_neighbors
          (fun u ->
            if not (Hashtbl.mem visited u) then begin
              Hashtbl.replace visited u ();
              members := u :: !members;
              next := u :: !next
            end)
          g x)
      !frontier;
    frontier := !next
  done;
  Node_set.of_list !members

(* The closed multi-source ball over any adjacency representation: the
   churn path walks balls in a batch's *intermediate* graphs, which live
   as [Overlay]s that never get compacted — so the row walk is a
   parameter instead of a [Graph.t]. *)
let ball_multi_rows ~iter_row ~n ~srcs ~radius =
  if radius < 0 then invalid_arg "Bfs.ball_multi: negative radius";
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Bfs.ball_multi: node %d out of range (n=%d)" v n))
    srcs;
  let visited = Hashtbl.create 64 in
  let frontier = ref [] in
  let members = ref [] in
  List.iter
    (fun v ->
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        members := v :: !members;
        frontier := v :: !frontier
      end)
    srcs;
  let depth = ref 0 in
  while !depth < radius && not (List.is_empty !frontier) do
    incr depth;
    let next = ref [] in
    List.iter
      (fun x ->
        iter_row
          (fun u ->
            if not (Hashtbl.mem visited u) then begin
              Hashtbl.replace visited u ();
              members := u :: !members;
              next := u :: !next
            end)
          x)
      !frontier;
    frontier := !next
  done;
  Node_set.of_list !members

let ball_multi g ~srcs ~radius =
  ball_multi_rows
    ~iter_row:(fun f v -> Graph.iter_neighbors f g v)
    ~n:(Graph.n g) ~srcs ~radius

let ball_within g ~universe v ~radius =
  if radius < 0 then invalid_arg "Bfs.ball_within: negative radius";
  if not (Node_set.mem v universe) then
    invalid_arg "Bfs.ball_within: source outside universe";
  let visited = Hashtbl.create 64 in
  Hashtbl.replace visited v ();
  let frontier = ref [ v ] in
  let members = ref [] in
  let depth = ref 0 in
  while !depth < radius && not (List.is_empty !frontier) do
    incr depth;
    let next = ref [] in
    List.iter
      (fun x ->
        Graph.iter_neighbors
          (fun u ->
            if Node_set.mem u universe && not (Hashtbl.mem visited u) then begin
              Hashtbl.replace visited u ();
              members := u :: !members;
              next := u :: !next
            end)
          g x)
      !frontier;
    frontier := !next
  done;
  Node_set.of_list !members

let reachable_within g ~universe v =
  if not (Node_set.mem v universe) then
    invalid_arg "Bfs.reachable_within: source outside universe";
  Node_set.add v (ball_within g ~universe v ~radius:(Node_set.cardinal universe))

let is_connected_subset g u =
  match Node_set.cardinal u with
  | 0 | 1 -> true
  | k ->
      let reached = reachable_within g ~universe:u (Node_set.min_elt u) in
      Node_set.cardinal reached = k
