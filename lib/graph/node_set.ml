type t = int array (* sorted, distinct *)

(* Every function below pins its parameters to [t]: the mli constrains
   only the external signature, so an unannotated body would generalize
   to ['a array] and compile each element comparison as a call to the
   polymorphic runtime compare -- an order of magnitude slower than the
   int compare these merges are meant to be. *)

let empty = [||]

let singleton v = [| v |]

let dedup_sorted (arr : t) =
  let n = Array.length arr in
  if n = 0 then arr
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if arr.(r) <> arr.(!w - 1) then begin
        arr.(!w) <- arr.(r);
        incr w
      end
    done;
    if !w = n then arr else Array.sub arr 0 !w
  end

let of_array arr =
  let copy = Array.copy arr in
  Array.sort Int.compare copy;
  dedup_sorted copy

let of_list l = of_array (Array.of_list l)

let of_sorted_array_unchecked arr = arr

let to_list = Array.to_list

let to_array = Array.copy

let cardinal = Array.length

let is_empty s = Array.length s = 0

(* index of v in s, or -1 *)
let index_of (v : int) (s : t) =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) = v then mid else if s.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length s)

let mem v s = index_of v s >= 0

(* number of elements of s strictly below v *)
let rank (v : int) (s : t) =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length s)

let add v s =
  let i = rank v s in
  let n = Array.length s in
  if i < n && s.(i) = v then s
  else begin
    let out = Array.make (n + 1) v in
    Array.blit s 0 out 0 i;
    Array.blit s i out (i + 1) (n - i);
    out
  end

let remove v s =
  let i = index_of v s in
  if i < 0 then s
  else begin
    let n = Array.length s in
    let out = Array.make (n - 1) 0 in
    Array.blit s 0 out 0 i;
    Array.blit s (i + 1) out i (n - 1 - i);
    out
  end

let union (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin
        out.(!k) <- x;
        incr i
      end
      else if x > y then begin
        out.(!k) <- y;
        incr j
      end
      else begin
        out.(!k) <- x;
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < na do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < nb do
      out.(!k) <- b.(!j);
      incr j;
      incr k
    done;
    if !k = na + nb then out else Array.sub out 0 !k
  end

(* When one operand is [gallop_ratio] times smaller, scanning the small one
   and binary searching the big one beats the linear merge. *)
let gallop_ratio = 16

let inter_merge (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if x > y then incr j
    else begin
      out.(!k) <- x;
      incr i;
      incr j;
      incr k
    end
  done;
  if !k = Array.length out then out else Array.sub out 0 !k

let inter_gallop (small : t) (big : t) =
  let n = Array.length small in
  let out = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if mem small.(i) big then begin
      out.(!k) <- small.(i);
      incr k
    end
  done;
  if !k = n then out else Array.sub out 0 !k

let inter a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then empty
  else if na * gallop_ratio <= nb then inter_gallop a b
  else if nb * gallop_ratio <= na then inter_gallop b a
  else inter_merge a b

let diff (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then a
  else if nb * gallop_ratio <= na || na * gallop_ratio <= nb then begin
    (* scan a, binary search b *)
    let out = Array.make na 0 in
    let k = ref 0 in
    for i = 0 to na - 1 do
      if not (mem a.(i) b) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = na then out else Array.sub out 0 !k
  end
  else begin
    let out = Array.make na 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin
        out.(!k) <- x;
        incr i;
        incr k
      end
      else if x > y then incr j
      else begin
        incr i;
        incr j
      end
    done;
    while !i < na do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    if !k = na then out else Array.sub out 0 !k
  end

let subset (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else if na * gallop_ratio <= nb then Array.for_all (fun v -> mem v b) a
  else begin
    let rec go i j =
      if i >= na then true
      else if j >= nb then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0
  end

let disjoint (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then true
  else if na * gallop_ratio <= nb then not (Array.exists (fun v -> mem v b) a)
  else if nb * gallop_ratio <= na then not (Array.exists (fun v -> mem v a) b)
  else begin
    let rec go i j =
      if i >= na || j >= nb then true
      else if a.(i) = b.(j) then false
      else if a.(i) < b.(j) then go (i + 1) j
      else go i (j + 1)
    in
    go 0 0
  end

(* explicit int loop, not structural (=) on the arrays: the polymorphic
   runtime compare walks both arrays through caml_compare *)
let equal (a : t) (b : t) =
  let na = Array.length a in
  na = Array.length b
  &&
  let rec go i = i >= na || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare (a : t) b =
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na && i >= nb then 0
    else if i >= na then -1
    else if i >= nb then 1
    else
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let min_elt s = if Array.length s = 0 then raise Not_found else s.(0)

let max_elt s =
  let n = Array.length s in
  if n = 0 then raise Not_found else s.(n - 1)

let choose = min_elt

let nth s i =
  if i < 0 || i >= Array.length s then invalid_arg "Node_set.nth: out of bounds";
  s.(i)

let iter f s = Array.iter f s

let fold f s init = Array.fold_left (fun acc v -> f v acc) init s

let for_all = Array.for_all

let exists = Array.exists

let filter f s =
  let n = Array.length s in
  let out = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if f s.(i) then begin
      out.(!k) <- s.(i);
      incr k
    end
  done;
  if !k = n then s else Array.sub out 0 !k

let inter_cardinal (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then 0
  else if na * gallop_ratio <= nb then
    Array.fold_left (fun acc v -> if mem v b then acc + 1 else acc) 0 a
  else if nb * gallop_ratio <= na then
    Array.fold_left (fun acc v -> if mem v a then acc + 1 else acc) 0 b
  else begin
    let rec go i j acc =
      if i >= na || j >= nb then acc
      else if a.(i) = b.(j) then go (i + 1) (j + 1) (acc + 1)
      else if a.(i) < b.(j) then go (i + 1) j acc
      else go i (j + 1) acc
    in
    go 0 0 0
  end

let diff_cardinal a b = Array.length a - inter_cardinal a b

let range lo hi = if lo >= hi then empty else Array.init (hi - lo) (fun i -> lo + i)

(* ---------- bitset bridge ----------

   The enumeration hot paths intersect/difference the same mask (a ball,
   a frontier) against several sorted sets in a row; loading the mask once
   and filtering each set with O(1) word-indexed membership beats a merge
   per pair. The sorted-array representation stays the module boundary:
   these kernels take and return [t]. *)

let to_bitset s ~capacity =
  let b = Scoll.Bitset.create capacity in
  Array.iter (Scoll.Bitset.add b) s;
  b

let of_bitset b =
  let out = Array.make (Scoll.Bitset.cardinal b) 0 in
  let k = ref 0 in
  Scoll.Bitset.iter
    (fun i ->
      out.(!k) <- i;
      incr k)
    b;
  out

let load_bitset mask ~prev s =
  (* reload a scratch mask: wipe [prev]'s footprint with one word store
     per member, then set [s] word-grouped (sorted invariant) — two
     direct loops, no per-element closure. Only valid when the mask's
     current contents are exactly [prev].
     SAFETY: caller guarantees members of [prev] and [s] are below the
     mask's capacity, the precondition of both Bitset kernels *)
  Scoll.Bitset.unsafe_zero_words mask prev;
  Scoll.Bitset.unsafe_load_sorted mask s

(* The scans below read the mask's word array directly: without flambda
   a cross-module [Bitset.unsafe_mem] call per element costs about as
   much as the bit test itself (measured ~2x on the pivot scan). *)

(* SAFETY: i < n bounds the reads of s; members are below the mask's
   capacity (caller invariant) so the word reads are in bounds; !k <= i
   bounds the writes into out, which has length n *)
let inter_bitset (s : t) mask =
  let words = Scoll.Bitset.unsafe_words mask in
  let n = Array.length s in
  let out = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get s i in
    if Array.unsafe_get words (v lsr 5) land (1 lsl (v land 31)) <> 0 then begin
      Array.unsafe_set out !k v;
      incr k
    end
  done;
  if !k = n then s else Array.sub out 0 !k

(* SAFETY: same bounds argument as inter_bitset *)
let diff_bitset (s : t) mask =
  let words = Scoll.Bitset.unsafe_words mask in
  let n = Array.length s in
  let out = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get s i in
    if Array.unsafe_get words (v lsr 5) land (1 lsl (v land 31)) = 0 then begin
      Array.unsafe_set out !k v;
      incr k
    end
  done;
  if !k = n then s else Array.sub out 0 !k

let inter_bitset_cardinal (s : t) mask =
  (* branch-free: the 0/1 membership bit is added straight into the
     accumulator, which the tail recursion keeps in a register.
     SAFETY: i < n bounds the reads of s; members are below the mask's
     capacity (caller invariant), bounding the word reads *)
  let words = Scoll.Bitset.unsafe_words mask in
  let n = Array.length s in
  let rec go i acc =
    if i >= n then acc
    else
      let v = Array.unsafe_get s i in
      go (i + 1) (acc + (Array.unsafe_get words (v lsr 5) lsr (v land 31) land 1))
  in
  go 0 0

let diff_bitset_cardinal s mask = Array.length s - inter_bitset_cardinal s mask

let pp fmt s =
  Format.fprintf fmt "{";
  Array.iteri
    (fun i v -> if i = 0 then Format.fprintf fmt "%d" v else Format.fprintf fmt ", %d" v)
    s;
  Format.fprintf fmt "}"

let to_string s = Format.asprintf "%a" pp s
