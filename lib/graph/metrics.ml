let avg_degree g =
  let n = Graph.n g in
  if n = 0 then 0. else 2. *. float_of_int (Graph.m g) /. float_of_int n

let density g =
  let n = Graph.n g in
  if n < 2 then 0.
  else 2. *. float_of_int (Graph.m g) /. (float_of_int n *. float_of_int (n - 1))

let degree_histogram g =
  let hist = Array.make (Graph.max_degree g + 1) 0 in
  Graph.iter_nodes (fun v -> hist.(Graph.degree g v) <- hist.(Graph.degree g v) + 1) g;
  hist

let triangle_count g =
  let csr = Graph.csr g in
  let off = Csr.offsets csr and nbr = Csr.adjacency csr in
  let count = ref 0 in
  Graph.iter_edges
    (fun u v ->
      (* triangles through edge (u,v) with third node > v keep each
         triangle counted exactly once (u < v < w); the merge runs over
         the two CSR slices in place, no row copies *)
      let i = ref off.(u) and j = ref off.(v) in
      let iu = off.(u + 1) and jv = off.(v + 1) in
      while !i < iu && !j < jv do
        let x = nbr.(!i) and y = nbr.(!j) in
        if x < y then incr i
        else if x > y then incr j
        else begin
          if x > v then incr count;
          incr i;
          incr j
        end
      done)
    g;
  !count

let wedge_count g =
  let total = ref 0 in
  Graph.iter_nodes
    (fun v ->
      let d = Graph.degree g v in
      total := !total + (d * (d - 1) / 2))
    g;
  !total

let global_clustering g =
  let wedges = wedge_count g in
  if wedges = 0 then 0. else 3. *. float_of_int (triangle_count g) /. float_of_int wedges

let eccentric_from g src =
  let dist = Bfs.distances g src in
  let best = ref src and best_d = ref 0 in
  Array.iteri
    (fun v d ->
      if d > !best_d then begin
        best := v;
        best_d := d
      end)
    dist;
  (!best, !best_d)

let approx_diameter g =
  if Graph.m g = 0 then 0
  else begin
    (* double sweep inside the largest component: BFS to a farthest node,
       then BFS again from there *)
    let start = Node_set.min_elt (Components.largest g) in
    let far, _ = eccentric_from g start in
    let _, d = eccentric_from g far in
    d
  end

let summary g =
  Printf.sprintf "n=%d m=%d avg_deg=%.2f density=%.6f max_deg=%d triangles=%d"
    (Graph.n g) (Graph.m g) (avg_degree g) (density g) (Graph.max_degree g)
    (triangle_count g)
