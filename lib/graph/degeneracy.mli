(** Core decomposition and degeneracy ordering.

    The degeneracy ordering drives the Eppstein–Löffler–Strash variant of
    Bron–Kerbosch (footnote 1 of the paper): processing nodes in order of
    repeated minimum-degree removal bounds every recursion's candidate set
    by the degeneracy of the graph. *)

val core_numbers : Graph.t -> int array
(** [core_numbers g].(v) is the largest [k] such that [v] belongs to the
    [k]-core (the maximal subgraph of minimum degree [k]). Computed with
    the O(n + m) bucket algorithm of Batagelj–Zaveršnik. *)

val degeneracy : Graph.t -> int
(** Maximum core number (0 for edgeless graphs). *)

val ordering : Graph.t -> int array
(** A degeneracy ordering: nodes in the order of repeated removal of a
    minimum-degree node. Every node has at most [degeneracy g] neighbors
    later in the ordering. *)

val k_core : Graph.t -> int -> Node_set.t
(** Nodes of the [k]-core (possibly empty). *)
