(** Mutable accumulator for constructing a {!Graph.t} edge by edge.

    Grows automatically as larger node ids appear; self-loops and duplicate
    edges are tolerated on input and absent from the built graph. This is
    the entry point used by the generators and the edge-list parser. *)

type t

val create : ?expected_nodes:int -> unit -> t

val add_node : t -> int -> unit
(** Ensure the node exists (useful for isolated nodes). *)

val add_edge : t -> int -> int -> unit
(** Record an undirected edge; both endpoints are created as needed.
    Self-loops are silently dropped.
    @raise Invalid_argument on negative ids. *)

val node_count : t -> int
(** Current number of nodes ([1 + ] the largest id seen, or 0). *)

val edge_count : t -> int
(** Number of edge insertions so far (before deduplication). *)

val build : t -> Graph.t
(** Freeze into an immutable graph, deduplicating edges. The builder stays
    usable afterwards. *)
