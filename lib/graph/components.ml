let labels g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let queue = Scoll.Fifo_queue.create () in
  for src = 0 to n - 1 do
    if label.(src) < 0 then begin
      let c = !next in
      incr next;
      label.(src) <- c;
      Scoll.Fifo_queue.push queue src;
      while not (Scoll.Fifo_queue.is_empty queue) do
        let v = Scoll.Fifo_queue.pop queue in
        Graph.iter_neighbors
          (fun u ->
            if label.(u) < 0 then begin
              label.(u) <- c;
              Scoll.Fifo_queue.push queue u
            end)
          g v
      done
    end
  done;
  (label, !next)

let components g =
  let label, c = labels g in
  let buckets = Array.make c [] in
  for v = Graph.n g - 1 downto 0 do
    buckets.(label.(v)) <- v :: buckets.(label.(v))
  done;
  Array.to_list (Array.map Node_set.of_list buckets)

let count g = snd (labels g)

let is_connected g = Graph.n g <= 1 || count g = 1

let largest g =
  if Graph.n g = 0 then invalid_arg "Components.largest: empty graph";
  match components g with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun best c -> if Node_set.cardinal c > Node_set.cardinal best then c else best)
        first rest

let component_of g v = Bfs.reachable_within g ~universe:(Graph.nodes g) v

let components_within g u =
  let rec go remaining acc =
    if Node_set.is_empty remaining then List.rev acc
    else
      let comp = Bfs.reachable_within g ~universe:remaining (Node_set.min_elt remaining) in
      go (Node_set.diff remaining comp) (comp :: acc)
  in
  go u []
