(** Connected components of a graph and of induced subgraphs. *)

val components : Graph.t -> Node_set.t list
(** All connected components, each as a node set, ordered by smallest
    member. Isolated nodes form singleton components. *)

val count : Graph.t -> int

val is_connected : Graph.t -> bool
(** A graph with at most one node is connected. *)

val largest : Graph.t -> Node_set.t
(** Largest component (ties broken by smallest member).
    @raise Invalid_argument on an empty graph. *)

val component_of : Graph.t -> int -> Node_set.t
(** The component containing the given node. *)

val components_within : Graph.t -> Node_set.t -> Node_set.t list
(** Connected components of the induced subgraph [g\[u\]], ordered by
    smallest member. *)

val labels : Graph.t -> int array * int
(** [labels g] assigns each node a component id in [0 .. c-1] (in order of
    discovery by increasing node id) and returns the id array and [c]. *)
