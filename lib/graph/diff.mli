(** CRC-checked binary edit scripts — the [SGRDIFF1] member of the
    [.sgr] snapshot family.

    A diff file records an ordered script of edge edits against a base
    graph identified by its (node count, edge count) pair, so churn
    survives restarts: journal each applied edit with {!write_edit},
    and after a crash reload the base snapshot ({!Snapshot}) and replay
    the script. Replay is {e strict} (every edit must be effective, see
    {!Overlay.apply}), so a script can never silently drift from the
    graph it was recorded against.

    Byte layout (all integers little-endian):
    {v
    offset  size  field
    0       8     magic "SGRDIFF1"
    8       8     base node count (u64)
    16      8     base edge count (u64)
    24      4     CRC-32 of bytes [8, 24)
    then per edit, repeated to end of file:
    +0      1     op: 0 = insert, 1 = delete
    +1      8     endpoint u (u64)
    +9      8     endpoint v (u64)
    +17     4     CRC-32 of the 17 payload bytes
    v}

    Unlike the {!Result_io.Stream} result sink — where a torn tail is
    tolerated and truncated away, because results are recomputable — a
    torn or CRC-mismatching diff tail is {b refused}: silently dropping
    the tail of an edit script would replay a different graph. Recovery
    from a torn journal is recomputing the script with {!between}. *)

type header = { base_n : int; base_m : int }

val magic : string

val save : base_n:int -> base_m:int -> Overlay.edit list -> string -> unit
(** Write a complete diff file atomically (temp file + rename), with the
    given base-graph identity in the header. *)

val load : string -> header * Overlay.edit list
(** Read a diff file back, validating magic, CRCs, opcode bytes and
    endpoint ranges (endpoints must be in [0 .. base_n - 1], no loops).
    @raise Io_error.Parse_error on any malformed, truncated or
    CRC-mismatching input ([line = 0]: byte offsets, not lines) — a torn
    trailing record is an error, not a tolerated tail.
    @raise Sys_error when the file cannot be read. *)

val check_base : file:string -> header -> Graph.t -> unit
(** Refuse (as [Io_error.Parse_error]) a diff whose recorded base
    (n, m) does not match the given graph — the guard every consumer
    runs before a strict replay. *)

(** {2 In-memory images}

    The same byte format, decoded from / encoded to a string instead of
    a file. There is exactly one SGRDIFF1 decoder: {!load} is
    [of_string] over the slurped file, and the daemon feeds it both
    [Mutate] payloads straight off the wire and its mutation journal on
    restart — so wire, journal and disk scripts share one CRC and
    torn-tail discipline. *)

val of_string : file:string -> string -> header * Overlay.edit list
(** Decode a complete SGRDIFF1 image. [file] only labels errors (a
    path, a peer, a journal name).
    @raise Io_error.Parse_error exactly as {!load}. *)

val to_string : base_n:int -> base_m:int -> Overlay.edit list -> string
(** The complete image [load] would accept: magic, CRC'd header, one
    CRC'd record per edit. [of_string (to_string edits) = edits]. *)

val encode_header : base_n:int -> base_m:int -> string
(** The 28-byte file prefix (magic + CRC'd header) — what a journal
    starts with. *)

val encode_edit : Overlay.edit -> string
(** One 21-byte CRC'd edit record — the unit a journal appends. *)

(** {2 Incremental journal}

    An open journal appends one record per edit as churn happens. Records
    are flushed only on {!flush}/{!close}, so a crash can tear the final
    record — which {!load} then refuses, by design. *)

type writer

val open_writer : base_n:int -> base_m:int -> string -> writer
(** Create (truncate) a journal at the path and write magic + header. *)

val write_edit : writer -> Overlay.edit -> unit

val flush : writer -> unit

val close : writer -> unit
(** Flush and close. The writer must not be used afterwards. *)

(** {2 Scripts as graph deltas} *)

val between : Graph.t -> Graph.t -> Overlay.edit list
(** [between g0 g1] is a script that strictly transforms [g0] into [g1]:
    one [Delete] per edge of [g0] missing from [g1] and one [Insert] per
    edge of [g1] missing from [g0], ordered by (min endpoint, max
    endpoint). O(n + m0 + m1).
    @raise Invalid_argument when the node counts differ. *)

val apply : Graph.t -> Overlay.edit list -> Graph.t
(** Strict functional replay: overlay the script on the graph and
    {!Overlay.compact}. [apply g0 (between g0 g1)] equals [g1].
    @raise Invalid_argument on an ineffective or out-of-range edit. *)
