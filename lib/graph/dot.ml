let palette =
  [| "#a6cee3"; "#b2df8a"; "#fb9a99"; "#fdbf6f"; "#cab2d6"; "#ffff99"; "#1f78b4";
     "#33a02c" |]

let to_dot ?(name = string_of_int) ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph scliques {\n";
  Buffer.add_string buf "  node [style=filled, fillcolor=white, shape=circle];\n";
  (* indices of the highlight sets containing v *)
  let memberships v =
    List.concat
      (List.mapi (fun i set -> if Node_set.mem v set then [ i ] else []) highlight)
  in
  Graph.iter_nodes
    (fun v ->
      let members = memberships v in
      let color =
        match members with
        | [] -> "white"
        | i :: _ -> palette.(i mod Array.length palette)
      in
      let label =
        if List.is_empty members then name v
        else
          Printf.sprintf "%s\\n[%s]" (name v)
            (String.concat "," (List.map string_of_int members))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\", fillcolor=\"%s\"];\n" v label color))
    g;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ?name ?highlight g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_dot ?name ?highlight g);
      close_out oc)
