exception Parse_error of { file : string; line : int; msg : string }

let fail ~file ~line msg = raise (Parse_error { file; line; msg })

let failf ~file ~line fmt = Printf.ksprintf (fun msg -> fail ~file ~line msg) fmt

let to_string ~file ~line msg =
  if line = 0 then Printf.sprintf "%s: %s" file msg
  else Printf.sprintf "%s:%d: %s" file line msg

let message = function
  | Parse_error { file; line; msg } -> Some (to_string ~file ~line msg)
  | _ -> None
