(** Compressed sparse row (CSR) adjacency storage.

    The whole adjacency of a graph lives in two flat [int array]s: a
    row-offset array of length [n + 1] and one concatenated neighbor
    array, so node [v]'s neighbors are the slice
    [adjacency.(offsets.(v)) .. adjacency.(offsets.(v+1) - 1)]. Compared
    to the previous one-boxed-array-per-node representation this removes
    one pointer indirection and one GC-scanned header per node, packs
    every hot walk (BFS, peeling, ball expansion, triangle merges) into
    two contiguous allocations, and makes the on-disk {!Snapshot} format
    a straight dump of the two arrays.

    This module holds the representation and its scan kernels; the
    [unsafe_*]-using loops are concentrated here (the module is on the
    lint's unsafe allowlist) behind bounds-checked entry points.
    {!Graph} wraps it with the validated construction API — a [Csr.t]
    itself carries only structural invariants (see {!of_arrays}), not
    the graph-level ones (sortedness, symmetry, no loops). *)

type t

val of_rows : int array array -> t
(** Concatenate per-node rows into CSR form. O(n + total length). The
    rows are copied, not adopted. No graph-level validation. *)

val to_rows : t -> int array array
(** Fresh per-node rows (the inverse of {!of_rows}). *)

val of_arrays : offsets:int array -> adjacency:int array -> t
(** Adopt the two arrays after checking the structural invariants:
    [offsets] is non-empty, starts at 0, is non-decreasing, and ends at
    [Array.length adjacency]. The caller must not mutate them afterwards.
    @raise Invalid_argument when the shape is malformed. *)

val n : t -> int
(** Number of rows (nodes). *)

val entries : t -> int
(** Total number of adjacency entries (twice the edge count for an
    undirected graph). *)

val offsets : t -> int array
(** The row-offset array itself (length [n + 1]) — O(1),
    {b do not mutate}. *)

val adjacency : t -> int array
(** The concatenated neighbor array itself — O(1), {b do not mutate}. *)

val degree : t -> int -> int
(** Row length. [v] must be in [0 .. n-1] (checked by the array bounds). *)

val row : t -> int -> int array
(** Fresh copy of row [v]; safe to mutate. O(degree). *)

val iter_row : (int -> unit) -> t -> int -> unit
(** Apply to each entry of row [v] in storage (sorted) order. The scan
    is closure-per-element but indexes the flat array unchecked, so it
    costs the same as iterating the old per-node array. *)

val fold_row : ('a -> int -> 'a) -> 'a -> t -> int -> 'a
(** Fold over row [v] in storage order. *)

val mem_row : t -> int -> int -> bool
(** [mem_row t v x] is true when sorted row [v] contains [x], by binary
    search — O(log degree). Only meaningful when rows are sorted. *)

val equal : t -> t -> bool
(** Same offsets and same adjacency, compared as int arrays. *)
