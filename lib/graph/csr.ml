type t = { off : int array; nbr : int array }

let of_rows rows =
  let n = Array.length rows in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + Array.length rows.(v)
  done;
  let nbr = Array.make off.(n) 0 in
  Array.iteri (fun v r -> Array.blit r 0 nbr off.(v) (Array.length r)) rows;
  { off; nbr }

let n t = Array.length t.off - 1

let entries t = Array.length t.nbr

let of_arrays ~offsets ~adjacency =
  let len = Array.length offsets in
  if len = 0 then invalid_arg "Csr.of_arrays: empty offsets";
  if offsets.(0) <> 0 then invalid_arg "Csr.of_arrays: offsets must start at 0";
  for i = 1 to len - 1 do
    if offsets.(i) < offsets.(i - 1) then
      invalid_arg
        (Printf.sprintf "Csr.of_arrays: offsets decrease at %d (%d < %d)" i offsets.(i)
           offsets.(i - 1))
  done;
  if offsets.(len - 1) <> Array.length adjacency then
    invalid_arg
      (Printf.sprintf "Csr.of_arrays: offsets end at %d but adjacency has %d entries"
         offsets.(len - 1) (Array.length adjacency));
  { off = offsets; nbr = adjacency }

let offsets t = t.off

let adjacency t = t.nbr

let degree t v = t.off.(v + 1) - t.off.(v)

let row t v = Array.sub t.nbr t.off.(v) (degree t v)

let to_rows t = Array.init (n t) (row t)

(* SAFETY: [lo, hi) comes from two reads of the offsets array (which
   bounds-checks v), and of_arrays/of_rows guarantee every offset is a
   valid index into [nbr], so all unsafe_get indices are in range *)
let iter_row f t v =
  let hi = t.off.(v + 1) in
  for i = t.off.(v) to hi - 1 do
    f (Array.unsafe_get t.nbr i)
  done

(* SAFETY: same bounds argument as [iter_row] *)
let fold_row f init t v =
  let hi = t.off.(v + 1) in
  let acc = ref init in
  for i = t.off.(v) to hi - 1 do
    acc := f !acc (Array.unsafe_get t.nbr i)
  done;
  !acc

(* SAFETY: the search interval [lo, hi) starts as row v's offset range
   (valid nbr indices, see iter_row) and only ever shrinks *)
let mem_row t v x =
  let nbr = t.nbr in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let y = Array.unsafe_get nbr mid in
      if y = x then true else if y < x then go (mid + 1) hi else go lo mid
  in
  go t.off.(v) t.off.(v + 1)

let int_array_equal (a : int array) (b : int array) =
  let len = Array.length a in
  len = Array.length b
  &&
  let rec go i = i >= len || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let equal a b = int_array_equal a.off b.off && int_array_equal a.nbr b.nbr
