let power g ~s =
  if s < 1 then invalid_arg "Power.power: s must be >= 1";
  let n = Graph.n g in
  let adj =
    Array.init n (fun v ->
        let ball = Bfs.ball g v ~radius:s in
        Node_set.to_array ball)
  in
  Graph.of_adjacency adj
