(** Mutable delta overlay over the immutable CSR graph core.

    Social graphs churn, but {!Graph.t} is a frozen CSR slab: any edit
    would mean rebuilding the two flat arrays. An overlay keeps the slab
    as an immutable [base] and records edits as sorted per-node {e add}
    and {e delete} deltas in int-keyed hash tables, so a burst of edge
    churn costs O(degree) per edit while reads stay O(row): the row
    kernels ({!iter_row}, {!fold_row}, {!mem_edge}) merge the base CSR
    slice with the node's deltas on the fly. When the deltas grow past
    taste, {!compact} folds them back into a fresh validated {!Graph.t}
    and the cycle restarts.

    Two invariants keep the merge kernels single-pass: a node's add list
    is disjoint from its base row, and its delete list is a subset of the
    base row. [insert_edge]/[delete_edge] maintain them — deleting an
    overlay-added edge shrinks the add list rather than growing the
    delete list, and re-inserting a deleted base edge shrinks the delete
    list — so an insert/delete round trip leaves no residue and the edge
    count {!m} is always exact (never inflated by phantom rows or
    cancelled edits).

    Every effective edit bumps {!epoch}. Consumers that cache per-node
    derived data keyed on the graph (the [N^s] balls of
    [Scliques_core.Neighborhood]) use the epoch to detect staleness and
    the touched-endpoint set of an edit batch to invalidate only the
    affected distance-s balls. *)

type t

type edit =
  | Insert of int * int
  | Delete of int * int
      (** One undirected edge edit. Endpoint order is irrelevant;
          [Insert (u, v)] and [Insert (v, u)] denote the same edit. *)

val edit_endpoints : edit -> int * int

val pp_edit : Format.formatter -> edit -> unit
(** Prints as [+u-v] (insert) or [-u-v] (delete). *)

val touched : edit list -> int list
(** The distinct endpoints of the edits, sorted increasing — the seed set
    for distance-s cache invalidation and incremental re-enumeration. *)

val of_graph : Graph.t -> t
(** A fresh overlay with empty deltas. O(1): the graph is shared, not
    copied. *)

val base : t -> Graph.t
(** The frozen CSR graph under the deltas (the argument of {!of_graph} or
    the result of the constructing {!compact}). *)

val n : t -> int

val m : t -> int
(** Exact live undirected edge count, maintained incrementally. *)

val epoch : t -> int
(** Starts at 0; incremented by every {e effective} edit (no-ops do not
    bump it). *)

val delta_size : t -> int
(** Number of edit entries currently held in the overlay (each edited
    edge counts once), i.e. the distance from [base]. Useful as a
    compaction trigger. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** O(log degree + |delta|). [mem_edge t v v] is always false. *)

val iter_row : (int -> unit) -> t -> int -> unit
(** Live neighbors of [v] in increasing order: single-pass merge of the
    base CSR row with the node's deltas. *)

val fold_row : ('a -> int -> 'a) -> 'a -> t -> int -> 'a

val row : t -> int -> int array
(** Fresh sorted array of live neighbors; safe to mutate. *)

val insert_edge : t -> int -> int -> bool
(** [insert_edge t u v] makes [u -- v] live. Returns [false] (and changes
    nothing, not even the epoch) when the edge is already live.
    @raise Invalid_argument when an endpoint is out of range or [u = v]. *)

val delete_edge : t -> int -> int -> bool
(** [delete_edge t u v] removes edge [u -- v]. Returns [false] when the
    edge is not live.
    @raise Invalid_argument when an endpoint is out of range or [u = v]. *)

val apply : t -> edit list -> unit
(** Apply an edit batch in order, strictly: every edit must be effective
    (inserting an absent edge, deleting a live one).
    @raise Invalid_argument on the first ineffective edit, leaving the
    prior edits applied. Strictness is what makes {!Diff} scripts exact:
    replaying a recorded script can never silently drift. *)

val compact : t -> Graph.t
(** Fold the deltas into a fresh flat CSR graph equal to the overlay's
    live edge set, going through {!Graph.of_csr} validation. The overlay
    itself is not changed; start a new overlay with [of_graph (compact t)]
    to reset the deltas. O(n + m). *)
