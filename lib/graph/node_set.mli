(** Immutable sets of node ids, stored as sorted arrays of distinct ints.

    This is the representation of every node set the enumeration algorithms
    manipulate: the growing solution [R], the candidate set [P], the
    exclusion set [X], [N^s(v)] balls and the emitted results. The
    operations that dominate the algorithms' running time — intersection
    and difference against a ball — use a linear merge when the operands
    have similar sizes and a galloping (binary-search) scan when one side
    is much smaller, so intersecting a huge [P] with a small ball costs
    O(|ball| log |P|) rather than O(|P|). *)

type t

val empty : t

val singleton : int -> t

val of_list : int list -> t
(** Sorts and deduplicates. *)

val of_array : int array -> t
(** Sorts and deduplicates; the argument is not modified. *)

val of_sorted_array_unchecked : int array -> t
(** O(1) adoption of an array the caller promises is sorted and duplicate
    free. The caller must not mutate it afterwards. *)

val to_list : t -> int list

val to_array : t -> int array
(** Fresh copy; safe to mutate. *)

val cardinal : t -> int

val is_empty : t -> bool

val mem : int -> t -> bool
(** O(log n) binary search. *)

val add : int -> t -> t

val remove : int -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true when every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: lexicographic on the sorted elements. This is the key
    order of PolyDelayEnum's B-tree index. *)

val min_elt : t -> int
(** @raise Not_found on the empty set. *)

val max_elt : t -> int
(** @raise Not_found on the empty set. *)

val choose : t -> int
(** An arbitrary (deterministic) element. @raise Not_found when empty. *)

val nth : t -> int -> int
(** [nth s i] is the [i]-th smallest element. @raise Invalid_argument when
    out of bounds. *)

val iter : (int -> unit) -> t -> unit
(** Increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val filter : (int -> bool) -> t -> t

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b = cardinal (inter a b)] without allocating the
    intersection. *)

val diff_cardinal : t -> t -> int
(** [diff_cardinal a b = cardinal (diff a b)] without allocating. *)

val range : int -> int -> t
(** [range lo hi] is [{lo, .., hi-1}] (empty when [lo >= hi]). *)

(** {2 Bitset bridge}

    Word-indexed kernels for the enumeration hot paths: load a mask (a
    ball, a frontier) into a {!Scoll.Bitset.t} once, then filter several
    sorted sets against it with O(1) membership per element — cheaper
    than one merge per pair when the mask is reused. The sorted-array
    representation remains the module boundary; every kernel takes and
    returns [t]. The mask's capacity must exceed every element of the
    filtered set (membership tests are unchecked). *)

val to_bitset : t -> capacity:int -> Scoll.Bitset.t
(** Fresh bitset of the given capacity holding exactly the members.
    @raise Invalid_argument when an element is outside the capacity. *)

val of_bitset : Scoll.Bitset.t -> t
(** The members of the bitset, as a sorted set. *)

val load_bitset : Scoll.Bitset.t -> prev:t -> t -> unit
(** [load_bitset mask ~prev s] reloads a scratch mask whose current
    contents are exactly [prev] so that it holds exactly [s], in
    O(|prev| + |s|) closure-free stores (word-zeroing [prev]'s footprint,
    then setting [s]). Undefined if the mask holds anything besides
    [prev]. *)

val inter_bitset : t -> Scoll.Bitset.t -> t
(** [inter_bitset s mask] keeps the elements of [s] whose bit is set:
    [s ∩ mask] in O(|s|). *)

val diff_bitset : t -> Scoll.Bitset.t -> t
(** [diff_bitset s mask] is [s − mask] in O(|s|). *)

val inter_bitset_cardinal : t -> Scoll.Bitset.t -> int
(** [cardinal (inter_bitset s mask)] without allocating. *)

val diff_bitset_cardinal : t -> Scoll.Bitset.t -> int
(** [cardinal (diff_bitset s mask)] without allocating. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 5, 9}]. *)

val to_string : t -> string
