(* Bucket-queue peeling: repeatedly remove a node of minimum remaining
   degree. [core] records the degree at removal time, made monotone to give
   core numbers; the removal sequence is the degeneracy ordering. *)

let peel g =
  let n = Graph.n g in
  let deg = Array.init n (Graph.degree g) in
  let max_deg = Array.fold_left Int.max 0 deg in
  (* bucket.(d) = nodes of current degree d, as a stack *)
  let bucket = Array.make (max_deg + 1) [] in
  Array.iteri (fun v d -> bucket.(d) <- v :: bucket.(d)) deg;
  let removed = Array.make n false in
  let order = Array.make n 0 in
  let core = Array.make n 0 in
  let current = ref 0 in
  let cursor = ref 0 in
  for pos = 0 to n - 1 do
    (* find the lowest non-empty bucket; degrees only decrease, but the
       cursor may need to back up by one after neighbor updates *)
    while !cursor > 0 && not (List.is_empty bucket.(!cursor - 1)) do
      decr cursor
    done;
    let rec pick () =
      match bucket.(!cursor) with
      | [] ->
          incr cursor;
          pick ()
      | v :: rest ->
          bucket.(!cursor) <- rest;
          if removed.(v) || deg.(v) <> !cursor then pick () else v
    in
    let v = pick () in
    removed.(v) <- true;
    current := max !current !cursor;
    core.(v) <- !current;
    order.(pos) <- v;
    Graph.iter_neighbors
      (fun u ->
        if not removed.(u) then begin
          deg.(u) <- deg.(u) - 1;
          bucket.(deg.(u)) <- u :: bucket.(deg.(u))
        end)
      g v
  done;
  (order, core)

let core_numbers g = snd (peel g)

let degeneracy g = Array.fold_left Int.max 0 (core_numbers g)

let ordering g = fst (peel g)

let k_core g k =
  let core = core_numbers g in
  let members = ref [] in
  Array.iteri (fun v c -> if c >= k then members := v :: !members) core;
  Node_set.of_list !members
