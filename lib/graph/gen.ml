module Rng = Scoll.Rng

(* ---------- random families ---------- *)

let erdos_renyi_gnm rng ~n ~m =
  if n < 0 || m < 0 then invalid_arg "Gen.erdos_renyi_gnm: negative size";
  let max_m = n * (n - 1) / 2 in
  if m > max_m then
    invalid_arg (Printf.sprintf "Gen.erdos_renyi_gnm: m=%d exceeds %d" m max_m);
  let builder = Builder.create ~expected_nodes:n () in
  if n > 0 then Builder.add_node builder (n - 1);
  let seen = Hashtbl.create (2 * m) in
  let added = ref 0 in
  while !added < m do
    let u, v = Rng.pair_distinct rng n in
    let key = (u * n) + v in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      Builder.add_edge builder u v;
      incr added
    end
  done;
  Builder.build builder

let erdos_renyi rng ~n ~avg_degree =
  if avg_degree < 0. then invalid_arg "Gen.erdos_renyi: negative degree";
  let m = int_of_float (Float.round (float_of_int n *. avg_degree /. 2.)) in
  erdos_renyi_gnm rng ~n ~m:(min m (n * (n - 1) / 2))

let erdos_renyi_gnp rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Gen.erdos_renyi_gnp: p outside [0,1]";
  let builder = Builder.create ~expected_nodes:n () in
  if n > 0 then Builder.add_node builder (n - 1);
  if p > 0. then begin
    (* skip-ahead sampling over the n(n-1)/2 pair indices: the gap to the
       next sampled pair is geometric with parameter p *)
    let total = n * (n - 1) / 2 in
    let log1mp = log (1. -. p) in
    let pos = ref (-1) in
    let finished = ref false in
    while not !finished do
      let skip =
        if p >= 1. then 1
        else
          let r = Rng.float rng 1. in
          1 + int_of_float (log (1. -. r) /. log1mp)
      in
      pos := !pos + skip;
      if !pos >= total then finished := true
      else begin
        (* invert pair index: row u has n-1-u entries *)
        let rec find_row u remaining =
          let row_len = n - 1 - u in
          if remaining < row_len then (u, u + 1 + remaining)
          else find_row (u + 1) (remaining - row_len)
        in
        let u, v = find_row 0 !pos in
        Builder.add_edge builder u v
      end
    done
  end;
  Builder.build builder

let barabasi_albert rng ~n ~m_attach =
  if m_attach < 1 then invalid_arg "Gen.barabasi_albert: m_attach must be >= 1";
  if n < m_attach + 1 then
    invalid_arg "Gen.barabasi_albert: need n >= m_attach + 1";
  let builder = Builder.create ~expected_nodes:n () in
  (* endpoint pool: each node appears once per incident edge, so uniform
     draws from the pool are degree-proportional; growable array with
     amortized O(1) appends *)
  let seed = m_attach + 1 in
  let expected = (seed * (seed - 1)) + (2 * m_attach * (n - seed)) in
  let pool = Array.make (max 16 expected) 0 in
  let pool_len = ref 0 in
  let pool_ref = ref pool in
  let push v =
    if !pool_len = Array.length !pool_ref then begin
      let bigger = Array.make (2 * !pool_len) 0 in
      Array.blit !pool_ref 0 bigger 0 !pool_len;
      pool_ref := bigger
    end;
    !pool_ref.(!pool_len) <- v;
    incr pool_len
  in
  for u = 0 to seed - 1 do
    for v = u + 1 to seed - 1 do
      Builder.add_edge builder u v;
      push u;
      push v
    done
  done;
  for v = seed to n - 1 do
    (* draw targets from the pool frozen before v's own stubs join it *)
    let frozen_len = !pool_len in
    let targets = Hashtbl.create (2 * m_attach) in
    while Hashtbl.length targets < m_attach do
      let t = !pool_ref.(Rng.int rng frozen_len) in
      if not (Hashtbl.mem targets t) then Hashtbl.replace targets t ()
    done;
    Hashtbl.iter
      (fun t () ->
        Builder.add_edge builder v t;
        push v;
        push t)
      targets
  done;
  Builder.build builder

let watts_strogatz rng ~n ~k ~beta =
  if k < 1 then invalid_arg "Gen.watts_strogatz: k must be >= 1";
  if n <= 2 * k then invalid_arg "Gen.watts_strogatz: need n > 2k";
  if beta < 0. || beta > 1. then invalid_arg "Gen.watts_strogatz: beta outside [0,1]";
  let edges = Hashtbl.create (2 * n * k) in
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  let mem u v = Hashtbl.mem edges (key u v) in
  let add u v = Hashtbl.replace edges (key u v) (u, v) in
  let remove u v = Hashtbl.remove edges (key u v) in
  for u = 0 to n - 1 do
    for j = 1 to k do
      add u ((u + j) mod n)
    done
  done;
  (* rewire the "clockwise" endpoint of each original lattice edge *)
  for u = 0 to n - 1 do
    for j = 1 to k do
      let v = (u + j) mod n in
      if Rng.float rng 1. < beta && mem u v then begin
        let attempts = ref 0 in
        let done_ = ref false in
        while (not !done_) && !attempts < 32 do
          incr attempts;
          let w = Rng.int rng n in
          if w <> u && (not (mem u w)) && w <> v then begin
            remove u v;
            add u w;
            done_ := true
          end
        done
      end
    done
  done;
  let builder = Builder.create ~expected_nodes:n () in
  Builder.add_node builder (n - 1);
  Hashtbl.iter (fun _ (u, v) -> Builder.add_edge builder u v) edges;
  Builder.build builder

let planted_partition rng ~n ~communities ~p_in ~p_out =
  if communities < 1 then invalid_arg "Gen.planted_partition: communities must be >= 1";
  if p_in < 0. || p_in > 1. || p_out < 0. || p_out > 1. then
    invalid_arg "Gen.planted_partition: probabilities outside [0,1]";
  let builder = Builder.create ~expected_nodes:n () in
  if n > 0 then Builder.add_node builder (n - 1);
  let community v = v * communities / n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = if community u = community v then p_in else p_out in
      if p > 0. && Rng.float rng 1. < p then Builder.add_edge builder u v
    done
  done;
  Builder.build builder

let random_tree rng ~n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i + 1, Rng.int rng (i + 1))))

let social_proxy rng ~n ~avg_degree ~communities =
  if communities < 1 then invalid_arg "Gen.social_proxy: communities must be >= 1";
  if avg_degree < 2. then invalid_arg "Gen.social_proxy: avg_degree must be >= 2";
  (* Backbone: preferential attachment carrying ~half the edges. *)
  let m_attach = max 1 (int_of_float (avg_degree /. 4.)) in
  let backbone = barabasi_albert rng ~n ~m_attach in
  let builder = Builder.create ~expected_nodes:n () in
  Builder.add_node builder (n - 1);
  Graph.iter_edges (fun u v -> Builder.add_edge builder u v) backbone;
  (* Community overlay: remaining edges drawn inside random communities,
     giving the high clustering / overlapping-community structure of real
     social graphs. Nodes are assigned round-robin so communities are
     interleaved with the backbone's age-ordered degrees. *)
  let target_m = int_of_float (Float.round (float_of_int n *. avg_degree /. 2.)) in
  let overlay_m = max 0 (target_m - Graph.m backbone) in
  let members = Array.make communities [] in
  for v = 0 to n - 1 do
    let c = v mod communities in
    members.(c) <- v :: members.(c)
  done;
  let members = Array.map Array.of_list members in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 20 * (overlay_m + 1) in
  while !added < overlay_m && !attempts < max_attempts do
    incr attempts;
    let c = Rng.int rng communities in
    let arr = members.(c) in
    if Array.length arr >= 2 then begin
      let i, j = Rng.pair_distinct rng (Array.length arr) in
      let u = arr.(i) and v = arr.(j) in
      if not (Graph.mem_edge backbone u v) then begin
        Builder.add_edge builder u v;
        incr added
      end
    end
  done;
  Builder.build builder

(* ---------- deterministic fixtures ---------- *)

let complete n =
  let builder = Builder.create ~expected_nodes:n () in
  if n > 0 then Builder.add_node builder (n - 1);
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Builder.add_edge builder u v
    done
  done;
  Builder.build builder

let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n <= 2 then path n
  else Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let grid rows cols =
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let complete_multipartite ~parts ~part_size =
  if parts < 1 || part_size < 1 then
    invalid_arg "Gen.complete_multipartite: sizes must be >= 1";
  let n = parts * part_size in
  let part v = v / part_size in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if part u <> part v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let petersen () =
  (* outer 5-cycle 0..4, inner pentagram 5..9, spokes i - (i+5) *)
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  Graph.of_edges ~n:10 (outer @ inner @ spokes)

(* ---------- paper gadgets ---------- *)

let figure1 () =
  (* 0=Ann 1=Bob 2=Cal 3=Dan 4=Eli 5=Fay 6=Guy 7=Hal; edges read off the
     paper's Figure 1: maximal cliques {a,b,c}, {b,c,d}, {d,e,f}, {e,f,h},
     {d,g}, {g,h}. *)
  let a = 0 and b = 1 and c = 2 and d = 3 and e = 4 and f = 5 and g = 6 and h = 7 in
  let edges =
    [ (a, b); (a, c); (b, c); (b, d); (c, d); (d, e); (d, f); (e, f); (e, h); (f, h);
      (d, g); (g, h) ]
  in
  let names = [| "Ann"; "Bob"; "Cal"; "Dan"; "Eli"; "Fay"; "Guy"; "Hal" |] in
  (Graph.of_edges ~n:8 edges, fun v -> names.(v))

let figure3_h () =
  (* v1..v6 are ids 0..5 *)
  Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (1, 5) ]

let exponential_gadget n =
  if n < 1 then invalid_arg "Gen.exponential_gadget: n must be >= 1";
  let v i = i in
  let v' i = n + i in
  let w = 2 * n in
  let w' = (2 * n) + 1 in
  (* u_{i,j} for i <> j, packed after w' *)
  let u =
    (* keys packed as i*n + j (both in [0,n)), keeping the table on the
       specialized int hash instead of structural pair hashing; the table
       holds one entry per ordered pair with i <> j *)
    let table = Hashtbl.create (n * (n - 1)) in
    let next = ref ((2 * n) + 2) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          Hashtbl.replace table ((i * n) + j) !next;
          incr next
        end
      done
    done;
    fun i j -> Hashtbl.find table ((i * n) + j)
  in
  let edges = ref [ (w, w') ] in
  for i = 0 to n - 1 do
    edges := (v i, w) :: (v' i, w') :: !edges;
    for j = 0 to n - 1 do
      if i <> j then edges := (v i, u i j) :: (u i j, v' j) :: !edges
    done
  done;
  Graph.of_edges ~n:((2 * n) + (n * (n - 1)) + 2) !edges
