let max_node_count = (1 lsl 30) - 1

let tokens line =
  List.filter (fun t -> String.length t > 0) (String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) line))

let parse_lines ~file lines =
  let fail lineno fmt = Io_error.failf ~file ~line:lineno fmt in
  (* drop comments but keep original line numbers for messages *)
  let numbered =
    List.filter
      (fun (_, line) -> String.length line = 0 || line.[0] <> '%')
      (List.mapi (fun i line -> (i + 1, line)) lines)
  in
  match numbered with
  | [] -> Io_error.fail ~file ~line:0 "METIS: empty input"
  | (hline, header) :: rest ->
      let n, m =
        match tokens header with
        | [ n; m ] | [ n; m; "0" ] -> (
            match (int_of_string_opt n, int_of_string_opt m) with
            | Some n, Some m when n >= 0 && m >= 0 && n <= max_node_count -> (n, m)
            | Some n, Some _ when n > max_node_count ->
                fail hline "header node count %d exceeds the %d limit" n max_node_count
            | _ -> fail hline "malformed header %S" header)
        | [ _; _; fmt ] -> fail hline "unsupported format field %S (only 0)" fmt
        | _ -> fail hline "expected header \"n m\""
      in
      (* exactly n data lines; blank lines are isolated nodes *)
      let data = List.filteri (fun i _ -> i < n) rest in
      if List.length data < n then
        Io_error.failf ~file ~line:0 "METIS: expected %d node lines, found %d" n
          (List.length data);
      let builder = Builder.create ~expected_nodes:n () in
      if n > 0 then Builder.add_node builder (n - 1);
      List.iteri
        (fun i (lineno, line) ->
          List.iter
            (fun tok ->
              match int_of_string_opt tok with
              | Some u when u >= 1 && u <= n -> Builder.add_edge builder i (u - 1)
              | Some u -> fail lineno "neighbor %d out of range [1, %d]" u n
              | None -> fail lineno "expected a node id, got %S" tok)
            (tokens line))
        data;
      let g = Builder.build builder in
      (* every edge must have been listed from both endpoints *)
      if Builder.edge_count builder <> 2 * Graph.m g then
        Io_error.failf ~file ~line:0
          "METIS: adjacency not symmetric or has duplicate entries (%d directed \
           entries for %d edges)"
          (Builder.edge_count builder) (Graph.m g);
      if Graph.m g <> m then
        Io_error.failf ~file ~line:0 "METIS: header claims %d edges, found %d" m
          (Graph.m g);
      g

(* Backstop for the totality contract: see Edge_list_io.structured. *)
let structured ~file f =
  try f () with
  | Io_error.Parse_error _ as e -> raise e
  | Sys_error _ as e -> raise e
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e -> Io_error.fail ~file ~line:0 ("unexpected parser failure: " ^ Printexc.to_string e)

let parse_string ?(file = "<string>") s =
  (* drop the empty element a final newline leaves behind, so it is not
     mistaken for an isolated node's blank line *)
  let lines =
    match List.rev (String.split_on_char '\n' s) with
    | "" :: rest -> List.rev rest
    | lines -> List.rev lines
  in
  structured ~file (fun () -> parse_lines ~file lines)

let load path =
  let ic = open_in path in
  (* only End_of_file is caught — a read failure propagates with the
     channel closed by the protect, never parsing a truncated file *)
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  in
  structured ~file:path (fun () -> parse_lines ~file:path lines)

let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 2)) in
  Buffer.add_string buf (Printf.sprintf "%% undirected graph in METIS format\n");
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_nodes
    (fun v ->
      let first = ref true in
      Graph.iter_neighbors
        (fun u ->
          if !first then first := false else Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int (u + 1)))
        g v;
      Buffer.add_char buf '\n')
    g;
  Buffer.contents buf

let save g path =
  let oc = open_out path in
  (* close_out inside the body so flush errors on the success path are
     reported; the noerr close in [finally] is then a no-op *)
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string g);
      close_out oc)
