(** Plain-text edge list serialization, SNAP dataset style.

    Format: one ["u v"] pair per line (whitespace separated), blank lines
    and lines starting with [#] ignored. Node ids must be non-negative;
    a lone id on a line declares an isolated node. This matches the format
    of the snap.stanford.edu datasets the paper evaluates on, so real
    datasets drop in directly when available. *)

val parse_string : ?file:string -> string -> Graph.t
(** [file] (default ["<string>"]) names the source in error messages.
    @raise Io_error.Parse_error with file and line on malformed input:
    non-integer tokens, negative ids, implausibly large ids (above
    [2^30 - 1]), trailing characters. No other exception escapes the
    parser (environment errors like [Out_of_memory] excepted). *)

val load : string -> Graph.t
(** Read a graph from a file.
    @raise Sys_error when the file cannot be read.
    @raise Io_error.Parse_error with file and line on malformed input. *)

val save : Graph.t -> string -> unit
(** Write the graph: a [#]-comment header, one edge per line ([u < v]). *)

val to_string : Graph.t -> string
