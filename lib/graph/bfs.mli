(** Breadth-first traversals and shortest-path distances.

    Everything the s-clique algorithms need from BFS: full single-source
    distances, radius-bounded balls [N^r(v)] (the paper's distance-s
    neighborhoods, computed in the whole graph), and the same restricted to
    an induced subgraph (needed by ExtendMax's line-10 call, where
    distances are measured inside [G\[C ∪ {v}\]]). *)

val distances : Graph.t -> int -> int array
(** [distances g src] maps each node to its hop distance from [src]
    ([-1] when unreachable). O(n + m).
    @raise Invalid_argument when [src] is outside [0 .. n-1]. *)

val distance : Graph.t -> int -> int -> int
(** Pairwise distance, [-1] when disconnected. Early-exits on reaching the
    target.
    @raise Invalid_argument when either id is outside [0 .. n-1] — even
    when the two ids are equal. *)

val ball : Graph.t -> int -> radius:int -> Node_set.t
(** [ball g v ~radius] is [N^radius(v)]: all nodes at distance in
    [\[1, radius\]] from [v] — {b excluding} [v] itself, following the
    paper's definition. O(nodes visited + edges touched). *)

val ball_multi_rows :
  iter_row:((int -> unit) -> int -> unit) ->
  n:int ->
  srcs:int list ->
  radius:int ->
  Node_set.t
(** {!ball_multi} generalized over the adjacency representation:
    [iter_row f v] must apply [f] to every neighbor of [v]. The churn
    path uses it to take balls in a batch's intermediate graphs, which
    exist only as uncompacted [Overlay]s ([Overlay.iter_row]). [n]
    bounds the valid node ids.
    @raise Invalid_argument on a negative radius or an out-of-range
    source. *)

val ball_multi : Graph.t -> srcs:int list -> radius:int -> Node_set.t
(** [ball_multi g ~srcs ~radius] is the union of the {e closed} balls of
    the sources: all nodes within distance [\[0, radius\]] of at least one
    source — unlike {!ball}, the sources themselves are {b included}
    (churn invalidation wants the touched endpoints in the stale set).
    Duplicate sources are fine. O(nodes visited + edges touched).
    @raise Invalid_argument on a negative radius or an out-of-range
    source. *)

val ball_within : Graph.t -> universe:Node_set.t -> int -> radius:int -> Node_set.t
(** Like {!ball} but traversing only nodes of [universe] (distances in the
    induced subgraph [g\[universe\]]). [v] must belong to [universe]. *)

val reachable_within : Graph.t -> universe:Node_set.t -> int -> Node_set.t
(** Nodes of [universe] reachable from [v] inside [g\[universe\]],
    including [v]. [v] must belong to [universe]. *)

val is_connected_subset : Graph.t -> Node_set.t -> bool
(** Does [u] induce a connected subgraph? The empty set and singletons are
    connected. *)
