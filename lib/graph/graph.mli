(** Immutable simple undirected graphs over dense int node ids.

    A graph over [n] nodes has ids [0 .. n-1]; adjacency is one sorted
    array of neighbors per node (no self-loops, no parallel edges), so
    neighbor iteration is a cache-friendly scan and [mem_edge] is a binary
    search. Construction goes through {!Builder} or the checked
    [of_adjacency] / [of_edges] below. *)

type t

val of_adjacency : int array array -> t
(** Adopts the arrays after validating that every list is sorted, distinct,
    in-range, loop free, and symmetric (u lists v iff v lists u).
    @raise Invalid_argument when the adjacency is malformed. *)

val of_unsorted_adjacency : int array array -> t
(** Like [of_adjacency] but sorts each neighbor array and drops duplicate
    entries first (the arrays are mutated). Symmetry and absence of
    self-loops are still required.
    @raise Invalid_argument when the adjacency is malformed. *)

val of_edges : n:int -> (int * int) list -> t
(** Graph with [n] nodes and the given undirected edges; duplicates and
    self-loops are dropped, endpoints may come in any order.
    @raise Invalid_argument when an endpoint is outside [0 .. n-1]. *)

val empty : int -> t
(** [empty n] has [n] nodes and no edges. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** The sorted neighbor array itself — O(1), {b do not mutate}. *)

val neighbor_set : t -> int -> Node_set.t
(** Neighbors as a {!Node_set.t} — O(1), shares storage with the graph. *)

val mem_edge : t -> int -> int -> bool
(** O(log deg). Checks bounds; [mem_edge g v v] is always false. *)

val nodes : t -> Node_set.t
(** All node ids. *)

val iter_nodes : (int -> unit) -> t -> unit

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each undirected edge exactly once, with [u < v], in increasing order. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int) list
(** All edges with [u < v], in increasing order. *)

val max_degree : t -> int

val induced : t -> Node_set.t -> t * int array
(** [induced g u] is the induced subgraph [g\[u\]] with nodes relabeled to
    [0 .. |u|-1] in increasing original-id order, together with the array
    mapping new ids back to original ids. *)

val equal : t -> t -> bool
(** Same node count and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Compact summary: node count, edge count, max degree. *)
