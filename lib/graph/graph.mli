(** Immutable simple undirected graphs over dense int node ids.

    A graph over [n] nodes has ids [0 .. n-1]; adjacency is stored in
    compressed sparse row form ({!Csr}): one flat offset array plus one
    flat neighbor array, each node's neighbors a sorted slice of the
    latter (no self-loops, no parallel edges). Neighbor iteration is a
    contiguous cache-friendly scan and [mem_edge] is a binary search.
    Construction goes through {!Builder} or the checked [of_adjacency] /
    [of_edges] below. *)

type t

val of_adjacency : int array array -> t
(** Builds from per-node rows after validating that every list is sorted,
    distinct, in-range, loop free, and symmetric (u lists v iff v lists u).
    @raise Invalid_argument when the adjacency is malformed. *)

val of_unsorted_adjacency : int array array -> t
(** Like [of_adjacency] but sorts each neighbor array and drops duplicate
    entries first (the arrays are mutated). Symmetry and absence of
    self-loops are still required.
    @raise Invalid_argument when the adjacency is malformed. *)

val of_edges : n:int -> (int * int) list -> t
(** Graph with [n] nodes and the given undirected edges; duplicates and
    self-loops are dropped, endpoints may come in any order.
    @raise Invalid_argument when an endpoint is outside [0 .. n-1]. *)

val of_csr : Csr.t -> t
(** Adopts a CSR adjacency after the same validation as [of_adjacency]
    (rows strictly sorted, in-range, loop free, symmetric). This is the
    zero-copy loading path of {!Snapshot}.
    @raise Invalid_argument when the adjacency is malformed. *)

val empty : int -> t
(** [empty n] has [n] nodes and no edges.
    @raise Invalid_argument when [n] is negative. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val csr : t -> Csr.t
(** The underlying CSR storage — O(1), {b do not mutate}. For flat-array
    kernels (snapshots, merge scans) that want the offsets/adjacency pair
    directly. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** The sorted neighbors of [v] as a fresh array — O(degree) copy out of
    the CSR slab; safe to mutate. Hot loops should prefer
    {!iter_neighbors} / {!fold_neighbors} (no copy) or the {!csr} slices. *)

val neighbor_set : t -> int -> Node_set.t
(** Neighbors as a {!Node_set.t} — O(degree) copy. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** [iter_neighbors f t v] applies [f] to each neighbor of [v] in
    increasing order, scanning the CSR slice with no copy. *)

val fold_neighbors : ('a -> int -> 'a) -> 'a -> t -> int -> 'a
(** Fold over the neighbors of [v] in increasing order, no copy. *)

val mem_edge : t -> int -> int -> bool
(** O(log deg). Checks bounds; [mem_edge g v v] is always false. *)

val nodes : t -> Node_set.t
(** All node ids. *)

val iter_nodes : (int -> unit) -> t -> unit

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each undirected edge exactly once, with [u < v], in increasing order. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int) list
(** All edges with [u < v], in increasing order. *)

val max_degree : t -> int

val induced : t -> Node_set.t -> t * int array
(** [induced g u] is the induced subgraph [g\[u\]] with nodes relabeled to
    [0 .. |u|-1] in increasing original-id order, together with the array
    mapping new ids back to original ids. *)

val relabel : t -> order:int array -> t
(** [relabel g ~order] renames the nodes so that new id [i] is old node
    [order.(i)] — the same graph up to isomorphism, laid out in the given
    order. With a degeneracy ordering ({!Degeneracy.ordering}) this packs
    each node near its core, so BFS/peeling sweeps touch the CSR slab
    roughly in memory order. [order] itself maps new ids back to old ones
    (the shape {!induced} returns).
    @raise Invalid_argument when [order] is not a permutation of
    [0 .. n-1]. *)

val equal : t -> t -> bool
(** Same node count and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Compact summary: node count, edge count, max degree. *)
