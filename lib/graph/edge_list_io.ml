let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Reject ids that would make Builder.build allocate per-id arrays of
   absurd size: a stray "99999999999" token in a corrupt file must be a
   parse error, not a multi-gigabyte allocation. 2^30 nodes is already
   far beyond what this in-memory representation can hold. *)
let max_node_id = (1 lsl 30) - 1

let parse_line builder ~file lineno line =
  let len = String.length line in
  let fail msg = Io_error.fail ~file ~line:lineno msg in
  let rec skip_spaces i = if i < len && is_space line.[i] then skip_spaces (i + 1) else i in
  let read_int i =
    let j = ref i in
    while !j < len && not (is_space line.[!j]) do
      incr j
    done;
    let tok = String.sub line i (!j - i) in
    match int_of_string_opt tok with
    | Some v when v >= 0 && v <= max_node_id -> (v, !j)
    | Some v when v < 0 -> fail (Printf.sprintf "negative node id %S" tok)
    | Some _ -> fail (Printf.sprintf "node id %S exceeds the %d limit" tok max_node_id)
    | None -> fail (Printf.sprintf "expected a node id, got %S" tok)
  in
  let i = skip_spaces 0 in
  if i >= len || line.[i] = '#' then ()
  else begin
    let u, i = read_int i in
    let i = skip_spaces i in
    if i >= len then Builder.add_node builder u
    else begin
      let v, i = read_int i in
      let i = skip_spaces i in
      if i < len then fail "trailing characters after edge";
      Builder.add_edge builder u v
    end
  end

(* Backstop for the totality contract: anything the line parser or the
   builder throws that is not already structured (or an environment
   error that must propagate untouched) becomes a [Parse_error], so
   callers and the fuzz suite see exactly one exception type. *)
let structured ~file f =
  try f () with
  | Io_error.Parse_error _ as e -> raise e
  | Sys_error _ as e -> raise e
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e -> Io_error.fail ~file ~line:0 ("unexpected parser failure: " ^ Printexc.to_string e)

let parse_string ?(file = "<string>") s =
  structured ~file (fun () ->
      let builder = Builder.create () in
      let lines = String.split_on_char '\n' s in
      List.iteri (fun i line -> parse_line builder ~file (i + 1) line) lines;
      Builder.build builder)

let load path =
  let ic = open_in path in
  (* only End_of_file is caught by the read loop — a parse failure
     propagates with the channel closed by the protect, never silently
     truncating the graph *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      structured ~file:path (fun () ->
          let builder = Builder.create () in
          let lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               incr lineno;
               parse_line builder ~file:path !lineno line
             done
           with End_of_file -> ());
          Builder.build builder))

let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 2)) in
  Buffer.add_string buf
    (Printf.sprintf "# undirected graph: %d nodes, %d edges\n" (Graph.n g) (Graph.m g));
  (* isolated nodes first so they are not lost on a round trip *)
  Graph.iter_nodes
    (fun v -> if Graph.degree g v = 0 then Buffer.add_string buf (Printf.sprintf "%d\n" v))
    g;
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
  Buffer.contents buf

let save g path =
  let oc = open_out path in
  (* close_out inside the body so flush errors on the success path are
     reported; the noerr close in [finally] is then a no-op *)
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string g);
      close_out oc)
