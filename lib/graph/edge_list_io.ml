let is_space c = c = ' ' || c = '\t' || c = '\r'

let parse_line builder lineno line =
  let len = String.length line in
  let fail msg = failwith (Printf.sprintf "edge list line %d: %s" lineno msg) in
  let rec skip_spaces i = if i < len && is_space line.[i] then skip_spaces (i + 1) else i in
  let read_int i =
    let j = ref i in
    while !j < len && not (is_space line.[!j]) do
      incr j
    done;
    let tok = String.sub line i (!j - i) in
    match int_of_string_opt tok with
    | Some v when v >= 0 -> (v, !j)
    | Some _ -> fail (Printf.sprintf "negative node id %S" tok)
    | None -> fail (Printf.sprintf "expected a node id, got %S" tok)
  in
  let i = skip_spaces 0 in
  if i >= len || line.[i] = '#' then ()
  else begin
    let u, i = read_int i in
    let i = skip_spaces i in
    if i >= len then Builder.add_node builder u
    else begin
      let v, i = read_int i in
      let i = skip_spaces i in
      if i < len then fail "trailing characters after edge";
      Builder.add_edge builder u v
    end
  end

let parse_string s =
  let builder = Builder.create () in
  let lines = String.split_on_char '\n' s in
  List.iteri (fun i line -> parse_line builder (i + 1) line) lines;
  Builder.build builder

let load path =
  let ic = open_in path in
  (* only End_of_file is caught — a parse failure propagates with the
     channel closed by the protect, never silently truncating the graph *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let builder = Builder.create () in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           parse_line builder !lineno line
         done
       with End_of_file -> ());
      Builder.build builder)

let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 2)) in
  Buffer.add_string buf
    (Printf.sprintf "# undirected graph: %d nodes, %d edges\n" (Graph.n g) (Graph.m g));
  (* isolated nodes first so they are not lost on a round trip *)
  Graph.iter_nodes
    (fun v -> if Graph.degree g v = 0 then Buffer.add_string buf (Printf.sprintf "%d\n" v))
    g;
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
  Buffer.contents buf

let save g path =
  let oc = open_out path in
  (* close_out inside the body so flush errors on the success path are
     reported; the noerr close in [finally] is then a no-op *)
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string g);
      close_out oc)
