(* Byte layout is documented in the .mli. All multi-byte integers are
   little-endian; ids and counts travel as u64 even though they fit an
   OCaml int, so the format does not depend on the host word size. *)

let magic = "SGRSNAP1"

let max_node_count = (1 lsl 30) - 1

let fail path msg = Io_error.fail ~file:path ~line:0 msg

let failf path fmt = Io_error.failf ~file:path ~line:0 fmt

let encode_ints arr =
  let b = Bytes.create (8 * Array.length arr) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) arr;
  b

(* a record is its payload followed by the payload's CRC-32 as u32le *)
let write_record oc payload =
  output_bytes oc payload;
  let crc = Bytes.create 4 in
  Bytes.set_int32_le crc 0 (Int32.of_int (Scoll.Crc32.bytes payload));
  output_bytes oc crc

let save g path =
  let csr = Graph.csr g in
  let header = Bytes.create 16 in
  Bytes.set_int64_le header 0 (Int64.of_int (Graph.n g));
  Bytes.set_int64_le header 8 (Int64.of_int (Graph.m g));
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (* close_out inside the body so flush errors on the success path are
     reported; the noerr close in [finally] is then a no-op *)
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      write_record oc header;
      write_record oc (encode_ints (Csr.offsets csr));
      write_record oc (encode_ints (Csr.adjacency csr));
      close_out oc);
  (* the atomic commit: a reader sees either the whole previous snapshot
     or the whole new one, never a mixture *)
  Sys.rename tmp path

let read_exact path ic len what =
  let b = Bytes.create len in
  (try really_input ic b 0 len
   with End_of_file -> failf path "snapshot truncated reading %s" what);
  b

let check_crc path ic payload what =
  let crc = read_exact path ic 4 (what ^ " CRC") in
  let stored = Int32.to_int (Bytes.get_int32_le crc 0) land 0xFFFFFFFF in
  let computed = Scoll.Crc32.bytes payload in
  if stored <> computed then
    failf path "snapshot %s CRC mismatch (stored %08x, computed %08x)" what stored
      computed

(* Assembles the u64 from individual bytes in plain int arithmetic: the
   hot loops below decode hundreds of thousands of values, and boxed
   [Int64] reads cost more than the I/O itself. A top byte >= 0x40 means
   bit 62 or 63 is set, i.e. the value exceeds OCaml's max_int. *)
let decode_int path b off what =
  let b0 = Char.code (Bytes.get b off)
  and b1 = Char.code (Bytes.get b (off + 1))
  and b2 = Char.code (Bytes.get b (off + 2))
  and b3 = Char.code (Bytes.get b (off + 3))
  and b4 = Char.code (Bytes.get b (off + 4))
  and b5 = Char.code (Bytes.get b (off + 5))
  and b6 = Char.code (Bytes.get b (off + 6))
  and b7 = Char.code (Bytes.get b (off + 7)) in
  if b7 >= 0x40 then
    failf path "snapshot %s %Ld out of range" what (Bytes.get_int64_le b off);
  b0
  lor (b1 lsl 8)
  lor (b2 lsl 16)
  lor (b3 lsl 24)
  lor (b4 lsl 32)
  lor (b5 lsl 40)
  lor (b6 lsl 48)
  lor (b7 lsl 56)

(* Backstop for the totality contract: see Edge_list_io.structured. *)
let structured ~file f =
  try f () with
  | Io_error.Parse_error _ as e -> raise e
  | Sys_error _ as e -> raise e
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e -> Io_error.fail ~file ~line:0 ("unexpected parser failure: " ^ Printexc.to_string e)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      structured ~file:path (fun () ->
          let m8 = read_exact path ic 8 "magic" in
          if not (String.equal (Bytes.to_string m8) magic) then
            failf path "not a snapshot: bad magic %S (expected %S)"
              (Bytes.to_string m8) magic;
          let header = read_exact path ic 16 "header" in
          check_crc path ic header "header";
          let n = decode_int path header 0 "node count" in
          let m = decode_int path header 8 "edge count" in
          (* size sanity before the CRC-trusted counts drive allocations *)
          if n > max_node_count then
            failf path "snapshot node count %d exceeds the %d limit" n max_node_count;
          if m > n * (n - 1) / 2 then
            failf path "snapshot claims %d edges for %d nodes" m n;
          let ob = read_exact path ic (8 * (n + 1)) "offsets" in
          check_crc path ic ob "offsets";
          let ab = read_exact path ic (8 * 2 * m) "adjacency" in
          check_crc path ic ab "adjacency";
          (* refuse trailing bytes: a concatenation or an in-place append
             is not a snapshot this module wrote *)
          (match input_char ic with
          | _ -> fail path "snapshot has trailing bytes"
          | exception End_of_file -> ());
          let offsets = Array.init (n + 1) (fun i -> decode_int path ob (8 * i) "offset") in
          let adjacency =
            Array.init (2 * m) (fun i -> decode_int path ab (8 * i) "neighbor")
          in
          (* full structural re-validation, same as the text loaders *)
          match Graph.of_csr (Csr.of_arrays ~offsets ~adjacency) with
          | g -> g
          | exception Invalid_argument msg ->
              fail path ("snapshot fails validation: " ^ msg)))
