type t = {
  mutable us : int array; (* parallel edge endpoint arrays *)
  mutable vs : int array;
  mutable len : int;
  mutable max_node : int; (* -1 when no node seen *)
}

let create ?(expected_nodes = 16) () =
  let cap = max 16 expected_nodes in
  { us = Array.make cap 0; vs = Array.make cap 0; len = 0; max_node = -1 }

let add_node t v =
  if v < 0 then invalid_arg "Builder.add_node: negative id";
  if v > t.max_node then t.max_node <- v

let grow t =
  let cap = Array.length t.us in
  let us' = Array.make (2 * cap) 0 and vs' = Array.make (2 * cap) 0 in
  Array.blit t.us 0 us' 0 t.len;
  Array.blit t.vs 0 vs' 0 t.len;
  t.us <- us';
  t.vs <- vs'

let add_edge t u v =
  if u < 0 || v < 0 then invalid_arg "Builder.add_edge: negative id";
  add_node t u;
  add_node t v;
  if u <> v then begin
    if t.len = Array.length t.us then grow t;
    t.us.(t.len) <- u;
    t.vs.(t.len) <- v;
    t.len <- t.len + 1
  end

let node_count t = t.max_node + 1

let edge_count t = t.len

let build t =
  let n = t.max_node + 1 in
  let deg = Array.make n 0 in
  for i = 0 to t.len - 1 do
    deg.(t.us.(i)) <- deg.(t.us.(i)) + 1;
    deg.(t.vs.(i)) <- deg.(t.vs.(i)) + 1
  done;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  for i = 0 to t.len - 1 do
    let u = t.us.(i) and v = t.vs.(i) in
    adj.(u).(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1;
    adj.(v).(fill.(v)) <- u;
    fill.(v) <- fill.(v) + 1
  done;
  Graph.of_unsorted_adjacency adj
