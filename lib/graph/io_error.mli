(** Structured errors for every file-format parser in the tree.

    A malformed input line must surface as data the caller can act on —
    which file, which line, what went wrong — not as a bare [Failure]
    string or an escaped [Scanf]/[Invalid_argument] from three layers
    down. All loaders and parsers (edge lists, METIS, result streams,
    checkpoints) raise exactly {!Parse_error}; the fuzz suite asserts
    that no other exception ever escapes them, and the CLI maps it to a
    one-line diagnostic and exit code 1. *)

exception Parse_error of { file : string; line : int; msg : string }
(** [file] is the path given to the loader (["<string>"] for in-memory
    parses); [line] is 1-based ([0] when no line is meaningful, e.g. a
    truncated binary stream). *)

val fail : file:string -> line:int -> string -> 'a
(** Raise {!Parse_error}. This helper is the designated re-raise point
    for parser catch-all handlers that convert stray exceptions into the
    structured form: [scliques-lint]'s exception-swallow rule recognizes
    a handler whose body calls [Io_error.fail] as re-raising, not
    swallowing. *)

val failf : file:string -> line:int -> ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!fail}. *)

val to_string : file:string -> line:int -> string -> string
(** ["file:line: msg"] (or ["file: msg"] when [line = 0]) — the rendering
    the CLI prints. *)

val message : exn -> string option
(** [Some] of the rendered message when the exception is {!Parse_error},
    [None] otherwise. *)
