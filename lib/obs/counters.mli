(** Counter registry: named monotonic counters and high-water marks.

    Hot paths resolve a {!counter} handle once (a hashtable lookup at
    setup time) and then bump it with a single mutable-field write, so
    instrumentation cost per event is one increment — and zero when the
    algorithms run without an observer at all.

    Names are dotted lowercase by convention ([nh.cache_hits],
    [pd.queue_high_water], [cs2.pivot_prunes]); {!to_list} returns them
    sorted so every serialization of a registry is deterministic. *)

type t

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create the named counter (initial value [0]). Repeated calls
    with the same name return the same handle. *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : counter -> int -> unit
(** Overwrite the value — for publishing an externally-accumulated total
    (e.g. copying the LRI cache's own hit/miss counters at the end of a
    run). *)

val set_max : counter -> int -> unit
(** High-water mark: keep the maximum of the current value and the
    argument. *)

val value : counter -> int

val name : counter -> string

val find : t -> string -> int option
(** Value of a named counter, [None] when it was never registered. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : into:t -> t -> unit
(** Add every counter of the source into the same-named counter of
    [into], creating it if missing. Summing is the right combination for
    the additive event counts the library uses across parallel workers;
    high-water marks of distinct workers are per-worker quantities and
    also sum meaningfully only as an upper bound — workers therefore keep
    worker-scoped names for marks they must not blend. *)
