(** The observability handle the enumeration algorithms accept.

    One [Obs.t] bundles a {!Counters.t} registry and a per-result delay
    {!Recorder.t}. Every hot path of the library takes an optional
    [?obs:Obs.t]; when it is absent the instrumented code is a single
    [match] on [None] — no allocation, no clock read — so the default
    path pays nothing. When present, algorithms resolve counter handles
    once per run and tick the recorder on every emitted result.

    Counter names used by the library (all deterministic for a fixed
    run):
    - [nh.cache_hits] / [nh.cache_misses] / [nh.cache_evictions] — the
      N^s LRI-cache of {!Scliques_core.Neighborhood} (paper §7);
    - [nh.bfs_expansions] — nodes expanded by ball BFS computations;
    - [pd.dequeues], [pd.emits], [pd.extend_max_calls],
      [pd.index_inserts], [pd.index_duplicates], [pd.queue_high_water],
      [pd.max_extend_calls_between_emits] — PolyDelayEnum (Fig. 4);
    - [cs1.calls], [cs1.max_depth], [cs1.emits] — CsCliques1 (Fig. 6);
    - [cs2.calls], [cs2.max_depth], [cs2.emits], [cs2.pivot_prunes],
      [cs2.feasibility_prunes] — CsCliques2 (Fig. 7, §5.3);
    - [brute.emits] — the oracle;
    - [par.workers], [par.results] — the §8 parallel decomposition
      (worker recorders and counters are merged into the caller's
      handle). *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** Fresh empty registry plus a delay recorder starting "now". [clock] is
    passed to the recorder (see {!Recorder.create}). *)

val counters : t -> Counters.t

val delay : t -> Recorder.t

val counter : t -> string -> Counters.counter
(** Shorthand for [Counters.counter (counters t) name]. *)

val tick : t -> unit
(** Record one emitted result on the delay recorder. *)

val reset_clock : t -> unit
(** Restart the delay origin (see {!Recorder.reset}). *)

val merge_into : into:t -> t -> unit
(** Sum the source's counters and fold its delay observations into
    [into] — the per-worker combination of the parallel decomposition.
    The source is not modified. *)

val snapshot_json : t -> Sink.json
(** [Obj] with a ["delay"] summary (omitted while no result was recorded)
    and a ["counters"] object, deterministically ordered. *)

val to_json : t -> string

val to_lines : ?measurement:string -> t -> string
(** Counters plus delay-summary fields as one line-protocol record
    (default measurement ["scliques"]). *)
