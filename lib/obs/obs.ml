type t = { counters : Counters.t; delay : Recorder.t }

let create ?clock () = { counters = Counters.create (); delay = Recorder.create ?clock () }

let counters t = t.counters

let delay t = t.delay

let counter t name = Counters.counter t.counters name

let tick t = Recorder.tick t.delay

let reset_clock t = Recorder.reset t.delay

let merge_into ~into src =
  Counters.merge_into ~into:into.counters src.counters;
  Recorder.merge_into ~into:into.delay src.delay

let snapshot_json t =
  let fields =
    if Recorder.count t.delay = 0 then []
    else [ ("delay", Sink.summary_json (Recorder.summary t.delay)) ]
  in
  Sink.Obj (fields @ [ ("counters", Sink.counters_json t.counters) ])

let to_json t = Sink.to_string (snapshot_json t)

let to_lines ?(measurement = "scliques") t =
  let summary_fields =
    if Recorder.count t.delay = 0 then []
    else
      match Sink.summary_json (Recorder.summary t.delay) with
      | Sink.Obj fields -> List.map (fun (k, v) -> ("delay_" ^ k, v)) fields
      | _ -> []
  in
  let counter_fields =
    List.map (fun (name, v) -> (name, Sink.Int v)) (Counters.to_list t.counters)
  in
  Sink.line_protocol ~measurement (counter_fields @ summary_fields)
