(* string-specialized table: the functor pins hashing and equality to
   String's own, keeping lookups off the polymorphic runtime primitives *)
module Tbl = Hashtbl.Make (String)

type counter = { name : string; mutable value : int }

type t = counter Tbl.t

let create () : t = Tbl.create 32

let counter t name =
  match Tbl.find_opt t name with
  | Some c -> c
  | None ->
      let c = { name; value = 0 } in
      Tbl.add t name c;
      c

let incr c = c.value <- c.value + 1

let add c n = c.value <- c.value + n

let set c n = c.value <- n

let set_max c n = if n > c.value then c.value <- n

let value c = c.value

let name c = c.name

let find t name = Option.map (fun c -> c.value) (Tbl.find_opt t name)

let to_list t =
  Tbl.fold (fun name c acc -> (name, c.value) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~into src =
  List.iter (fun (name, v) -> add (counter into name) v) (to_list src)
