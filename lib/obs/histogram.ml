let buckets_per_decade = 5

let decades = 12 (* 1e-9 .. 1e3 seconds *)

let lo = 1e-9

let hi = 1e3

let log_buckets = decades * buckets_per_decade

let bucket_count = log_buckets + 2 (* + underflow + overflow *)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { buckets = Array.make bucket_count 0; count = 0; sum = 0.; min = infinity; max = 0. }

let bucket_index v =
  if v < lo then 0
  else if v >= hi then bucket_count - 1
  else
    (* log10 (v / lo) is in [0, decades); truncation picks the geometric
       step, clamping guards the float-boundary cases *)
    let i = int_of_float (Float.log10 (v /. lo) *. float_of_int buckets_per_decade) in
    1 + Stdlib.max 0 (Stdlib.min (log_buckets - 1) i)

let bucket_bounds i =
  if i < 0 || i >= bucket_count then invalid_arg "Histogram.bucket_bounds"
  else if i = 0 then (0., lo)
  else if i = bucket_count - 1 then (hi, infinity)
  else
    let step j = lo *. Float.pow 10. (float_of_int j /. float_of_int buckets_per_decade) in
    (step (i - 1), step i)

let observe t v =
  let v = Float.max 0. v in
  t.buckets.(bucket_index v) <- t.buckets.(bucket_index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let min_value t = if t.count = 0 then 0. else t.min

let max_value t = t.max

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Histogram.quantile";
  if t.count = 0 then 0.
  else begin
    let rank =
      Stdlib.max 1 (Stdlib.min t.count (int_of_float (Float.ceil (q *. float_of_int t.count))))
    in
    let cum = ref 0 and idx = ref (bucket_count - 1) in
    (try
       for i = 0 to bucket_count - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* the bucket's upper bound, clamped into the exact observed range so
       quantiles never exceed max (overflow bucket included) *)
    let _, upper = bucket_bounds !idx in
    Float.max t.min (Float.min t.max upper)
  end

let counts t = Array.copy t.buckets

let merge_into ~into src =
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then begin
    if src.min < into.min then into.min <- src.min;
    if src.max > into.max then into.max <- src.max
  end
