(** Monotonic wall clock.

    Delay measurement is the paper's headline guarantee (polynomial delay,
    Thm. 4.2), so the recorder must never observe a negative or jumping
    gap — which [Unix.gettimeofday] can produce under NTP slew or a
    wall-clock step. This wraps the [CLOCK_MONOTONIC] stub that bechamel
    (already a benchmark dependency) ships, avoiding a new external
    library. *)

val now : unit -> float
(** Seconds on the monotonic clock. The origin is unspecified (boot time
    on Linux): only differences are meaningful. *)

val now_ns : unit -> int64
(** The raw nanosecond reading. *)
