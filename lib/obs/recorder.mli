(** Per-result delay recorder — Theorem 4.2 made observable.

    A recorder timestamps each emitted result and feeds the gap since the
    previous one (or since {!reset} for the first) into a log-scale
    {!Histogram.t}, keeping the delay before the first result and the
    total elapsed time on the side. The summary exposes exactly the
    profile the paper's delay guarantee is about: count, mean, max and
    p50/p95/p99 per-result delay.

    The clock defaults to the monotonic {!Clock.now} (gaps must never go
    negative under NTP adjustment) and is injectable for deterministic
    tests. All quantities are in seconds. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh recorder whose delay origin is "now". *)

val reset : t -> unit
(** Restart the delay origin at "now", keeping nothing. Call at the start
    of the measured enumeration when the recorder was created earlier. *)

val tick : t -> unit
(** Record one result: observe the gap since the previous tick (or since
    creation/{!reset}). *)

val observe : t -> float -> unit
(** Feed a pre-measured gap directly (used when merging measurements made
    outside this recorder, and by tests). Does not advance the clock
    origin. *)

val count : t -> int

val mean : t -> float

val max_delay : t -> float

val quantile : t -> float -> float
(** See {!Histogram.quantile}. *)

val first_delay : t -> float option
(** Delay before the first result; [None] until the first tick. *)

val total : t -> float
(** Elapsed time from the origin to the latest tick ([0.] before any). *)

val histogram : t -> Histogram.t

type summary = {
  count : int;
  mean : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  first : float;
  total : float;
}

val summary : t -> summary
(** Snapshot of the delay profile; [first] falls back to [0.] when no
    result was ever emitted. Satisfies [p50 <= p95 <= p99 <= max]. *)

val merge_into : into:t -> t -> unit
(** Combine a second recorder's observations into [into]: histogram
    bucket-sum, [first] takes the minimum, [total] the maximum — the
    combination rule for per-worker recorders of one parallel run. The
    source is not modified. *)
