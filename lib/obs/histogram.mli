(** Fixed-bucket log-scale histogram for latency-like values.

    The paper's headline guarantee is {e per-result delay} (Theorem 4.2),
    so the quantity we must observe spans many orders of magnitude: a
    cache-hit emission is sub-microsecond while a worst-case gap can be
    seconds. A log-scale histogram with a fixed, allocation-free bucket
    layout covers that range with bounded relative error and O(1) insert:
    buckets split each decade of [1e-9 .. 1e3] seconds into
    {!buckets_per_decade} geometric steps, plus one underflow bucket
    (values below 1 ns, including 0) and one overflow bucket.

    Exact [count], [sum], [min] and [max] are tracked on the side, so
    [mean] and [max] are exact while quantiles are bucket-resolution
    estimates clamped into [[min, max]]. By construction
    [quantile q1 <= quantile q2] whenever [q1 <= q2], and every quantile
    is at most {!max_value} — the monotonicity the delay reports rely on.

    Two histograms always share the same geometry, so {!merge_into} is a
    plain bucket-wise sum — exactly what the parallel decomposition needs
    to combine per-worker recorders. *)

type t

val buckets_per_decade : int
(** Geometric steps per decade (5: each bucket spans a factor of
    [10^0.2 ≈ 1.58]). *)

val bucket_count : int
(** Total number of buckets, underflow and overflow included. *)

val create : unit -> t

val observe : t -> float -> unit
(** Record one value (seconds). Negative values are clamped to [0.] and
    land in the underflow bucket. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** [0.] when empty; exact otherwise. *)

val min_value : t -> float
(** Smallest observed value; [0.] when empty. *)

val max_value : t -> float
(** Largest observed value; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: an upper estimate of the [q]-th
    quantile at bucket resolution, clamped into [[min_value, max_value]].
    [0.] when empty. Monotone in [q].
    @raise Invalid_argument when [q] is outside [[0, 1]]. *)

val bucket_index : float -> int
(** Bucket a value falls into (exposed for tests). *)

val bucket_bounds : int -> float * float
(** [bucket_bounds i] is the half-open range [[lo, hi)] of bucket [i];
    the underflow bucket starts at [0.], the overflow bucket ends at
    [infinity].
    @raise Invalid_argument when [i] is out of range. *)

val counts : t -> int array
(** A copy of the raw bucket counts (index [i] = bucket [i]). *)

val merge_into : into:t -> t -> unit
(** Add every observation of the second histogram into [into] (bucket-wise
    sum plus exact-statistic merge). The source is not modified. *)
