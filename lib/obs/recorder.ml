type t = {
  clock : unit -> float;
  histogram : Histogram.t;
  mutable origin : float;
  mutable last : float;
  mutable first : float option;
  mutable total : float;
}

let create ?(clock = Clock.now) () =
  let now = clock () in
  { clock; histogram = Histogram.create (); origin = now; last = now; first = None; total = 0. }

let reset t =
  let now = t.clock () in
  t.origin <- now;
  t.last <- now

let observe t gap =
  Histogram.observe t.histogram gap;
  if Option.is_none t.first then t.first <- Some gap

let tick t =
  let now = t.clock () in
  observe t (now -. t.last);
  t.last <- now;
  t.total <- Float.max t.total (now -. t.origin)

let count t = Histogram.count t.histogram

let mean t = Histogram.mean t.histogram

let max_delay t = Histogram.max_value t.histogram

let quantile t q = Histogram.quantile t.histogram q

let first_delay t = t.first

let total t = t.total

let histogram t = t.histogram

type summary = {
  count : int;
  mean : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  first : float;
  total : float;
}

let summary t =
  {
    count = count t;
    mean = mean t;
    max = max_delay t;
    p50 = quantile t 0.5;
    p95 = quantile t 0.95;
    p99 = quantile t 0.99;
    first = Option.value ~default:0. t.first;
    total = t.total;
  }

let merge_into ~into src =
  Histogram.merge_into ~into:into.histogram src.histogram;
  (match (into.first, src.first) with
  | None, f -> into.first <- f
  | Some a, Some b -> into.first <- Some (Float.min a b)
  | Some _, None -> ());
  into.total <- Float.max into.total src.total
