(** Serialization sinks for observability snapshots.

    Two wire formats, both dependency-free:
    - compact JSON (the CLI's [--stats json], the bench harness's
      [BENCH_delay.json]);
    - an InfluxDB-style line protocol
      ([measurement,tag=val field=1i field2=0.5]) for piping counters
      into a metrics store.

    The {!json} type is a minimal value tree; builders below render
    registries and delay summaries into it deterministically (counters
    sorted by name), so snapshots of deterministic runs diff cleanly. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact single-line JSON. Floats are rendered with ["%.9g"] (NaN and
    infinities degrade to [null]); strings are escaped per RFC 8259. *)

val counters_json : Counters.t -> json
(** [Obj] mapping counter names to integer values, sorted by name. *)

val summary_json : Recorder.summary -> json
(** [Obj] with fields [count], [mean], [max], [p50], [p95], [p99],
    [first], [total] (seconds). *)

val line_protocol :
  measurement:string -> ?tags:(string * string) list -> (string * json) list -> string
(** One line-protocol record: scalar fields only ([Int] is suffixed [i],
    [Bool] rendered as [true]/[false]); [List]/[Obj]/[Null] fields are
    skipped. Spaces and commas in measurement/tag parts are escaped with
    a backslash. *)

val lines_of_counters : measurement:string -> ?tags:(string * string) list -> Counters.t -> string
(** All counters of a registry as a single line-protocol record. *)

val write_file : path:string -> string -> unit
(** Write (truncate) the string to the file, appending a final newline
    when missing. *)
