type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else Printf.sprintf "%.9g" f

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          to_buf buf v)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  to_buf buf json;
  Buffer.contents buf

let counters_json counters =
  Obj (List.map (fun (name, v) -> (name, Int v)) (Counters.to_list counters))

let summary_json (s : Recorder.summary) =
  Obj
    [
      ("count", Int s.count);
      ("mean", Float s.mean);
      ("max", Float s.max);
      ("p50", Float s.p50);
      ("p95", Float s.p95);
      ("p99", Float s.p99);
      ("first", Float s.first);
      ("total", Float s.total);
    ]

(* line protocol: commas and spaces in identifiers must be escaped *)
let escape_ident s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      (match c with ',' | ' ' | '=' -> Buffer.add_char buf '\\' | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let line_protocol ~measurement ?(tags = []) fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (escape_ident measurement);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (escape_ident k);
      Buffer.add_char buf '=';
      Buffer.add_string buf (escape_ident v))
    tags;
  Buffer.add_char buf ' ';
  let first = ref true in
  List.iter
    (fun (k, v) ->
      let scalar =
        match v with
        | Int i -> Some (string_of_int i ^ "i")
        | Float f -> Some (float_to_string f)
        | Bool b -> Some (string_of_bool b)
        | String s -> Some ("\"" ^ escape_string s ^ "\"")
        | Null | List _ | Obj _ -> None
      in
      match scalar with
      | None -> ()
      | Some s ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf (escape_ident k);
          Buffer.add_char buf '=';
          Buffer.add_string buf s)
    fields;
  Buffer.contents buf

let lines_of_counters ~measurement ?tags counters =
  line_protocol ~measurement ?tags
    (List.map (fun (name, v) -> (name, Int v)) (Counters.to_list counters))

let write_file ~path contents =
  let oc = open_out path in
  output_string oc contents;
  if String.length contents = 0 || contents.[String.length contents - 1] <> '\n' then
    output_char oc '\n';
  close_out oc
