#!/usr/bin/env bash
# Journal crash drill: kill -9 a scliques-daemon at a random moment
# while a client streams wire mutations at it, restart on the same
# state dir, and assert the replayed epoch is well defined — at least
# every acked mutation (flush-before-ack), at most one more (journaled
# but killed before the ack left), always even (2 edits per script) —
# and that the daemon serves exactly the graph that epoch names.
#
# Usage: tools/journal_crash_drill.sh [ROUNDS]
# Env:   BIN=dir holding the scliques / scliques-daemon executables
#        (default: _build/install/default/bin)
set -euo pipefail

ROUNDS=${1:-3}
BIN=$(cd "${BIN:-_build/install/default/bin}" && pwd)
SCLIQUES="$BIN/scliques"
DAEMON="$BIN/scliques-daemon"

WORK=$(mktemp -d)
DPID=""
trap '[ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null; rm -rf "$WORK"' EXIT
cd "$WORK"

# the gadget, an edited twin (same n and m), and the two edit scripts
# that flip between them
"$SCLIQUES" gen --family gadget -n 3 -o base.edges > /dev/null
grep -v '^6 7$' base.edges > edited.edges
echo '0 1' >> edited.edges
"$SCLIQUES" diff base.edges edited.edges -o fwd.diff > /dev/null
"$SCLIQUES" mutate base.edges --diff fwd.diff -o mutated.edges > /dev/null
"$SCLIQUES" diff mutated.edges base.edges -o bwd.diff > /dev/null
"$SCLIQUES" enum base.edges -s 2 | sort > even.ref
"$SCLIQUES" enum mutated.edges -s 2 | sort > odd.ref

for round in $(seq 1 "$ROUNDS"); do
  rm -rf state sock
  "$DAEMON" --socket ./sock --graph base=base.edges --state-dir ./state \
    > daemon.log 2>&1 &
  DPID=$!
  for i in $(seq 1 150); do [ -S sock ] && break; sleep 0.1; done

  : > acks.log
  (
    i=0
    while :; do
      if [ $((i % 2)) -eq 0 ]; then D=fwd.diff; else D=bwd.diff; fi
      "$SCLIQUES" client mutate base "$D" --socket ./sock \
        >> acks.log 2> /dev/null || exit 0
      i=$((i + 1))
    done
  ) &
  MPID=$!

  sleep "0.$((RANDOM % 8 + 1))"
  kill -9 "$DPID"
  wait "$DPID" 2> /dev/null || true
  wait "$MPID" 2> /dev/null || true
  acked=$(grep -c '^applied' acks.log || true)

  rm -f sock
  "$DAEMON" --socket ./sock --graph base=base.edges --state-dir ./state \
    >> daemon.log 2>&1 &
  DPID=$!
  for i in $(seq 1 150); do [ -S sock ] && break; sleep 0.1; done

  epoch=$("$SCLIQUES" client --socket ./sock --list | sed -n 's/.*epoch=//p')
  [ $((epoch % 2)) -eq 0 ] \
    || { echo "round $round: odd epoch $epoch"; exit 1; }
  [ "$epoch" -ge $((2 * acked)) ] \
    || { echo "round $round: epoch $epoch lost acked mutations ($acked acked)"; exit 1; }
  [ "$epoch" -le $((2 * acked + 2)) ] \
    || { echo "round $round: epoch $epoch past acked+1 ($acked acked)"; exit 1; }

  if [ $(((epoch / 2) % 2)) -eq 0 ]; then ref=even.ref; else ref=odd.ref; fi
  "$SCLIQUES" client --socket ./sock base -s 2 | sort | diff "$ref" - \
    || { echo "round $round: replayed graph does not match epoch $epoch"; exit 1; }

  echo "round $round: acked=$acked replayed-epoch=$epoch OK"
  kill -TERM "$DPID"
  wait "$DPID" || true
  DPID=""
done
echo "journal crash drill: $ROUNDS rounds OK"
