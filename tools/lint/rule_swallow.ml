(* exception-swallow: [try ... with] handlers whose pattern catches
   every exception and whose body never re-raises; these hide worker
   crashes and parser bugs. *)

module T = Typedtree

let rec catch_all_pattern : T.pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> catch_all_pattern p
  | Tpat_or (a, b, _) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let reraise_names =
  [
    "Stdlib.raise";
    "Stdlib.raise_notrace";
    "Stdlib.Printexc.raise_with_backtrace";
    "Stdlib__Printexc.raise_with_backtrace";
    (* never-returning raisers count too: a backstop that converts the
       stray exception into a structured [Io_error.Parse_error] is not a
       swallow — the failure still propagates, just typed *)
    "Io_error.fail";
    "Io_error.failf";
    "Sgraph.Io_error.fail";
    "Sgraph.Io_error.failf";
    "Sgraph__Io_error.fail";
    "Sgraph__Io_error.failf";
  ]

let mentions_reraise (body : T.expression) =
  let found = ref false in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : T.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _)
      when List.exists (String.equal (Path.name p)) reraise_names ->
        found := true
    | _ -> ());
    default.expr sub e
  in
  let it = { default with expr } in
  it.expr it body;
  !found

let check_try ctx (cases : T.value T.case list) =
  List.iter
    (fun (c : T.value T.case) ->
      if catch_all_pattern c.c_lhs && not (mentions_reraise c.c_rhs) then
        Lint.report ctx c.c_lhs.pat_loc Lint.r_swallow
          "catch-all exception handler that never re-raises: a crash in the guarded \
           code (worker body, parser loop) is silently swallowed"
          "match the exceptions you expect explicitly and re-raise the rest (| e -> \
           ...; raise e), or use Fun.protect for cleanup")
    cases
