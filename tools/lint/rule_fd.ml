(* fd-lifecycle: every [Unix.socket]/[Unix.accept]/[Unix.openfile] (and
   pipe/socketpair) result must flow into [Fun.protect]'s finally, a
   recognized closing function ([Unix.close], [close_in*]/[close_out*],
   or an ownership transfer via [in_channel_of_descr]/
   [out_channel_of_descr]), or an allowlisted fd-owner function
   (--fd-owners, default [spawn_session]) within the binding scope.

   The check is syntactic and scope-local — an fd smuggled through a
   record field or returned bare is not tracked; annotate such transfers
   with [@lint.allow "fd-lifecycle"]. *)

let run (cfg : Lint.config) (facts : Conc.facts) : Lint.finding list =
  List.filter_map
    (fun (s : Conc.fd_site) ->
      if s.Conc.fd_ok then None
      else
        Lint.global_finding cfg ~rule:Lint.r_fd ~allows:s.Conc.fd_allows
          s.Conc.fd_loc
          (Printf.sprintf
             "file descriptor from %s does not reach Fun.protect, a close \
              function, or a recognized owner in its binding scope"
             s.Conc.fd_name)
          "close it on every path (Fun.protect ~finally), convert it with \
           Unix.in_channel_of_descr/out_channel_of_descr, pass it to an \
           fd-owner (--fd-owners), or annotate the transfer with [@lint.allow \
           \"fd-lifecycle\"] plus a (* SAFETY: ... *) comment")
    facts.Conc.fds
