(* scliques-lint — static analysis over the typed trees (.cmt files) of
   lib/ and bin/.

   The enumeration engine lives or dies on per-element constant factors:
   a polymorphic compare that slips into a merge loop, an unsafe access
   outside its bounds argument, or a mutex left locked on an exception
   path each cost an order of magnitude or a hang, and none of them are
   visible in the .mli. This tool walks the *typed* tree (so it sees the
   instantiation types the source hides) and enforces four rules:

   - poly-compare: [=], [<>], [compare], [min], [max] applied at a type
     variable or a non-immediate type, any of them passed unapplied as a
     first-class value (the closure is always the generic runtime
     compare, even at [int]), and [Hashtbl.create] whose key type is a
     type variable or non-immediate (polymorphic hash + structural
     equality per probe).
   - unsafe-allowlist: [*.unsafe_*] calls are permitted only inside an
     explicit module allowlist (default [Bitset], [Node_set]) and only
     when the call site is covered by a [(* SAFETY: ... *)] comment
     stating the bounds argument.
   - exception-swallow: [try ... with] handlers whose pattern catches
     every exception and whose body never re-raises; these hide worker
     crashes and parser bugs.
   - lock-discipline: direct [Mutex.lock]/[Mutex.unlock] calls outside
     the designated helper module (default [Sync]); pairing on every
     exit path is exactly what [Sync.with_lock] guarantees, so routing
     through it is the checkable form of the invariant.

   Per-site suppression: [@lint.allow "rule-id"] on an expression or a
   [let] binding disables the named rule for that subtree.

   Findings go to stdout as [file:line:col: rule: message] plus a fix
   hint, or as a stable JSON document under [--json]. Exit status: 0 no
   findings, 1 findings, 2 usage or read error. *)

module T = Typedtree

(* ---------- rules ---------- *)

type rule = Poly_compare | Unsafe_allowlist | Exception_swallow | Lock_discipline

let all_rules = [ Poly_compare; Unsafe_allowlist; Exception_swallow; Lock_discipline ]

let rule_id = function
  | Poly_compare -> "poly-compare"
  | Unsafe_allowlist -> "unsafe-allowlist"
  | Exception_swallow -> "exception-swallow"
  | Lock_discipline -> "lock-discipline"

let rule_of_id = function
  | "poly-compare" -> Some Poly_compare
  | "unsafe-allowlist" -> Some Unsafe_allowlist
  | "exception-swallow" -> Some Exception_swallow
  | "lock-discipline" -> Some Lock_discipline
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
  hint : string;
}

(* ---------- configuration ---------- *)

type config = {
  mutable json : bool;
  mutable rules : rule list;
  mutable unsafe_allow : string list; (* module names where unsafe_* is permitted *)
  mutable lock_allow : string list; (* module names allowed to touch Mutex directly *)
  mutable root : string; (* prefix tried when resolving recorded source paths *)
  mutable paths : string list;
}

let default_config () =
  {
    json = false;
    rules = all_rules;
    unsafe_allow = [ "Bitset"; "Node_set" ];
    lock_allow = [ "Sync" ];
    root = ".";
    paths = [];
  }

let usage =
  "usage: scliques-lint [--json] [--rules r1,r2,...] [--unsafe-allow M1,M2]\n\
  \                     [--lock-allow M1,M2] [--root DIR] PATH...\n\
   PATH is a .cmt file or a directory searched recursively for .cmt files.\n\
   Rules: poly-compare unsafe-allowlist exception-swallow lock-discipline"

(* ---------- per-file analysis state ---------- *)

type ctx = {
  cfg : config;
  modname : string; (* unwrapped module name, e.g. "Bitset" *)
  safety_lines : int list; (* lines of the source containing a SAFETY comment *)
  mutable scope_start : int; (* start line of the nearest enclosing binding *)
  mutable allows : rule list list; (* [@lint.allow] suppression stack *)
  handled : (string * int * int, unit) Hashtbl.t;
      (* function-position idents already checked as part of an application,
         so the bare-ident pass does not report them twice *)
  mutable out : finding list;
}

let loc_key (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_fname, p.pos_lnum, p.pos_cnum - p.pos_bol)

let report ctx (loc : Location.t) rule message hint =
  let enabled = List.mem rule ctx.cfg.rules in
  let suppressed = List.exists (fun rs -> List.mem rule rs) ctx.allows in
  if enabled && (not suppressed) && not loc.loc_ghost then
    let p = loc.loc_start in
    ctx.out <-
      {
        file = p.pos_fname;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule;
        message;
        hint;
      }
      :: ctx.out

(* ---------- suppression attributes ---------- *)

let allows_of_attributes (attrs : T.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt "lint.allow") then []
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
            (* accept [@lint.allow "r"], [@lint.allow "r1" "r2"] and
               [@lint.allow ("r1", "r2")] *)
            let rec strings (e : Parsetree.expression) =
              match e.pexp_desc with
              | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
              | Pexp_tuple es -> List.concat_map strings es
              | Pexp_apply (f, args) ->
                  strings f @ List.concat_map (fun (_, a) -> strings a) args
              | _ -> []
            in
            List.filter_map rule_of_id (strings e)
        | _ -> [])
    attrs

(* ---------- type classification ---------- *)

type verdict = Immediate | Tyvar | Boxed of string

let print_type ty = Format.asprintf "%a" Printtyp.type_expr ty

(* Structural fallback when the serialized environment cannot be
   rebuilt (missing .cmi on the load path): predefined immediates are
   recognized, everything else is conservatively boxed. *)
let rec classify_structural ty =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ -> Tyvar
  | Tpoly (t, _) -> classify_structural t
  | Tconstr (p, _, _)
    when Path.same p Predef.path_int || Path.same p Predef.path_bool
         || Path.same p Predef.path_char || Path.same p Predef.path_unit ->
      Immediate
  | _ -> Boxed (print_type ty)

let classify (env : Env.t) ty =
  match Envaux.env_of_only_summary env with
  | env -> (
      let expanded = try Ctype.expand_head env ty with _ -> ty in
      match Types.get_desc expanded with
      | Tvar _ | Tunivar _ -> Tyvar
      | _ -> (
          match Ctype.immediacy env ty with
          | Type_immediacy.Always | Type_immediacy.Always_on_64bits -> Immediate
          | Type_immediacy.Unknown -> Boxed (print_type ty)
          | exception _ -> classify_structural expanded))
  | exception _ -> classify_structural ty

(* final result type of a (possibly partial) application: peel arrows *)
let rec peel_arrows env ty =
  let ty = try Ctype.expand_head (Envaux.env_of_only_summary env) ty with _ -> ty in
  match Types.get_desc ty with Tarrow (_, _, r, _) -> peel_arrows env r | _ -> ty

(* first value-argument type of a function type: peel optional labels *)
let rec first_operand env ty =
  let ty = try Ctype.expand_head (Envaux.env_of_only_summary env) ty with _ -> ty in
  match Types.get_desc ty with
  | Tarrow (Optional _, _, r, _) -> first_operand env r
  | Tarrow (_, d, _, _) -> Some d
  | _ -> None

(* ---------- rule: poly-compare ---------- *)

let poly_ops = [ "="; "<>"; "compare"; "min"; "max" ]

let is_poly_op path =
  match path with
  | Path.Pdot (Path.Pident id, op) ->
      String.equal (Ident.name id) "Stdlib" && List.mem op poly_ops
  | _ -> false

let op_name path = match path with Path.Pdot (_, op) -> op | _ -> Path.name path

let mono_hint op ty_desc =
  match ty_desc with
  | Some "int" -> Printf.sprintf "use Int.%s" op
  | Some "float" -> Printf.sprintf "use Float.%s" op
  | Some "string" -> Printf.sprintf "use String.%s" op
  | _ -> (
      match op with
      | "=" | "<>" -> "compare with a monomorphic equal or an explicit loop"
      | _ -> "use a monomorphic comparator (Int.compare, Float.compare, ...)")

let eq_ops = [ "="; "<>" ]

let check_poly_applied ctx (loc : Location.t) env op operand_ty =
  match classify env operand_ty with
  | Immediate -> ()
  | Tyvar ->
      report ctx loc Poly_compare
        (Printf.sprintf
           "(%s) instantiated at a type variable: the body generalized, so every call \
            is the polymorphic runtime compare"
           op)
        "annotate the operand type (e.g. (x : int)) so the comparison is monomorphic"
  | Boxed t ->
      report ctx loc Poly_compare
        (Printf.sprintf "(%s) at non-immediate type %s compiles to caml_compare" op t)
        (if List.mem op eq_ops then
           Printf.sprintf "use a monomorphic equal for %s or an explicit loop" t
         else mono_hint op (Some t))

let check_poly_unapplied ctx (loc : Location.t) env op (ty : Types.type_expr) =
  let operand = first_operand env ty in
  let operand_desc =
    match operand with
    | None -> None
    | Some d -> (
        match classify env d with
        | Tyvar -> None
        | Immediate | Boxed _ -> Some (print_type d))
  in
  report ctx loc Poly_compare
    (Printf.sprintf
       "generic Stdlib.%s passed as a value: an unapplied primitive is compiled as the \
        polymorphic runtime compare, even at int"
       op)
    (mono_hint op operand_desc)

let check_hashtbl_create ctx (loc : Location.t) env (result_ty : Types.type_expr) =
  let final = peel_arrows env result_ty in
  match Types.get_desc final with
  | Tconstr (p, [ key; _ ], _)
  (* the alias [Stdlib.Hashtbl] is normalized to the unit name
     [Stdlib__Hashtbl] during expansion, so accept both spellings *)
    when List.mem (Path.name p) [ "Stdlib.Hashtbl.t"; "Stdlib__Hashtbl.t" ] -> (
      match classify env key with
      | Immediate -> ()
      | Tyvar ->
          report ctx loc Poly_compare
            "Hashtbl.create with a type-variable key: default structural hash/equality \
             generalize to the polymorphic runtime versions"
            "pin the key type (e.g. int) or use Hashtbl.Make with explicit equal/hash"
      | Boxed t ->
          report ctx loc Poly_compare
            (Printf.sprintf
               "Hashtbl.create with non-immediate key type %s: every probe pays \
                polymorphic hash + structural equality"
               t)
            "encode the key as an int or use Hashtbl.Make with explicit equal/hash")
  | _ -> ()

(* ---------- rule: unsafe-allowlist ---------- *)

let is_unsafe_ident path = String.starts_with ~prefix:"unsafe_" (Path.last path)

let safety_covered ctx line =
  List.exists (fun l -> l >= ctx.scope_start - 12 && l <= line) ctx.safety_lines

let check_unsafe ctx (loc : Location.t) path =
  let name = Path.name path in
  if not (List.mem ctx.modname ctx.cfg.unsafe_allow) then
    report ctx loc Unsafe_allowlist
      (Printf.sprintf "%s used in module %s, which is not on the unsafe allowlist" name
         ctx.modname)
      "move the kernel into an allowlisted module (Bitset, Node_set) or justify the \
       site with [@lint.allow \"unsafe-allowlist\"] plus a (* SAFETY: ... *) comment"
  else if not (safety_covered ctx loc.loc_start.pos_lnum) then
    report ctx loc Unsafe_allowlist
      (Printf.sprintf "%s call site has no (* SAFETY: ... *) comment in scope" name)
      "state the bounds argument in a (* SAFETY: ... *) comment on the enclosing binding"

(* ---------- rule: exception-swallow ---------- *)

let rec catch_all_pattern : T.pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> catch_all_pattern p
  | Tpat_or (a, b, _) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let reraise_names =
  [
    "Stdlib.raise";
    "Stdlib.raise_notrace";
    "Stdlib.Printexc.raise_with_backtrace";
    "Stdlib__Printexc.raise_with_backtrace";
    (* never-returning raisers count too: a backstop that converts the
       stray exception into a structured [Io_error.Parse_error] is not a
       swallow — the failure still propagates, just typed *)
    "Io_error.fail";
    "Io_error.failf";
    "Sgraph.Io_error.fail";
    "Sgraph.Io_error.failf";
    "Sgraph__Io_error.fail";
    "Sgraph__Io_error.failf";
  ]

let mentions_reraise (body : T.expression) =
  let found = ref false in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : T.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) when List.mem (Path.name p) reraise_names -> found := true
    | _ -> ());
    default.expr sub e
  in
  let it = { default with expr } in
  it.expr it body;
  !found

let check_try ctx (cases : T.value T.case list) =
  List.iter
    (fun (c : T.value T.case) ->
      if catch_all_pattern c.c_lhs && not (mentions_reraise c.c_rhs) then
        report ctx c.c_lhs.pat_loc Exception_swallow
          "catch-all exception handler that never re-raises: a crash in the guarded \
           code (worker body, parser loop) is silently swallowed"
          "match the exceptions you expect explicitly and re-raise the rest (| e -> \
           ...; raise e), or use Fun.protect for cleanup")
    cases

(* ---------- rule: lock-discipline ---------- *)

let mutex_ops =
  [
    "Stdlib.Mutex.lock";
    "Stdlib.Mutex.unlock";
    "Stdlib.Mutex.try_lock";
    "Stdlib__Mutex.lock";
    "Stdlib__Mutex.unlock";
    "Stdlib__Mutex.try_lock";
  ]

let check_mutex ctx (loc : Location.t) path =
  if not (List.mem ctx.modname ctx.cfg.lock_allow) then
    report ctx loc Lock_discipline
      (Printf.sprintf
         "direct %s in module %s: hand-paired lock/unlock loses the lock on any \
          exception between them"
         (Path.name path) ctx.modname)
      "route the critical section through Scoll.Sync.with_lock (Fun.protect pairs the \
       unlock on every exit path)"

(* ---------- expression dispatch ---------- *)

let check_ident ctx (loc : Location.t) env path ~(applied_args : T.expression option list)
    ~(ident_ty : Types.type_expr) ~(whole_ty : Types.type_expr) =
  if is_poly_op path then begin
    let op = op_name path in
    match List.find_map (fun a -> a) applied_args with
    | Some arg -> check_poly_applied ctx loc arg.T.exp_env op arg.T.exp_type
    | None -> check_poly_unapplied ctx loc env op ident_ty
  end;
  if String.equal (Path.name path) "Stdlib.Hashtbl.create" then
    check_hashtbl_create ctx loc env whole_ty;
  if is_unsafe_ident path then check_unsafe ctx loc path;
  if List.mem (Path.name path) mutex_ops then check_mutex ctx loc path

let check_expr ctx (e : T.expression) =
  match e.exp_desc with
  | Texp_apply (({ exp_desc = Texp_ident (path, _, _); _ } as fn), args) ->
      Hashtbl.replace ctx.handled (loc_key fn.exp_loc) ();
      let applied_args =
        List.filter_map
          (fun (lbl, a) ->
            match (lbl : Asttypes.arg_label) with
            | Nolabel | Labelled _ -> Some a
            | Optional _ -> None)
          args
      in
      check_ident ctx fn.exp_loc fn.exp_env path ~applied_args ~ident_ty:fn.exp_type
        ~whole_ty:e.exp_type
  | Texp_ident (path, _, _) when not (Hashtbl.mem ctx.handled (loc_key e.exp_loc)) ->
      check_ident ctx e.exp_loc e.exp_env path ~applied_args:[] ~ident_ty:e.exp_type
        ~whole_ty:e.exp_type
  | Texp_try (_, cases) -> check_try ctx cases
  | _ -> ()

(* ---------- tree walk ---------- *)

let lint_structure ctx (str : T.structure) =
  let default = Tast_iterator.default_iterator in
  let expr sub (e : T.expression) =
    ctx.allows <- allows_of_attributes e.exp_attributes :: ctx.allows;
    check_expr ctx e;
    default.expr sub e;
    ctx.allows <- List.tl ctx.allows
  in
  let value_binding sub (vb : T.value_binding) =
    let saved_scope = ctx.scope_start in
    ctx.scope_start <- vb.vb_loc.loc_start.pos_lnum;
    ctx.allows <- allows_of_attributes vb.vb_attributes :: ctx.allows;
    default.value_binding sub vb;
    ctx.allows <- List.tl ctx.allows;
    ctx.scope_start <- saved_scope
  in
  let structure_item sub (si : T.structure_item) =
    let saved_scope = ctx.scope_start in
    ctx.scope_start <- si.str_loc.loc_start.pos_lnum;
    default.structure_item sub si;
    ctx.scope_start <- saved_scope
  in
  let it = { default with expr; value_binding; structure_item } in
  it.structure it str

(* ---------- cmt handling ---------- *)

let unwrap_modname name =
  (* dune-wrapped modules are "Lib__Module"; keep the last component *)
  let n = String.length name in
  let rec go i after =
    if i + 1 >= n then after
    else if name.[i] = '_' && name.[i + 1] = '_' then go (i + 2) (i + 2)
    else go (i + 1) after
  in
  let j = go 0 0 in
  String.sub name j (n - j)

let resolve_source cfg cmt_path source =
  let candidates =
    [
      source;
      Filename.concat cfg.root source;
      Filename.concat (Filename.dirname cmt_path) (Filename.basename source);
    ]
  in
  List.find_opt Sys.file_exists candidates

let safety_lines_of_source path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let has_safety =
             let n = String.length line and pat = "SAFETY" in
             let rec go i =
               i + 6 <= n && (String.equal (String.sub line i 6) pat || go (i + 1))
             in
             go 0
           in
           if has_safety then lines := !lineno :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let process_cmt cfg path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.cmt_annots with
  | Implementation str ->
      Load_path.init ~auto_include:Load_path.no_auto_include
        (cmt.cmt_loadpath @ [ Filename.dirname path; Config.standard_library ]);
      Envaux.reset_cache ();
      let safety_lines =
        match cmt.cmt_sourcefile with
        | None -> []
        | Some s -> (
            match resolve_source cfg path s with
            | None -> []
            | Some resolved -> safety_lines_of_source resolved)
      in
      let ctx =
        {
          cfg;
          modname = unwrap_modname cmt.cmt_modname;
          safety_lines;
          scope_start = 1;
          allows = [];
          handled = Hashtbl.create 256;
          out = [];
        }
      in
      lint_structure ctx str;
      ctx.out
  | _ -> []

(* ---------- discovery, output, driver ---------- *)

let rec collect_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect_cmts acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json findings =
  print_string "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
         \"message\": \"%s\", \"hint\": \"%s\"}"
        (json_escape f.file) f.line f.col (rule_id f.rule) (json_escape f.message)
        (json_escape f.hint))
    findings;
  if findings <> [] then print_string "\n  ";
  Printf.printf "],\n  \"count\": %d\n}\n" (List.length findings)

let print_text findings =
  List.iter
    (fun f ->
      Printf.printf "%s:%d:%d: %s: %s\n" f.file f.line f.col (rule_id f.rule) f.message;
      Printf.printf "  hint: %s\n" f.hint)
    findings;
  match findings with
  | [] -> ()
  | _ -> Printf.printf "%d finding(s)\n" (List.length findings)

let parse_args () =
  let cfg = default_config () in
  let die msg =
    prerr_endline msg;
    prerr_endline usage;
    exit 2
  in
  let split_commas s = List.filter (fun x -> String.length x > 0) (String.split_on_char ',' s) in
  let rec go = function
    | [] -> ()
    | "--json" :: rest ->
        cfg.json <- true;
        go rest
    | "--rules" :: v :: rest ->
        cfg.rules <-
          List.map
            (fun id ->
              match rule_of_id id with
              | Some r -> r
              | None -> die (Printf.sprintf "unknown rule %S" id))
            (split_commas v);
        go rest
    | "--unsafe-allow" :: v :: rest ->
        cfg.unsafe_allow <- split_commas v;
        go rest
    | "--lock-allow" :: v :: rest ->
        cfg.lock_allow <- split_commas v;
        go rest
    | "--root" :: v :: rest ->
        cfg.root <- v;
        go rest
    | ("--help" | "-help") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        die (Printf.sprintf "unknown option %S" arg)
    | path :: rest ->
        cfg.paths <- cfg.paths @ [ path ];
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  if cfg.paths = [] then die "no input paths given";
  cfg

let () =
  let cfg = parse_args () in
  let cmts =
    List.concat_map
      (fun p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "scliques-lint: no such file or directory: %s\n" p;
          exit 2
        end;
        collect_cmts [] p)
      cfg.paths
    |> List.sort_uniq String.compare
  in
  if cmts = [] then begin
    (* zero inputs would report a vacuous "clean": refuse instead, so a
       stale or mispointed build directory cannot pass the gate *)
    Printf.eprintf "scliques-lint: no .cmt files under: %s\n"
      (String.concat " " cfg.paths);
    exit 2
  end;
  let findings =
    List.concat_map
      (fun cmt ->
        match process_cmt cfg cmt with
        | fs -> fs
        | exception e ->
            Printf.eprintf "scliques-lint: cannot analyze %s: %s\n" cmt
              (Printexc.to_string e);
            exit 2)
      cmts
    |> List.sort_uniq (fun a b ->
           let c = compare_findings a b in
           if c <> 0 then c else String.compare a.message b.message)
  in
  if cfg.json then print_json findings else print_text findings;
  exit (if findings = [] then 0 else 1)
