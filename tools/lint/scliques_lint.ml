(* scliques-lint — static analysis over the typed trees (.cmt files) of
   the repository's libraries and executables.

   The enumeration engine lives or dies on per-element constant factors
   and, since PR 2/4/7, on multicore discipline: a polymorphic compare
   in a merge loop, a mutex left locked on an exception path, a mutable
   field snapshot captured by a spawned domain, or two locks taken in
   opposite orders each cost an order of magnitude, a hang, or a lost
   answer, and none of them are visible in the .mli. The tool walks the
   *typed* tree (so it sees the instantiation types the source hides)
   and enforces eight rules — see registry.ml for the list and
   DESIGN.md §10/§15 for the semantics:

   local (per expression): poly-compare, unsafe-allowlist,
   exception-swallow, lock-discipline.

   global (whole analyzed tree, from facts gathered by Conc.collect):
   domain-escape, lock-order, atomicity, fd-lifecycle.

   Per-site suppression: [@lint.allow "rule-id"] on an expression or a
   [let] binding disables the named rule for that subtree; the
   concurrency rules additionally require a (* SAFETY: ... *) comment by
   convention (reviewed, not machine-checked).

   Findings go to stdout as [file:line:col: rule: message] plus a fix
   hint, or as a stable JSON document under [--json]. Exit status: 0 no
   findings, 1 findings, 2 usage error, unreadable input, or stale .cmt
   files (older than their sources; disable with --no-mtime-check when a
   build system already guarantees freshness by content digests). *)

let default_config () =
  {
    Lint.json = false;
    rules = Registry.ids;
    unsafe_allow = [ "Bitset"; "Node_set" ];
    lock_allow = [ "Sync" ];
    fd_owners = [ "spawn_session" ];
    root = ".";
    mtime_check = true;
    paths = [];
  }

let usage =
  "usage: scliques-lint [--json] [--rules r1,r2,...] [--unsafe-allow M1,M2]\n\
  \                     [--lock-allow M1,M2] [--fd-owners f1,f2]\n\
  \                     [--no-mtime-check] [--root DIR] PATH...\n\
   PATH is a .cmt file or a directory searched recursively for .cmt files.\n\
   Rules: poly-compare unsafe-allowlist exception-swallow lock-discipline\n\
  \       domain-escape lock-order atomicity fd-lifecycle"

(* ---------- cmt handling ---------- *)

let resolve_source cfg cmt_path source =
  let candidates =
    [
      source;
      Filename.concat cfg.Lint.root source;
      Filename.concat (Filename.dirname cmt_path) (Filename.basename source);
    ]
  in
  List.find_opt Sys.file_exists candidates

let process_cmt cfg facts path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.cmt_annots with
  | Implementation str ->
      Load_path.init ~auto_include:Load_path.no_auto_include
        (cmt.cmt_loadpath @ [ Filename.dirname path; Config.standard_library ]);
      Envaux.reset_cache ();
      let safety_lines =
        match cmt.cmt_sourcefile with
        | None -> []
        | Some s -> (
            match resolve_source cfg path s with
            | None -> []
            | Some resolved -> Lint.safety_lines_of_source resolved)
      in
      let modname = Lint.unwrap_modname cmt.cmt_modname in
      Conc.note_wrapper facts cmt.cmt_modname;
      let ctx =
        {
          Lint.cfg;
          modname;
          safety_lines;
          scope_start = 1;
          allows = [];
          handled = Lint.Stbl.create 256;
          out = [];
        }
      in
      Walk.lint_structure ctx str;
      let file =
        match cmt.cmt_sourcefile with
        | Some s -> Filename.basename s
        | None -> Filename.basename path
      in
      Conc.collect cfg ~modname ~file str facts;
      ctx.Lint.out
  | _ -> []

(* ---------- staleness check ---------- *)

(* a .cmt older than its source describes a tree that no longer exists;
   analyzing it gives findings (or a clean pass) for stale code *)
let stale_cmts cfg cmts =
  List.filter_map
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | { cmt_sourcefile = Some s; _ } -> (
          match resolve_source cfg cmt_path s with
          | Some src when (Unix.stat src).Unix.st_mtime
                          > (Unix.stat cmt_path).Unix.st_mtime ->
              Some (cmt_path, src)
          | _ -> None)
      | _ -> None
      | exception _ -> None)
    cmts

(* ---------- discovery, driver ---------- *)

let rec collect_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect_cmts acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* undocumented maintenance aid: dump the concurrency fact store to
   stderr so rule misses can be traced to collection vs evaluation *)
let dump_facts = ref false

let parse_args () =
  let cfg = default_config () in
  let die msg =
    prerr_endline msg;
    prerr_endline usage;
    exit 2
  in
  let split_commas s =
    List.filter (fun x -> String.length x > 0) (String.split_on_char ',' s)
  in
  let rec go = function
    | [] -> ()
    | "--json" :: rest ->
        cfg.Lint.json <- true;
        go rest
    | "--rules" :: v :: rest ->
        cfg.Lint.rules <-
          List.map
            (fun id ->
              if Registry.is_rule id then id
              else die (Printf.sprintf "unknown rule %S" id))
            (split_commas v);
        go rest
    | "--unsafe-allow" :: v :: rest ->
        cfg.Lint.unsafe_allow <- split_commas v;
        go rest
    | "--lock-allow" :: v :: rest ->
        cfg.Lint.lock_allow <- split_commas v;
        go rest
    | "--fd-owners" :: v :: rest ->
        cfg.Lint.fd_owners <- split_commas v;
        go rest
    | "--no-mtime-check" :: rest ->
        cfg.Lint.mtime_check <- false;
        go rest
    | "--dump-facts" :: rest ->
        dump_facts := true;
        go rest
    | "--root" :: v :: rest ->
        cfg.Lint.root <- v;
        go rest
    | ("--help" | "-help") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        die (Printf.sprintf "unknown option %S" arg)
    | path :: rest ->
        cfg.Lint.paths <- cfg.Lint.paths @ [ path ];
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  if List.is_empty cfg.Lint.paths then die "no input paths given";
  cfg

let () =
  let cfg = parse_args () in
  let cmts =
    List.concat_map
      (fun p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "scliques-lint: no such file or directory: %s\n" p;
          exit 2
        end;
        collect_cmts [] p)
      cfg.Lint.paths
    |> List.sort_uniq String.compare
  in
  if List.is_empty cmts then begin
    (* zero inputs would report a vacuous "clean": refuse instead, so a
       stale or mispointed build directory cannot pass the gate *)
    Printf.eprintf "scliques-lint: no .cmt files under: %s\n"
      (String.concat " " cfg.Lint.paths);
    exit 2
  end;
  if cfg.Lint.mtime_check then begin
    match stale_cmts cfg cmts with
    | [] -> ()
    | stale ->
        List.iter
          (fun (cmt, src) ->
            Printf.eprintf
              "scliques-lint: stale .cmt: %s is older than %s — rebuild first\n"
              (Filename.basename cmt) (Filename.basename src))
          stale;
        prerr_endline
          "scliques-lint: refusing to analyze a stale tree (pass \
           --no-mtime-check if freshness is guaranteed by other means)";
        exit 2
  end;
  let facts = Conc.create_facts () in
  let local_findings =
    List.concat_map
      (fun cmt ->
        match process_cmt cfg facts cmt with
        | fs -> fs
        | exception e ->
            Printf.eprintf "scliques-lint: cannot analyze %s: %s\n" cmt
              (Printexc.to_string e);
            exit 2)
      cmts
  in
  Conc.normalize_facts facts;
  if !dump_facts then begin
    let loc_line (l : Location.t) = l.loc_start.pos_lnum in
    List.iter
      (fun (c : Conc.call) ->
        Printf.eprintf "call %s keys=[%s] held=[%s] frames=[%s] line=%d\n"
          c.Conc.c_name
          (String.concat ";" c.Conc.c_keys)
          (String.concat ";" c.Conc.c_held)
          (String.concat ";" c.Conc.c_frames)
          (loc_line c.Conc.c_loc))
      facts.Conc.calls;
    List.iter
      (fun (a : Conc.access) ->
        Printf.eprintf "access %s target=%s locked=%b frames=[%s] line=%d\n"
          a.Conc.a_display
          (match a.Conc.a_target with Some t -> t | None -> "?")
          a.Conc.a_locked
          (String.concat ";" a.Conc.a_frames)
          (loc_line a.Conc.a_loc))
      facts.Conc.accesses;
    List.iter
      (fun (q : Conc.acquire) ->
        Printf.eprintf "acquire %s held=[%s] line=%d\n" q.Conc.q_lock
          (String.concat ";" q.Conc.q_held)
          (loc_line q.Conc.q_loc))
      facts.Conc.acquires;
    List.iter
      (fun (s : Conc.spawn) ->
        Printf.eprintf "spawn %s root=[%s] line=%d\n" s.Conc.s_kind
          (String.concat ";" s.Conc.s_root)
          (loc_line s.Conc.s_loc))
      facts.Conc.spawns;
    Lint.Stbl.iter
      (fun alias key -> Printf.eprintf "fn %s -> %s\n" alias key)
      facts.Conc.fn_tbl
  end;
  let findings =
    local_findings @ Registry.global_runs cfg facts
    |> List.sort_uniq (fun a b ->
           let c = Lint.compare_findings a b in
           if c <> 0 then c else String.compare a.Lint.message b.Lint.message)
  in
  if cfg.Lint.json then Lint.print_json findings else Lint.print_text findings;
  exit (match findings with [] -> 0 | _ -> 1)
