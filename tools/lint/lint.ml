(* Shared substrate for scliques-lint: finding/config types, the rule
   registry's id strings, typed-tree classification helpers, suppression
   attributes, canonical naming, and the output sinks. Rule logic lives
   in the rule_*.ml modules; the driver is scliques_lint.ml.

   This tool analyzes itself (`dune build @lint` runs the original four
   rules over tools/), so the code here keeps to the same discipline it
   enforces: monomorphic comparisons, string-keyed hashtables through
   [Hashtbl.Make (String)], no catch-all [try ... with]. *)

module T = Typedtree
module Stbl = Hashtbl.Make (String)

(* ---------- rule ids ---------- *)

let r_poly = "poly-compare"
let r_unsafe = "unsafe-allowlist"
let r_swallow = "exception-swallow"
let r_lockdisc = "lock-discipline"
let r_domain = "domain-escape"
let r_lock_order = "lock-order"
let r_atomicity = "atomicity"
let r_fd = "fd-lifecycle"

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  hint : string;
}

(* ---------- configuration ---------- *)

type config = {
  mutable json : bool;
  mutable rules : string list;
  mutable unsafe_allow : string list; (* module names where unsafe_* is permitted *)
  mutable lock_allow : string list; (* module names allowed to touch Mutex directly *)
  mutable fd_owners : string list; (* functions that take ownership of an fd *)
  mutable root : string; (* prefix tried when resolving recorded source paths *)
  mutable mtime_check : bool; (* refuse .cmt files older than their source *)
  mutable paths : string list;
}

(* ---------- name normalization ---------- *)

let unwrap_modname name =
  (* dune-wrapped modules are "Lib__Module"; keep the last component *)
  let n = String.length name in
  let rec go i after =
    if i + 1 >= n then after
    else if name.[i] = '_' && name.[i + 1] = '_' then go (i + 2) (i + 2)
    else go (i + 1) after
  in
  let j = go 0 0 in
  String.sub name j (n - j)

(* "Scoll__Sync" -> Some "Scoll": the generated alias module of a
   wrapped library. References from a sibling library go through it
   ("Scoll.Sync.with_lock"), so fact names carry the wrapper as a
   leading path component that registration-side names (built from the
   unwrapped cmt modname) lack; Conc.normalize_facts strips it. *)
let wrapper_of_modname name =
  let n = String.length name in
  let rec go i =
    if i + 1 >= n then None
    else if name.[i] = '_' && name.[i + 1] = '_' then Some (String.sub name 0 i)
    else go (i + 1)
  in
  go 0

(* "Stdlib__Hashtbl.create" / "Stdlib.Hashtbl.create" -> "Hashtbl.create";
   "Scoll__Sync.with_lock" -> "Sync.with_lock". The normalized spelling is
   what rule tables match on; messages keep the raw [Path.name]. *)
let normalize_name s =
  let parts = List.map unwrap_modname (String.split_on_char '.' s) in
  let parts =
    match parts with "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts
  in
  String.concat "." parts

let canon_path p = normalize_name (Path.name p)

let last_component s =
  match String.rindex_opt s '.' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* ---------- per-file local-walk state ---------- *)

type ctx = {
  cfg : config;
  modname : string; (* unwrapped module name, e.g. "Bitset" *)
  safety_lines : int list; (* lines of the source containing a SAFETY comment *)
  mutable scope_start : int; (* start line of the nearest enclosing binding *)
  mutable allows : string list list; (* [@lint.allow] suppression stack *)
  handled : unit Stbl.t;
      (* function-position idents already checked as part of an application,
         so the bare-ident pass does not report them twice *)
  mutable out : finding list;
}

let loc_key (loc : Location.t) =
  let p = loc.loc_start in
  Printf.sprintf "%s:%d:%d" p.pos_fname p.pos_lnum (p.pos_cnum - p.pos_bol)

let report ctx (loc : Location.t) rule message hint =
  let enabled = List.exists (String.equal rule) ctx.cfg.rules in
  let suppressed =
    List.exists (List.exists (String.equal rule)) ctx.allows
  in
  if enabled && (not suppressed) && not loc.loc_ghost then
    let p = loc.loc_start in
    ctx.out <-
      {
        file = p.pos_fname;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule;
        message;
        hint;
      }
      :: ctx.out

(* findings produced by the whole-library rules carry the [@lint.allow]
   set that was active when the underlying fact was collected *)
let global_finding cfg ~rule ~allows (loc : Location.t) message hint =
  let enabled = List.exists (String.equal rule) cfg.rules in
  let suppressed = List.exists (String.equal rule) allows in
  if enabled && (not suppressed) && not loc.loc_ghost then
    let p = loc.loc_start in
    Some
      {
        file = p.pos_fname;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule;
        message;
        hint;
      }
  else None

(* ---------- suppression attributes ---------- *)

let allows_of_attributes (attrs : T.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt "lint.allow") then []
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
            (* accept [@lint.allow "r"], [@lint.allow "r1" "r2"] and
               [@lint.allow ("r1", "r2")] *)
            let rec strings (e : Parsetree.expression) =
              match e.pexp_desc with
              | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
              | Pexp_tuple es -> List.concat_map strings es
              | Pexp_apply (f, args) ->
                  strings f @ List.concat_map (fun (_, a) -> strings a) args
              | _ -> []
            in
            strings e
        | _ -> [])
    attrs

(* ---------- type classification ---------- *)

type verdict = Immediate | Tyvar | Boxed of string

let print_type ty = Format.asprintf "%a" Printtyp.type_expr ty

(* Structural fallback when the serialized environment cannot be
   rebuilt (missing .cmi on the load path): predefined immediates are
   recognized, everything else is conservatively boxed. *)
let rec classify_structural ty =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ -> Tyvar
  | Tpoly (t, _) -> classify_structural t
  | Tconstr (p, _, _)
    when Path.same p Predef.path_int || Path.same p Predef.path_bool
         || Path.same p Predef.path_char || Path.same p Predef.path_unit ->
      Immediate
  | _ -> Boxed (print_type ty)

let classify (env : Env.t) ty =
  match Envaux.env_of_only_summary env with
  | env -> (
      let expanded =
        match Ctype.expand_head env ty with
        | ty -> ty
        | exception _ -> ty
      in
      match Types.get_desc expanded with
      | Tvar _ | Tunivar _ -> Tyvar
      | _ -> (
          match Ctype.immediacy env ty with
          | Type_immediacy.Always | Type_immediacy.Always_on_64bits -> Immediate
          | Type_immediacy.Unknown -> Boxed (print_type ty)
          | exception _ -> classify_structural expanded))
  | exception _ -> classify_structural ty

let expand env ty =
  match Ctype.expand_head (Envaux.env_of_only_summary env) ty with
  | ty -> ty
  | exception _ -> ty

(* final result type of a (possibly partial) application: peel arrows *)
let rec peel_arrows env ty =
  let ty = expand env ty in
  match Types.get_desc ty with Tarrow (_, _, r, _) -> peel_arrows env r | _ -> ty

(* first value-argument type of a function type: peel optional labels *)
let rec first_operand env ty =
  let ty = expand env ty in
  match Types.get_desc ty with
  | Tarrow (Optional _, _, r, _) -> first_operand env r
  | Tarrow (_, d, _, _) -> Some d
  | _ -> None

(* ---------- SAFETY comments ---------- *)

let safety_covered ctx line =
  List.exists (fun l -> l >= ctx.scope_start - 12 && l <= line) ctx.safety_lines

let safety_lines_of_source path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let has_safety =
             let n = String.length line and pat = "SAFETY" in
             let rec go i =
               i + 6 <= n && (String.equal (String.sub line i 6) pat || go (i + 1))
             in
             go 0
           in
           if has_safety then lines := !lineno :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

(* ---------- output ---------- *)

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json findings =
  print_string "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
         \"message\": \"%s\", \"hint\": \"%s\"}"
        (json_escape f.file) f.line f.col f.rule (json_escape f.message)
        (json_escape f.hint))
    findings;
  if not (List.is_empty findings) then print_string "\n  ";
  Printf.printf "],\n  \"count\": %d\n}\n" (List.length findings)

let print_text findings =
  List.iter
    (fun f ->
      Printf.printf "%s:%d:%d: %s: %s\n" f.file f.line f.col f.rule f.message;
      Printf.printf "  hint: %s\n" f.hint)
    findings;
  match findings with
  | [] -> ()
  | _ -> Printf.printf "%d finding(s)\n" (List.length findings)
