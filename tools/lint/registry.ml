(* Rule registry: one entry per rule, in reporting order. Local rules
   run per-expression during [Walk.lint_structure]; global rules run
   once over the whole fact store after every .cmt has been walked. *)

type kind = Local | Global of (Lint.config -> Conc.facts -> Lint.finding list)

type entry = { id : string; summary : string; kind : kind }

let entries =
  [
    {
      id = Lint.r_poly;
      summary =
        "polymorphic =/<>/compare/min/max at non-immediate types, unapplied \
         primitives, Hashtbl.create with boxed keys";
      kind = Local;
    };
    {
      id = Lint.r_unsafe;
      summary =
        "*.unsafe_* only in allowlisted modules and under a SAFETY comment";
      kind = Local;
    };
    {
      id = Lint.r_swallow;
      summary = "catch-all try handlers that never re-raise";
      kind = Local;
    };
    {
      id = Lint.r_lockdisc;
      summary = "direct Mutex.lock/unlock outside the Sync helper";
      kind = Local;
    };
    {
      id = Lint.r_domain;
      summary =
        "mutable state captured by Domain.spawn/Thread.create closures \
         without Atomic.t or with_lock";
      kind = Global Rule_domain_escape.run;
    };
    {
      id = Lint.r_lock_order;
      summary =
        "nested-acquisition cycles and blocking calls while a lock is held";
      kind = Global Rule_lock_order.run;
    };
    {
      id = Lint.r_atomicity;
      summary =
        "mutable state accessed both under with_lock and outside it";
      kind = Global Rule_atomicity.run;
    };
    {
      id = Lint.r_fd;
      summary =
        "Unix fd results must reach a close, channel conversion, or fd-owner";
      kind = Global Rule_fd.run;
    };
  ]

let ids = List.map (fun e -> e.id) entries
let is_rule id = List.exists (String.equal id) ids

let global_runs cfg facts =
  List.concat_map
    (fun e -> match e.kind with Local -> [] | Global run -> run cfg facts)
    entries
