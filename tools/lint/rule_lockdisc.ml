(* lock-discipline: direct [Mutex.lock]/[Mutex.unlock] calls outside
   the designated helper module (default [Sync]); pairing on every exit
   path is exactly what [Sync.with_lock] guarantees, so routing through
   it is the checkable form of the invariant. *)

let mutex_ops =
  [
    "Stdlib.Mutex.lock";
    "Stdlib.Mutex.unlock";
    "Stdlib.Mutex.try_lock";
    "Stdlib__Mutex.lock";
    "Stdlib__Mutex.unlock";
    "Stdlib__Mutex.try_lock";
  ]

let is_mutex_op path = List.exists (String.equal (Path.name path)) mutex_ops

let check ctx (loc : Location.t) path =
  if not (List.exists (String.equal ctx.Lint.modname) ctx.Lint.cfg.Lint.lock_allow)
  then
    Lint.report ctx loc Lint.r_lockdisc
      (Printf.sprintf
         "direct %s in module %s: hand-paired lock/unlock loses the lock on any \
          exception between them"
         (Path.name path) ctx.Lint.modname)
      "route the critical section through Scoll.Sync.with_lock (Fun.protect pairs the \
       unlock on every exit path)"
