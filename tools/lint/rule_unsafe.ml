(* unsafe-allowlist: [*.unsafe_*] calls are permitted only inside an
   explicit module allowlist (default [Bitset], [Node_set]) and only
   when the call site is covered by a [(* SAFETY: ... *)] comment
   stating the bounds argument. *)

let is_unsafe_ident path = String.starts_with ~prefix:"unsafe_" (Path.last path)

let check ctx (loc : Location.t) path =
  let name = Path.name path in
  if not (List.exists (String.equal ctx.Lint.modname) ctx.Lint.cfg.Lint.unsafe_allow)
  then
    Lint.report ctx loc Lint.r_unsafe
      (Printf.sprintf "%s used in module %s, which is not on the unsafe allowlist" name
         ctx.Lint.modname)
      "move the kernel into an allowlisted module (Bitset, Node_set) or justify the \
       site with [@lint.allow \"unsafe-allowlist\"] plus a (* SAFETY: ... *) comment"
  else if not (Lint.safety_covered ctx loc.loc_start.pos_lnum) then
    Lint.report ctx loc Lint.r_unsafe
      (Printf.sprintf "%s call site has no (* SAFETY: ... *) comment in scope" name)
      "state the bounds argument in a (* SAFETY: ... *) comment on the enclosing binding"
