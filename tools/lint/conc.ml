(* Shared concurrency-analysis substrate for the whole-library rules
   (domain-escape, lock-order, atomicity, fd-lifecycle).

   One walk per .cmt collects *facts* — mutable-state accesses, lock
   acquisitions, calls made while locks are held, Domain/Thread spawn
   roots, and fd-producing calls — into a store that survives across
   compilation units. The rules then evaluate globally: lock-order
   builds an acquisition graph over the intra-library call graph,
   atomicity groups accesses by canonical target, domain-escape chases
   spawn roots through trivial wrapper functions.

   Canonical naming: a mutable record field is named by its declaration
   site ("scheduler.lock" = field [lock] declared in scheduler.ml), so
   the same field reached from different modules groups together; local
   refs are named by ident stamp and file; arrays of locks get a "[]"
   suffix. Soundness limits (no aliasing analysis, callees trusted to
   guard their own state, functor-instance containers invisible) are
   documented in DESIGN.md §15. *)

module T = Typedtree
module Stbl = Lint.Stbl

type binder_kind = Param | Local

type binder =
  | B_frame of string * binder_kind (* frame key that binds the base ident *)
  | B_module of string (* module-level or cross-module value *)
  | B_unknown (* complex base: treated as escaping *)

type access = {
  a_target : string option; (* canonical grouping key; None = ungroupable *)
  a_display : string; (* human name for messages *)
  a_write : bool;
  a_loc : Location.t;
  a_allows : string list;
  a_locked : bool;
  a_binder : binder;
  a_frames : string list; (* enclosing analysis frames, innermost first *)
}

type acquire = {
  q_lock : string;
  q_loc : Location.t;
  q_allows : string list;
  q_held : string list; (* locks already held, innermost first *)
  q_frames : string list;
}

type call = {
  c_name : string; (* normalized name, for blocking-call matching *)
  c_keys : string list; (* candidate resolution keys into fn_tbl *)
  c_loc : Location.t;
  c_allows : string list;
  c_held : string list;
  c_frames : string list;
  c_wait_ok : bool; (* Condition.wait whose mutex is the innermost held lock *)
}

type spawn = {
  s_kind : string; (* "Domain.spawn" or "Thread.create" *)
  s_root : string list; (* frame key (inline closure) or resolution keys *)
  s_loc : Location.t;
  s_allows : string list;
}

type fd_site = {
  fd_name : string;
  fd_loc : Location.t;
  fd_allows : string list;
  fd_ok : bool;
}

type facts = {
  mutable accesses : access list;
  mutable acquires : acquire list;
  mutable calls : call list;
  mutable spawns : spawn list;
  mutable fds : fd_site list;
  fn_tbl : string Stbl.t; (* alias -> canonical function key *)
  mutable wrappers : string list; (* wrapped-library alias modules seen *)
}

let create_facts () =
  {
    accesses = [];
    acquires = [];
    calls = [];
    spawns = [];
    fds = [];
    fn_tbl = Stbl.create 256;
    wrappers = [];
  }

let resolve facts keys = List.find_map (Stbl.find_opt facts.fn_tbl) keys
let in_frames key frames = List.exists (String.equal key) frames

let note_wrapper facts raw_modname =
  match Lint.wrapper_of_modname raw_modname with
  | Some w when not (List.exists (String.equal w) facts.wrappers) ->
      facts.wrappers <- w :: facts.wrappers
  | _ -> ()

(* Cross-library references go through the generated alias module of the
   wrapped library ("Scoll.Sync.m"), while names recorded inside that
   library use the unwrapped modname ("Sync.m"). Once every .cmt has
   been collected the full wrapper set is known; strip the prefixes so
   the two spellings of one entity compare equal in the global rules.
   Keys with a non-path shape ("id:...", "spawn@...", "lock@...") and
   two-component names are left alone. *)
let normalize_facts facts =
  let strip s =
    let rec go s =
      match String.index_opt s '.' with
      | Some i
        when String.contains_from s (i + 1) '.'
             && List.exists (String.equal (String.sub s 0 i)) facts.wrappers ->
          go (String.sub s (i + 1) (String.length s - i - 1))
      | _ -> s
    in
    if String.contains s '@' || String.length s > 3 && String.equal (String.sub s 0 3) "id:"
    then s
    else go s
  in
  let strip_all = List.map strip in
  facts.accesses <-
    List.map
      (fun a ->
        {
          a with
          a_target = Option.map strip a.a_target;
          a_display = strip a.a_display;
        })
      facts.accesses;
  facts.acquires <-
    List.map
      (fun q -> { q with q_lock = strip q.q_lock; q_held = strip_all q.q_held })
      facts.acquires;
  facts.calls <-
    List.map
      (fun c ->
        {
          c with
          c_name = strip c.c_name;
          c_keys = strip_all c.c_keys;
          c_held = strip_all c.c_held;
        })
      facts.calls;
  facts.spawns <-
    List.map (fun s -> { s with s_root = strip_all s.s_root }) facts.spawns

(* ---------- name tables ---------- *)

let spawn_prims = [ "Domain.spawn"; "Thread.create" ]

let fd_producers =
  [ "Unix.socket"; "Unix.accept"; "Unix.openfile"; "Unix.pipe"; "Unix.socketpair" ]

let fd_closers =
  [
    "Unix.close";
    "close_in";
    "close_out";
    "close_in_noerr";
    "close_out_noerr";
    (* converting to a channel transfers ownership: the channel close owns
       the descriptor from then on *)
    "Unix.in_channel_of_descr";
    "Unix.out_channel_of_descr";
  ]

(* calls that can block the holder of a lock; Mutex acquisition itself is
   covered by the lock-order graph instead *)
let blocking_calls =
  [
    "Condition.wait";
    "Unix.read";
    "Unix.write";
    "Unix.single_write";
    "Unix.accept";
    "Unix.connect";
    "Unix.select";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.recv";
    "Unix.send";
    "Thread.join";
    "Thread.delay";
    "Domain.join";
    "flush";
    "output_string";
    "output_bytes";
    "output";
    "output_binary_int";
    "input";
    "input_line";
    "input_binary_int";
    "really_input";
    "really_input_string";
    "close_in";
    "close_out";
    "close_in_noerr";
    "close_out_noerr";
  ]

let array_reads = [ "Array.get"; "Array.unsafe_get" ]
let array_writes = [ "Array.set"; "Array.unsafe_set"; "Bytes.set"; "Bytes.unsafe_set" ]

let container_prefixes = [ "Hashtbl."; "Queue."; "Stack."; "Buffer." ]

let container_creators = [ "create"; "make"; "init"; "copy"; "of_seq" ]

let container_reads =
  [
    "find"; "find_opt"; "find_all"; "mem"; "length"; "is_empty"; "iter"; "fold";
    "peek"; "peek_opt"; "top"; "top_opt"; "to_seq"; "to_seq_keys"; "to_seq_values";
    "contents"; "nth"; "stats";
  ]

(* ---------- per-walk state ---------- *)

type frame = { fr_key : string; fr_params : unit Stbl.t; fr_locals : unit Stbl.t }

type st = {
  cfg : Lint.config;
  modname : string;
  file : string; (* source basename, used to make local names unique *)
  facts : facts;
  mutable frames : frame list; (* innermost first *)
  mutable held : string list; (* innermost first *)
  mutable allows : string list list;
  mutable mod_path : string list; (* enclosing submodule names, reversed *)
  module_ids : string Stbl.t; (* ident stamp -> qualified module-level name *)
  fd_claimed : unit Stbl.t; (* producer sites already owned by a binding *)
  mutable arg_owner : bool; (* immediate argument of a closer/owner call *)
  mutable in_lock_arg : bool;
      (* inside the lock argument of with_lock: reading the lock cell
         (shared.locks.(id), t.lock) is the synchronization itself, not a
         data access, so it is exempt from access recording *)
}

let now_allows st = List.concat st.allows
let frame_keys st = List.map (fun f -> f.fr_key) st.frames

let module_qualified st name =
  String.concat "." ((st.modname :: List.rev st.mod_path) @ [ name ])

let register_ident st id =
  let u = Ident.unique_name id in
  match st.frames with
  | [] -> Stbl.replace st.module_ids u (module_qualified st (Ident.name id))
  | fr :: _ -> if not (Stbl.mem fr.fr_params u) then Stbl.replace fr.fr_locals u ()

let lookup_binder st id =
  let u = Ident.unique_name id in
  let rec go = function
    | [] ->
        if Stbl.mem st.module_ids u then B_module (Stbl.find st.module_ids u)
        else B_unknown
    | fr :: rest ->
        if Stbl.mem fr.fr_params u then B_frame (fr.fr_key, Param)
        else if Stbl.mem fr.fr_locals u then B_frame (fr.fr_key, Local)
        else go rest
  in
  go st.frames

(* ---------- canonical names ---------- *)

let lbl_key (lbl : Types.label_description) =
  let f =
    Filename.remove_extension (Filename.basename lbl.lbl_loc.loc_start.pos_fname)
  in
  Printf.sprintf "%s.%s" f lbl.lbl_name

let first_pos_arg args =
  List.find_map
    (fun ((lbl : Asttypes.arg_label), a) ->
      match (lbl, a) with (Optional _, _) | (_, None) -> None | _ -> a)
    args

let is_array_read name = List.exists (String.equal name) array_reads

(* grouping key for a lock or mutable target expression *)
let rec canon_target st (e : T.expression) : string option =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match lookup_binder st id with
      | B_module q -> Some q
      | B_frame _ -> Some (Printf.sprintf "loc:%s@%s" (Ident.unique_name id) st.file)
      | B_unknown -> None)
  | Texp_ident (p, _, _) -> Some (Lint.canon_path p)
  | Texp_field (_, _, lbl) -> Some (lbl_key lbl)
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when is_array_read (Lint.canon_path p) -> (
      match first_pos_arg args with
      | Some a -> Option.map (fun s -> s ^ "[]") (canon_target st a)
      | None -> None)
  | _ -> None

let rec display_target st (e : T.expression) : string =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Ident.name id
  | Texp_ident (p, _, _) -> Lint.canon_path p
  | Texp_field (_, _, lbl) -> lbl_key lbl
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when is_array_read (Lint.canon_path p) -> (
      match first_pos_arg args with
      | Some a -> display_target st a ^ "[]"
      | None -> "<array>")
  | _ -> "<expr>"

let lock_canon st (e : T.expression) =
  match canon_target st e with
  | Some c -> c
  | None ->
      Printf.sprintf "lock@%s:%d" st.file e.exp_loc.loc_start.pos_lnum

let rec base_binder st (e : T.expression) : binder =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> lookup_binder st id
  | Texp_ident (p, _, _) -> B_module (Lint.canon_path p)
  | Texp_field (b, _, _) -> base_binder st b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when is_array_read (Lint.canon_path p) -> (
      match first_pos_arg args with Some a -> base_binder st a | None -> B_unknown)
  | _ -> B_unknown

(* ---------- fact recording ---------- *)

let record_access st ~target ~display ~write ~binder (loc : Location.t) =
  if st.in_lock_arg then () else
  st.facts.accesses <-
    {
      a_target = target;
      a_display = display;
      a_write = write;
      a_loc = loc;
      a_allows = now_allows st;
      a_locked = not (List.is_empty st.held);
      a_binder = binder;
      a_frames = frame_keys st;
    }
    :: st.facts.accesses

let record_mutable_expr st ~kind ~write (e : T.expression) (loc : Location.t) =
  record_access st ~target:(canon_target st e)
    ~display:(Printf.sprintf "%s %s" kind (display_target st e))
    ~write ~binder:(base_binder st e) loc

let record_call st ~name ~keys ~wait_ok (loc : Location.t) =
  st.facts.calls <-
    {
      c_name = name;
      c_keys = keys;
      c_loc = loc;
      c_allows = now_allows st;
      c_held = st.held;
      c_frames = frame_keys st;
      c_wait_ok = wait_ok;
    }
    :: st.facts.calls

(* Candidate resolution keys for a callee path. References that cross a
   wrapped-library boundary go through the generated alias module
   ("Scliques_daemon.Protocol.output_frame"), while registration keys
   come from the unwrapped cmt modname ("Protocol.output_frame"), so we
   also record each suffix of the dotted path down to two components.
   [resolve] tries candidates in order, longest first. *)
let keys_of_path p =
  match p with
  | Path.Pident id -> [ "id:" ^ Ident.unique_name id ]
  | p ->
      let canon = Lint.canon_path p in
      let rec suffixes name =
        match String.index_opt name '.' with
        | Some i when String.contains_from name (i + 1) '.' ->
            let rest = String.sub name (i + 1) (String.length name - i - 1) in
            rest :: suffixes rest
        | _ -> []
      in
      canon :: suffixes canon

(* ---------- pattern helpers ---------- *)

let rec pattern_vars : type k. k T.general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | T.Tpat_var (id, _) -> [ id ]
  | T.Tpat_alias (sub, id, _) -> id :: pattern_vars sub
  | T.Tpat_tuple ps -> List.concat_map pattern_vars ps
  | T.Tpat_construct (_, _, ps, _) -> List.concat_map pattern_vars ps
  | T.Tpat_variant (_, Some p, _) -> pattern_vars p
  | T.Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> pattern_vars p) fields
  | T.Tpat_array ps -> List.concat_map pattern_vars ps
  | T.Tpat_or (a, b, _) -> pattern_vars a @ pattern_vars b
  | T.Tpat_lazy p -> pattern_vars p
  | T.Tpat_value v -> pattern_vars (v :> T.value T.general_pattern)
  | _ -> []

let rec typed_pattern_vars : type k. k T.general_pattern -> (Ident.t * Types.type_expr) list =
 fun p ->
  match p.pat_desc with
  | T.Tpat_var (id, _) -> [ (id, p.pat_type) ]
  | T.Tpat_alias (sub, id, _) -> (id, p.pat_type) :: typed_pattern_vars sub
  | T.Tpat_tuple ps -> List.concat_map typed_pattern_vars ps
  | T.Tpat_construct (_, _, ps, _) -> List.concat_map typed_pattern_vars ps
  | T.Tpat_variant (_, Some p, _) -> typed_pattern_vars p
  | T.Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> typed_pattern_vars p) fields
  | T.Tpat_array ps -> List.concat_map typed_pattern_vars ps
  | T.Tpat_or (a, b, _) -> typed_pattern_vars a @ typed_pattern_vars b
  | T.Tpat_lazy p -> typed_pattern_vars p
  | T.Tpat_value v -> typed_pattern_vars (v :> T.value T.general_pattern)
  | _ -> []

let rec pure_exception_case : type k. k T.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | T.Tpat_exception _ -> true
  | T.Tpat_or (a, b, _) -> pure_exception_case a && pure_exception_case b
  | _ -> false

(* outer curried-parameter spine of a function binding: these idents are
   bound at closure-construction time, i.e. captured from the spawner's
   world when the function becomes a spawn root *)
let spine_params (e : T.expression) =
  let rec go acc (e : T.expression) =
    match e.exp_desc with
    | T.Texp_function { param; cases; _ } -> (
        let acc = Ident.unique_name param :: acc in
        let acc =
          List.fold_left
            (fun acc (c : T.value T.case) ->
              List.rev_append
                (List.map Ident.unique_name (pattern_vars c.T.c_lhs))
                acc)
            acc cases
        in
        match cases with [ { c_rhs; _ } ] -> go acc c_rhs | _ -> acc)
    | _ -> acc
  in
  go [] e

let push_frame st key fn_expr =
  let fr =
    { fr_key = key; fr_params = Stbl.create 8; fr_locals = Stbl.create 16 }
  in
  List.iter (fun u -> Stbl.replace fr.fr_params u ()) (spine_params fn_expr);
  st.frames <- fr :: st.frames

let pop_frame st = st.frames <- List.tl st.frames

(* ---------- fd-lifecycle helpers ---------- *)

let is_fd_producer name = List.exists (String.equal name) fd_producers

let is_closer_or_owner st name =
  List.exists (String.equal name) fd_closers
  || List.exists (String.equal (Lint.last_component name)) st.cfg.Lint.fd_owners

let is_file_descr_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> String.equal (Lint.canon_path p) "Unix.file_descr"
  | _ -> false

(* does [scope] pass one of [stamps] to a closing/owning function? *)
let scope_uses_closer st stamps scope =
  let found = ref false in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : T.expression) =
    (match e.exp_desc with
    | T.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when is_closer_or_owner st (Lint.canon_path p) ->
        List.iter
          (fun ((_ : Asttypes.arg_label), a) ->
            match a with
            | Some { T.exp_desc = Texp_ident (Path.Pident id, _, _); _ }
              when List.exists (String.equal (Ident.unique_name id)) stamps ->
                found := true
            | _ -> ())
          args
    | _ -> ());
    default.expr sub e
  in
  let it = { default with expr } in
  it.expr it scope;
  !found

let record_fd st ~name ~ok (loc : Location.t) =
  st.facts.fds <-
    { fd_name = name; fd_loc = loc; fd_allows = now_allows st; fd_ok = ok }
    :: st.facts.fds

(* a binding [let p = <producer> in scope] (or a match case): every
   fd-typed ident bound by [p] must reach a closer/owner inside [scope] *)
let fd_check_binding : type k.
    st -> T.expression -> k T.general_pattern -> T.expression option -> unit =
 fun st rhs pat scope ->
  match rhs.exp_desc with
  | T.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
    when is_fd_producer (Lint.canon_path p) ->
      let name = Lint.canon_path p in
      Stbl.replace st.fd_claimed (Lint.loc_key rhs.exp_loc) ();
      let fd_stamps =
        List.filter_map
          (fun (id, ty) ->
            if is_file_descr_ty ty then Some (Ident.unique_name id) else None)
          (typed_pattern_vars pat)
      in
      let ok =
        match (fd_stamps, scope) with
        | [], _ | _, None -> false (* result dropped or scope unknown: leaked *)
        | stamps, Some scope ->
            List.for_all (fun s -> scope_uses_closer st [ s ] scope) stamps
      in
      record_fd st ~name ~ok rhs.exp_loc
  | _ -> ()

(* ---------- access classification for applications ---------- *)

let container_op name =
  if
    List.exists (fun pre -> String.starts_with ~prefix:pre name) container_prefixes
  then
    let op = Lint.last_component name in
    if List.exists (String.equal op) container_creators then None
    else Some (not (List.exists (String.equal op) container_reads))
  else None

(* [Some (write, kind, target_expr)] when the application mutates or reads
   mutable state through a recognized entry point *)
let access_of_app name pos =
  let tgt () = match pos with a :: _ -> Some a | [] -> None in
  match name with
  | "!" -> Option.map (fun a -> (false, "ref", a)) (tgt ())
  | ":=" | "incr" | "decr" -> Option.map (fun a -> (true, "ref", a)) (tgt ())
  | _ ->
      if is_array_read name then
        Option.map (fun a -> (false, "array", a)) (tgt ())
      else if List.exists (String.equal name) array_writes then
        Option.map (fun a -> (true, "array", a)) (tgt ())
      else
        match container_op name with
        | Some write ->
            let kind =
              match String.index_opt name '.' with
              | Some i -> String.sub name 0 i
              | None -> name
            in
            Option.map (fun a -> (write, kind, a)) (tgt ())
        | None -> None

(* calls we never need in the graph: pure constructors and raisers *)
let ignored_calls =
  [ "raise"; "raise_notrace"; "ignore"; "ref"; "not"; "failwith"; "invalid_arg" ]

(* ---------- the walk ---------- *)

let collect cfg ~modname ~file (str : T.structure) (facts : facts) =
  let st =
    {
      cfg;
      modname;
      file;
      facts;
      frames = [];
      held = [];
      allows = [];
      mod_path = [];
      module_ids = Stbl.create 64;
      fd_claimed = Stbl.create 16;
      arg_owner = false;
      in_lock_arg = false;
    }
  in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k T.general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | T.Tpat_var (id, _) -> register_ident st id
    | T.Tpat_alias (_, id, _) -> register_ident st id
    | _ -> ());
    default.pat sub p
  in
  let positional args =
    List.filter_map
      (fun ((lbl : Asttypes.arg_label), a) ->
        match (lbl, a) with (Optional _, _) | (_, None) -> None | _ -> a)
      args
  in
  let walk_arg sub owner a =
    let saved = st.arg_owner in
    st.arg_owner <- owner;
    sub.Tast_iterator.expr sub a;
    st.arg_owner <- saved
  in
  (* mutually recursive bindings reference each other before their own
     value_binding is visited: pre-register the function keys *)
  let preregister_rec vbs =
    List.iter
      (fun (vb : T.value_binding) ->
        match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
        | T.Tpat_var (id, _), T.Texp_function _ ->
            let key =
              if List.is_empty st.frames then module_qualified st (Ident.name id)
              else "id:" ^ Ident.unique_name id
            in
            Stbl.replace st.facts.fn_tbl ("id:" ^ Ident.unique_name id) key;
            if List.is_empty st.frames then Stbl.replace st.facts.fn_tbl key key
        | _ -> ())
      vbs
  in
  let rec spawn_root_keys (e : T.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> keys_of_path p
    | Texp_apply (head, _) -> spawn_root_keys head
    | _ -> []
  in
  let handle_with_lock sub (lock_e : T.expression) (body_e : T.expression) =
    let lname = lock_canon st lock_e in
    st.facts.acquires <-
      {
        q_lock = lname;
        q_loc = lock_e.exp_loc;
        q_allows = now_allows st;
        q_held = st.held;
        q_frames = frame_keys st;
      }
      :: st.facts.acquires;
    let saved = st.in_lock_arg in
    st.in_lock_arg <- true;
    walk_arg sub false lock_e;
    st.in_lock_arg <- saved;
    st.held <- lname :: st.held;
    (match body_e.exp_desc with
    | Texp_ident (p, _, _) ->
        (* [with_lock m f]: f runs under the lock *)
        record_call st ~name:(Lint.canon_path p) ~keys:(keys_of_path p)
          ~wait_ok:false body_e.exp_loc
    | _ -> ());
    walk_arg sub false body_e;
    st.held <- List.tl st.held
  in
  let handle_spawn sub kind (e : T.expression) fn_arg rest =
    (match fn_arg with
    | { T.exp_desc = Texp_function _; _ } as f ->
        let fkey =
          Printf.sprintf "spawn@%s:%d" st.file e.T.exp_loc.loc_start.pos_lnum
        in
        st.facts.spawns <-
          { s_kind = kind; s_root = [ fkey ]; s_loc = e.exp_loc; s_allows = now_allows st }
          :: st.facts.spawns;
        (* the closure runs on another domain/thread: locks held at the
           spawn site do not protect its body *)
        let saved_held = st.held in
        st.held <- [];
        push_frame st fkey f;
        walk_arg sub false f;
        pop_frame st;
        st.held <- saved_held
    | f ->
        st.facts.spawns <-
          {
            s_kind = kind;
            s_root = spawn_root_keys f;
            s_loc = e.exp_loc;
            s_allows = now_allows st;
          }
          :: st.facts.spawns;
        walk_arg sub false f);
    List.iter (walk_arg sub false) rest
  in
  let handle_apply sub (e : T.expression) path args =
    let name = Lint.canon_path path in
    let pos = positional args in
    if String.equal (Lint.last_component name) "with_lock" then (
      match pos with
      | [ lock_e; body_e ] -> handle_with_lock sub lock_e body_e
      | _ -> List.iter (walk_arg sub false) pos)
    else if List.exists (String.equal name) spawn_prims then (
      match pos with
      | fn_arg :: rest -> handle_spawn sub name e fn_arg rest
      | [] -> ())
    else begin
      (* bare fd producer: legal only as the immediate argument of a
         closer/owner; bindings were claimed by the let/match handler *)
      if is_fd_producer name && not (Stbl.mem st.fd_claimed (Lint.loc_key e.exp_loc))
      then record_fd st ~name ~ok:st.arg_owner e.exp_loc;
      (* the function ident of desugared syntax (a.(i), !r) carries a
         ghost location: anchor facts on the whole application instead *)
      (match access_of_app name pos with
      | Some (write, kind, tgt) -> record_mutable_expr st ~kind ~write tgt e.T.exp_loc
      | None -> ());
      let partial =
        match Types.get_desc (Lint.expand e.exp_env e.exp_type) with
        | Tarrow _ -> true
        | _ -> false
      in
      if (not partial) && not (List.exists (String.equal name) ignored_calls)
      then begin
        let wait_ok =
          String.equal name "Condition.wait"
          &&
          match (pos, st.held) with
          | [ _; m ], innermost :: _ -> String.equal (lock_canon st m) innermost
          | _ -> false
        in
        record_call st ~name ~keys:(keys_of_path path) ~wait_ok e.T.exp_loc
      end;
      let owner = is_closer_or_owner st name in
      List.iter (walk_arg sub owner) pos;
      (* optional arguments still evaluate in the caller *)
      List.iter
        (fun ((lbl : Asttypes.arg_label), a) ->
          match (lbl, a) with
          | Optional _, Some a -> walk_arg sub false a
          | _ -> ())
        args
    end
  in
  let expr sub (e : T.expression) =
    st.allows <- Lint.allows_of_attributes e.exp_attributes :: st.allows;
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args) ->
        handle_apply sub e path args
    | Texp_field (b, _, lbl) when lbl.Types.lbl_mut = Asttypes.Mutable ->
        record_access st ~target:(Some (lbl_key lbl))
          ~display:(Printf.sprintf "mutable field %s" (lbl_key lbl))
          ~write:false ~binder:(base_binder st b) e.exp_loc;
        default.expr sub e
    | Texp_setfield (b, _, lbl, _) ->
        record_access st ~target:(Some (lbl_key lbl))
          ~display:(Printf.sprintf "mutable field %s" (lbl_key lbl))
          ~write:true ~binder:(base_binder st b) e.exp_loc;
        default.expr sub e
    | Texp_let (rf, vbs, body) ->
        if rf = Asttypes.Recursive then preregister_rec vbs;
        List.iter (fun vb -> fd_check_binding st vb.T.vb_expr vb.T.vb_pat (Some body)) vbs;
        default.expr sub e
    | Texp_match (scrut, cases, _) ->
        List.iter
          (fun (c : T.computation T.case) ->
            if not (pure_exception_case c.T.c_lhs) then
              fd_check_binding st scrut c.T.c_lhs (Some c.T.c_rhs))
          cases;
        default.expr sub e
    | _ -> default.expr sub e);
    st.allows <- List.tl st.allows
  in
  let value_binding sub (vb : T.value_binding) =
    st.allows <- Lint.allows_of_attributes vb.vb_attributes :: st.allows;
    sub.Tast_iterator.pat sub vb.vb_pat;
    (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
    | T.Tpat_var (id, _), T.Texp_function _ ->
        let key, aliases =
          if List.is_empty st.frames then
            let q = module_qualified st (Ident.name id) in
            (q, [ q; "id:" ^ Ident.unique_name id ])
          else
            let k = "id:" ^ Ident.unique_name id in
            (k, [ k ])
        in
        List.iter (fun a -> Stbl.replace st.facts.fn_tbl a key) aliases;
        push_frame st key vb.vb_expr;
        sub.Tast_iterator.expr sub vb.vb_expr;
        pop_frame st
    | _ -> sub.Tast_iterator.expr sub vb.vb_expr);
    st.allows <- List.tl st.allows
  in
  let structure_item sub (si : T.structure_item) =
    match si.str_desc with
    | T.Tstr_module mb ->
        let name =
          match mb.mb_name.Location.txt with Some n -> n | None -> "_"
        in
        st.mod_path <- name :: st.mod_path;
        default.structure_item sub si;
        st.mod_path <- List.tl st.mod_path
    | T.Tstr_value (Recursive, vbs) ->
        preregister_rec vbs;
        default.structure_item sub si
    | _ -> default.structure_item sub si
  in
  let it = { default with expr; value_binding; structure_item; pat } in
  it.structure it str
