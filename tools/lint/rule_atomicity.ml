(* atomicity (mixed-discipline): a mutable location reached both inside
   and outside [Sync.with_lock] regions anywhere in the analyzed tree.
   Grouping is by canonical target name (declaration-site field key,
   stamped local, or module-level path); every *unlocked* access of a
   mixed group is a finding.

   Limits: no aliasing analysis — two different record instances of the
   same type share a group; a callee that accesses the state on the
   caller's behalf is attributed to the callee's site, with the lock
   state at that site. *)

module Stbl = Lint.Stbl

let run (cfg : Lint.config) (facts : Conc.facts) : Lint.finding list =
  let groups : Conc.access list ref Stbl.t = Stbl.create 64 in
  List.iter
    (fun (a : Conc.access) ->
      match a.Conc.a_target with
      | None -> ()
      | Some t -> (
          match Stbl.find_opt groups t with
          | Some l -> l := a :: !l
          | None -> Stbl.add groups t (ref [ a ])))
    facts.Conc.accesses;
  Stbl.fold
    (fun _target group acc ->
      let locked = List.exists (fun a -> a.Conc.a_locked) !group in
      let unlocked = List.exists (fun a -> not a.Conc.a_locked) !group in
      if not (locked && unlocked) then acc
      else
        List.fold_left
          (fun acc (a : Conc.access) ->
            if a.Conc.a_locked then acc
            else
              let display =
                (* field keys already carry the declaration file; locals
                   show their source name *)
                a.Conc.a_display
              in
              match
                Lint.global_finding cfg ~rule:Lint.r_atomicity
                  ~allows:a.Conc.a_allows a.Conc.a_loc
                  (Printf.sprintf
                     "%s is accessed both under Sync.with_lock and outside it; \
                      this unlocked %s races with the locked sites"
                     display
                     (if a.Conc.a_write then "write" else "read"))
                  "hold the same lock on every access, make the state Atomic.t, \
                   or annotate the deliberate site with [@lint.allow \
                   \"atomicity\"] plus a (* SAFETY: ... *) comment"
              with
              | Some f -> f :: acc
              | None -> acc)
          acc !group)
    groups []
