(* poly-compare: [=], [<>], [compare], [min], [max] applied at a type
   variable or a non-immediate type, any of them passed unapplied as a
   first-class value (the closure is always the generic runtime compare,
   even at [int]), and [Hashtbl.create] whose key type is a type
   variable or non-immediate (polymorphic hash + structural equality per
   probe). *)

let poly_ops = [ "="; "<>"; "compare"; "min"; "max" ]

let is_poly_op path =
  match path with
  | Path.Pdot (Path.Pident id, op) ->
      String.equal (Ident.name id) "Stdlib"
      && List.exists (String.equal op) poly_ops
  | _ -> false

let op_name path = match path with Path.Pdot (_, op) -> op | _ -> Path.name path

let mono_hint op ty_desc =
  match ty_desc with
  | Some "int" -> Printf.sprintf "use Int.%s" op
  | Some "float" -> Printf.sprintf "use Float.%s" op
  | Some "string" -> Printf.sprintf "use String.%s" op
  | _ -> (
      match op with
      | "=" | "<>" -> "compare with a monomorphic equal or an explicit loop"
      | _ -> "use a monomorphic comparator (Int.compare, Float.compare, ...)")

let eq_ops = [ "="; "<>" ]

let check_applied ctx (loc : Location.t) env op operand_ty =
  match Lint.classify env operand_ty with
  | Lint.Immediate -> ()
  | Lint.Tyvar ->
      Lint.report ctx loc Lint.r_poly
        (Printf.sprintf
           "(%s) instantiated at a type variable: the body generalized, so every call \
            is the polymorphic runtime compare"
           op)
        "annotate the operand type (e.g. (x : int)) so the comparison is monomorphic"
  | Lint.Boxed t ->
      Lint.report ctx loc Lint.r_poly
        (Printf.sprintf "(%s) at non-immediate type %s compiles to caml_compare" op t)
        (if List.exists (String.equal op) eq_ops then
           Printf.sprintf "use a monomorphic equal for %s or an explicit loop" t
         else mono_hint op (Some t))

let check_unapplied ctx (loc : Location.t) env op (ty : Types.type_expr) =
  let operand = Lint.first_operand env ty in
  let operand_desc =
    match operand with
    | None -> None
    | Some d -> (
        match Lint.classify env d with
        | Lint.Tyvar -> None
        | Lint.Immediate | Lint.Boxed _ -> Some (Lint.print_type d))
  in
  Lint.report ctx loc Lint.r_poly
    (Printf.sprintf
       "generic Stdlib.%s passed as a value: an unapplied primitive is compiled as the \
        polymorphic runtime compare, even at int"
       op)
    (mono_hint op operand_desc)

let check_hashtbl_create ctx (loc : Location.t) env (result_ty : Types.type_expr) =
  let final = Lint.peel_arrows env result_ty in
  match Types.get_desc final with
  | Tconstr (p, [ key; _ ], _)
  (* the alias [Stdlib.Hashtbl] is normalized to the unit name
     [Stdlib__Hashtbl] during expansion, so accept both spellings *)
    when List.exists (String.equal (Path.name p))
           [ "Stdlib.Hashtbl.t"; "Stdlib__Hashtbl.t" ] -> (
      match Lint.classify env key with
      | Lint.Immediate -> ()
      | Lint.Tyvar ->
          Lint.report ctx loc Lint.r_poly
            "Hashtbl.create with a type-variable key: default structural hash/equality \
             generalize to the polymorphic runtime versions"
            "pin the key type (e.g. int) or use Hashtbl.Make with explicit equal/hash"
      | Lint.Boxed t ->
          Lint.report ctx loc Lint.r_poly
            (Printf.sprintf
               "Hashtbl.create with non-immediate key type %s: every probe pays \
                polymorphic hash + structural equality"
               t)
            "encode the key as an int or use Hashtbl.Make with explicit equal/hash")
  | _ -> ()
