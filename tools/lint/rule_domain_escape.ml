(* domain-escape: mutable state captured by a [Domain.spawn] /
   [Thread.create] closure must be Atomic.t (invisible to this analysis,
   so never flagged), accessed only under [Sync.with_lock], or carry a
   per-site [@lint.allow "domain-escape"] with a SAFETY comment.

   A spawn root is the inline closure, or the function a (partial)
   application of which is passed to the spawn primitive. Trivial
   wrappers — functions whose whole body is a single call — are chased
   up to a small depth, so [Domain.spawn (worker t)] with
   [let worker t () = run t] analyzes [run]. Only the root function's
   own body (including its local closures) is inspected; callees are
   trusted to guard their own state (callee-trust limit, DESIGN.md §15).

   "Captured" means the access base is bound outside the root — a
   parameter of the root itself (bound at spawn time in the spawner), a
   binding of an enclosing function, a module-level value, or a complex
   base. Values bound inside the root during execution are local. This
   is exactly the PR-7 dead-snapshot shape: a functional-update record
   copied in the spawner and read by the spawned closure. *)

module Stbl = Lint.Stbl

let max_wrapper_depth = 5

let run (cfg : Lint.config) (facts : Conc.facts) : Lint.finding list =
  (* index facts by frame membership *)
  let has_own_facts key =
    List.exists (fun (a : Conc.access) -> Conc.in_frames key a.Conc.a_frames)
      facts.Conc.accesses
    || List.exists (fun (q : Conc.acquire) -> Conc.in_frames key q.Conc.q_frames)
         facts.Conc.acquires
  in
  let calls_of key =
    List.filter (fun (c : Conc.call) -> Conc.in_frames key c.Conc.c_frames)
      facts.Conc.calls
  in
  (* chase trivial wrappers: no accesses/acquires of its own, exactly one
     call that resolves to a known function *)
  let rec resolve_root depth key =
    if depth >= max_wrapper_depth then key
    else if has_own_facts key then key
    else
      match calls_of key with
      | [ c ] -> (
          match Conc.resolve facts c.Conc.c_keys with
          | Some next when not (String.equal next key) ->
              resolve_root (depth + 1) next
          | _ -> key)
      | _ -> key
  in
  let index_of key frames =
    let rec go i = function
      | [] -> None
      | k :: rest -> if String.equal k key then Some i else go (i + 1) rest
    in
    go 0 frames
  in
  let captured root (a : Conc.access) =
    match index_of root a.Conc.a_frames with
    | None -> false (* access not inside the root at all *)
    | Some root_idx -> (
        match a.Conc.a_binder with
        | Conc.B_module _ | Conc.B_unknown -> true
        | Conc.B_frame (bkey, kind) -> (
            match index_of bkey a.Conc.a_frames with
            | None -> true (* bound outside the whole stack: captured *)
            | Some bidx -> (
                match kind with
                | Conc.Local -> bidx > root_idx
                | Conc.Param ->
                    (* parameters of the root are bound at spawn time in
                       the spawner; parameters of inner closures are
                       bound during spawned execution *)
                    bidx >= root_idx)))
  in
  let roots =
    List.filter_map
      (fun (s : Conc.spawn) ->
        match s.Conc.s_root with
        | [] -> None
        | keys -> (
            (* inline closures registered their frame key directly; named
               targets resolve through the function table *)
            match Conc.resolve facts keys with
            | Some key -> Some (s, resolve_root 0 key)
            | None -> (
                match keys with
                | [ key ] when String.length key >= 6
                               && String.equal (String.sub key 0 6) "spawn@" ->
                    Some (s, resolve_root 0 key)
                | _ -> None)))
      facts.Conc.spawns
  in
  let findings =
    List.concat_map
      (fun ((s : Conc.spawn), root) ->
        List.filter_map
          (fun (a : Conc.access) ->
            if a.Conc.a_locked || not (captured root a) then None
            else
              Lint.global_finding cfg ~rule:Lint.r_domain
                ~allows:(a.Conc.a_allows @ s.Conc.s_allows) a.Conc.a_loc
                (Printf.sprintf
                   "%s is captured by a %s closure and %s outside any \
                    Sync.with_lock region"
                   a.Conc.a_display s.Conc.s_kind
                   (if a.Conc.a_write then "written" else "read"))
                "make the state Atomic.t, guard every access with \
                 Scoll.Sync.with_lock, or annotate the deliberate site with \
                 [@lint.allow \"domain-escape\"] plus a (* SAFETY: ... *) \
                 comment")
          facts.Conc.accesses)
      roots
  in
  findings
