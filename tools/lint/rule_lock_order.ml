(* lock-order: build the static graph of nested lock acquisitions —
   direct [with_lock] nesting plus nesting through the intra-library
   call graph — and report cycles as potential deadlocks. Additionally
   flag blocking calls (Condition.wait outside its idiom, Unix I/O,
   joins, channel flushes/closes) made while a lock is held, directly or
   through a resolved callee.

   Array-element locks share one canonical name ("parallel.stripes[]"),
   so an index-disjoint protocol on the same array reads as a self-cycle;
   annotate such protocols. Closures passed through record fields are
   not traced (no higher-order call graph). *)

module Stbl = Lint.Stbl

type edge = {
  e_from : string;
  e_to : string;
  e_loc : Location.t;
  e_allows : string list;
  e_via : string option; (* callee name when the edge is transitive *)
}

let run (cfg : Lint.config) (facts : Conc.facts) : Lint.finding list =
  (* ---- transitive acquisition / blocking summaries per function ---- *)
  let trans_acq : (string * Location.t) list Stbl.t = Stbl.create 64 in
  let trans_block : string list Stbl.t = Stbl.create 64 in
  let visiting = Stbl.create 16 in
  let acquires_in key =
    List.filter (fun (q : Conc.acquire) -> Conc.in_frames key q.Conc.q_frames)
      facts.Conc.acquires
  in
  let calls_in key =
    List.filter (fun (c : Conc.call) -> Conc.in_frames key c.Conc.c_frames)
      facts.Conc.calls
  in
  let is_blocking (c : Conc.call) =
    List.exists (String.equal c.Conc.c_name) Conc.blocking_calls
    && not c.Conc.c_wait_ok
  in
  let rec acq_of key =
    match Stbl.find_opt trans_acq key with
    | Some v -> v
    | None ->
        if Stbl.mem visiting key then []
        else begin
          Stbl.replace visiting key ();
          let direct =
            List.map
              (fun (q : Conc.acquire) -> (q.Conc.q_lock, q.Conc.q_loc))
              (acquires_in key)
          in
          let indirect =
            List.concat_map
              (fun (c : Conc.call) ->
                match Conc.resolve facts c.Conc.c_keys with
                | Some callee when not (String.equal callee key) -> acq_of callee
                | _ -> [])
              (calls_in key)
          in
          Stbl.remove visiting key;
          let v = direct @ indirect in
          Stbl.replace trans_acq key v;
          v
        end
  in
  let rec block_of key =
    match Stbl.find_opt trans_block key with
    | Some v -> v
    | None ->
        if Stbl.mem visiting key then []
        else begin
          Stbl.replace visiting key ();
          let direct =
            List.filter_map
              (fun (c : Conc.call) ->
                if is_blocking c then Some c.Conc.c_name else None)
              (calls_in key)
          in
          let indirect =
            List.concat_map
              (fun (c : Conc.call) ->
                match Conc.resolve facts c.Conc.c_keys with
                | Some callee when not (String.equal callee key) ->
                    block_of callee
                | _ -> [])
              (calls_in key)
          in
          Stbl.remove visiting key;
          let v = List.sort_uniq String.compare (direct @ indirect) in
          Stbl.replace trans_block key v;
          v
        end
  in
  (* ---- edges ---- *)
  let direct_edges =
    List.filter_map
      (fun (q : Conc.acquire) ->
        match q.Conc.q_held with
        | [] -> None
        | innermost :: _ ->
            Some
              {
                e_from = innermost;
                e_to = q.Conc.q_lock;
                e_loc = q.Conc.q_loc;
                e_allows = q.Conc.q_allows;
                e_via = None;
              })
      facts.Conc.acquires
  in
  let call_edges =
    List.concat_map
      (fun (c : Conc.call) ->
        match c.Conc.c_held with
        | [] -> []
        | innermost :: _ -> (
            match Conc.resolve facts c.Conc.c_keys with
            | None -> []
            | Some callee ->
                List.map
                  (fun (lock, _) ->
                    {
                      e_from = innermost;
                      e_to = lock;
                      e_loc = c.Conc.c_loc;
                      e_allows = c.Conc.c_allows;
                      e_via = Some c.Conc.c_name;
                    })
                  (acq_of callee)))
      facts.Conc.calls
  in
  let edges = direct_edges @ call_edges in
  (* ---- cycle detection: report one finding per edge that closes a
     cycle (a path from e_to back to e_from exists) ---- *)
  let succs = Stbl.create 32 in
  List.iter
    (fun e ->
      let cur = match Stbl.find_opt succs e.e_from with Some l -> l | None -> [] in
      if not (List.exists (String.equal e.e_to) cur) then
        Stbl.replace succs e.e_from (e.e_to :: cur))
    edges;
  let reaches src dst =
    let seen = Stbl.create 16 in
    let rec go n =
      String.equal n dst
      || (not (Stbl.mem seen n))
         && begin
              Stbl.replace seen n ();
              match Stbl.find_opt succs n with
              | None -> false
              | Some next -> List.exists go next
            end
    in
    go src
  in
  let cycle_findings =
    List.filter_map
      (fun e ->
        if not (reaches e.e_to e.e_from) then None
        else
          let message =
            if String.equal e.e_from e.e_to then
              Printf.sprintf
                "lock %s is acquired while already held: self-deadlock (or an \
                 index-disjoint array-lock protocol this analysis cannot see)"
                e.e_to
            else
              Printf.sprintf
                "lock-order cycle: %s is acquired while holding %s%s, and \
                 another path acquires them in the opposite order"
                e.e_to e.e_from
                (match e.e_via with
                | None -> ""
                | Some via -> Printf.sprintf " (through call to %s)" via)
          in
          Lint.global_finding cfg ~rule:Lint.r_lock_order ~allows:e.e_allows
            e.e_loc message
            "impose one global acquisition order for these locks (document it \
             in DESIGN.md §15) or restructure so only one is held at a time; \
             annotate a proven-disjoint protocol with [@lint.allow \
             \"lock-order\"] plus a (* SAFETY: ... *) comment")
      edges
  in
  (* ---- blocking calls while a lock is held ---- *)
  let blocking_findings =
    List.filter_map
      (fun (c : Conc.call) ->
        let wait = String.equal c.Conc.c_name "Condition.wait" in
        match c.Conc.c_held with
        | [] ->
            if wait then
              Lint.global_finding cfg ~rule:Lint.r_lock_order
                ~allows:c.Conc.c_allows c.Conc.c_loc
                "Condition.wait with no lock held: the wait releases a mutex \
                 this thread does not hold"
                "wrap the wait in Sync.with_lock on the condition's mutex \
                 (while not pred do Condition.wait c m done)"
            else None
        | innermost :: _ ->
            if is_blocking c then
              Lint.global_finding cfg ~rule:Lint.r_lock_order
                ~allows:c.Conc.c_allows c.Conc.c_loc
                (if wait then
                   Printf.sprintf
                     "Condition.wait outside its idiom while holding lock %s: \
                      the mutex argument must be the innermost held lock"
                     innermost
                 else
                   Printf.sprintf "blocking call %s while holding lock %s"
                     c.Conc.c_name innermost)
                "move the blocking operation outside the critical section, or \
                 annotate the deliberate site with [@lint.allow \
                 \"lock-order\"] plus a (* SAFETY: ... *) comment"
            else
              (* transitive: a resolved callee that blocks *)
              match Conc.resolve facts c.Conc.c_keys with
              | None -> None
              | Some callee -> (
                  match block_of callee with
                  | [] -> None
                  | b :: _ ->
                      Lint.global_finding cfg ~rule:Lint.r_lock_order
                        ~allows:c.Conc.c_allows c.Conc.c_loc
                        (Printf.sprintf
                           "call to %s may block (reaches %s) while holding \
                            lock %s"
                           c.Conc.c_name b innermost)
                        "move the blocking operation outside the critical \
                         section, or annotate the deliberate site with \
                         [@lint.allow \"lock-order\"] plus a (* SAFETY: ... *) \
                         comment"))
      facts.Conc.calls
  in
  cycle_findings @ blocking_findings
