(* Local-rule tree walk: dispatches each expression to the per-site
   rules (poly-compare, unsafe-allowlist, exception-swallow,
   lock-discipline) while maintaining the [@lint.allow] suppression
   stack and the enclosing-binding scope line used by SAFETY-comment
   coverage. Whole-library rules run from the facts gathered by
   [Conc.collect], not from this walk. *)

module T = Typedtree

let check_ident ctx (loc : Location.t) env path
    ~(applied_args : T.expression option list) ~(ident_ty : Types.type_expr)
    ~(whole_ty : Types.type_expr) =
  if Rule_poly.is_poly_op path then begin
    let op = Rule_poly.op_name path in
    match List.find_map (fun a -> a) applied_args with
    | Some arg -> Rule_poly.check_applied ctx loc arg.T.exp_env op arg.T.exp_type
    | None -> Rule_poly.check_unapplied ctx loc env op ident_ty
  end;
  if String.equal (Path.name path) "Stdlib.Hashtbl.create" then
    Rule_poly.check_hashtbl_create ctx loc env whole_ty;
  if Rule_unsafe.is_unsafe_ident path then Rule_unsafe.check ctx loc path;
  if Rule_lockdisc.is_mutex_op path then Rule_lockdisc.check ctx loc path

let check_expr ctx (e : T.expression) =
  match e.exp_desc with
  | Texp_apply (({ exp_desc = Texp_ident (path, _, _); _ } as fn), args) ->
      Lint.Stbl.replace ctx.Lint.handled (Lint.loc_key fn.exp_loc) ();
      let applied_args =
        List.filter_map
          (fun (lbl, a) ->
            match (lbl : Asttypes.arg_label) with
            | Nolabel | Labelled _ -> Some a
            | Optional _ -> None)
          args
      in
      check_ident ctx fn.exp_loc fn.exp_env path ~applied_args ~ident_ty:fn.exp_type
        ~whole_ty:e.exp_type
  | Texp_ident (path, _, _)
    when not (Lint.Stbl.mem ctx.Lint.handled (Lint.loc_key e.exp_loc)) ->
      check_ident ctx e.exp_loc e.exp_env path ~applied_args:[] ~ident_ty:e.exp_type
        ~whole_ty:e.exp_type
  | Texp_try (_, cases) -> Rule_swallow.check_try ctx cases
  | _ -> ()

let lint_structure ctx (str : T.structure) =
  let default = Tast_iterator.default_iterator in
  let expr sub (e : T.expression) =
    ctx.Lint.allows <- Lint.allows_of_attributes e.exp_attributes :: ctx.Lint.allows;
    check_expr ctx e;
    default.expr sub e;
    ctx.Lint.allows <- List.tl ctx.Lint.allows
  in
  let value_binding sub (vb : T.value_binding) =
    let saved_scope = ctx.Lint.scope_start in
    ctx.Lint.scope_start <- vb.vb_loc.loc_start.pos_lnum;
    ctx.Lint.allows <- Lint.allows_of_attributes vb.vb_attributes :: ctx.Lint.allows;
    default.value_binding sub vb;
    ctx.Lint.allows <- List.tl ctx.Lint.allows;
    ctx.Lint.scope_start <- saved_scope
  in
  let structure_item sub (si : T.structure_item) =
    let saved_scope = ctx.Lint.scope_start in
    ctx.Lint.scope_start <- si.str_loc.loc_start.pos_lnum;
    default.structure_item sub si;
    ctx.Lint.scope_start <- saved_scope
  in
  let it = { default with expr; value_binding; structure_item } in
  it.structure it str
