(* An executable walkthrough of the paper's worked examples.

   Each section prints what the paper states and what this implementation
   computes, so the two can be eyeballed side by side. (The test suite
   asserts all of these; this example narrates them.)

   Run with: dune exec examples/paper_walkthrough.exe *)

module E = Scliques_core.Enumerate
module NS = Sgraph.Node_set
module V = Scliques_core.Verify

let section title = Printf.printf "\n=== %s ===\n" title

let pp_named name c = "{" ^ String.concat "," (List.map name (NS.to_list c)) ^ "}"

let () =
  let g, name = Sgraph.Gen.figure1 () in

  section "Example 1.1 — the graph of Figure 1";
  Printf.printf "paper: six maximal cliques; three maximal 2-cliques; two maximal\n";
  Printf.printf "3-cliques; a single maximal 4-clique (the diameter of G is four).\n";
  List.iter
    (fun s ->
      let r = E.sorted_results E.Cs2_pf g ~s in
      Printf.printf "computed s=%d (%d): %s\n" s (List.length r)
        (String.concat " " (List.map (pp_named name) r)))
    [ 1; 2; 3; 4 ];
  Printf.printf "computed diameter: %d\n" (Sgraph.Metrics.approx_diameter g);

  section "Example 3.1 — the N-operators, V = {Eli, Hal}";
  let v = NS.of_list [ 4; 7 ] in
  let nh1 = Scliques_core.Neighborhood.create ~s:1 g in
  let nh2 = Scliques_core.Neighborhood.create ~s:2 g in
  Printf.printf "paper: N^∃1 = {d,f,g}; N^∀1 = {f}; N^∃2 adds {b,c}; N^∀2 = N^∃1.\n";
  Printf.printf "computed N^∃1 = %s   N^∀1 = %s\n"
    (pp_named name (Scliques_core.Neighborhood.adjacent_any nh1 v))
    (pp_named name (Scliques_core.Neighborhood.ball_forall nh1 v));
  Printf.printf "computed N^∀2 = %s\n"
    (pp_named name (Scliques_core.Neighborhood.ball_forall nh2 v));

  section "Example 3.2 — s-cliques vs connected s-cliques";
  let abcdefg = NS.of_list [ 0; 1; 2; 3; 4; 5; 6 ] in
  let ad = NS.of_list [ 0; 3 ] in
  Printf.printf "{a..g}: 3-clique %b (paper: yes), 2-clique %b (paper: no, dist(a,f)=3)\n"
    (V.is_s_clique g ~s:3 abcdefg)
    (V.is_s_clique g ~s:2 abcdefg);
  Printf.printf "{a,d}: 2-clique %b but connected 2-clique %b (paper: yes / no)\n"
    (V.is_s_clique g ~s:2 ad)
    (V.is_connected_s_clique g ~s:2 ad);

  section "Examples 3.3 / 3.4 — the exponential gadget G'";
  let gadget = Sgraph.Gen.exponential_gadget 3 in
  Printf.printf
    "paper: at least 2^3 = 8 maximal connected 2-cliques on %d nodes;\n\
     {v1,v2,v'3,w,w'} is one of them.\n"
    (Sgraph.Graph.n gadget);
  Printf.printf "computed: %d maximal connected 2-cliques\n"
    (E.count E.Cs2_pf gadget ~s:2);
  let sample = NS.of_list [ 0; 1; 3 + 2; 6; 7 ] in
  Printf.printf "computed: {v1,v2,v'3,w,w'} maximal: %b\n"
    (V.is_maximal_connected_s_clique gadget ~s:2 sample);

  section "Example 4.1 — one step of PolyDelayEnum";
  Printf.printf
    "paper: from C = {a,b,c,d} and v = Eli, ExtendMax({e}, G[C∪{e}], 2) = {b,c,d,e},\n\
     then re-maximizing gives {b,c,d,e,f,g}.\n";
  let nh = Scliques_core.Neighborhood.create ~s:2 g in
  let carved =
    Scliques_core.Extend_max.in_induced nh
      ~universe:(NS.of_list [ 0; 1; 2; 3; 4 ])
      ~seed:(NS.singleton 4)
  in
  let full = Scliques_core.Extend_max.in_graph nh carved in
  Printf.printf "computed: carved = %s, re-maximized = %s\n" (pp_named name carved)
    (pp_named name full);

  section "Example 5.2 — the ω1 ordering";
  Printf.printf "paper: ω1({v1,v'2,w,w',u12}) = v1, w, u12, v'2, w'.\n";
  (* gadget layout: v_i = i, v'_i = n+i, w = 2n, w' = 2n+1, u_{ij} after *)
  let c = NS.of_list [ 0; 4; 6; 7; 8 ] in
  (* {v1, v'2, w, w', u_{1,2}} in our layout: u_{1,2} is the first u node *)
  Printf.printf "computed (our node layout): %s\n"
    (String.concat ", " (List.map string_of_int (Scliques_core.Orderings.omega1 gadget c)));

  section "Example 5.7 / Theorem 5.6 — feasibility";
  Printf.printf
    "paper: pruning infeasible branches completely is NP-complete (3-SAT).\n";
  let lit v n = { Scliques_core.Hardness.variable = v; negated = n } in
  let sat = [ (lit 1 false, lit 2 true, lit 3 false) ] in
  let unsat =
    [ (lit 0 false, lit 0 false, lit 0 false); (lit 0 true, lit 0 true, lit 0 true) ]
  in
  List.iter
    (fun (label, psi) ->
      let r = Scliques_core.Hardness.reduce psi ~s:2 in
      Printf.printf "%-13s satisfiable=%b  seed-extendable=%b\n" label
        (Scliques_core.Hardness.satisfiable psi)
        (Scliques_core.Hardness.feasible r))
    [ ("(x1∨¬x2∨x3)", sat); ("x ∧ ¬x", unsat) ];

  section "Remark 1 — why the power graph is not enough";
  let c6 = Sgraph.Gen.cycle 6 in
  let via_power = Scliques_core.Bron_kerbosch.maximal_s_cliques_via_power c6 ~s:2 in
  Printf.printf
    "on the 6-cycle, G^2's maximal cliques include the unconnected {0,2,4}: %b;\n\
     connected enumeration correctly omits it: %b\n"
    (List.exists (NS.equal (NS.of_list [ 0; 2; 4 ])) via_power)
    (not
       (List.exists
          (NS.equal (NS.of_list [ 0; 2; 4 ]))
          (E.sorted_results E.Cs2_pf c6 ~s:2)))
