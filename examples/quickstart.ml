(* Quickstart: the paper's Figure 1 network, end to end.

   Builds the 8-person social network from the paper, enumerates maximal
   cliques and maximal connected s-cliques for s = 1..4, and prints them
   with people's names — reproducing Example 1.1 exactly.

   Run with: dune exec examples/quickstart.exe *)

module E = Scliques_core.Enumerate
module NS = Sgraph.Node_set

let pp_set name set =
  "{" ^ String.concat ", " (List.map name (NS.to_list set)) ^ "}"

let () =
  let g, name = Sgraph.Gen.figure1 () in
  Printf.printf "The network of the paper's Figure 1: %d people, %d friendships\n\n"
    (Sgraph.Graph.n g) (Sgraph.Graph.m g);
  List.iter
    (fun s ->
      let results = E.sorted_results E.Cs2_pf g ~s in
      Printf.printf "maximal connected %d-cliques (%d):\n" s (List.length results);
      List.iter (fun c -> Printf.printf "  %s\n" (pp_set name c)) results;
      print_newline ())
    [ 1; 2; 3; 4 ];
  (* Example 1.1's observation: the symmetric difference of the two maximal
     3-cliques suggests the link to propose *)
  match E.sorted_results E.Cs2_pf g ~s:3 with
  | [ c1; c2 ] ->
      let only1 = NS.diff c1 c2 and only2 = NS.diff c2 c1 in
      Printf.printf
        "Link suggestion (Example 1.1): connecting %s and %s would merge the two\n\
         3-clique communities.\n"
        (pp_set name only1) (pp_set name only2)
  | _ -> ()
