(* A tour of the clique-relaxation zoo on one network (paper §2).

   On the paper's Figure 1 graph and on a larger community graph, compare
   what the different relaxations consider a "community":

     cliques < k-plexes, s-clubs < connected s-cliques

   (cliques are the strictest; every s-club is a connected s-clique; every
   clique is a k-plex). The point of the paper: s-cliques are the coarsest
   of these — coarse enough to capture whole communities — while remaining
   efficiently enumerable with polynomial delay, unlike s-clubs whose
   maximality testing alone is NP-complete.

   Run with: dune exec examples/relaxation_zoo.exe *)

module E = Scliques_core.Enumerate
module H = Scliques_core.Hereditary
module NS = Sgraph.Node_set

let describe name results =
  let stats = Scliques_core.Stats.of_results results in
  Printf.printf "  %-28s %4d maximal sets, sizes %d..%d (avg %.1f)\n" name
    stats.Scliques_core.Stats.count stats.Scliques_core.Stats.min_size
    stats.Scliques_core.Stats.max_size stats.Scliques_core.Stats.avg_size

let () =
  let g, name = Sgraph.Gen.figure1 () in
  Printf.printf "Figure 1 (%d people):\n" (Sgraph.Graph.n g);
  describe "cliques" (E.sorted_results E.Cs2_pf g ~s:1);
  describe "connected 2-plexes" (H.all g (H.k_plex ~k:2));
  describe "2-clubs" (Scliques_core.S_club.maximal_s_clubs g ~s:2);
  describe "connected 2-cliques" (E.sorted_results E.Cs2_pf g ~s:2);
  (* the inclusion chain in action on the a-community *)
  let abcd = NS.of_list [ 0; 1; 2; 3 ] in
  Printf.printf "\n{%s}:\n" (String.concat ", " (List.map name (NS.to_list abcd)));
  Printf.printf "  clique:              %b (misses the %s-%s edge)\n"
    (Scliques_core.Verify.is_clique g abcd) (name 0) (name 3);
  Printf.printf "  connected 2-plex:    %b\n"
    ((H.k_plex ~k:2).H.build g abcd);
  Printf.printf "  2-club:              %b\n" (Scliques_core.S_club.is_s_club g ~s:2 abcd);
  Printf.printf "  connected 2-clique:  %b\n\n"
    (Scliques_core.Verify.is_connected_s_clique g ~s:2 abcd);

  (* where the notions diverge: a pair at distance 2 whose connector is
     outside the set is an s-clique but not an s-club *)
  let c4 = Sgraph.Gen.cycle 4 in
  let pair = NS.of_list [ 0; 2 ] in
  Printf.printf "On the 4-cycle, {0, 2}:\n";
  Printf.printf "  2-clique (path through 1 or 3): %b\n"
    (Scliques_core.Verify.is_s_clique c4 ~s:2 pair);
  Printf.printf "  2-club (needs the path inside): %b\n\n"
    (Scliques_core.S_club.is_s_club c4 ~s:2 pair);

  (* scale comparison on a community graph (s-clubs excluded: exponential) *)
  let rng = Scoll.Rng.create 17 in
  let big = Sgraph.Gen.planted_partition rng ~n:60 ~communities:3 ~p_in:0.4 ~p_out:0.02 in
  Printf.printf "Planted-partition graph (%s):\n" (Sgraph.Metrics.summary big);
  describe "cliques" (E.sorted_results E.Cs2_pf big ~s:1);
  describe "connected 2-cliques" (E.sorted_results E.Cs2_pf big ~s:2);
  print_endline
    "\nThe 2-cliques are community-sized (covering whole planted blocks) while\n\
     cliques are shattered fragments of them - the paper's Example 1.1 point.\n\
     Many overlapping 2-cliques per block is exactly why maximal-set\n\
     enumeration needs output-sensitive guarantees (Example 3.4)."
