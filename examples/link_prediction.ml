(* Link prediction from maximal connected s-cliques.

   The paper's intro proposes this application: "missing direct links in
   large s-cliques are prime candidates for link suggestion. Note that
   large cliques could not be used for this purpose, as they are missing
   no links at all, by definition."

   Protocol: generate a social-network proxy, hide a sample of true edges,
   enumerate maximal connected 2-cliques of the damaged graph, and score
   every non-adjacent pair inside each s-clique by how many s-cliques it
   appears in (co-membership count). We then measure how highly the hidden
   edges rank among all predictions — a standard link-prediction hit-rate.

   Run with: dune exec examples/link_prediction.exe *)

module E = Scliques_core.Enumerate
module G = Sgraph.Graph
module NS = Sgraph.Node_set

let () =
  let rng = Scoll.Rng.create 99 in
  let g =
    Sgraph.Gen.planted_partition rng ~n:240 ~communities:12 ~p_in:0.45 ~p_out:0.004
  in
  Printf.printf "Community-structured network: %s\n" (Sgraph.Metrics.summary g);

  (* hide 5%% of the edges *)
  let edges = Array.of_list (G.edges g) in
  Scoll.Rng.shuffle rng edges;
  let hidden_count = Array.length edges / 20 in
  let hidden = Array.sub edges 0 hidden_count in
  let kept = Array.to_list (Array.sub edges hidden_count (Array.length edges - hidden_count)) in
  let damaged = G.of_edges ~n:(G.n g) kept in
  Printf.printf "Hidden %d of %d edges; enumerating 2-cliques of the damaged graph...\n"
    hidden_count (Array.length edges);

  (* score non-adjacent pairs by co-membership in LARGE s-cliques only —
     the paper: "missing direct links in large s-cliques are prime
     candidates for link suggestion" *)
  let min_size = 10 in
  let scores = Hashtbl.create 4096 in
  let key u v = if u < v then (u, v) else (v, u) in
  let n_results = ref 0 in
  E.iter ~min_size E.Cs2_pf damaged ~s:2 (fun c ->
      incr n_results;
      let members = NS.to_array c in
      let k = Array.length members in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let u = members.(i) and v = members.(j) in
          if not (G.mem_edge damaged u v) then begin
            let key = key u v in
            Hashtbl.replace scores key
              (1 + Option.value ~default:0 (Hashtbl.find_opt scores key))
          end
        done
      done);
  Printf.printf "%d maximal connected 2-cliques of size >= %d; %d candidate pairs scored\n"
    !n_results min_size (Hashtbl.length scores);

  (* rank candidates by score, descending *)
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) scores [])
  in
  let hidden_set = Hashtbl.create 64 in
  Array.iter (fun (u, v) -> Hashtbl.replace hidden_set (key u v) ()) hidden;
  let hits_at k =
    let rec go i = function
      | (pair, _) :: rest when i < k ->
          (if Hashtbl.mem hidden_set pair then 1 else 0) + go (i + 1) rest
      | _ -> 0
    in
    go 0 ranked
  in
  List.iter
    (fun k ->
      let hits = hits_at k in
      Printf.printf "hits@%-4d: %3d hidden edges recovered (%.1f%% precision)\n" k hits
        (100. *. float_of_int hits /. float_of_int k))
    [ 10; 50; 100; hidden_count ];
  let random_precision =
    float_of_int hidden_count
    /. float_of_int (G.n g * (G.n g - 1) / 2 - G.m damaged)
  in
  Printf.printf
    "(random guessing over all non-edges would score %.2f%% precision)\n"
    (100. *. random_precision)
