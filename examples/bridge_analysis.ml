(* Bridge/broker analysis with overlapping s-cliques.

   Example 1.1 observes that the maximal 2-cliques of Figure 1 "highlight
   the fact that d is a bridge between the communities": Dan is the only
   person in all three of them. This example turns that observation into a
   brokerage score — the number of maximal connected s-cliques a node
   belongs to — and contrasts it with raw degree on both the paper's toy
   network and a larger two-community graph, where the planted bridge node
   wins on brokerage despite a modest degree.

   Run with: dune exec examples/bridge_analysis.exe *)

module E = Scliques_core.Enumerate
module G = Sgraph.Graph
module NS = Sgraph.Node_set

let membership_counts g ~s =
  let counts = Array.make (G.n g) 0 in
  E.iter E.Cs2_pf g ~s (fun c -> NS.iter (fun v -> counts.(v) <- counts.(v) + 1) c);
  counts

let top_k k scored =
  let arr = Array.mapi (fun v c -> (c, v)) scored in
  Array.sort (fun (a, _) (b, _) -> compare b a) arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let () =
  (* part 1: the paper's Figure 1 *)
  let g, name = Sgraph.Gen.figure1 () in
  let counts = membership_counts g ~s:2 in
  Printf.printf "Figure 1, s = 2 — maximal-2-clique memberships per person:\n";
  Array.iteri
    (fun v c -> Printf.printf "  %-4s degree=%d memberships=%d\n" (name v) (G.degree g v) c)
    counts;
  let (best_count, best), _ = (List.hd (top_k 1 counts), ()) in
  Printf.printf "--> %s is the bridge (in all %d maximal 2-cliques)\n\n" (name best)
    best_count;

  (* part 2: two dense communities joined through one planted broker.
     A maximal connected 2-clique that contains people from both sides must
     pass through the broker (a cut vertex), so counting community-spanning
     s-cliques per node pinpoints the broker even though its degree is
     modest. *)
  let rng = Scoll.Rng.create 7 in
  let community_size = 60 in
  let builder = Sgraph.Builder.create () in
  let add_community offset =
    let g = Sgraph.Gen.erdos_renyi rng ~n:community_size ~avg_degree:8. in
    G.iter_edges (fun u v -> Sgraph.Builder.add_edge builder (offset + u) (offset + v)) g
  in
  add_community 0;
  add_community community_size;
  let broker = 2 * community_size in
  (* the broker knows a handful of people on each side — fewer contacts
     than a typical community member has *)
  for _ = 1 to 5 do
    Sgraph.Builder.add_edge builder broker (Scoll.Rng.int rng community_size);
    Sgraph.Builder.add_edge builder broker (community_size + Scoll.Rng.int rng community_size)
  done;
  let big = Sgraph.Builder.build builder in
  Printf.printf "Two-community graph: %s (broker = node %d)\n" (Sgraph.Metrics.summary big)
    broker;
  let side v = if v = broker then `Broker else if v < community_size then `Left else `Right in
  let spanning = Array.make (G.n big) 0 in
  let total_spanning = ref 0 in
  E.iter E.Cs2_pf big ~s:2 (fun c ->
      let left = NS.exists (fun v -> side v = `Left) c in
      let right = NS.exists (fun v -> side v = `Right) c in
      if left && right then begin
        incr total_spanning;
        NS.iter (fun v -> spanning.(v) <- spanning.(v) + 1) c
      end);
  Printf.printf "%d maximal 2-cliques span both communities\n" !total_spanning;
  let in_all =
    List.filter (fun v -> spanning.(v) = !total_spanning) (List.init (G.n big) Fun.id)
  in
  Printf.printf "nodes present in EVERY spanning 2-clique: %s\n"
    (String.concat ", "
       (List.map
          (fun v ->
            Printf.sprintf "%d%s" v (if v = broker then " (the planted broker)" else ""))
          in_all));
  assert (List.mem broker in_all);
  Printf.printf
    "every community-spanning 2-clique goes through the broker — it is a cut\n\
     vertex, and s-clique analysis surfaces it with no centrality machinery\n";
  let max_degree_node =
    top_k 1 (Array.init (G.n big) (G.degree big)) |> List.hd |> snd
  in
  Printf.printf
    "(the max-degree node is %d with degree %d — degree alone does not find the broker)\n"
    max_degree_node (G.degree big max_degree_node)
