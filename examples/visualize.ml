(* Graphviz export of a network and its maximal connected s-cliques.

   Writes DOT renderings of the paper's Figure 1 at s = 1 and s = 2 and of
   a small community graph, with each maximal connected s-clique colored.
   Render with: dot -Tpng figure1_s2.dot -o figure1_s2.png

   Run with: dune exec examples/visualize.exe [output-directory] *)

module E = Scliques_core.Enumerate

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let g, name = Sgraph.Gen.figure1 () in
  List.iter
    (fun s ->
      let results = E.sorted_results E.Cs2_pf g ~s in
      let path = Filename.concat dir (Printf.sprintf "figure1_s%d.dot" s) in
      Sgraph.Dot.write ~name ~highlight:results g path;
      Printf.printf "wrote %s (%d maximal connected %d-cliques highlighted)\n" path
        (List.length results) s)
    [ 1; 2 ];
  let rng = Scoll.Rng.create 5 in
  let community =
    Sgraph.Gen.planted_partition rng ~n:30 ~communities:3 ~p_in:0.5 ~p_out:0.02
  in
  let results = E.sorted_results ~min_size:5 E.Cs2_pf community ~s:2 in
  let path = Filename.concat dir "communities.dot" in
  Sgraph.Dot.write ~highlight:results community path;
  Printf.printf "wrote %s (%d communities of >= 5 nodes)\n" path (List.length results);
  print_endline "render with: dot -Tpng <file>.dot -o <file>.png"
