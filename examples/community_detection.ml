(* Community detection with s-cliques.

   The paper's intro: "the 2-cliques seem to better capture the graph
   communities, as they are a bit coarser" than cliques. This example makes
   that claim measurable. We plant communities in a random graph, detect
   candidate communities as the largest maximal connected s-cliques for
   s = 1 and s = 2, and score each detection against the planted ground
   truth with the Jaccard index. The 2-clique detection should recover
   communities markedly better than the clique detection, which shatters
   each community into tiny fragments.

   Run with: dune exec examples/community_detection.exe *)

module E = Scliques_core.Enumerate
module NS = Sgraph.Node_set

let jaccard a b =
  let inter = NS.inter_cardinal a b in
  let union = NS.cardinal a + NS.cardinal b - inter in
  if union = 0 then 0. else float_of_int inter /. float_of_int union

let planted ~n ~communities c =
  (* Gen.planted_partition assigns node v to community v*c/n *)
  let members = ref [] in
  for v = 0 to n - 1 do
    if v * communities / n = c then members := v :: !members
  done;
  NS.of_list !members

let best_match truth detections =
  List.fold_left (fun best d -> max best (jaccard truth d)) 0. detections

let () =
  let n = 120 and communities = 6 in
  let rng = Scoll.Rng.create 2024 in
  let g = Sgraph.Gen.planted_partition rng ~n ~communities ~p_in:0.35 ~p_out:0.01 in
  Printf.printf "Planted-partition graph: %s\n" (Sgraph.Metrics.summary g);
  Printf.printf "%d planted communities of %d nodes each\n\n" communities (n / communities);
  List.iter
    (fun s ->
      (* communities = the largest enumerated sets, one per planted block *)
      let all = E.all_results E.Cs2_pf g ~s in
      let by_size =
        List.sort (fun a b -> compare (NS.cardinal b) (NS.cardinal a)) all
      in
      let top = List.filteri (fun i _ -> i < 3 * communities) by_size in
      let scores =
        List.init communities (fun c ->
            best_match (planted ~n ~communities c) top)
      in
      let avg = List.fold_left ( +. ) 0. scores /. float_of_int communities in
      let stats = Scliques_core.Stats.of_results all in
      Printf.printf
        "s=%d: %5d maximal connected s-cliques, sizes avg %.1f max %d\n"
        s stats.Scliques_core.Stats.count stats.Scliques_core.Stats.avg_size
        stats.Scliques_core.Stats.max_size;
      Printf.printf
        "      community recovery (avg best Jaccard vs planted truth): %.2f\n\n" avg)
    [ 1; 2 ];
  print_endline
    "The coarser 2-cliques recover the planted communities; plain cliques only\n\
     find small fragments of them (the paper's Example 1.1 intuition)."
