(* Graph generators: structural guarantees, determinism, and the paper's
   gadget graphs. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module Gen = Sgraph.Gen
module Rng = Scoll.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let deterministic name build =
  Alcotest.test_case (name ^ " deterministic from seed") `Quick (fun () ->
      check bool "equal graphs" true (G.equal (build (Rng.create 7)) (build (Rng.create 7))))

let random_tests =
  [
    Alcotest.test_case "gnm exact edge count" `Quick (fun () ->
        let g = Gen.erdos_renyi_gnm (Rng.create 1) ~n:100 ~m:250 in
        check int "n" 100 (G.n g);
        check int "m" 250 (G.m g));
    Alcotest.test_case "gnm m=0 and m=max" `Quick (fun () ->
        check int "m=0" 0 (G.m (Gen.erdos_renyi_gnm (Rng.create 1) ~n:10 ~m:0));
        check int "complete" 45 (G.m (Gen.erdos_renyi_gnm (Rng.create 1) ~n:10 ~m:45)));
    Alcotest.test_case "gnm rejects impossible m" `Quick (fun () ->
        Alcotest.check_raises "too many"
          (Invalid_argument "Gen.erdos_renyi_gnm: m=46 exceeds 45") (fun () ->
            ignore (Gen.erdos_renyi_gnm (Rng.create 1) ~n:10 ~m:46)));
    Alcotest.test_case "erdos_renyi hits the average degree" `Quick (fun () ->
        let g = Gen.erdos_renyi (Rng.create 2) ~n:1000 ~avg_degree:10. in
        check int "m = n*d/2" 5000 (G.m g));
    Alcotest.test_case "gnp edge count concentrates" `Quick (fun () ->
        let g = Gen.erdos_renyi_gnp (Rng.create 3) ~n:500 ~p:0.05 in
        let expected = 0.05 *. float_of_int (500 * 499 / 2) in
        let m = float_of_int (G.m g) in
        check bool "within 15%" true (Float.abs (m -. expected) < 0.15 *. expected));
    Alcotest.test_case "gnp p=0 and p=1" `Quick (fun () ->
        check int "p=0" 0 (G.m (Gen.erdos_renyi_gnp (Rng.create 1) ~n:20 ~p:0.));
        check int "p=1 complete" 190 (G.m (Gen.erdos_renyi_gnp (Rng.create 1) ~n:20 ~p:1.)));
    Alcotest.test_case "barabasi_albert node and edge counts" `Quick (fun () ->
        let n = 500 and m_attach = 3 in
        let g = Gen.barabasi_albert (Rng.create 4) ~n ~m_attach in
        check int "n" n (G.n g);
        (* seed clique (m+1 choose 2) + m per subsequent node, bar collisions *)
        let expected = (m_attach * (m_attach + 1) / 2) + (m_attach * (n - m_attach - 1)) in
        check bool "close to expected" true (G.m g <= expected && G.m g > expected * 9 / 10));
    Alcotest.test_case "barabasi_albert is connected" `Quick (fun () ->
        check bool "connected" true
          (Sgraph.Components.is_connected (Gen.barabasi_albert (Rng.create 5) ~n:300 ~m_attach:2)));
    Alcotest.test_case "barabasi_albert has heavy tail" `Quick (fun () ->
        let g = Gen.barabasi_albert (Rng.create 6) ~n:2000 ~m_attach:5 in
        (* scale-free graphs have hubs far above the mean degree *)
        check bool "hub exists" true (G.max_degree g > 5 * 10));
    Alcotest.test_case "barabasi_albert rejects bad sizes" `Quick (fun () ->
        Alcotest.check_raises "n too small"
          (Invalid_argument "Gen.barabasi_albert: need n >= m_attach + 1") (fun () ->
            ignore (Gen.barabasi_albert (Rng.create 1) ~n:3 ~m_attach:3)));
    Alcotest.test_case "watts_strogatz beta=0 is the ring lattice" `Quick (fun () ->
        let g = Gen.watts_strogatz (Rng.create 7) ~n:20 ~k:2 ~beta:0. in
        check int "m = n*k" 40 (G.m g);
        check bool "lattice edge" true (G.mem_edge g 0 2);
        check bool "no chord" false (G.mem_edge g 0 5));
    Alcotest.test_case "watts_strogatz beta=1 keeps edge count" `Quick (fun () ->
        let g = Gen.watts_strogatz (Rng.create 8) ~n:50 ~k:3 ~beta:1. in
        check int "m preserved" 150 (G.m g));
    Alcotest.test_case "planted_partition favors intra-community edges" `Quick (fun () ->
        let g = Gen.planted_partition (Rng.create 9) ~n:100 ~communities:4 ~p_in:0.5 ~p_out:0.01 in
        let intra = ref 0 and inter = ref 0 in
        G.iter_edges
          (fun u v ->
            if u * 4 / 100 = v * 4 / 100 then incr intra else incr inter)
          g;
        check bool "mostly intra" true (!intra > 5 * !inter));
    Alcotest.test_case "social_proxy degree calibration" `Quick (fun () ->
        let g = Gen.social_proxy (Rng.create 10) ~n:2000 ~avg_degree:8. ~communities:40 in
        let avg = Sgraph.Metrics.avg_degree g in
        check bool "within 20% of target" true (Float.abs (avg -. 8.) < 1.6));
    Alcotest.test_case "social_proxy clusters more than ER" `Quick (fun () ->
        let proxy = Gen.social_proxy (Rng.create 11) ~n:2000 ~avg_degree:8. ~communities:40 in
        let er = Gen.erdos_renyi (Rng.create 11) ~n:2000 ~avg_degree:8. in
        check bool "higher clustering" true
          (Sgraph.Metrics.global_clustering proxy > 2. *. Sgraph.Metrics.global_clustering er));
    Alcotest.test_case "random_tree is a tree" `Quick (fun () ->
        let rng = Rng.create 12 in
        for _ = 1 to 20 do
          let n = 1 + Rng.int rng 60 in
          let g = Gen.random_tree rng ~n in
          check int (Printf.sprintf "n-1 edges (n=%d)" n) (n - 1) (G.m g);
          check bool "connected" true (Sgraph.Components.is_connected g)
        done);
    deterministic "random_tree" (fun rng -> Gen.random_tree rng ~n:100);
    deterministic "gnm" (fun rng -> Gen.erdos_renyi_gnm rng ~n:200 ~m:400);
    deterministic "gnp" (fun rng -> Gen.erdos_renyi_gnp rng ~n:200 ~p:0.02);
    deterministic "barabasi_albert" (fun rng -> Gen.barabasi_albert rng ~n:200 ~m_attach:3);
    deterministic "watts_strogatz" (fun rng -> Gen.watts_strogatz rng ~n:100 ~k:2 ~beta:0.2);
    deterministic "social_proxy" (fun rng -> Gen.social_proxy rng ~n:300 ~avg_degree:6. ~communities:10);
  ]

let fixture_tests =
  [
    Alcotest.test_case "complete" `Quick (fun () ->
        let g = Gen.complete 6 in
        check int "m" 15 (G.m g);
        check int "regular" 5 (G.max_degree g));
    Alcotest.test_case "path / cycle / star" `Quick (fun () ->
        check int "path m" 4 (G.m (Gen.path 5));
        check int "cycle m" 5 (G.m (Gen.cycle 5));
        check int "star m" 5 (G.m (Gen.star 6));
        check int "degenerate cycle = path" 1 (G.m (Gen.cycle 2)));
    Alcotest.test_case "grid" `Quick (fun () ->
        let g = Gen.grid 3 4 in
        check int "n" 12 (G.n g);
        check int "m = r(c-1)+c(r-1)" 17 (G.m g);
        check bool "horizontal" true (G.mem_edge g 0 1);
        check bool "vertical" true (G.mem_edge g 0 4);
        check bool "no diagonal" false (G.mem_edge g 0 5));
    Alcotest.test_case "complete_bipartite" `Quick (fun () ->
        let g = Gen.complete_bipartite 3 4 in
        check int "m" 12 (G.m g);
        check bool "across" true (G.mem_edge g 0 3);
        check bool "not within" false (G.mem_edge g 0 1));
    Alcotest.test_case "complete_multipartite (Moon-Moser)" `Quick (fun () ->
        let g = Gen.complete_multipartite ~parts:3 ~part_size:3 in
        check int "n" 9 (G.n g);
        check int "m" 27 (G.m g);
        check bool "across parts" true (G.mem_edge g 0 3);
        check bool "within part" false (G.mem_edge g 0 1));
    Alcotest.test_case "petersen basics" `Quick (fun () ->
        let g = Gen.petersen () in
        check int "n" 10 (G.n g);
        check int "m" 15 (G.m g);
        check int "3-regular" 3 (G.max_degree g);
        check int "no triangles" 0 (Sgraph.Metrics.triangle_count g));
    Alcotest.test_case "figure1 matches the paper" `Quick (fun () ->
        let g, name = Gen.figure1 () in
        check int "8 people" 8 (G.n g);
        check int "12 edges" 12 (G.m g);
        check Alcotest.string "node 0" "Ann" (name 0);
        check Alcotest.string "node 7" "Hal" (name 7);
        (* Dan bridges the two communities *)
        check bool "Dan-Guy" true (G.mem_edge g 3 6);
        check bool "Ann-Hal absent" false (G.mem_edge g 0 7));
    Alcotest.test_case "figure3_h matches the paper" `Quick (fun () ->
        let g = Gen.figure3_h () in
        check int "6 nodes" 6 (G.n g);
        check int "7 edges" 7 (G.m g);
        check bool "v2-v6 chord" true (G.mem_edge g 1 5));
    Alcotest.test_case "exponential gadget size formula" `Quick (fun () ->
        List.iter
          (fun n ->
            let g = Gen.exponential_gadget n in
            check int
              (Printf.sprintf "2n + n(n-1) + 2 for n=%d" n)
              ((2 * n) + (n * (n - 1)) + 2)
              (G.n g))
          [ 1; 2; 3; 5 ]);
    Alcotest.test_case "exponential gadget distances (Example 3.4)" `Quick (fun () ->
        let n = 3 in
        let g = Gen.exponential_gadget n in
        let v i = i and v' i = n + i in
        (* v_i to v'_j at distance 2 when i <> j, 3 when i = j *)
        check int "v0 to v'1" 2 (Sgraph.Bfs.distance g (v 0) (v' 1));
        check int "v0 to v'0" 3 (Sgraph.Bfs.distance g (v 0) (v' 0));
        (* w and w' within distance 2 of everything *)
        let w = 2 * n and w' = (2 * n) + 1 in
        G.iter_nodes
          (fun u ->
            if u <> w then check bool "w close" true (Sgraph.Bfs.distance g w u <= 2);
            if u <> w' then check bool "w' close" true (Sgraph.Bfs.distance g w' u <= 2))
          g);
    Alcotest.test_case "exponential gadget has >= 2^n maximal connected 2-cliques"
      `Quick (fun () ->
        List.iter
          (fun n ->
            let g = Gen.exponential_gadget n in
            let count =
              Scliques_core.Enumerate.count Scliques_core.Enumerate.Cs2_p g ~s:2
            in
            check bool
              (Printf.sprintf "n=%d: %d >= 2^%d" n count n)
              true
              (count >= 1 lsl n))
          [ 1; 2; 3; 4 ]);
    Alcotest.test_case "gadget: exact count matches Example 3.4 closed form" `Quick
      (fun () ->
        (* all results include {w, w'}; besides the 2^n choice-sets there
           are n(n-1) sets {v_i, v'_j, u_ij} and 2n sets {v_i} ∪ {u_i*} /
           {v'_j} ∪ {u_*j}. Exact for n >= 3 — below that the latter
           families collapse into the choice-sets *)
        List.iter
          (fun n ->
            let g = Gen.exponential_gadget n in
            let count =
              Scliques_core.Enumerate.count Scliques_core.Enumerate.Cs2_pf g ~s:2
            in
            check int
              (Printf.sprintf "n=%d: 2^n + n(n-1) + 2n" n)
              ((1 lsl n) + (n * (n - 1)) + (2 * n))
              count)
          [ 3; 4; 5 ]);
    Alcotest.test_case "gadget: each choice-set is a maximal connected 2-clique"
      `Quick (fun () ->
        (* Example 3.4: any set with exactly one of v_i/v'_i plus {w,w'} *)
        let n = 3 in
        let g = Gen.exponential_gadget n in
        let w = 2 * n and w' = (2 * n) + 1 in
        for mask = 0 to (1 lsl n) - 1 do
          let choice =
            List.init n (fun i -> if mask land (1 lsl i) <> 0 then n + i else i)
          in
          let set = NS.of_list (w :: w' :: choice) in
          check bool
            (Printf.sprintf "mask %d" mask)
            true
            (Scliques_core.Verify.is_maximal_connected_s_clique g ~s:2 set)
        done);
  ]

let suites = [ ("gen_random", random_tests); ("gen_fixtures", fixture_tests) ]
