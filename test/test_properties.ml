(* QCheck property suites: every algorithm against the brute-force oracle
   on random graphs, plus structural invariants of the problem itself. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module E = Scliques_core.Enumerate
module V = Scliques_core.Verify

(* (n, m, s, seed) quadruples kept small enough for the oracle *)
let gen_params =
  let open QCheck2.Gen in
  int_range 1 10 >>= fun n ->
  int_range 0 (n * (n - 1) / 2) >>= fun m ->
  int_range 1 3 >>= fun s ->
  int_range 0 1_000_000 >>= fun seed -> return (n, m, s, seed)

let print_params (n, m, s, seed) = Printf.sprintf "n=%d m=%d s=%d seed=%d" n m s seed

let graph_of (n, m, _, seed) =
  Sgraph.Gen.erdos_renyi_gnm (Scoll.Rng.create seed) ~n ~m

let prop ?(count = 150) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:print_params gen_params f)

let oracle_equal alg params =
  let g = graph_of params in
  let _, _, s, _ = params in
  let expected = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s in
  let actual = E.sorted_results alg g ~s in
  List.length expected = List.length actual && List.for_all2 NS.equal expected actual

let oracle_tests =
  List.map
    (fun alg -> prop (E.name alg ^ " equals the brute-force oracle") (oracle_equal alg))
    Test_support.real_algorithms

let invariant_tests =
  [
    prop "every emitted set certifies as sound output" (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        Result.is_ok (V.certify g ~s (E.all_results E.Cs2_pf g ~s)));
    prop "results cover every node" (fun params ->
        (* each node belongs to at least one maximal connected s-clique
           (its singleton extends to one) *)
        let g = graph_of params in
        let _, _, s, _ = params in
        let covered =
          List.fold_left NS.union NS.empty (E.all_results E.Poly_delay g ~s)
        in
        NS.equal covered (G.nodes g));
    prop "every maximal clique is inside some maximal connected s-clique"
      (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        let s_results = E.all_results E.Cs2_p g ~s in
        List.for_all
          (fun clique -> List.exists (NS.subset clique) s_results)
          (Scliques_core.Bron_kerbosch.maximal_cliques g));
    prop "monotone in s: each result is inside some (s+1)-result" (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        let now = E.all_results E.Cs2_p g ~s in
        let larger = E.all_results E.Cs2_p g ~s:(s + 1) in
        List.for_all (fun c -> List.exists (NS.subset c) larger) now);
    prop "result count >= number of connected components with a node" (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        E.count E.Cs2_pf g ~s >= Sgraph.Components.count g);
    prop "s >= diameter collapses each component to one result" (fun params ->
        let g = graph_of params in
        let _, _, _, _ = params in
        let comps = Sgraph.Components.components g in
        let s = max 1 (G.n g) in
        let results = E.sorted_results E.Cs2_p g ~s in
        List.length results = List.length comps
        && List.for_all2 NS.equal (List.sort NS.compare comps) results);
    prop "connected s-cliques refine the power-graph reduction" (fun params ->
        (* every maximal connected s-clique is contained in some maximal
           (unconnected) s-clique of Remark 1 *)
        let g = graph_of params in
        let _, _, s, _ = params in
        let unconnected = Scliques_core.Bron_kerbosch.maximal_s_cliques_via_power g ~s in
        List.for_all
          (fun c -> List.exists (NS.subset c) unconnected)
          (E.all_results E.Cs2_pf g ~s));
    prop "power-graph reduction agrees with its oracle" (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        let expected = Scliques_core.Brute_force.maximal_s_cliques g ~s in
        let actual =
          List.sort NS.compare
            (Scliques_core.Bron_kerbosch.maximal_s_cliques_via_power g ~s)
        in
        List.length expected = List.length actual && List.for_all2 NS.equal expected actual);
    prop "min_size pruning loses exactly the small sets (all variants)"
      ~count:60
      (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        let k = 3 in
        List.for_all
          (fun alg ->
            let pruned = E.sorted_results ~min_size:k alg g ~s in
            let filtered =
              List.filter (fun c -> NS.cardinal c >= k) (E.sorted_results alg g ~s)
            in
            List.length pruned = List.length filtered
            && List.for_all2 NS.equal pruned filtered)
          Test_support.real_algorithms);
    prop "largest-first PolyDelayEnum enumerates the same family" (fun params ->
        let g = graph_of params in
        let _, _, s, _ = params in
        let nh = Scliques_core.Neighborhood.create ~s g in
        let acc = ref [] in
        Scliques_core.Poly_delay.iter ~queue_mode:Scliques_core.Poly_delay.Largest_first
          nh (fun c -> acc := c :: !acc);
        let expected = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s in
        let actual = List.sort NS.compare !acc in
        List.length expected = List.length actual && List.for_all2 NS.equal expected actual);
    prop "denser graphs on community structure also agree" ~count:60 (fun (n, _, s, seed) ->
        (* a second graph family: planted partition, denser than gnm *)
        let n = max 4 n in
        let g =
          Sgraph.Gen.planted_partition (Scoll.Rng.create seed) ~n ~communities:2
            ~p_in:0.7 ~p_out:0.15
        in
        let expected = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s in
        List.for_all
          (fun alg ->
            let actual = E.sorted_results alg g ~s in
            List.length expected = List.length actual
            && List.for_all2 NS.equal expected actual)
          Test_support.real_algorithms);
  ]

(* the oracle comparison again over structurally different graph families:
   trees (bridge-heavy), Watts-Strogatz (local + shortcuts), and the
   paper's exponential gadget family *)
let family_tests =
  let prop_family name build =
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name
         ~print:(fun (k, s, seed) -> Printf.sprintf "k=%d s=%d seed=%d" k s seed)
         QCheck2.Gen.(
           int_range 1 6 >>= fun k ->
           int_range 1 3 >>= fun s ->
           int_range 0 1_000_000 >>= fun seed -> return (k, s, seed))
         (fun (k, s, seed) ->
           let g = build k seed in
           let expected = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s in
           List.for_all
             (fun alg ->
               let actual = E.sorted_results alg g ~s in
               List.length expected = List.length actual
               && List.for_all2 NS.equal expected actual)
             Test_support.real_algorithms))
  in
  [
    prop_family "all algorithms agree on random trees" (fun k seed ->
        Sgraph.Gen.random_tree (Scoll.Rng.create seed) ~n:(3 + k));
    prop_family "all algorithms agree on Watts-Strogatz rings" (fun k seed ->
        Sgraph.Gen.watts_strogatz (Scoll.Rng.create seed) ~n:(5 + k) ~k:1 ~beta:0.3);
    prop_family "all algorithms agree on the exponential gadget" (fun k _ ->
        Sgraph.Gen.exponential_gadget (1 + (k mod 2)));
  ]

let suites =
  [
    ("oracle_properties", oracle_tests);
    ("family_properties", family_tests);
    ("invariant_properties", invariant_tests);
  ]
