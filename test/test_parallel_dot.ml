(* Parallel (domain-based) enumeration and DOT export. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module P = Scliques_core.Parallel
module E = Scliques_core.Enumerate

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let parallel_tests =
  [
    Alcotest.test_case "matches sequential on figure 1" `Quick (fun () ->
        let g = fst (Sgraph.Gen.figure1 ()) in
        List.iter
          (fun s ->
            check Test_support.ns_list
              (Printf.sprintf "s=%d" s)
              (E.sorted_results E.Cs2_p g ~s)
              (P.enumerate ~workers:3 g ~s))
          [ 1; 2; 3 ]);
    Alcotest.test_case "matches the oracle on random graphs, various workers" `Quick
      (fun () ->
        let rng = Scoll.Rng.create 81 in
        for _ = 1 to 10 do
          let n = 4 + Scoll.Rng.int rng 7 in
          let m = Scoll.Rng.int rng ((n * (n - 1) / 2) + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          let s = 1 + Scoll.Rng.int rng 2 in
          let expected = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s in
          List.iter
            (fun workers ->
              check Test_support.ns_list
                (Printf.sprintf "n=%d workers=%d" n workers)
                expected
                (P.enumerate ~workers g ~s))
            [ 1; 2; 4 ]
        done);
    Alcotest.test_case "more workers than nodes" `Quick (fun () ->
        let g = Sgraph.Gen.path 3 in
        check Test_support.ns_list "still complete"
          (E.sorted_results E.Cs2_p g ~s:2)
          (P.enumerate ~workers:8 g ~s:2));
    Alcotest.test_case "feasibility and min_size pass through" `Quick (fun () ->
        let g = Test_support.random_graph 82 ~n:20 ~m:45 in
        check Test_support.ns_list "min_size"
          (E.sorted_results ~min_size:4 E.Cs2_pf g ~s:2)
          (P.enumerate ~workers:3 ~feasibility:true ~min_size:4 g ~s:2));
    Alcotest.test_case "stats account for every result" `Quick (fun () ->
        let g = Test_support.random_graph 83 ~n:25 ~m:60 in
        let results, stats = P.enumerate_with_stats ~workers:3 g ~s:2 in
        check int "worker counts sum to total" (List.length results)
          (Array.fold_left ( + ) 0 stats.P.results_per_worker);
        check int "3 workers" 3 (Array.length stats.P.time_per_worker);
        Array.iter (fun t -> check bool "time non-negative" true (t >= 0.))
          stats.P.time_per_worker);
    Alcotest.test_case "workers < 1 rejected" `Quick (fun () ->
        match P.enumerate ~workers:0 (Sgraph.Gen.path 3) ~s:2 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "empty graph" `Quick (fun () ->
        check Test_support.ns_list "nothing" [] (P.enumerate ~workers:2 (G.empty 0) ~s:2));
  ]

let dot_tests =
  let module Dot = Sgraph.Dot in
  [
    Alcotest.test_case "contains every node and edge" `Quick (fun () ->
        let g = Sgraph.Gen.cycle 4 in
        let dot = Dot.to_dot g in
        for v = 0 to 3 do
          check bool (Printf.sprintf "node %d" v) true
            (Astring_contains.contains dot (Printf.sprintf "  %d [label=" v))
        done;
        check bool "edge 0--1" true (Astring_contains.contains dot "0 -- 1;");
        check bool "edge 3--0... as 0 -- 3" true (Astring_contains.contains dot "0 -- 3;"));
    Alcotest.test_case "names appear" `Quick (fun () ->
        let g, name = Sgraph.Gen.figure1 () in
        let dot = Dot.to_dot ~name g in
        check bool "Ann labeled" true (Astring_contains.contains dot "label=\"Ann\"");
        check bool "Hal labeled" true (Astring_contains.contains dot "label=\"Hal\""));
    Alcotest.test_case "highlights color members and annotate membership" `Quick
      (fun () ->
        let g = Sgraph.Gen.path 3 in
        let dot = Dot.to_dot ~highlight:[ NS.of_list [ 0; 1 ] ] g in
        check bool "member colored" true (Astring_contains.contains dot "#a6cee3");
        check bool "membership index" true (Astring_contains.contains dot "[0]");
        check bool "non-member stays white" true
          (Astring_contains.contains dot "label=\"2\", fillcolor=\"white\""));
    Alcotest.test_case "write creates a parseable file" `Quick (fun () ->
        let g = Sgraph.Gen.star 4 in
        let path = Filename.temp_file "scliques" ".dot" in
        Dot.write g path;
        let ic = open_in path in
        let first = input_line ic in
        close_in ic;
        Sys.remove path;
        check Alcotest.string "header" "graph scliques {" first);
  ]

let suites = [ ("parallel", parallel_tests); ("dot", dot_tests) ]
