(* Substring search helper for the test suites (the stdlib has none). *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  end
