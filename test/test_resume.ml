(* The recovery layer: budgets, the crash-safe record stream, resumable
   checkpoints, and the parallel crash drill.

   The load-bearing property is RESUME EQUIVALENCE: interrupt a run
   anywhere (result cap, deadline, cancel, injected fault), resume from
   its checkpoint, and the union of the streamed prefixes must be
   exactly the uninterrupted enumeration — same multiset, so zero
   results lost AND zero results duplicated. *)

module NS = Sgraph.Node_set
module E = Scliques_core.Enumerate
module Budget = Scliques_core.Budget
module Ckpt = Scliques_core.Checkpoint
module Stream = Scliques_core.Result_io.Stream
module Fault = Scoll.Fault

let set = Alcotest.testable NS.pp NS.equal
let temp suffix = Filename.temp_file "scliques_resume" suffix

let graph_of_case (family, n, m, seed) =
  let rng = Scoll.Rng.create seed in
  match family with
  | `Er -> Sgraph.Gen.erdos_renyi_gnm rng ~n ~m:(min m (n * (n - 1) / 2))
  | `Sf -> Sgraph.Gen.barabasi_albert rng ~n ~m_attach:(min (n - 1) (1 + (m mod 3)))

(* ---------- budget unit behavior ---------- *)

let test_budget_trips () =
  let b = Budget.create ~deadline_s:0. () in
  let check = Budget.checker b in
  Alcotest.(check bool) "deadline 0 trips on the first poll" false (check ());
  Alcotest.(check bool) "sticky" false (Budget.live b);
  (match Budget.status b with
  | Budget.Truncated Budget.Deadline -> ()
  | _ -> Alcotest.fail "expected Truncated Deadline");
  let b = Budget.create ~max_results:2 () in
  Budget.note_result b;
  Alcotest.(check bool) "below cap: live" true (Budget.live b);
  Budget.note_result b;
  Alcotest.(check bool) "at cap: tripped" false (Budget.live b);
  (match Budget.status b with
  | Budget.Truncated Budget.Max_results -> ()
  | _ -> Alcotest.fail "expected Truncated Max_results");
  let b = Budget.create ~max_results:5 () in
  Budget.preload_results b 5;
  Alcotest.(check bool) "preload reaching the cap trips" false (Budget.live b);
  let b = Budget.create () in
  Budget.request_cancel b;
  Alcotest.(check bool) "cancel is observed at the next poll" false (Budget.poll b);
  (match Budget.status b with
  | Budget.Truncated Budget.Cancelled -> ()
  | _ -> Alcotest.fail "expected Truncated Cancelled");
  let bytes = ref 0 in
  let b = Budget.create ~max_cache_bytes:100 ~cache_bytes:(fun () -> !bytes) () in
  Alcotest.(check bool) "under the byte cap" true (Budget.poll b);
  bytes := 101;
  Alcotest.(check bool) "over the byte cap" false (Budget.poll b);
  (match Budget.status b with
  | Budget.Truncated Budget.Max_cache_bytes -> ()
  | _ -> Alcotest.fail "expected Truncated Max_cache_bytes")

let test_budget_first_trip_wins () =
  let b = Budget.create ~max_results:1 () in
  Budget.note_result b;
  Budget.request_cancel b;
  ignore (Budget.poll b : bool);
  match Budget.status b with
  | Budget.Truncated Budget.Max_results -> ()
  | _ -> Alcotest.fail "first trip must stick"

(* ---------- record stream ---------- *)

let test_stream_round_trip () =
  let path = temp ".stream" in
  let w = Stream.open_writer path in
  let sets =
    [ NS.of_list [ 0; 1; 2 ]; NS.of_list [ 7 ]; NS.empty; NS.of_list [ 3; 9 ] ]
  in
  List.iter (Stream.write_set w) sets;
  Stream.close w;
  let got, tail = Stream.read_results path in
  (match tail with `Clean -> () | `Torn -> Alcotest.fail "clean file read Torn");
  Alcotest.(check (list set)) "round trip" sets got;
  Sys.remove path

let test_stream_torn_tail () =
  let path = temp ".stream" in
  let w = Stream.open_writer path in
  Stream.write_set w (NS.of_list [ 1; 2 ]);
  Stream.write_set w (NS.of_list [ 3 ]);
  Stream.close w;
  let _, clean_len, _ = Stream.read_records path in
  (* simulate a crash mid-write: append half a record *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x40\x00\x00\x00\xde\xad";
  close_out oc;
  let got, len, tail = Stream.read_records path in
  (match tail with `Torn -> () | `Clean -> Alcotest.fail "torn tail undetected");
  Alcotest.(check int) "clean prefix unchanged" clean_len len;
  Alcotest.(check int) "intact records survive" 2 (List.length got);
  (* resume after the crash: truncate the tear, append, reread clean *)
  let w = Stream.open_append path ~clean_len:len in
  Stream.write_set w (NS.of_list [ 4; 5 ]);
  Stream.close w;
  let got, tail = Stream.read_results path in
  (match tail with `Clean -> () | `Torn -> Alcotest.fail "tear survived append");
  Alcotest.(check (list set)) "history + appended"
    [ NS.of_list [ 1; 2 ]; NS.of_list [ 3 ]; NS.of_list [ 4; 5 ] ]
    got;
  Sys.remove path

let test_stream_corrupt_crc () =
  let path = temp ".stream" in
  let w = Stream.open_writer path in
  Stream.write_set w (NS.of_list [ 1 ]);
  Stream.write_set w (NS.of_list [ 2 ]);
  Stream.close w;
  (* flip a payload byte of the second record: CRC catches it and the
     record is dropped as a tear, keeping the first *)
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET : int);
  ignore (Unix.write_substring fd "9" 0 1 : int);
  Unix.close fd;
  let got, _, tail = Stream.read_records path in
  (match tail with `Torn -> () | `Clean -> Alcotest.fail "bit rot undetected");
  Alcotest.(check (list string)) "prefix before the bad CRC" [ "1" ] got;
  Sys.remove path

let test_stream_write_fault () =
  let path = temp ".stream" in
  let fault = Fault.create () in
  Fault.arm_nth fault ~site:"stream.write" ~n:3;
  let w = Stream.open_writer ~fault path in
  Stream.write_set w (NS.of_list [ 1 ]);
  Stream.write_set w (NS.of_list [ 2 ]);
  (try
     Stream.write_set w (NS.of_list [ 3 ]);
     Alcotest.fail "armed fault did not fire"
   with Fault.Injected site -> Alcotest.(check string) "site" "stream.write#3" site);
  Stream.close w;
  let got, _ = Stream.read_results path in
  Alcotest.(check (list set)) "records before the fault survive"
    [ NS.of_list [ 1 ]; NS.of_list [ 2 ] ]
    got;
  Sys.remove path

(* ---------- checkpoints ---------- *)

let test_checkpoint_round_trip () =
  let path = temp ".ck" in
  let states =
    [
      Ckpt.Roots { retired = [ 0; 3; 4; 17 ] };
      Ckpt.Roots { retired = [] };
      Ckpt.Pd_frontier
        {
          index = [ NS.of_list [ 1; 2 ]; NS.of_list [ 5 ] ];
          queue = [ NS.of_list [ 5 ] ];
        };
      Ckpt.Brute_mask { next_mask = 12345 };
    ]
  in
  List.iter
    (fun state ->
      let t =
        { Ckpt.algorithm = "CSCliques2PF"; s = 2; n = 30; m = 45; min_size = 3;
          emitted = 7; state }
      in
      Ckpt.save t path;
      let back = Ckpt.load path in
      Alcotest.(check string) "algorithm" t.Ckpt.algorithm back.Ckpt.algorithm;
      Alcotest.(check int) "emitted" t.Ckpt.emitted back.Ckpt.emitted;
      Alcotest.(check string) "family" (Ckpt.family state) (Ckpt.family back.Ckpt.state);
      match (state, back.Ckpt.state) with
      | Ckpt.Roots { retired = a }, Ckpt.Roots { retired = b } ->
          Alcotest.(check (list int)) "retired" a b
      | Ckpt.Pd_frontier { index = ia; queue = qa }, Ckpt.Pd_frontier { index = ib; queue = qb }
        ->
          Alcotest.(check (list set)) "index" ia ib;
          Alcotest.(check (list set)) "queue" qa qb
      | Ckpt.Brute_mask { next_mask = a }, Ckpt.Brute_mask { next_mask = b } ->
          Alcotest.(check int) "mask" a b
      | _ -> Alcotest.fail "state shape changed across the round trip")
    states;
  Sys.remove path

let test_checkpoint_compat () =
  let t =
    { Ckpt.algorithm = "PD"; s = 2; n = 10; m = 9; min_size = 0; emitted = 1;
      state = Ckpt.Pd_frontier { index = []; queue = [] } }
  in
  Ckpt.check_compat t ~s:2 ~n:10 ~m:9 ~min_size:0;
  List.iter
    (fun (label, f) ->
      try
        f ();
        Alcotest.failf "mismatched %s accepted" label
      with Failure _ -> ())
    [
      ("s", fun () -> Ckpt.check_compat t ~s:3 ~n:10 ~m:9 ~min_size:0);
      ("n", fun () -> Ckpt.check_compat t ~s:2 ~n:11 ~m:9 ~min_size:0);
      ("m", fun () -> Ckpt.check_compat t ~s:2 ~n:10 ~m:8 ~min_size:0);
      ("min_size", fun () -> Ckpt.check_compat t ~s:2 ~n:10 ~m:9 ~min_size:2);
    ]

let test_checkpoint_atomic_save () =
  let path = temp ".ck" in
  let v1 =
    { Ckpt.algorithm = "PD"; s = 2; n = 10; m = 9; min_size = 0; emitted = 4;
      state = Ckpt.Roots { retired = [ 1; 2 ] } }
  in
  Ckpt.save v1 path;
  let fault = Fault.create () in
  Fault.arm_nth fault ~site:"ckpt.rename" ~n:1;
  let v2 = { v1 with Ckpt.emitted = 9 } in
  (try
     Ckpt.save ~fault v2 path;
     Alcotest.fail "armed rename fault did not fire"
   with Fault.Injected _ -> ());
  let back = Ckpt.load path in
  Alcotest.(check int) "crash during save leaves the old checkpoint" 4
    back.Ckpt.emitted;
  Sys.remove path

let test_checkpoint_refuses_torn () =
  let path = temp ".ck" in
  Ckpt.save
    { Ckpt.algorithm = "PD"; s = 2; n = 4; m = 3; min_size = 0; emitted = 0;
      state = Ckpt.Roots { retired = [] } }
    path;
  (* chop the end record off: a load must refuse, not silently resume
     from half a state *)
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 3);
  Unix.close fd;
  (try
     ignore (Ckpt.load path : Ckpt.t);
     Alcotest.fail "torn checkpoint accepted"
   with Failure _ -> ());
  Sys.remove path

(* ---------- resume equivalence (sequential) ---------- *)

let canonical results = List.sort NS.compare results

let full_run alg g ~s ~min_size =
  let acc = ref [] in
  let r = E.run ~min_size alg g ~s (fun c -> acc := c :: !acc) in
  (match r.E.outcome with
  | Budget.Complete -> ()
  | Budget.Truncated _ -> Alcotest.fail "unlimited run truncated");
  canonical !acc

(* interrupt with [max_results = cap], resume to completion; the two
   streams must partition the full output *)
let split_run alg g ~s ~min_size ~cap =
  let first = ref [] in
  let budget = Budget.create ~max_results:cap () in
  let r1 = E.run ~min_size ~budget alg g ~s (fun c -> first := c :: !first) in
  match r1.E.outcome with
  | Budget.Complete ->
      Alcotest.(check (option Alcotest.reject))
        "complete runs carry no checkpoint" None
        (Option.map (fun _ -> ()) r1.E.resumable);
      (canonical !first, [])
  | Budget.Truncated _ ->
      let resume = Option.get r1.E.resumable in
      let second = ref [] in
      let r2 = E.run ~min_size ~resume alg g ~s (fun c -> second := c :: !second) in
      (match r2.E.outcome with
      | Budget.Complete -> ()
      | Budget.Truncated _ -> Alcotest.fail "unbudgeted resume truncated");
      (canonical !first, canonical !second)

let arb_resume_case =
  QCheck2.Gen.(
    oneofl [ `Er; `Sf ] >>= fun family ->
    oneofl [ E.Poly_delay; E.Cs1; E.Cs2; E.Cs2_pf; E.Brute ] >>= fun alg ->
    int_range 1 2 >>= fun s ->
    (match alg with E.Brute -> int_range 2 10 | _ -> int_range 2 24)
    >>= fun n ->
    int_range 0 (3 * n) >>= fun m ->
    int_range 0 2 >>= fun min_size ->
    int_range 1 8 >>= fun cap ->
    int_range 0 1_000_000 >>= fun seed ->
    return (family, alg, s, n, m, min_size, cap, seed))

let print_resume_case (family, alg, s, n, m, min_size, cap, seed) =
  Printf.sprintf "(%s, %s, s=%d, n=%d, m=%d, min_size=%d, cap=%d, seed=%d)"
    (match family with `Er -> "er" | `Sf -> "sf")
    (E.name alg) s n m min_size cap seed

let prop_resume_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150
       ~name:"interrupt at max_results + resume = uninterrupted run"
       ~print:print_resume_case arb_resume_case
       (fun (family, alg, s, n, m, min_size, cap, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let expected = full_run alg g ~s ~min_size in
         let part1, part2 = split_run alg g ~s ~min_size ~cap in
         let union = canonical (part1 @ part2) in
         if not (List.equal NS.equal union expected) then
           QCheck2.Test.fail_reportf
             "union <> full: %d + %d vs %d results@.first %a@.second %a@.full %a"
             (List.length part1) (List.length part2) (List.length expected)
             (Fmt.Dump.list NS.pp) part1 (Fmt.Dump.list NS.pp) part2
             (Fmt.Dump.list NS.pp) expected
         else true))

(* drive a run to completion one result cap at a time: every checkpoint
   along the way must compose, not just the first *)
let prop_chained_resume =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"chained single-step resumes compose"
       ~print:print_resume_case arb_resume_case
       (fun (family, alg, s, n, m, min_size, _cap, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let expected = full_run alg g ~s ~min_size in
         let acc = ref [] in
         let resume = ref None in
         let steps = ref 0 in
         let continue = ref true in
         while !continue do
           incr steps;
           if !steps > 5000 then Alcotest.fail "resume chain does not terminate";
           let budget = Budget.create ~max_results:1 () in
           let r =
             E.run ~min_size ~budget ?resume:!resume alg g ~s
               (fun c -> acc := c :: !acc)
           in
           match r.E.outcome with
           | Budget.Complete -> continue := false
           | Budget.Truncated _ -> resume := Some (Option.get r.E.resumable)
         done;
         List.equal NS.equal (canonical !acc) expected))

(* ---------- resume equivalence (parallel) + crash drill ---------- *)

let par_case_graph seed =
  Sgraph.Gen.barabasi_albert (Scoll.Rng.create seed) ~n:36 ~m_attach:2

let test_parallel_resume () =
  let g = par_case_graph 11 in
  let s = 2 in
  let expected = canonical (Scliques_core.Parallel.enumerate ~workers:2 g ~s) in
  List.iter
    (fun cap ->
      let budget = Budget.create ~max_results:cap () in
      let part1, outcome, retired =
        Scliques_core.Parallel.enumerate_budgeted ~workers:3 ~budget g ~s
      in
      match outcome with
      | Budget.Complete ->
          Alcotest.(check (list set)) "complete parallel run" expected part1
      | Budget.Truncated _ ->
          let budget2 = Budget.unlimited () in
          let part2, outcome2, _ =
            Scliques_core.Parallel.enumerate_budgeted ~workers:3 ~budget:budget2
              ~skip_roots:retired g ~s
          in
          (match outcome2 with
          | Budget.Complete -> ()
          | Budget.Truncated _ -> Alcotest.fail "unbudgeted resume truncated");
          Alcotest.(check (list set))
            (Printf.sprintf "cap=%d: union of the two runs" cap)
            expected
            (canonical (part1 @ part2)))
    [ 1; 5; 40; 10_000 ]

let test_parallel_deadline () =
  let g = par_case_graph 12 in
  let budget = Budget.create ~deadline_s:0. ~poll_every:1 () in
  let results, outcome, retired =
    Scliques_core.Parallel.enumerate_budgeted ~workers:3 ~budget g ~s:2
  in
  (match outcome with
  | Budget.Truncated Budget.Deadline -> ()
  | _ -> Alcotest.fail "expected Truncated Deadline");
  Alcotest.(check (list set)) "zero deadline commits nothing" [] results;
  Alcotest.(check (list int)) "and retires nothing" [] retired

let test_parallel_crash_drill () =
  let g = par_case_graph 13 in
  let s = 2 in
  let expected = canonical (Scliques_core.Parallel.enumerate ~workers:2 g ~s) in
  (* crash the m-th executed work item in some worker domain; the run
     must neither deadlock nor corrupt the committed/retired bookkeeping
     observed through the streaming callback *)
  List.iter
    (fun m ->
      let fault = Fault.create () in
      Fault.arm_nth fault ~site:"par.task" ~n:m;
      let streamed = ref [] in
      let retired = ref [] in
      let budget = Budget.unlimited () in
      let crashed =
        try
          let (_ : NS.t list), (_ : Budget.outcome), (_ : int list) =
            Scliques_core.Parallel.enumerate_budgeted ~workers:3 ~budget ~fault
              ~on_root_retired:(fun root results ->
                streamed := results @ !streamed;
                retired := root :: !retired)
              g ~s
          in
          false
        with Fault.Injected _ -> true
      in
      if crashed then begin
        (* recover exactly like the CLI: resume skipping the roots whose
           results reached the sink before the crash *)
        let part2, outcome2, _ =
          Scliques_core.Parallel.enumerate_budgeted ~workers:3
            ~budget:(Budget.unlimited ()) ~skip_roots:!retired g ~s
        in
        (match outcome2 with
        | Budget.Complete -> ()
        | Budget.Truncated _ -> Alcotest.fail "recovery run truncated");
        Alcotest.(check (list set))
          (Printf.sprintf "crash at task %d: streamed + recovery = full" m)
          expected
          (canonical (!streamed @ part2))
      end
      else
        (* the fault site was never reached (fewer than m tasks): the
           run must then simply be correct *)
        Alcotest.(check (list set))
          (Printf.sprintf "fault beyond task count (m=%d)" m)
          expected (canonical !streamed))
    [ 1; 2; 7; 23; 1_000_000 ]

let test_sink_failure_keeps_root_uncommitted () =
  let g = par_case_graph 14 in
  let s = 2 in
  let expected = canonical (Scliques_core.Parallel.enumerate ~workers:2 g ~s) in
  let streamed = ref [] in
  let retired = ref [] in
  let calls = ref 0 in
  let crashed =
    try
      let (_ : NS.t list), (_ : Budget.outcome), (_ : int list) =
        Scliques_core.Parallel.enumerate_budgeted ~workers:2
          ~budget:(Budget.unlimited ())
          ~on_root_retired:(fun root results ->
            incr calls;
            if !calls = 3 then failwith "sink full";
            streamed := results @ !streamed;
            retired := root :: !retired)
          g ~s
      in
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "third sink call aborted the run" true crashed;
  let part2, outcome2, _ =
    Scliques_core.Parallel.enumerate_budgeted ~workers:2
      ~budget:(Budget.unlimited ()) ~skip_roots:!retired g ~s
  in
  (match outcome2 with
  | Budget.Complete -> ()
  | Budget.Truncated _ -> Alcotest.fail "recovery run truncated");
  Alcotest.(check (list set)) "failed sink call's root was not retired"
    expected
    (canonical (!streamed @ part2))

let suites =
  [
    ( "resume",
      [
        Alcotest.test_case "budget trips each limit" `Quick test_budget_trips;
        Alcotest.test_case "budget first trip wins" `Quick test_budget_first_trip_wins;
        Alcotest.test_case "stream round trip" `Quick test_stream_round_trip;
        Alcotest.test_case "stream torn tail" `Quick test_stream_torn_tail;
        Alcotest.test_case "stream corrupt CRC" `Quick test_stream_corrupt_crc;
        Alcotest.test_case "stream write fault" `Quick test_stream_write_fault;
        Alcotest.test_case "checkpoint round trip" `Quick test_checkpoint_round_trip;
        Alcotest.test_case "checkpoint compat" `Quick test_checkpoint_compat;
        Alcotest.test_case "checkpoint atomic save" `Quick test_checkpoint_atomic_save;
        Alcotest.test_case "checkpoint refuses torn file" `Quick
          test_checkpoint_refuses_torn;
        prop_resume_equivalence;
        prop_chained_resume;
        Alcotest.test_case "parallel resume equivalence" `Quick test_parallel_resume;
        Alcotest.test_case "parallel deadline" `Quick test_parallel_deadline;
        Alcotest.test_case "parallel crash drill" `Quick test_parallel_crash_drill;
        Alcotest.test_case "parallel sink failure" `Quick
          test_sink_failure_keeps_root_uncommitted;
      ] );
  ]
