Edge churn end to end: diff two graphs into an SGRDIFF1 edit script,
replay it with mutate, and patch a finished enumeration with refresh.

The paper's exponential gadget (deterministic) is the base graph; the
edited version drops the 6-7 bridge and adds the 0-1 chord:

  $ scliques gen --family gadget -n 3 -o base.edges
  wrote base.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ grep -v '^6 7$' base.edges > edited.edges
  $ echo '0 1' >> edited.edges

diff writes the edit script; its output is binary, so -o is mandatory:

  $ scliques diff base.edges edited.edges
  scliques: diff writes binary output; -o is required
  [124]
  $ scliques diff base.edges edited.edges -o churn.diff
  wrote churn.diff: 2 edits (1 inserts, 1 deletes) against n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0

Node-count changes are edge churn no longer:

  $ scliques gen --family path -n 5 -o p5.edges
  wrote p5.edges: n=5 m=4 avg_deg=1.60 density=0.400000 max_deg=2 triangles=0
  $ scliques diff base.edges p5.edges -o bad.diff
  scliques: node counts differ (14 vs 5); diffs cover edge churn only
  [124]

mutate replays the script. Diffing its output against the edited graph
comes back empty, so replay is exact:

  $ scliques mutate base.edges --diff churn.diff -o mutated.edges
  applied 2 edits; wrote mutated.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=1
  $ scliques diff mutated.edges edited.edges -o zero.diff
  wrote zero.diff: 0 edits (0 inserts, 0 deletes) against n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=1

The binary snapshot path works the same way — load a .sgr, apply the
script, write a .sgr back:

  $ scliques convert base.edges --to bin -o base.sgr
  wrote base.sgr: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques mutate --format bin base.sgr --diff churn.diff --to bin
  scliques: --to bin writes binary output; -o is required
  [124]
  $ scliques mutate --format bin base.sgr --diff churn.diff --to bin -o mutated.sgr
  applied 2 edits; wrote mutated.sgr: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=1
  $ scliques enum --format bin mutated.sgr -s 2 | sort > after_bin.sorted
  $ scliques enum mutated.edges -s 2 | sort | diff - after_bin.sorted

Replay is strict: the script does not apply to a graph that is not its
base. The edited graph has the same n and m, so only replay itself can
catch the mismatch — and does:

  $ scliques mutate edited.edges --diff churn.diff 2>&1 | head -1
  scliques: error: churn.diff: Overlay.apply: ineffective insert +0-1

A finished enumeration of the base graph, streamed to a crash-safe
.results file — alongside which enum writes the SCLQIDX1 root→results
sidecar mapping every root to its byte extent and branch fingerprint:

  $ scliques enum base.edges -s 2 --checkpoint ck > before.txt
  $ wc -l < before.txt
  20
  $ ls ck.results ck.results.idx
  ck.results
  ck.results.idx

refresh applies the script, compares stored fingerprints to decide
which root branches to re-run, and patches only their byte extents into
the output stream — unchanged roots are copied verbatim, never decoded.
Its stdout is the complete refreshed answer, equal to a from-scratch
enumeration of the edited graph:

  $ scliques refresh base.edges --diff churn.diff --results ck.results -s 2 -o refreshed.results > refreshed.txt
  scliques: refresh: spliced 14 roots (223 bytes fresh, 0 bytes copied)
  scliques: refresh: 2 edits touching 4 nodes; 14 roots re-run, 0 skipped, +14 -20 results (14 total)
  $ scliques enum edited.edges -s 2 | sort > scratch.sorted
  $ sort refreshed.txt | diff - scratch.sorted
  $ ls refreshed.results.idx
  refreshed.results.idx

The patched stream written by -o is a real result stream: feeding it
back as the prior of a zero-edit refresh reproduces the same answer,
with nothing re-run:

  $ scliques refresh mutated.edges --diff zero.diff --results refreshed.results -s 2 > roundtrip.txt
  scliques: refresh: 0 edits touching 0 nodes; 0 roots re-run, 0 skipped, +0 -0 results (14 total)
  $ sort roundtrip.txt | diff - scratch.sorted

The sidecar is derived data, refused on any corruption: refresh notes
the refusal, falls back to digesting the before-graph itself, and still
produces the identical answer. An index that does not describe this
stream (wrong length, graph or s) is ignored the same way:

  $ cp ck.results bad.results
  $ cp ck.results.idx bad.results.idx
  $ printf 'x' | dd of=bad.results.idx bs=1 seek=20 conv=notrunc status=none
  $ scliques refresh base.edges --diff churn.diff --results bad.results -s 2 > fallback.txt
  scliques: refresh: ignoring index bad.results.idx (corrupt)
  scliques: refresh: 2 edits touching 4 nodes; 14 roots re-run, 0 skipped, +14 -20 results (14 total)
  $ sort fallback.txt | diff - scratch.sorted
  $ cp ck.results stale.results
  $ cp refreshed.results.idx stale.results.idx
  $ scliques refresh base.edges --diff churn.diff --results stale.results -s 2 > stale.txt
  scliques: refresh: ignoring index stale.results.idx (stale: wrong graph, s, or stream length)
  scliques: refresh: 2 edits touching 4 nodes; 14 roots re-run, 0 skipped, +14 -20 results (14 total)
  $ sort stale.txt | diff - scratch.sorted

Every refresh engine agrees — warm CSCliques1, parallel work stealing:

  $ scliques refresh base.edges --diff churn.diff --results ck.results -s 2 -a cs1 2>/dev/null | sort | diff - scratch.sorted
  $ scliques refresh base.edges --diff churn.diff --results ck.results -s 2 -a par --workers 2 2>/dev/null | sort | diff - scratch.sorted

Algorithms without a rooted decomposition cannot patch by root:

  $ scliques refresh base.edges --diff churn.diff --results ck.results -s 2 -a pd 2>&1 | head -1
  scliques: option '-a': PD has no rooted decomposition; refresh needs

A torn SGRDIFF1 tail is refused outright — a diff is a transaction, not
a stream, so half an edit script must never half-apply:

  $ head -c 40 churn.diff > torn.diff
  $ scliques mutate base.edges --diff torn.diff
  scliques: error: torn.diff: diff truncated reading edit record
  [1]
  $ scliques refresh base.edges --diff torn.diff --results ck.results -s 2
  scliques: error: torn.diff: diff truncated reading edit record
  [1]
  $ head -c 10 churn.diff > torn2.diff
  $ scliques mutate base.edges --diff torn2.diff
  scliques: error: torn2.diff: diff truncated reading header
  [1]

A diff against the wrong base graph is refused by the recorded header:

  $ scliques gen --family gadget -n 2 -o small.edges
  wrote small.edges: n=8 m=9 avg_deg=2.25 density=0.321429 max_deg=3 triangles=0
  $ scliques mutate small.edges --diff churn.diff
  scliques: error: churn.diff: diff base mismatch: recorded against n=14 m=19, graph has n=8 m=9
  [1]

And a torn prior stream is refused by refresh — patching an incomplete
answer would bake the missing tail in as "unaffected":

  $ size=$(wc -c < ck.results)
  $ head -c $((size - 3)) ck.results > torn.results
  $ scliques refresh base.edges --diff churn.diff --results torn.results -s 2
  scliques: error: torn.results: result stream has a torn tail (the prior run did not complete); re-enumerate instead of refreshing
  [1]
