The CLI end to end: generate, inspect, enumerate, convert.

Generating the paper's exponential gadget (Example 3.4) with n = 3:

  $ scliques gen --family gadget -n 3 -o gadget.edges
  wrote gadget.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0

Its statistics:

  $ scliques stats gadget.edges
  n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  components=1 degeneracy=2 approx_diameter=3 clustering=0.0000

It has 20 maximal connected 2-cliques (at least 2^3 = 8 from the v/v'
choices, plus those through the u nodes):

  $ scliques enum gadget.edges -s 2 --count
  20

Every algorithm agrees on the count:

  $ for a in pd cs1 cs2 cs2f cs2p cs2pf brute; do scliques enum gadget.edges -s 2 -a $a --count; done
  20
  20
  20
  20
  20
  20
  20

The first three results (deterministic ascending output of CSCliques2PF):

  $ scliques enum gadget.edges -s 2 --limit 3
  0 1 2 6 7
  0 1 5 6 7
  0 2 4 6 7

Size statistics of the whole output — every maximal connected 2-clique of
the gadget has exactly 5 nodes:

  $ scliques enum gadget.edges -s 2 --stats
  count=20 min=5 avg=5.00 max=5

Large-results mode keeps only sets of at least k nodes:

  $ scliques enum gadget.edges -s 2 --min-size 6 --count
  0

s = 1 degenerates to maximal cliques; the gadget is triangle-free, so all
of them are edges or stars... count them:

  $ scliques enum gadget.edges -s 1 --count
  19

The power graph G^2 (Remark 1) connects everything within distance 2:

  $ scliques power gadget.edges -s 2 | head -3
  # undirected graph: 14 nodes, 55 edges
  0 1
  0 2

Conversion to METIS and back preserves the graph:

  $ scliques convert gadget.edges --to metis -o gadget.graph
  wrote gadget.graph: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques convert gadget.graph --format metis --to edgelist | tail -n +2 > roundtrip.edges
  $ tail -n +2 gadget.edges | diff - roundtrip.edges

DOT export for visualization:

  $ scliques convert gadget.edges --to dot | head -3
  graph scliques {
    node [style=filled, fillcolor=white, shape=circle];
    0 [label="0", fillcolor="white"];

Errors are reported helpfully:

  $ scliques enum gadget.edges -s 0
  scliques: s must be >= 1
  [124]

  $ scliques enum missing.edges 2>&1 | head -1
  scliques: GRAPH argument: no 'missing.edges' file

The verify subcommand certifies results files:

  $ scliques enum gadget.edges -s 2 > results.txt
  $ scliques verify gadget.edges results.txt -s 2 --complete
  OK: 20 sets, all maximal connected 2-cliques, complete

Tampered results are rejected:

  $ head -1 results.txt > bad.txt
  $ scliques verify gadget.edges bad.txt -s 2 --complete 2>&1 | head -1
  scliques: incomplete: file has 1 sets, graph has 20
  $ echo "0 1" > notmax.txt
  $ scliques verify gadget.edges notmax.txt -s 2 2>&1 | head -1 | cut -c1-40
  scliques: certification failed: {0, 1} i
