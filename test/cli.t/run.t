The CLI end to end: generate, inspect, enumerate, convert.

Generating the paper's exponential gadget (Example 3.4) with n = 3:

  $ scliques gen --family gadget -n 3 -o gadget.edges
  wrote gadget.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0

Its statistics:

  $ scliques stats gadget.edges
  n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  components=1 degeneracy=2 approx_diameter=3 clustering=0.0000

It has 20 maximal connected 2-cliques (at least 2^3 = 8 from the v/v'
choices, plus those through the u nodes):

  $ scliques enum gadget.edges -s 2 --count
  20

Every algorithm agrees on the count:

  $ for a in pd cs1 cs2 cs2f cs2p cs2pf brute; do scliques enum gadget.edges -s 2 -a $a --count; done
  20
  20
  20
  20
  20
  20
  20

The work-stealing parallel engine agrees for every worker count, and its
canonicalized output is the same result set as the sequential run:

  $ for w in 1 2 3; do scliques enum gadget.edges -s 2 -a par --workers $w --count; done
  20
  20
  20
  $ scliques enum gadget.edges -s 2 -a cs2p | sort > seq.txt
  $ scliques enum gadget.edges -s 2 -a par --workers 3 | sort > par.txt
  $ diff seq.txt par.txt
  $ scliques enum gadget.edges -s 2 -a par > parres.txt
  $ scliques verify gadget.edges parres.txt -s 2 --complete
  OK: 20 sets, all maximal connected 2-cliques, complete

The first three results (deterministic ascending output of CSCliques2PF):

  $ scliques enum gadget.edges -s 2 --limit 3
  0 1 2 6 7
  0 1 5 6 7
  0 2 4 6 7

Size statistics of the whole output — every maximal connected 2-clique of
the gadget has exactly 5 nodes:

  $ scliques enum gadget.edges -s 2 --stats text
  count=20 min=5 avg=5.00 max=5

Machine-readable statistics: --stats json adds per-result delay quantiles
and the run's cache/search counters. The delay fields are wall-clock and
vary run to run, so they are collapsed here; everything else is
deterministic:

  $ scliques enum gadget.edges -s 2 --stats json | sed -E 's/"delay":\{[^}]*\}/"delay":{WALL_CLOCK}/'
  {"algorithm":"CSCliques2PF","s":2,"results":{"count":20,"min_size":5,"avg_size":5,"max_size":5,"total_nodes":100},"delay":{WALL_CLOCK},"counters":{"cs2.calls":59,"cs2.emits":20,"cs2.feasibility_prunes":6,"cs2.max_depth":5,"cs2.pivot_prunes":85,"nh.bfs_expansions":124,"nh.cache_evictions":0,"nh.cache_hits":223,"nh.cache_misses":14}}

The delay fields themselves have the right shape (count matches the 20
results; quantiles present):

  $ scliques enum gadget.edges -s 2 --stats json | grep -o '"delay":{"count":20,"mean":'
  "delay":{"count":20,"mean":

PolyDelayEnum's delay, observed deterministically: the counter
pd.max_extend_calls_between_emits records the most ExtendMax invocations
between two consecutive emissions — a machine-independent proxy for
Theorem 4.2's per-result delay. On path graphs it stays constant as the
input grows fourfold:

  $ scliques gen --family path -n 64 -o p64.edges
  wrote p64.edges: n=64 m=63 avg_deg=1.97 density=0.031250 max_deg=2 triangles=0
  $ scliques gen --family path -n 256 -o p256.edges
  wrote p256.edges: n=256 m=255 avg_deg=1.99 density=0.007812 max_deg=2 triangles=0
  $ for f in p64.edges p256.edges; do scliques enum $f -s 2 -a pd --stats json | grep -o '"pd.max_extend_calls_between_emits":[0-9]*'; done
  "pd.max_extend_calls_between_emits":4
  "pd.max_extend_calls_between_emits":4

Large-results mode keeps only sets of at least k nodes:

  $ scliques enum gadget.edges -s 2 --min-size 6 --count
  0

s = 1 degenerates to maximal cliques; the gadget is triangle-free, so all
of them are edges or stars... count them:

  $ scliques enum gadget.edges -s 1 --count
  19

The power graph G^2 (Remark 1) connects everything within distance 2:

  $ scliques power gadget.edges -s 2 | head -3
  # undirected graph: 14 nodes, 55 edges
  0 1
  0 2

Conversion to METIS and back preserves the graph:

  $ scliques convert gadget.edges --to metis -o gadget.graph
  wrote gadget.graph: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques convert gadget.graph --format metis --to edgelist | tail -n +2 > roundtrip.edges
  $ tail -n +2 gadget.edges | diff - roundtrip.edges

DOT export for visualization:

  $ scliques convert gadget.edges --to dot | head -3
  graph scliques {
    node [style=filled, fillcolor=white, shape=circle];
    0 [label="0", fillcolor="white"];

Binary snapshots: convert --to bin writes a CRC-checked CSR snapshot that
loads without parsing and enumerates identically:

  $ scliques convert gadget.edges --to bin -o gadget.sgr
  wrote gadget.sgr: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques enum --format bin gadget.sgr -s 2 | sort | diff - seq.txt
  $ scliques stats --format bin gadget.sgr | head -1
  n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0

Binary output has no text form, so -o is mandatory:

  $ scliques convert gadget.edges --to bin
  scliques: --to bin writes binary output; -o is required
  [124]

A truncated or bit-flipped snapshot is refused, not parsed as garbage:

  $ head -c 40 gadget.sgr > torn.sgr
  $ scliques stats --format bin torn.sgr
  scliques: error: torn.sgr: snapshot truncated reading offsets
  [1]
  $ printf 'x' >> gadget.sgr
  $ scliques stats --format bin gadget.sgr
  scliques: error: gadget.sgr: snapshot has trailing bytes
  [1]

--relabel renumbers into degeneracy order; the graph is isomorphic (same
sizes, same result count) under the new ids:

  $ scliques convert gadget.edges --to bin --relabel -o relabeled.sgr
  wrote relabeled.sgr: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques enum --format bin relabeled.sgr -s 2 --count
  20

Errors are reported helpfully:

  $ scliques enum gadget.edges -s 0
  scliques: s must be >= 1
  [124]

  $ scliques enum missing.edges 2>&1 | head -1
  scliques: GRAPH argument: no 'missing.edges' file

The verify subcommand certifies results files:

  $ scliques enum gadget.edges -s 2 > results.txt
  $ scliques verify gadget.edges results.txt -s 2 --complete
  OK: 20 sets, all maximal connected 2-cliques, complete

Tampered results are rejected:

  $ head -1 results.txt > bad.txt
  $ scliques verify gadget.edges bad.txt -s 2 --complete 2>&1 | head -1
  scliques: incomplete: file has 1 sets, graph has 20
  $ echo "0 1" > notmax.txt
  $ scliques verify gadget.edges notmax.txt -s 2 2>&1 | head -1 | cut -c1-40
  scliques: certification failed: {0, 1} i

Budgeted runs: --max-results truncates with exit code 3 and writes a
resumable checkpoint. PolyDelayEnum stops at exactly the cap (its
emission unit is one dequeue):

  $ scliques enum gadget.edges -s 2 -a pd --max-results 3 --checkpoint pd.ck
  0 1 2 6 7
  1 2 3 6 7
  0 2 4 6 7
  scliques: truncated (max-results); checkpoint written to pd.ck
  [3]

Resuming produces the other 17 results and nothing twice — the union of
the two runs is exactly the uninterrupted enumeration — and a completed
resume consumes the checkpoint:

  $ scliques enum gadget.edges -s 2 -a pd --max-results 3 --checkpoint pd.ck > part1.txt 2>/dev/null
  [3]
  $ scliques enum gadget.edges -s 2 -a pd --resume pd.ck > part2.txt
  $ wc -l < part2.txt
  17
  $ scliques enum gadget.edges -s 2 -a pd | sort > all.sorted
  $ cat part1.txt part2.txt | sort | diff - all.sorted
  $ test -f pd.ck
  [1]

The rooted algorithms commit whole root subtrees, so --max-results
overshoots to the end of the capping root (here root 0 owns 7 results)
but the resume partition is still exact:

  $ scliques enum gadget.edges -s 2 -a cs2pf --max-results 3 --checkpoint r.ck > r1.txt
  scliques: truncated (max-results); checkpoint written to r.ck
  [3]
  $ wc -l < r1.txt
  7
  $ scliques enum gadget.edges -s 2 -a cs2pf --resume r.ck > r2.txt
  $ cat r1.txt r2.txt | sort | diff - all.sorted

A zero deadline trips before any work — deterministic truncation — and
the resumed run then does everything:

  $ scliques enum gadget.edges -s 2 -a cs2pf --deadline 0 --checkpoint d.ck
  scliques: truncated (deadline); checkpoint written to d.ck
  [3]
  $ scliques enum gadget.edges -s 2 -a cs2pf --resume d.ck | sort | diff - all.sorted

SIGINT cancels cooperatively: the handler trips the budget's cancel
token, the stream is flushed, and a checkpoint lands. (--sigint-after
raises the real signal in-process after N results.)

  $ scliques enum gadget.edges -s 2 -a pd --sigint-after 2 --checkpoint int.ck > int1.txt
  scliques: truncated (cancelled); checkpoint written to int.ck
  [3]
  $ scliques enum gadget.edges -s 2 -a pd --resume int.ck > int2.txt
  $ cat int1.txt int2.txt | sort | diff - all.sorted

The parallel engine shares the same "roots" checkpoint family as the
CSCliques2 variants, so a truncated parallel run resumes — even across
engines, here finished sequentially by CSCliques2P:

  $ scliques enum gadget.edges -s 2 -a par --workers 2 --max-results 4 --checkpoint par.ck > par1.txt
  scliques: truncated (max-results); checkpoint written to par.ck
  [3]
  $ scliques enum gadget.edges -s 2 -a cs2p --resume par.ck > par2.txt
  $ cat par1.txt par2.txt | sort | diff - all.sorted

Without --checkpoint a truncated run still exits 3 but keeps nothing:

  $ scliques enum gadget.edges -s 2 --deadline 0 2>&1
  scliques: truncated (deadline); no --checkpoint, progress lost
  [3]

Checkpoint misuse is refused with exit code 1 — wrong parameters, wrong
algorithm family, or a file that is no checkpoint at all:

  $ scliques enum gadget.edges -s 2 -a cs2pf --max-results 2 --checkpoint m.ck > /dev/null 2>&1
  [3]
  $ scliques enum gadget.edges -s 3 -a cs2pf --resume m.ck
  scliques: error: checkpoint mismatch: s is 2 in the checkpoint but 3 in this run
  [1]
  $ scliques enum gadget.edges -s 2 -a pd --resume m.ck
  scliques: error: checkpoint m.ck holds a "roots" state; algorithm PD needs "pd"
  [1]
  $ echo junk > junk.ck
  $ scliques enum gadget.edges -s 2 --resume junk.ck
  scliques: error: junk.ck: not a scliques stream (bad magic)
  [1]

Budget flags and the report-shaping flags are mutually exclusive:

  $ scliques enum gadget.edges -s 2 --max-results 2 --count 2>&1 | head -1
  scliques: --deadline/--max-results/--checkpoint/--resume/--sigint-after cannot be combined with --limit, --count or --stats
