The CLI end to end: generate, inspect, enumerate, convert.

Generating the paper's exponential gadget (Example 3.4) with n = 3:

  $ scliques gen --family gadget -n 3 -o gadget.edges
  wrote gadget.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0

Its statistics:

  $ scliques stats gadget.edges
  n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  components=1 degeneracy=2 approx_diameter=3 clustering=0.0000

It has 20 maximal connected 2-cliques (at least 2^3 = 8 from the v/v'
choices, plus those through the u nodes):

  $ scliques enum gadget.edges -s 2 --count
  20

Every algorithm agrees on the count:

  $ for a in pd cs1 cs2 cs2f cs2p cs2pf brute; do scliques enum gadget.edges -s 2 -a $a --count; done
  20
  20
  20
  20
  20
  20
  20

The work-stealing parallel engine agrees for every worker count, and its
canonicalized output is the same result set as the sequential run:

  $ for w in 1 2 3; do scliques enum gadget.edges -s 2 -a par --workers $w --count; done
  20
  20
  20
  $ scliques enum gadget.edges -s 2 -a cs2p | sort > seq.txt
  $ scliques enum gadget.edges -s 2 -a par --workers 3 | sort > par.txt
  $ diff seq.txt par.txt
  $ scliques enum gadget.edges -s 2 -a par > parres.txt
  $ scliques verify gadget.edges parres.txt -s 2 --complete
  OK: 20 sets, all maximal connected 2-cliques, complete

The first three results (deterministic ascending output of CSCliques2PF):

  $ scliques enum gadget.edges -s 2 --limit 3
  0 1 2 6 7
  0 1 5 6 7
  0 2 4 6 7

Size statistics of the whole output — every maximal connected 2-clique of
the gadget has exactly 5 nodes:

  $ scliques enum gadget.edges -s 2 --stats text
  count=20 min=5 avg=5.00 max=5

Machine-readable statistics: --stats json adds per-result delay quantiles
and the run's cache/search counters. The delay fields are wall-clock and
vary run to run, so they are collapsed here; everything else is
deterministic:

  $ scliques enum gadget.edges -s 2 --stats json | sed -E 's/"delay":\{[^}]*\}/"delay":{WALL_CLOCK}/'
  {"algorithm":"CSCliques2PF","s":2,"results":{"count":20,"min_size":5,"avg_size":5,"max_size":5,"total_nodes":100},"delay":{WALL_CLOCK},"counters":{"cs2.calls":59,"cs2.emits":20,"cs2.feasibility_prunes":6,"cs2.max_depth":5,"cs2.pivot_prunes":85,"nh.bfs_expansions":124,"nh.cache_evictions":0,"nh.cache_hits":223,"nh.cache_misses":14}}

The delay fields themselves have the right shape (count matches the 20
results; quantiles present):

  $ scliques enum gadget.edges -s 2 --stats json | grep -o '"delay":{"count":20,"mean":'
  "delay":{"count":20,"mean":

PolyDelayEnum's delay, observed deterministically: the counter
pd.max_extend_calls_between_emits records the most ExtendMax invocations
between two consecutive emissions — a machine-independent proxy for
Theorem 4.2's per-result delay. On path graphs it stays constant as the
input grows fourfold:

  $ scliques gen --family path -n 64 -o p64.edges
  wrote p64.edges: n=64 m=63 avg_deg=1.97 density=0.031250 max_deg=2 triangles=0
  $ scliques gen --family path -n 256 -o p256.edges
  wrote p256.edges: n=256 m=255 avg_deg=1.99 density=0.007812 max_deg=2 triangles=0
  $ for f in p64.edges p256.edges; do scliques enum $f -s 2 -a pd --stats json | grep -o '"pd.max_extend_calls_between_emits":[0-9]*'; done
  "pd.max_extend_calls_between_emits":4
  "pd.max_extend_calls_between_emits":4

Large-results mode keeps only sets of at least k nodes:

  $ scliques enum gadget.edges -s 2 --min-size 6 --count
  0

s = 1 degenerates to maximal cliques; the gadget is triangle-free, so all
of them are edges or stars... count them:

  $ scliques enum gadget.edges -s 1 --count
  19

The power graph G^2 (Remark 1) connects everything within distance 2:

  $ scliques power gadget.edges -s 2 | head -3
  # undirected graph: 14 nodes, 55 edges
  0 1
  0 2

Conversion to METIS and back preserves the graph:

  $ scliques convert gadget.edges --to metis -o gadget.graph
  wrote gadget.graph: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques convert gadget.graph --format metis --to edgelist | tail -n +2 > roundtrip.edges
  $ tail -n +2 gadget.edges | diff - roundtrip.edges

DOT export for visualization:

  $ scliques convert gadget.edges --to dot | head -3
  graph scliques {
    node [style=filled, fillcolor=white, shape=circle];
    0 [label="0", fillcolor="white"];

Errors are reported helpfully:

  $ scliques enum gadget.edges -s 0
  scliques: s must be >= 1
  [124]

  $ scliques enum missing.edges 2>&1 | head -1
  scliques: GRAPH argument: no 'missing.edges' file

The verify subcommand certifies results files:

  $ scliques enum gadget.edges -s 2 > results.txt
  $ scliques verify gadget.edges results.txt -s 2 --complete
  OK: 20 sets, all maximal connected 2-cliques, complete

Tampered results are rejected:

  $ head -1 results.txt > bad.txt
  $ scliques verify gadget.edges bad.txt -s 2 --complete 2>&1 | head -1
  scliques: incomplete: file has 1 sets, graph has 20
  $ echo "0 1" > notmax.txt
  $ scliques verify gadget.edges notmax.txt -s 2 2>&1 | head -1 | cut -c1-40
  scliques: certification failed: {0, 1} i
