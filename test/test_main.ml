(* Aggregated alcotest entry point: every suite from every test module. *)

let () =
  Alcotest.run "scliques"
    (Test_collections.suites @ Test_node_set.suites @ Test_graph.suites @ Test_metis.suites
   @ Test_traversal.suites @ Test_gen.suites @ Test_core_units.suites
   @ Test_algorithms.suites @ Test_hardness.suites @ Test_relaxations.suites
   @ Test_parallel_dot.suites @ Test_hereditary.suites @ Test_orderings.suites
   @ Test_families.suites @ Test_fuzz.suites @ Test_properties.suites
   @ Test_obs.suites @ Test_differential.suites @ Test_resume.suites
   @ Test_snapshot.suites @ Test_churn.suites @ Test_daemon.suites)
