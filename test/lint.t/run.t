scliques-lint self-tests: each rule has a known-bad fixture that must
produce a documented finding, plus a clean fixture and a suppression
fixture that must produce none. Fixtures are compiled here with
bin_annot so the linter sees the same typed trees dune produces.

  $ ocamlc -bin-annot -c bad_poly.ml bad_unsafe.ml bitset.ml bad_swallow.ml bad_lock.ml clean.ml suppressed.ml

poly-compare. bad_poly.ml seeds the exact bug once shipped in
Node_set.dedup_sorted: an unannotated body generalizing to 'a array, so
(<>) runs the polymorphic compare per element. It also passes [max]
unapplied and creates a string-keyed Hashtbl with the default hash:

  $ scliques-lint bad_poly.cmt
  bad_poly.ml:10:17: poly-compare: (<>) instantiated at a type variable: the body generalized, so every call is the polymorphic runtime compare
    hint: annotate the operand type (e.g. (x : int)) so the comparison is monomorphic
  bad_poly.ml:19:28: poly-compare: generic Stdlib.max passed as a value: an unapplied primitive is compiled as the polymorphic runtime compare, even at int
    hint: use Int.max
  bad_poly.ml:22:12: poly-compare: Hashtbl.create with non-immediate key type string: every probe pays polymorphic hash + structural equality
    hint: encode the key as an int or use Hashtbl.Make with explicit equal/hash
  3 finding(s)
  [1]

unsafe-allowlist, outside the allowlist: both the stdlib unsafe access
and the call to a repo-style unsafe_* function are rejected in a module
that is not Bitset or Node_set:

  $ scliques-lint bad_unsafe.cmt
  bad_unsafe.ml:2:36: unsafe-allowlist: Stdlib.Array.unsafe_get used in module Bad_unsafe, which is not on the unsafe allowlist
    hint: move the kernel into an allowlisted module (Bitset, Node_set) or justify the site with [@lint.allow "unsafe-allowlist"] plus a (* SAFETY: ... *) comment
  bad_unsafe.ml:5:31: unsafe-allowlist: unsafe_head used in module Bad_unsafe, which is not on the unsafe allowlist
    hint: move the kernel into an allowlisted module (Bitset, Node_set) or justify the site with [@lint.allow "unsafe-allowlist"] plus a (* SAFETY: ... *) comment
  2 finding(s)
  [1]

unsafe-allowlist, inside the allowlist: this fixture is module Bitset,
so unsafe sites are permitted — but only under a SAFETY comment. The
first site has none and is flagged; the second is covered:

  $ scliques-lint bitset.cmt
  bitset.ml:4:37: unsafe-allowlist: Stdlib.Array.unsafe_get call site has no (* SAFETY: ... *) comment in scope
    hint: state the bounds argument in a (* SAFETY: ... *) comment on the enclosing binding
  1 finding(s)
  [1]

exception-swallow: the catch-all that drops the exception is flagged;
the catch-all that re-raises is not, and neither is a backstop whose
handler ends in a never-returning raiser like Io_error.fail (the loader
pattern: stray exceptions converted to structured Parse_error):

  $ scliques-lint bad_swallow.cmt
  bad_swallow.ml:2:26: exception-swallow: catch-all exception handler that never re-raises: a crash in the guarded code (worker body, parser loop) is silently swallowed
    hint: match the exceptions you expect explicitly and re-raise the rest (| e -> ...; raise e), or use Fun.protect for cleanup
  1 finding(s)
  [1]

lock-discipline: hand-paired Mutex.lock/unlock outside the Sync helper:

  $ scliques-lint bad_lock.cmt
  bad_lock.ml:5:2: lock-discipline: direct Stdlib.Mutex.lock in module Bad_lock: hand-paired lock/unlock loses the lock on any exception between them
    hint: route the critical section through Scoll.Sync.with_lock (Fun.protect pairs the unlock on every exit path)
  bad_lock.ml:7:2: lock-discipline: direct Stdlib.Mutex.unlock in module Bad_lock: hand-paired lock/unlock loses the lock on any exception between them
    hint: route the critical section through Scoll.Sync.with_lock (Fun.protect pairs the unlock on every exit path)
  2 finding(s)
  [1]

Clean code produces no findings and exits 0:

  $ scliques-lint clean.cmt

Per-site [@lint.allow "rule-id"] suppresses a finding without moving the
code (suppressed.ml repeats bad_poly's generic compare and an unsafe
access under the attribute):

  $ scliques-lint suppressed.cmt

The JSON output is machine-stable: same findings, one object per site:

  $ scliques-lint --json bad_swallow.cmt
  {
    "findings": [
      {"file": "bad_swallow.ml", "line": 2, "col": 26, "rule": "exception-swallow", "message": "catch-all exception handler that never re-raises: a crash in the guarded code (worker body, parser loop) is silently swallowed", "hint": "match the exceptions you expect explicitly and re-raise the rest (| e -> ...; raise e), or use Fun.protect for cleanup"}
    ],
    "count": 1
  }
  [1]

--rules restricts the run to a subset, so the poly findings vanish when
only the unsafe rule is requested:

  $ scliques-lint --rules unsafe-allowlist bad_poly.cmt

Pointing the tool at a tree with no compiled cmt files is an error, not
a vacuous pass:

  $ mkdir empty && scliques-lint empty
  scliques-lint: no .cmt files under: empty
  [2]
