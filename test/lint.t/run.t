scliques-lint self-tests: each rule has a known-bad fixture that must
produce a documented finding, plus a clean fixture and a suppression
fixture that must produce none. Fixtures are compiled here with
bin_annot so the linter sees the same typed trees dune produces.

  $ ocamlc -bin-annot -c bad_poly.ml bad_unsafe.ml bitset.ml bad_swallow.ml bad_lock.ml clean.ml suppressed.ml
  $ ocamlc -bin-annot -c bad_domain.ml bad_join.ml bad_lock_order.ml bad_atomicity.ml suppressed_conc.ml
  $ ocamlc -bin-annot -I +unix -c bad_fd.ml

poly-compare. bad_poly.ml seeds the exact bug once shipped in
Node_set.dedup_sorted: an unannotated body generalizing to 'a array, so
(<>) runs the polymorphic compare per element. It also passes [max]
unapplied and creates a string-keyed Hashtbl with the default hash:

  $ scliques-lint bad_poly.cmt
  bad_poly.ml:10:17: poly-compare: (<>) instantiated at a type variable: the body generalized, so every call is the polymorphic runtime compare
    hint: annotate the operand type (e.g. (x : int)) so the comparison is monomorphic
  bad_poly.ml:19:28: poly-compare: generic Stdlib.max passed as a value: an unapplied primitive is compiled as the polymorphic runtime compare, even at int
    hint: use Int.max
  bad_poly.ml:22:12: poly-compare: Hashtbl.create with non-immediate key type string: every probe pays polymorphic hash + structural equality
    hint: encode the key as an int or use Hashtbl.Make with explicit equal/hash
  3 finding(s)
  [1]

unsafe-allowlist, outside the allowlist: both the stdlib unsafe access
and the call to a repo-style unsafe_* function are rejected in a module
that is not Bitset or Node_set:

  $ scliques-lint bad_unsafe.cmt
  bad_unsafe.ml:2:36: unsafe-allowlist: Stdlib.Array.unsafe_get used in module Bad_unsafe, which is not on the unsafe allowlist
    hint: move the kernel into an allowlisted module (Bitset, Node_set) or justify the site with [@lint.allow "unsafe-allowlist"] plus a (* SAFETY: ... *) comment
  bad_unsafe.ml:5:31: unsafe-allowlist: unsafe_head used in module Bad_unsafe, which is not on the unsafe allowlist
    hint: move the kernel into an allowlisted module (Bitset, Node_set) or justify the site with [@lint.allow "unsafe-allowlist"] plus a (* SAFETY: ... *) comment
  2 finding(s)
  [1]

unsafe-allowlist, inside the allowlist: this fixture is module Bitset,
so unsafe sites are permitted — but only under a SAFETY comment. The
first site has none and is flagged; the second is covered:

  $ scliques-lint bitset.cmt
  bitset.ml:4:37: unsafe-allowlist: Stdlib.Array.unsafe_get call site has no (* SAFETY: ... *) comment in scope
    hint: state the bounds argument in a (* SAFETY: ... *) comment on the enclosing binding
  1 finding(s)
  [1]

exception-swallow: the catch-all that drops the exception is flagged;
the catch-all that re-raises is not, and neither is a backstop whose
handler ends in a never-returning raiser like Io_error.fail (the loader
pattern: stray exceptions converted to structured Parse_error):

  $ scliques-lint bad_swallow.cmt
  bad_swallow.ml:2:26: exception-swallow: catch-all exception handler that never re-raises: a crash in the guarded code (worker body, parser loop) is silently swallowed
    hint: match the exceptions you expect explicitly and re-raise the rest (| e -> ...; raise e), or use Fun.protect for cleanup
  1 finding(s)
  [1]

lock-discipline: hand-paired Mutex.lock/unlock outside the Sync helper:

  $ scliques-lint bad_lock.cmt
  bad_lock.ml:5:2: lock-discipline: direct Stdlib.Mutex.lock in module Bad_lock: hand-paired lock/unlock loses the lock on any exception between them
    hint: route the critical section through Scoll.Sync.with_lock (Fun.protect pairs the unlock on every exit path)
  bad_lock.ml:7:2: lock-discipline: direct Stdlib.Mutex.unlock in module Bad_lock: hand-paired lock/unlock loses the lock on any exception between them
    hint: route the critical section through Scoll.Sync.with_lock (Fun.protect pairs the unlock on every exit path)
  2 finding(s)
  [1]

domain-escape. bad_domain.ml minimizes the pool-resize bug once
shipped in Parallel: the spawned closure captures a record snapshot and
reads its mutable field with no lock while the parent keeps writing:

  $ scliques-lint bad_domain.cmt
  bad_domain.ml:14:34: domain-escape: mutable field bad_domain.live is captured by a Domain.spawn closure and read outside any Sync.with_lock region
    hint: make the state Atomic.t, guard every access with Scoll.Sync.with_lock, or annotate the deliberate site with [@lint.allow "domain-escape"] plus a (* SAFETY: ... *) comment
  1 finding(s)
  [1]

lock-order, blocking: bad_join.ml minimizes the worker-pool join
deadlock — Domain.join while holding a lock the joined domain may need:

  $ scliques-lint bad_join.cmt
  bad_join.ml:10:45: lock-order: blocking call Domain.join while holding lock Bad_join.m
    hint: move the blocking operation outside the critical section, or annotate the deliberate site with [@lint.allow "lock-order"] plus a (* SAFETY: ... *) comment
  1 finding(s)
  [1]

lock-order, cycles: two locks nested in opposite orders on two paths —
each closing edge of the AB/BA cycle is reported at its inner acquire:

  $ scliques-lint bad_lock_order.cmt
  bad_lock_order.ml:11:59: lock-order: lock-order cycle: Bad_lock_order.b is acquired while holding Bad_lock_order.a, and another path acquires them in the opposite order
    hint: impose one global acquisition order for these locks (document it in DESIGN.md §15) or restructure so only one is held at a time; annotate a proven-disjoint protocol with [@lint.allow "lock-order"] plus a (* SAFETY: ... *) comment
  bad_lock_order.ml:12:60: lock-order: lock-order cycle: Bad_lock_order.a is acquired while holding Bad_lock_order.b, and another path acquires them in the opposite order
    hint: impose one global acquisition order for these locks (document it in DESIGN.md §15) or restructure so only one is held at a time; annotate a proven-disjoint protocol with [@lint.allow "lock-order"] plus a (* SAFETY: ... *) comment
  2 finding(s)
  [1]

atomicity: the write path takes the lock, the read path does not:

  $ scliques-lint bad_atomicity.cmt
  bad_atomicity.ml:13:13: atomicity: mutable field bad_atomicity.count is accessed both under Sync.with_lock and outside it; this unlocked read races with the locked sites
    hint: hold the same lock on every access, make the state Atomic.t, or annotate the deliberate site with [@lint.allow "atomicity"] plus a (* SAFETY: ... *) comment
  1 finding(s)
  [1]

fd-lifecycle: a socket returned bare, never reaching a close, a channel
conversion, or an fd-owner in its binding scope:

  $ scliques-lint bad_fd.cmt
  bad_fd.ml:5:11: fd-lifecycle: file descriptor from Unix.socket does not reach Fun.protect, a close function, or a recognized owner in its binding scope
    hint: close it on every path (Fun.protect ~finally), convert it with Unix.in_channel_of_descr/out_channel_of_descr, pass it to an fd-owner (--fd-owners), or annotate the transfer with [@lint.allow "fd-lifecycle"] plus a (* SAFETY: ... *) comment
  1 finding(s)
  [1]

Clean code produces no findings and exits 0:

  $ scliques-lint clean.cmt

Per-site [@lint.allow "rule-id"] suppresses a finding without moving the
code (suppressed.ml repeats bad_poly's generic compare and an unsafe
access under the attribute):

  $ scliques-lint suppressed.cmt

The same annotation (plus the SAFETY comment the review convention
requires) is how a deliberate concurrency pattern is kept: this fixture
repeats bad_atomicity's unlocked read under the attribute:

  $ scliques-lint suppressed_conc.cmt

The JSON output is machine-stable: same findings, one object per site:

  $ scliques-lint --json bad_swallow.cmt
  {
    "findings": [
      {"file": "bad_swallow.ml", "line": 2, "col": 26, "rule": "exception-swallow", "message": "catch-all exception handler that never re-raises: a crash in the guarded code (worker body, parser loop) is silently swallowed", "hint": "match the exceptions you expect explicitly and re-raise the rest (| e -> ...; raise e), or use Fun.protect for cleanup"}
    ],
    "count": 1
  }
  [1]

The global rules emit through the same stable JSON sink:

  $ scliques-lint --json bad_atomicity.cmt
  {
    "findings": [
      {"file": "bad_atomicity.ml", "line": 13, "col": 13, "rule": "atomicity", "message": "mutable field bad_atomicity.count is accessed both under Sync.with_lock and outside it; this unlocked read races with the locked sites", "hint": "hold the same lock on every access, make the state Atomic.t, or annotate the deliberate site with [@lint.allow \"atomicity\"] plus a (* SAFETY: ... *) comment"}
    ],
    "count": 1
  }
  [1]

--rules restricts the run to a subset, so the poly findings vanish when
only the unsafe rule is requested:

  $ scliques-lint --rules unsafe-allowlist bad_poly.cmt

and the global rules filter the same way — the join-deadlock fixture is
clean when only fd-lifecycle is requested:

  $ scliques-lint --rules fd-lifecycle bad_join.cmt

Pointing the tool at a tree with no compiled cmt files is an error, not
a vacuous pass:

  $ mkdir empty && scliques-lint empty
  scliques-lint: no .cmt files under: empty
  [2]

A .cmt older than its source describes a tree that no longer exists;
by default the run refuses (exit 2) rather than lint stale code. This
must stay the last test: it invalidates bad_poly.cmt.

  $ touch bad_poly.ml
  $ scliques-lint bad_poly.cmt
  scliques-lint: stale .cmt: bad_poly.cmt is older than bad_poly.ml — rebuild first
  scliques-lint: refusing to analyze a stale tree (pass --no-mtime-check if freshness is guaranteed by other means)
  [2]

--no-mtime-check is the escape hatch for build systems (dune's cache)
that guarantee freshness by content, not timestamps:

  $ scliques-lint --no-mtime-check --rules lock-discipline bad_poly.cmt
