(* allowlisted module: unsafe sites are permitted, but only when a
   nearby safety comment documents the bounds argument — the first
   function below has none *)
let unsafe_first (arr : int array) = Array.unsafe_get arr 0

(* SAFETY: the caller checks Array.length arr > 1 *)
let unsafe_second (arr : int array) = Array.unsafe_get arr 1
