(* unsafe accesses outside the allowlisted modules *)
let unsafe_head (arr : int array) = Array.unsafe_get arr 0

let head_or_zero (arr : int array) =
  if Array.length arr > 0 then unsafe_head arr else 0
