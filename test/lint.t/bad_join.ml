(* Minimized from the worker-pool join deadlock: joining a domain while
   holding the lock that domain needs in order to finish. *)

module Sync = struct
  let with_lock _m f = f ()
end

let m = Mutex.create ()

let wait_for d = Sync.with_lock m (fun () -> Domain.join d)
