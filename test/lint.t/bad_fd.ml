(* The socket neither reaches a close on any path nor a recognized
   owner: returned bare, it leaks if the caller forgets it. *)

let leak () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  ignore (Unix.getsockname fd);
  fd
