(* Minimized from the pool-resize bug once shipped in Parallel: the
   spawned closure captured a record *snapshot*, so it kept reading a
   dead copy of [live] while the parent mutated the original — and
   neither side held a lock. *)

module Sync = struct
  let with_lock _m f = f ()
end

type pool = { mutable live : int; lock : Mutex.t }

let resize p =
  let snapshot = { p with live = 0 } in
  let d = Domain.spawn (fun () -> snapshot.live) in
  p.live <- p.live + 1;
  ignore (Domain.join d)
