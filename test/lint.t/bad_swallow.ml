(* a catch-all handler that drops the exception on the floor *)
let run f = try f () with _ -> ()

(* catch-all that re-raises: reported state, nothing hidden *)
let guarded f =
  try f ()
  with e ->
    print_endline "failed";
    raise e

(* a catch-all backstop that converts the stray exception into a
   structured error via a never-returning raiser: the failure still
   propagates (typed), so this is not a swallow *)
module Io_error = struct
  exception Parse_error of string

  let fail msg = raise (Parse_error msg)
end

let structured f =
  try f () with
  | Io_error.Parse_error _ as e -> raise e
  | e -> Io_error.fail (Printexc.to_string e)
