(* a catch-all handler that drops the exception on the floor *)
let run f = try f () with _ -> ()

(* catch-all that re-raises: reported state, nothing hidden *)
let guarded f =
  try f ()
  with e ->
    print_endline "failed";
    raise e
