(* The exact shape of the dedup bug once shipped in Node_set: the body
   is unannotated, so it generalizes to ['a array] and every (<>) below
   compiles to a call into the polymorphic runtime compare. *)
let dedup_sorted arr =
  let n = Array.length arr in
  if n = 0 then arr
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if arr.(r) <> arr.(!w - 1) then begin
        arr.(!w) <- arr.(r);
        incr w
      end
    done;
    if !w = n then arr else Array.sub arr 0 !w
  end

(* passing [max] unapplied keeps it generic even over int elements *)
let max_of = List.fold_left max 0

(* a table keyed by a non-immediate type pays polymorphic hashing *)
let index = Hashtbl.create 16

let register name v = Hashtbl.replace index (name : string) (v : int)
