(* SAFETY: the unlocked read below is a monitoring heuristic — staleness
   is acceptable, and every write path is fully locked. The annotation
   plus this comment is the reviewed way to keep such a site. *)

module Sync = struct
  let with_lock _m f = f ()
end

let m = Mutex.create ()

type t = { mutable count : int }

let bump t = Sync.with_lock m (fun () -> t.count <- t.count + 1)
let peek t = (t.count [@lint.allow "atomicity"])
