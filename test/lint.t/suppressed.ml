(* the same generic comparison as bad_poly, acknowledged per-site *)
let generic_equal a b = (a = b) [@lint.allow "poly-compare"]

(* SAFETY: index 0 exists, length is checked by the caller *)
let unsafe_head (arr : int array) =
  (Array.unsafe_get arr 0) [@lint.allow "unsafe-allowlist"]
