(* pinned comparisons, no unsafe accesses, no handlers: zero findings *)
let sum (arr : int array) = Array.fold_left ( + ) 0 arr

let max3 a b c : int = Int.max a (Int.max b c)

let mem (arr : int array) (x : int) = Array.exists (fun y -> y = x) arr

let index : (int, string) Hashtbl.t = Hashtbl.create 16
