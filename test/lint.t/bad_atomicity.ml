(* Mixed discipline: the write path takes the lock, the read path does
   not — the unlocked read races with the locked increment. *)

module Sync = struct
  let with_lock _m f = f ()
end

let m = Mutex.create ()

type t = { mutable count : int }

let bump t = Sync.with_lock m (fun () -> t.count <- t.count + 1)
let peek t = t.count
