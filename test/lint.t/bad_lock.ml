let m = Mutex.create ()

(* an early return or exception in [f] leaves [m] held forever *)
let unbalanced f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r
