(* Two locks acquired in opposite orders on two paths: the classic
   AB/BA deadlock, visible statically in the acquisition graph. *)

module Sync = struct
  let with_lock _m f = f ()
end

let a = Mutex.create ()
let b = Mutex.create ()

let forward f = Sync.with_lock a (fun () -> Sync.with_lock b f)
let backward f = Sync.with_lock b (fun () -> Sync.with_lock a f)
