(* Closed-form ground truths on structured graph families, checked for
   every algorithm — strong regression anchors beyond random testing.

   Derivations (for n > 2s + 1 where relevant):
   - cycle C_n: a connected s-clique is an arc of consecutive nodes; an
     arc of k nodes has internal diameter k - 1, so maximal arcs have
     exactly s + 1 nodes and there are n of them (one per start).
   - path P_n: same arcs without wraparound: n - s of them.
   - star S_n (s >= 2): every pair of leaves is at distance 2 through the
     hub, so the whole star is the unique maximal set.
   - complete multipartite (diameter 2, s = 2): the whole node set.
   - complete bipartite (diameter 2, s >= 2): the whole node set. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module E = Scliques_core.Enumerate

let check = Alcotest.check
let int = Alcotest.int

let all_sizes results = List.sort_uniq compare (List.map NS.cardinal results)

let for_each_algorithm name f =
  List.map
    (fun alg ->
      Alcotest.test_case (E.name alg ^ ": " ^ name) `Quick (fun () -> f alg))
    Test_support.real_algorithms

let cycle_tests =
  for_each_algorithm "cycles: n arcs of s+1 nodes" (fun alg ->
      List.iter
        (fun (n, s) ->
          let results = E.all_results alg (Sgraph.Gen.cycle n) ~s in
          check int (Printf.sprintf "count C_%d s=%d" n s) n (List.length results);
          check (Alcotest.list int)
            (Printf.sprintf "sizes C_%d s=%d" n s)
            [ s + 1 ] (all_sizes results))
        [ (6, 1); (8, 2); (9, 2); (10, 3); (12, 4) ])

let path_tests =
  for_each_algorithm "paths: n-s arcs of s+1 nodes" (fun alg ->
      List.iter
        (fun (n, s) ->
          let results = E.all_results alg (Sgraph.Gen.path n) ~s in
          check int (Printf.sprintf "count P_%d s=%d" n s) (n - s) (List.length results);
          check (Alcotest.list int)
            (Printf.sprintf "sizes P_%d s=%d" n s)
            [ s + 1 ] (all_sizes results))
        [ (5, 1); (7, 2); (9, 3) ])

let star_tests =
  for_each_algorithm "stars collapse to one set at s>=2" (fun alg ->
      List.iter
        (fun (n, s) ->
          check Test_support.ns_list
            (Printf.sprintf "S_%d s=%d" n s)
            [ NS.range 0 n ]
            (E.sorted_results alg (Sgraph.Gen.star n) ~s))
        [ (4, 2); (9, 2); (9, 3) ])

let diameter2_tests =
  for_each_algorithm "diameter-2 graphs collapse at s=2" (fun alg ->
      List.iter
        (fun (name, g) ->
          check Test_support.ns_list name [ G.nodes g ] (E.sorted_results alg g ~s:2))
        [ ("K_3x3", Sgraph.Gen.complete_bipartite 3 3);
          ("K_2,5", Sgraph.Gen.complete_bipartite 2 5);
          ("moon-moser 3x3", Sgraph.Gen.complete_multipartite ~parts:3 ~part_size:3);
          ("K_6", Sgraph.Gen.complete 6) ])

let oracle_fixture_tests =
  for_each_algorithm "petersen and grid match the oracle" (fun alg ->
      List.iter
        (fun (name, g, s) ->
          check Test_support.ns_list
            (Printf.sprintf "%s s=%d" name s)
            (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s)
            (E.sorted_results alg g ~s))
        [ ("petersen", Sgraph.Gen.petersen (), 1);
          ("petersen", Sgraph.Gen.petersen (), 2);
          ("grid 3x4", Sgraph.Gen.grid 3 4, 2);
          ("grid 2x5", Sgraph.Gen.grid 2 5, 3) ])

(* the paper's observation that C_n arcs overlap like a sliding window:
   consecutive maximal sets share exactly s nodes *)
let overlap_test =
  [
    Alcotest.test_case "cycle arcs slide by one" `Quick (fun () ->
        let n = 9 and s = 2 in
        let results = E.sorted_results E.Cs2_pf (Sgraph.Gen.cycle n) ~s in
        List.iter
          (fun c ->
            let hits =
              List.length (List.filter (fun c' -> NS.inter_cardinal c c' = s) results)
            in
            check int "two sliding neighbors" 2 hits)
          results);
  ]

let suites =
  [
    ("family_cycles", cycle_tests);
    ("family_paths", path_tests);
    ("family_stars", star_tests);
    ("family_diameter2", diameter2_tests);
    ("family_fixtures", oracle_fixture_tests @ overlap_test);
  ]
