(* The §2 clique relaxations (s-clubs, quasi-cliques), the Delay monitor,
   and the footnote-1 degeneracy-root variant of CsCliques2. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module Sc = Scliques_core.S_club
module Qc = Scliques_core.Quasi_clique
module E = Scliques_core.Enumerate

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let of_l = NS.of_list
let sorted l = List.sort NS.compare l

let s_club_tests =
  [
    Alcotest.test_case "basic club checks on the star" `Quick (fun () ->
        let g = Sgraph.Gen.star 5 in
        check bool "whole star is a 2-club" true (Sc.is_s_club g ~s:2 (NS.range 0 5));
        check bool "leaves alone are not" false (Sc.is_s_club g ~s:2 (of_l [ 1; 2; 3 ]));
        check bool "empty" true (Sc.is_s_club g ~s:2 NS.empty);
        check bool "singleton" true (Sc.is_s_club g ~s:2 (of_l [ 2 ])));
    Alcotest.test_case "club requires the path INSIDE the set" `Quick (fun () ->
        (* 4-cycle: {0,2} is a 2-clique (via 1 or 3) but not a 2-club *)
        let g = Sgraph.Gen.cycle 4 in
        check bool "2-clique" true (Scliques_core.Verify.is_s_clique g ~s:2 (of_l [ 0; 2 ]));
        check bool "not a 2-club" false (Sc.is_s_club g ~s:2 (of_l [ 0; 2 ])));
    Alcotest.test_case "non-hereditary witness" `Quick (fun () ->
        let g, club, subset = Sc.non_hereditary_witness () in
        check bool "club" true (Sc.is_s_club g ~s:2 club);
        check bool "subset not a club" false (Sc.is_s_club g ~s:2 subset);
        check bool "strict subset" true
          (NS.subset subset club && not (NS.equal subset club)));
    Alcotest.test_case "every s-club is an s-clique" `Quick (fun () ->
        let rng = Scoll.Rng.create 61 in
        for _ = 1 to 15 do
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n:9 ~m:(6 + Scoll.Rng.int rng 14) in
          List.iter
            (fun club ->
              check bool "s-clique too" true
                (Scliques_core.Verify.is_connected_s_clique g ~s:2 club))
            (Sc.maximal_s_clubs g ~s:2)
        done);
    Alcotest.test_case "maximal clubs on figure 1" `Quick (fun () ->
        (* communities of the running example, as clubs *)
        let g = fst (Sgraph.Gen.figure1 ()) in
        let clubs = Sc.maximal_s_clubs g ~s:2 in
        check bool "{a,b,c,d} is one" true
          (List.exists (NS.equal (of_l [ 0; 1; 2; 3 ])) clubs);
        List.iter
          (fun c -> check bool "is club" true (Sc.is_s_club g ~s:2 c))
          clubs);
    Alcotest.test_case "every maximal club is inside some maximal connected s-clique"
      `Quick (fun () ->
        let rng = Scoll.Rng.create 62 in
        for _ = 1 to 10 do
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n:8 ~m:(5 + Scoll.Rng.int rng 12) in
          let s_cliques = E.all_results E.Cs2_pf g ~s:2 in
          List.iter
            (fun club ->
              check bool "covered" true
                (List.exists (NS.subset club) s_cliques))
            (Sc.maximal_s_clubs g ~s:2)
        done);
    Alcotest.test_case "on trees the notions coincide ([28])" `Quick (fun () ->
        let rng = Scoll.Rng.create 63 in
        for _ = 1 to 15 do
          let g = Sgraph.Gen.random_tree rng ~n:(5 + Scoll.Rng.int rng 8) in
          let s = 2 + Scoll.Rng.int rng 2 in
          check Test_support.ns_list "same families"
            (Sc.maximal_s_clubs g ~s)
            (E.sorted_results E.Cs2_pf g ~s)
        done);
    Alcotest.test_case "is_maximal_s_club needs more than 1-extension" `Quick (fun () ->
        (* path of 5 at s=2: {0,1,2} is a maximal club; {1,2,3} likewise;
           but {0,1} is non-maximal even though it is a club *)
        let g = Sgraph.Gen.path 5 in
        check bool "triple maximal" true (Sc.is_maximal_s_club g ~s:2 (of_l [ 0; 1; 2 ]));
        check bool "pair not maximal" false (Sc.is_maximal_s_club g ~s:2 (of_l [ 0; 1 ]));
        check bool "non-club is not maximal" false
          (Sc.is_maximal_s_club g ~s:2 (of_l [ 0; 2; 4 ])));
    Alcotest.test_case "maximal_s_clubs matches is_maximal_s_club" `Quick (fun () ->
        let g = Sgraph.Gen.cycle 7 in
        let clubs = Sc.maximal_s_clubs g ~s:2 in
        List.iter
          (fun c -> check bool (NS.to_string c) true (Sc.is_maximal_s_club g ~s:2 c))
          clubs);
    Alcotest.test_case "size cap enforced" `Quick (fun () ->
        match Sc.maximal_s_clubs (G.empty 17) ~s:2 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let quasi_clique_tests =
  [
    Alcotest.test_case "clique is a 1-quasi-clique" `Quick (fun () ->
        let g = Sgraph.Gen.complete 5 in
        check bool "gamma=1" true (Qc.is_gamma_quasi_clique g ~gamma:1. (NS.range 0 5)));
    Alcotest.test_case "internal degrees" `Quick (fun () ->
        let g = fst (Sgraph.Gen.figure1 ()) in
        (* inside {a,b,c,d}: a has 2 (b,c), d has 2 (b,c) *)
        let u = of_l [ 0; 1; 2; 3 ] in
        check int "a" 2 (Qc.internal_degree g u 0);
        check int "b" 3 (Qc.internal_degree g u 1);
        check int "min" 2 (Qc.min_internal_degree g u));
    Alcotest.test_case "gamma threshold behaviour" `Quick (fun () ->
        let g = fst (Sgraph.Gen.figure1 ()) in
        let u = of_l [ 0; 1; 2; 3 ] in
        (* min internal degree 2 of possible 3: passes 2/3, fails above *)
        check bool "gamma 2/3" true (Qc.is_gamma_quasi_clique g ~gamma:(2. /. 3.) u);
        check bool "gamma 0.9" false (Qc.is_gamma_quasi_clique g ~gamma:0.9 u));
    Alcotest.test_case "bad gamma rejected" `Quick (fun () ->
        Alcotest.check_raises "gamma 2"
          (Invalid_argument "Quasi_clique.is_gamma_quasi_clique: gamma outside [0,1]")
          (fun () ->
            ignore (Qc.is_gamma_quasi_clique (Sgraph.Gen.complete 3) ~gamma:2. (NS.range 0 3))));
    Alcotest.test_case "Jiang-Pei diameter-2 property quoted in §2" `Quick (fun () ->
        (* gamma in [1/2, (k-2)/(k-1)] forces induced diameter <= 2 *)
        let rng = Scoll.Rng.create 64 in
        for _ = 1 to 30 do
          let n = 4 + Scoll.Rng.int rng 6 in
          let g =
            Sgraph.Gen.erdos_renyi_gnm rng ~n
              ~m:(Scoll.Rng.int rng ((n * (n - 1) / 2) + 1))
          in
          let u = G.nodes g in
          let k = NS.cardinal u in
          let gamma = 0.5 in
          if
            float_of_int (k - 2) /. float_of_int (k - 1) >= gamma
            && Qc.is_gamma_quasi_clique g ~gamma u
          then
            check bool "diameter <= 2" true (Qc.induced_diameter g u <= 2)
        done);
    Alcotest.test_case "the §2 subtlety: s-cliques are not quasi-cliques" `Quick
      (fun () ->
        (* 4-cycle's {0,2}: a 2-clique whose induced graph has NO edges, so
           it fails every gamma > 0 — quasi-clique machinery cannot see it *)
        let g = Sgraph.Gen.cycle 4 in
        let u = of_l [ 0; 2 ] in
        check bool "2-clique" true (Scliques_core.Verify.is_s_clique g ~s:2 u);
        check bool "not even a 0.5-quasi-clique" false
          (Qc.is_gamma_quasi_clique g ~gamma:0.5 u);
        check bool "induced diameter infinite" true (Qc.induced_diameter g u = max_int));
    Alcotest.test_case "induced_diameter basics" `Quick (fun () ->
        let g = Sgraph.Gen.path 5 in
        check int "whole path" 4 (Qc.induced_diameter g (NS.range 0 5));
        check int "singleton" 0 (Qc.induced_diameter g (of_l [ 3 ]));
        check int "empty" 0 (Qc.induced_diameter g NS.empty));
  ]

let delay_tests =
  let module D = Scliques_core.Delay in
  let feq = Alcotest.float 1e-9 in
  let fake times =
    (* a clock returning the given instants in order, then the last one *)
    let remaining = ref times in
    fun () ->
      match !remaining with
      | [] -> invalid_arg "fake clock exhausted"
      | [ t ] -> t
      | t :: rest ->
          remaining := rest;
          t
  in
  [
    Alcotest.test_case "gaps and maximum" `Quick (fun () ->
        (* create at 0, results at 1, 2, 5; finish at 6 *)
        let d = D.create ~clock:(fake [ 0.; 1.; 2.; 5.; 6. ]) () in
        D.tick d;
        D.tick d;
        D.tick d;
        D.finish d;
        let r = D.report d in
        check int "results" 3 r.D.results;
        check feq "total" 6. r.D.total;
        check feq "first" 1. r.D.first;
        check feq "max gap (2 -> 5)" 3. r.D.max_gap;
        check feq "mean gap" 1.5 r.D.mean_gap);
    Alcotest.test_case "no results: first = total" `Quick (fun () ->
        let d = D.create ~clock:(fake [ 0.; 4. ]) () in
        D.finish d;
        let r = D.report d in
        check int "none" 0 r.D.results;
        check feq "total" 4. r.D.total;
        check feq "first" 4. r.D.first);
    Alcotest.test_case "finish is idempotent" `Quick (fun () ->
        let d = D.create ~clock:(fake [ 0.; 1.; 2. ]) () in
        D.tick d;
        D.finish d;
        D.finish d;
        check feq "total stable" 2. (D.report d).D.total);
    Alcotest.test_case "tick after finish rejected" `Quick (fun () ->
        let d = D.create ~clock:(fake [ 0.; 1. ]) () in
        D.finish d;
        Alcotest.check_raises "finished" (Invalid_argument "Delay.tick: already finished")
          (fun () -> D.tick d));
    Alcotest.test_case "wrap forwards the result" `Quick (fun () ->
        let d = D.create ~clock:(fake [ 0.; 1.; 2. ]) () in
        let got = ref [] in
        D.wrap d (fun c -> got := c :: !got) (of_l [ 1; 2 ]);
        check Test_support.ns_list "forwarded" [ of_l [ 1; 2 ] ] !got;
        check int "counted" 1 (D.report d).D.results);
    Alcotest.test_case "real enumeration smoke: PD delays are recorded" `Quick
      (fun () ->
        let g = Test_support.random_graph 70 ~n:25 ~m:50 in
        let d = D.create () in
        E.iter E.Poly_delay g ~s:2 (D.wrap d (fun _ -> ()));
        D.finish d;
        let r = D.report d in
        check bool "saw results" true (r.D.results > 0);
        check bool "gaps sane" true (r.D.max_gap >= 0. && r.D.total >= r.D.max_gap));
  ]

let degeneracy_root_tests =
  let collect ?(root_order = Scliques_core.Cs_cliques2.Ascending) ?(pivot = false) g s =
    let nh = Scliques_core.Neighborhood.create ~s g in
    let acc = ref [] in
    Scliques_core.Cs_cliques2.iter ~pivot ~root_order nh (fun c -> acc := c :: !acc);
    sorted !acc
  in
  [
    Alcotest.test_case "matches ascending on figure 1" `Quick (fun () ->
        let g = fst (Sgraph.Gen.figure1 ()) in
        List.iter
          (fun s ->
            check Test_support.ns_list
              (Printf.sprintf "s=%d" s)
              (collect g s)
              (collect ~root_order:Scliques_core.Cs_cliques2.Power_degeneracy g s))
          [ 1; 2; 3 ]);
    Alcotest.test_case "matches the oracle on random graphs (with pivoting)" `Quick
      (fun () ->
        let rng = Scoll.Rng.create 71 in
        for _ = 1 to 15 do
          let n = 4 + Scoll.Rng.int rng 7 in
          let m = Scoll.Rng.int rng ((n * (n - 1) / 2) + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          let s = 1 + Scoll.Rng.int rng 3 in
          check Test_support.ns_list "oracle"
            (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s)
            (collect ~root_order:Scliques_core.Cs_cliques2.Power_degeneracy ~pivot:true g s)
        done);
    Alcotest.test_case "handles disconnected graphs and isolated nodes" `Quick
      (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (1, 2) ] in
        check Test_support.ns_list "components + singletons"
          [ of_l [ 0; 1; 2 ]; of_l [ 3 ]; of_l [ 4 ] ]
          (collect ~root_order:Scliques_core.Cs_cliques2.Power_degeneracy g 2));
    Alcotest.test_case "all options stacked: degeneracy + pivot + feasibility + k"
      `Quick (fun () ->
        let rng = Scoll.Rng.create 72 in
        for _ = 1 to 10 do
          let n = 5 + Scoll.Rng.int rng 6 in
          let m = Scoll.Rng.int rng ((n * (n - 1) / 2) + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          let nh = Scliques_core.Neighborhood.create ~s:2 g in
          let acc = ref [] in
          Scliques_core.Cs_cliques2.iter ~pivot:true ~feasibility:true
            ~root_order:Scliques_core.Cs_cliques2.Power_degeneracy ~min_size:3 nh
            (fun c -> acc := c :: !acc);
          let expected =
            List.filter
              (fun c -> NS.cardinal c >= 3)
              (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s:2)
          in
          check Test_support.ns_list "oracle (filtered)" expected (sorted !acc)
        done);
  ]

let suites =
  [
    ("s_club", s_club_tests);
    ("quasi_clique", quasi_clique_tests);
    ("delay", delay_tests);
    ("degeneracy_root", degeneracy_root_tests);
  ]
