(* Golden-corpus generator: prints the canonical (sorted) maximal
   connected s-clique sets of one fixture graph for s = 1, 2, 3 — after
   re-enumerating them with every algorithm variant in the library and
   checking that all twelve agree. The dune rules diff this output
   against the committed .expected files, so any semantic drift in any
   variant fails `dune runtest` with the exact set-level difference;
   `dune promote` re-blesses the output after an intentional change.

   Fixtures stay within Brute_force.max_nodes so the exhaustive oracle is
   always one of the twelve voters. *)

module NS = Sgraph.Node_set
module C2 = Scliques_core.Cs_cliques2
module PD = Scliques_core.Poly_delay

let nh ~s g = Scliques_core.Neighborhood.create ~s g

let collect iter_fn =
  let acc = ref [] in
  iter_fn (fun c -> acc := c :: !acc);
  List.sort NS.compare !acc

let variants =
  let cs2 ~pivot ~feasibility g s = collect (C2.iter ~pivot ~feasibility (nh ~s g)) in
  let pd ~queue_mode ~index_mode g s =
    collect (PD.iter ~queue_mode ~index_mode (nh ~s g))
  in
  [
    ("cs1", fun g s -> collect (Scliques_core.Cs_cliques1.iter (nh ~s g)));
    ("cs2", cs2 ~pivot:false ~feasibility:false);
    ("cs2-p", cs2 ~pivot:true ~feasibility:false);
    ("cs2-f", cs2 ~pivot:false ~feasibility:true);
    ("cs2-pf", cs2 ~pivot:true ~feasibility:true);
    ( "cs2-p-deg",
      fun g s -> collect (C2.iter ~pivot:true ~root_order:C2.Power_degeneracy (nh ~s g))
    );
    ("pd-fifo-btree", pd ~queue_mode:PD.Fifo ~index_mode:PD.Btree);
    ("pd-fifo-hash", pd ~queue_mode:PD.Fifo ~index_mode:PD.Hashtable);
    ("pd-lf-btree", pd ~queue_mode:PD.Largest_first ~index_mode:PD.Btree);
    ("pd-lf-hash", pd ~queue_mode:PD.Largest_first ~index_mode:PD.Hashtable);
    (* low thresholds so the work-stealing split path runs even on
       fixture-sized graphs *)
    ( "parallel",
      fun g s ->
        Scliques_core.Parallel.enumerate ~workers:3 ~split_depth:4 ~split_width:2 g ~s
    );
    ( "brute",
      fun g s ->
        List.sort NS.compare
          (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s) );
  ]

(* Resume equivalence over the corpus: interrupt the budgeted runner at
   roughly 25/50/75% of the output, resume from the in-memory checkpoint
   state, and require the union of the two streams to be exactly the
   uninterrupted reference. Prints nothing on success (the .expected
   files are untouched); disagreement fails the build like a variant
   mismatch. *)
module E = Scliques_core.Enumerate
module Budget = Scliques_core.Budget

let check_resume fixture g s reference =
  let total = List.length reference in
  if total > 0 then
    List.iter
      (fun alg ->
        List.iter
          (fun percent ->
            let cap = max 1 (total * percent / 100) in
            let acc = ref [] in
            let budget = Budget.create ~max_results:cap () in
            let r1 = E.run ~budget alg g ~s (fun c -> acc := c :: !acc) in
            (match r1.E.resumable with
            | None -> ()
            | Some resume ->
                let r2 = E.run ~resume alg g ~s (fun c -> acc := c :: !acc) in
                (match r2.E.outcome with
                | Budget.Complete -> ()
                | Budget.Truncated _ ->
                    Printf.eprintf
                      "gen_golden: unbudgeted resume of %s truncated on %s s=%d\n"
                      (E.name alg) fixture s;
                    exit 1));
            let union = List.sort NS.compare !acc in
            if not (List.equal NS.equal reference union) then begin
              Printf.eprintf
                "gen_golden: %s interrupted at %d%% (cap %d) + resume gives %d \
                 sets, expected %d on %s s=%d\n"
                (E.name alg) percent cap (List.length union) total fixture s;
              exit 1
            end)
          [ 25; 50; 75 ])
      [ E.Poly_delay; E.Cs1; E.Cs2_pf; E.Brute ]

(* Snapshot round trip over the corpus: the binary save/load path must
   reproduce the graph exactly; the caller then re-enumerates on the
   reloaded graph and requires bit-identical output. *)
let snapshot_round_trip fixture g =
  let path = Filename.temp_file "scliques-golden" ".sgr" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Sgraph.Snapshot.save g path;
      let g' = Sgraph.Snapshot.load path in
      if not (Sgraph.Graph.equal g g') then begin
        Printf.eprintf "gen_golden: snapshot round trip changed %s\n" fixture;
        exit 1
      end;
      g')

let fixtures =
  [
    ("figure1", fun () -> fst (Sgraph.Gen.figure1 ()));
    ("figure3-h", fun () -> Sgraph.Gen.figure3_h ());
    ("petersen", fun () -> Sgraph.Gen.petersen ());
    ("grid-4x5", fun () -> Sgraph.Gen.grid 4 5);
    ("moon-moser-3x3", fun () -> Sgraph.Gen.complete_multipartite ~parts:3 ~part_size:3);
    ("exp-gadget-3", fun () -> Sgraph.Gen.exponential_gadget 3);
    ("er-18", fun () -> Sgraph.Gen.erdos_renyi_gnm (Scoll.Rng.create 101) ~n:18 ~m:40);
    ( "sf-20",
      fun () -> Sgraph.Gen.barabasi_albert (Scoll.Rng.create 202) ~n:20 ~m_attach:2 );
    (* disconnection edge cases in one graph: a triangle, a path (its own
       component), a 4-cycle, and three isolated nodes (7, 8, 15) that
       must surface as singleton 1-cliques and survive I/O round trips *)
    ( "disconnected",
      fun () ->
        Sgraph.Graph.of_edges ~n:16
          [ (0, 1); (0, 2); (1, 2); (3, 4); (4, 5); (5, 6);
            (9, 10); (10, 11); (11, 12); (9, 12); (13, 14) ] );
  ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  let g =
    match List.assoc_opt name fixtures with
    | Some build -> build ()
    | None ->
        Printf.eprintf "gen_golden: unknown fixture %S; known: %s\n" name
          (String.concat ", " (List.map fst fixtures));
        exit 2
  in
  Printf.printf "fixture %s: n=%d m=%d\n" name (Sgraph.Graph.n g) (Sgraph.Graph.m g);
  let reloaded = snapshot_round_trip name g in
  List.iter
    (fun s ->
      let reference =
        match variants with (_, run) :: _ -> run g s | [] -> assert false
      in
      List.iter
        (fun (vname, run) ->
          let got = run g s in
          if not (List.equal NS.equal reference got) then begin
            Printf.eprintf
              "gen_golden: variant %s disagrees on %s at s=%d (%d sets vs %d)\n" vname
              name s (List.length got) (List.length reference);
            exit 1
          end)
        variants;
      (* enumeration must be bit-identical on the snapshot-reloaded graph *)
      let via_snapshot =
        collect (C2.iter ~pivot:true ~feasibility:true (nh ~s reloaded))
      in
      if not (List.equal NS.equal reference via_snapshot) then begin
        Printf.eprintf
          "gen_golden: snapshot-reloaded %s disagrees at s=%d (%d sets vs %d)\n" name
          s
          (List.length via_snapshot)
          (List.length reference);
        exit 1
      end;
      check_resume name g s reference;
      Printf.printf "s=%d count=%d\n" s (List.length reference);
      List.iter (fun c -> Printf.printf "  %s\n" (NS.to_string c)) reference)
    [ 1; 2; 3 ]
