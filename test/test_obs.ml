(* Unit + property tests for the Scliques_obs observability layer:
   histogram geometry and quantiles, the counter registry, the delay
   recorder (driven by a fake clock), the JSON/line-protocol sinks, and a
   wall-clock sanity check of PolyDelayEnum's delay on a path graph. *)

module H = Scliques_obs.Histogram
module C = Scliques_obs.Counters
module R = Scliques_obs.Recorder
module S = Scliques_obs.Sink
module O = Scliques_obs.Obs

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* ---------- histogram ---------- *)

let test_bucket_layout () =
  let lo0, hi0 = H.bucket_bounds 0 in
  close "underflow starts at 0" 0. lo0;
  close "underflow ends at 1ns" 1e-9 hi0;
  let lo_last, hi_last = H.bucket_bounds (H.bucket_count - 1) in
  close "overflow starts at 1000s" 1e3 lo_last;
  Alcotest.(check bool) "overflow is unbounded" true (hi_last = infinity);
  (* buckets tile the range: each upper bound is the next lower bound *)
  for i = 0 to H.bucket_count - 2 do
    let _, hi = H.bucket_bounds i in
    let lo, _ = H.bucket_bounds (i + 1) in
    close (Printf.sprintf "bucket %d/%d contiguous" i (i + 1)) hi lo
  done;
  (* a decade spans exactly buckets_per_decade buckets *)
  Alcotest.(check int) "1ns lands in bucket 1" 1 (H.bucket_index 1e-9);
  Alcotest.(check int) "one decade up"
    (1 + H.buckets_per_decade)
    (H.bucket_index 1e-8);
  Alcotest.(check int) "0 underflows" 0 (H.bucket_index 0.);
  Alcotest.(check int) "huge overflows" (H.bucket_count - 1) (H.bucket_index 1e9)

let test_bucket_membership () =
  (* every value falls inside the bounds of its own bucket (tiny relative
     slack for values that sit exactly on a float boundary) *)
  List.iter
    (fun v ->
      let i = H.bucket_index v in
      let lo, hi = H.bucket_bounds i in
      Alcotest.(check bool)
        (Printf.sprintf "%g in bucket %d [%g,%g)" v i lo hi)
        true
        (lo <= v *. (1. +. 1e-12) && (v < hi || v *. (1. -. 1e-12) < hi)))
    [ 0.; 1e-10; 1e-9; 3.7e-8; 1e-6; 2.5e-4; 0.1; 1.; 37.; 999.; 1e3; 1e7 ]

let test_histogram_exact_stats () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  close "empty quantile" 0. (H.quantile h 0.5);
  List.iter (H.observe h) [ 0.001; 0.003; 0.002 ];
  Alcotest.(check int) "count" 3 (H.count h);
  close "sum" 0.006 (H.sum h);
  close "mean" 0.002 (H.mean h);
  close "min" 0.001 (H.min_value h);
  close "max" 0.003 (H.max_value h);
  H.observe h (-1.);
  close "negative clamps to 0" 0. (H.min_value h);
  Alcotest.check_raises "quantile domain" (Invalid_argument "Histogram.quantile")
    (fun () -> ignore (H.quantile h 1.5))

let float_list_gen =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (oneof
         [ float_bound_inclusive 1e-6; float_bound_inclusive 1.; float_bound_inclusive 2e3 ]))

let prop_quantiles_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"quantiles are monotone and bounded by max"
       ~print:QCheck2.Print.(list float)
       float_list_gen
       (fun values ->
         let h = H.create () in
         List.iter (H.observe h) values;
         let p50 = H.quantile h 0.5
         and p95 = H.quantile h 0.95
         and p99 = H.quantile h 0.99 in
         H.min_value h <= p50 && p50 <= p95 && p95 <= p99 && p99 <= H.max_value h))

let prop_merge_is_concat =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"merged histogram equals histogram of concatenated values"
       ~print:QCheck2.Print.(pair (list float) (list float))
       QCheck2.Gen.(pair float_list_gen float_list_gen)
       (fun (xs, ys) ->
         let ha = H.create () and hb = H.create () and hall = H.create () in
         List.iter (H.observe ha) xs;
         List.iter (H.observe hb) ys;
         List.iter (H.observe hall) (xs @ ys);
         H.merge_into ~into:ha hb;
         H.counts ha = H.counts hall
         && H.count ha = H.count hall
         && Float.abs (H.sum ha -. H.sum hall) <= 1e-9 *. (1. +. H.sum hall)
         && H.min_value ha = H.min_value hall
         && H.max_value ha = H.max_value hall
         && List.for_all
              (fun q -> H.quantile ha q = H.quantile hall q)
              [ 0.; 0.5; 0.9; 0.95; 0.99; 1. ]))

(* ---------- counters ---------- *)

let test_counters () =
  let t = C.create () in
  let a = C.counter t "a" in
  C.incr a;
  C.add a 4;
  Alcotest.(check int) "incr + add" 5 (C.value a);
  let a' = C.counter t "a" in
  C.incr a';
  Alcotest.(check int) "same handle for same name" 6 (C.value a);
  C.set_max a 3;
  Alcotest.(check int) "set_max keeps larger current" 6 (C.value a);
  C.set_max a 10;
  Alcotest.(check int) "set_max raises" 10 (C.value a);
  C.set a 2;
  Alcotest.(check int) "set overwrites" 2 (C.value a);
  ignore (C.counter t "z");
  ignore (C.counter t "m");
  Alcotest.(check (list (pair string int)))
    "to_list sorted by name"
    [ ("a", 2); ("m", 0); ("z", 0) ]
    (C.to_list t);
  Alcotest.(check (option int)) "find known" (Some 2) (C.find t "a");
  Alcotest.(check (option int)) "find unknown" None (C.find t "nope")

let test_counters_merge () =
  let a = C.create () and b = C.create () in
  C.add (C.counter a "x") 3;
  C.add (C.counter b "x") 4;
  C.add (C.counter b "only_b") 7;
  C.merge_into ~into:a b;
  Alcotest.(check (list (pair string int)))
    "merge sums and creates"
    [ ("only_b", 7); ("x", 7) ]
    (C.to_list a);
  Alcotest.(check (list (pair string int)))
    "source untouched"
    [ ("only_b", 7); ("x", 4) ]
    (C.to_list b)

(* ---------- recorder (fake clock) ---------- *)

let fake_clock () =
  let t = ref 0. in
  ((fun () -> !t), fun dt -> t := !t +. dt)

let test_recorder_gaps () =
  let clock, advance = fake_clock () in
  let r = R.create ~clock () in
  Alcotest.(check int) "no ticks yet" 0 (R.count r);
  Alcotest.(check (option (float 0.))) "no first delay yet" None (R.first_delay r);
  advance 0.5;
  R.tick r;
  advance 0.25;
  R.tick r;
  advance 0.125;
  R.tick r;
  Alcotest.(check int) "three ticks" 3 (R.count r);
  close "first gap" 0.5 (Option.get (R.first_delay r));
  close "max gap" 0.5 (R.max_delay r);
  close "mean gap" (0.875 /. 3.) (R.mean r);
  close "total elapsed" 0.875 (R.total r);
  let s = R.summary r in
  Alcotest.(check bool) "summary quantiles monotone" true
    R.(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max)

let test_recorder_reset () =
  let clock, advance = fake_clock () in
  let r = R.create ~clock () in
  advance 100.;
  R.reset r;
  advance 0.5;
  R.tick r;
  close "gap measured from reset, not create" 0.5 (R.max_delay r)

let test_recorder_merge () =
  let clock_a, advance_a = fake_clock () in
  let a = R.create ~clock:clock_a () in
  advance_a 0.5;
  R.tick a;
  advance_a 0.5;
  R.tick a;
  let clock_b, advance_b = fake_clock () in
  let b = R.create ~clock:clock_b () in
  advance_b 0.125;
  R.tick b;
  R.merge_into ~into:a b;
  Alcotest.(check int) "counts sum" 3 (R.count a);
  close "first takes the minimum" 0.125 (Option.get (R.first_delay a));
  close "max survives" 0.5 (R.max_delay a);
  close "total takes the maximum" 1.0 (R.total a)

(* ---------- sinks ---------- *)

let test_json_rendering () =
  Alcotest.(check string) "compact object"
    {|{"a":1,"b":[true,null,"x\"y"],"c":1.5}|}
    (S.to_string
       (S.Obj
          [ ("a", S.Int 1); ("b", S.List [ S.Bool true; S.Null; S.String "x\"y" ]);
            ("c", S.Float 1.5) ]));
  Alcotest.(check string) "nan degrades to null" {|{"v":null}|}
    (S.to_string (S.Obj [ ("v", S.Float Float.nan) ]))

let test_line_protocol () =
  Alcotest.(check string) "tags and typed fields"
    {|cache\ stats,algo=pd hits=3i,rate=0.5,ok=true|}
    (S.line_protocol ~measurement:"cache stats" ~tags:[ ("algo", "pd") ]
       [ ("hits", S.Int 3); ("rate", S.Float 0.5); ("ok", S.Bool true);
         ("skipped", S.Obj []) ])

let test_write_file () =
  let path = Filename.temp_file "scliques_obs" ".json" in
  S.write_file ~path "{}";
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "newline-terminated" "{}\n" contents

(* ---------- the Obs façade ---------- *)

let test_obs_facade () =
  let clock, advance = fake_clock () in
  let o = O.create ~clock () in
  C.incr (O.counter o "x.events");
  advance 0.5;
  O.tick o;
  Alcotest.(check int) "tick reaches the recorder" 1 (R.count (O.delay o));
  let json = O.to_json o in
  Alcotest.(check bool) "snapshot carries counters" true
    (contains json {|"x.events":1|});
  Alcotest.(check bool) "snapshot carries the delay summary" true
    (contains json {|"p95":|});
  let o2 = O.create ~clock () in
  C.add (O.counter o2 "x.events") 2;
  O.merge_into ~into:o o2;
  Alcotest.(check (option int)) "merge sums counters" (Some 3)
    (C.find (O.counters o) "x.events");
  let empty = O.create ~clock () in
  Alcotest.(check bool) "empty recorder omits the delay object" true
    (not (contains (O.to_json empty) {|"delay"|}))

(* ---------- wall-clock delay sanity on a path graph ---------- *)

let test_pd_delay_sanity () =
  (* PolyDelayEnum on a path: per-result delay must stay tiny, and the
     recorder must see exactly one tick per emitted result *)
  let g = Sgraph.Gen.path 200 in
  let obs = O.create () in
  let results =
    Scliques_core.Enumerate.all_results ~obs Scliques_core.Enumerate.Poly_delay g ~s:2
  in
  Alcotest.(check int) "one tick per result" (List.length results)
    (R.count (O.delay obs));
  Alcotest.(check bool) "max delay bounded (generous)" true
    (R.max_delay (O.delay obs) < 5.);
  let s = R.summary (O.delay obs) in
  Alcotest.(check bool) "quantiles monotone on real data" true
    R.(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
  (* the deterministic delay proxy: ExtendMax calls between emissions are
     O(1) on a path, independent of n *)
  let gap n =
    let o = O.create () in
    ignore
      (Scliques_core.Enumerate.all_results ~obs:o Scliques_core.Enumerate.Poly_delay
         (Sgraph.Gen.path n) ~s:2);
    Option.get (C.find (O.counters o) "pd.max_extend_calls_between_emits")
  in
  Alcotest.(check int) "work-per-result flat across n" (gap 50) (gap 400)

let suites =
  [
    ( "obs_histogram",
      [
        Alcotest.test_case "bucket layout" `Quick test_bucket_layout;
        Alcotest.test_case "bucket membership" `Quick test_bucket_membership;
        Alcotest.test_case "exact side statistics" `Quick test_histogram_exact_stats;
        prop_quantiles_monotone;
        prop_merge_is_concat;
      ] );
    ( "obs_counters",
      [
        Alcotest.test_case "registry operations" `Quick test_counters;
        Alcotest.test_case "merge" `Quick test_counters_merge;
      ] );
    ( "obs_recorder",
      [
        Alcotest.test_case "gaps via fake clock" `Quick test_recorder_gaps;
        Alcotest.test_case "reset" `Quick test_recorder_reset;
        Alcotest.test_case "per-worker merge" `Quick test_recorder_merge;
      ] );
    ( "obs_sink",
      [
        Alcotest.test_case "json rendering" `Quick test_json_rendering;
        Alcotest.test_case "line protocol" `Quick test_line_protocol;
        Alcotest.test_case "write_file" `Quick test_write_file;
      ] );
    ( "obs_facade",
      [
        Alcotest.test_case "counters + recorder + snapshot" `Quick test_obs_facade;
        Alcotest.test_case "PD delay sanity on a path" `Quick test_pd_delay_sanity;
      ] );
  ]
