(* Suites for Scoll: Rng, Bitset (unit + word-parallel kernel
   properties), Deque, Fifo_queue, Binary_heap, Btree, Lri_cache,
   Union_find. *)

open Scoll

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- Rng ---------- *)

let rng_tests =
  [
    Alcotest.test_case "deterministic from seed" `Quick (fun () ->
        let a = Rng.create 123 and b = Rng.create 123 in
        for _ = 1 to 100 do
          check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let sa = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let sb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        check bool "streams differ" true (sa <> sb));
    Alcotest.test_case "int stays in range" `Quick (fun () ->
        let r = Rng.create 99 in
        for _ = 1 to 10_000 do
          let v = Rng.int r 7 in
          check bool "0 <= v < 7" true (v >= 0 && v < 7)
        done);
    Alcotest.test_case "int covers the full range" `Quick (fun () ->
        let r = Rng.create 5 in
        let seen = Array.make 10 false in
        for _ = 1 to 1000 do
          seen.(Rng.int r 10) <- true
        done;
        check bool "all values hit" true (Array.for_all Fun.id seen));
    Alcotest.test_case "float stays in range" `Quick (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.float r 2.5 in
          check bool "0 <= v < 2.5" true (v >= 0. && v < 2.5)
        done);
    Alcotest.test_case "bool takes both values" `Quick (fun () ->
        let r = Rng.create 11 in
        let trues = ref 0 in
        for _ = 1 to 1000 do
          if Rng.bool r then incr trues
        done;
        check bool "roughly balanced" true (!trues > 300 && !trues < 700));
    Alcotest.test_case "pair_distinct gives ordered distinct pairs" `Quick (fun () ->
        let r = Rng.create 8 in
        for _ = 1 to 1000 do
          let u, v = Rng.pair_distinct r 6 in
          check bool "u < v < 6" true (u >= 0 && u < v && v < 6)
        done);
    Alcotest.test_case "pair_distinct n=2 always (0,1)" `Quick (fun () ->
        let r = Rng.create 8 in
        for _ = 1 to 50 do
          check (Alcotest.pair int int) "only pair" (0, 1) (Rng.pair_distinct r 2)
        done);
    Alcotest.test_case "copy forks the stream" `Quick (fun () ->
        let a = Rng.create 7 in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        check int "copies agree" (Rng.int a 1000) (Rng.int b 1000));
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let r = Rng.create 21 in
        let arr = Array.init 50 Fun.id in
        Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        check (Alcotest.array int) "same elements" (Array.init 50 Fun.id) sorted);
    Alcotest.test_case "sample_without_replacement distinct sorted" `Quick (fun () ->
        let r = Rng.create 4 in
        for _ = 1 to 100 do
          let s = Rng.sample_without_replacement r ~k:5 ~n:12 in
          check int "k elements" 5 (Array.length s);
          for i = 0 to 3 do
            check bool "strictly increasing" true (s.(i) < s.(i + 1))
          done;
          Array.iter (fun v -> check bool "in range" true (v >= 0 && v < 12)) s
        done);
    Alcotest.test_case "sample k=n is everything" `Quick (fun () ->
        let r = Rng.create 4 in
        let s = Rng.sample_without_replacement r ~k:6 ~n:6 in
        check (Alcotest.array int) "identity" (Array.init 6 Fun.id) s);
    Alcotest.test_case "sample k=0 is empty" `Quick (fun () ->
        let r = Rng.create 4 in
        check int "empty" 0 (Array.length (Rng.sample_without_replacement r ~k:0 ~n:9)));
  ]

(* ---------- Bitset ---------- *)

let bitset_tests =
  [
    Alcotest.test_case "fresh set is empty" `Quick (fun () ->
        let b = Bitset.create 100 in
        check bool "empty" true (Bitset.is_empty b);
        check int "cardinal 0" 0 (Bitset.cardinal b));
    Alcotest.test_case "add and mem" `Quick (fun () ->
        let b = Bitset.create 200 in
        Bitset.add b 0;
        Bitset.add b 63;
        Bitset.add b 64;
        Bitset.add b 199;
        List.iter (fun i -> check bool "mem" true (Bitset.mem b i)) [ 0; 63; 64; 199 ];
        List.iter (fun i -> check bool "not mem" false (Bitset.mem b i)) [ 1; 62; 65; 198 ]);
    Alcotest.test_case "add is idempotent" `Quick (fun () ->
        let b = Bitset.create 10 in
        Bitset.add b 5;
        Bitset.add b 5;
        check int "cardinal" 1 (Bitset.cardinal b));
    Alcotest.test_case "remove" `Quick (fun () ->
        let b = Bitset.create 10 in
        Bitset.add b 5;
        Bitset.remove b 5;
        check bool "gone" false (Bitset.mem b 5);
        Bitset.remove b 5 (* removing twice is fine *));
    Alcotest.test_case "clear" `Quick (fun () ->
        let b = Bitset.create 100 in
        for i = 0 to 99 do
          Bitset.add b i
        done;
        Bitset.clear b;
        check bool "empty" true (Bitset.is_empty b));
    Alcotest.test_case "cardinal counts" `Quick (fun () ->
        let b = Bitset.create 1000 in
        for i = 0 to 999 do
          if i mod 3 = 0 then Bitset.add b i
        done;
        check int "334 multiples of 3 below 1000" 334 (Bitset.cardinal b));
    Alcotest.test_case "iter is sorted and complete" `Quick (fun () ->
        let b = Bitset.create 300 in
        let expected = [ 2; 64; 65; 128; 256; 299 ] in
        List.iter (Bitset.add b) (List.rev expected);
        check (Alcotest.list int) "sorted members" expected (Bitset.to_list b));
    Alcotest.test_case "add_all / remove_all" `Quick (fun () ->
        let b = Bitset.create 50 in
        Bitset.add_all b [| 1; 2; 3; 4 |];
        Bitset.remove_all b [| 2; 4 |];
        check (Alcotest.list int) "remaining" [ 1; 3 ] (Bitset.to_list b));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let b = Bitset.create 10 in
        Bitset.add b 3;
        let c = Bitset.copy b in
        Bitset.add c 4;
        check bool "original unchanged" false (Bitset.mem b 4);
        check bool "copy has both" true (Bitset.mem c 3 && Bitset.mem c 4));
    Alcotest.test_case "equal" `Quick (fun () ->
        let a = Bitset.create 10 and b = Bitset.create 10 in
        Bitset.add a 1;
        Bitset.add b 1;
        check bool "equal" true (Bitset.equal a b);
        Bitset.add b 2;
        check bool "not equal" false (Bitset.equal a b));
    Alcotest.test_case "out of bounds raises" `Quick (fun () ->
        let b = Bitset.create 10 in
        Alcotest.check_raises "mem 10" (Invalid_argument "Bitset: index 10 out of bounds [0, 10)")
          (fun () -> ignore (Bitset.mem b 10));
        Alcotest.check_raises "add -1" (Invalid_argument "Bitset: index -1 out of bounds [0, 10)")
          (fun () -> Bitset.add b (-1)));
    Alcotest.test_case "zero capacity" `Quick (fun () ->
        let b = Bitset.create 0 in
        check bool "empty" true (Bitset.is_empty b));
  ]

(* ---------- Bitset word-parallel kernels (QCheck vs sorted-list model) ----------

   The enumeration hot paths trust inter_into / union_into / diff_into /
   iter / fold and the Node_set bridge; each is pinned here against the
   obviously-correct sorted-list implementation on random sets. *)

let bitset_of_list cap l =
  let b = Bitset.create cap in
  List.iter (Bitset.add b) l;
  b

let sorted_dedup l = List.sort_uniq compare l

(* (capacity, members_a, members_b) with members in [0, capacity) *)
let gen_two_sets =
  let open QCheck2.Gen in
  int_range 1 200 >>= fun cap ->
  let members = list_size (int_range 0 60) (int_range 0 (cap - 1)) in
  members >>= fun a ->
  members >>= fun b -> return (cap, a, b)

let print_two_sets (cap, a, b) =
  Printf.sprintf "cap=%d a=[%s] b=[%s]" cap
    (String.concat ";" (List.map string_of_int a))
    (String.concat ";" (List.map string_of_int b))

let qtest ?(count = 300) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

let kernel_tests =
  [
    qtest "inter_into = sorted-list inter" gen_two_sets print_two_sets
      (fun (cap, a, b) ->
        let ba = bitset_of_list cap a and bb = bitset_of_list cap b in
        Bitset.inter_into ~into:ba bb;
        Bitset.to_list ba
        = List.filter (fun v -> List.mem v b) (sorted_dedup a));
    qtest "union_into = sorted-list union" gen_two_sets print_two_sets
      (fun (cap, a, b) ->
        let ba = bitset_of_list cap a and bb = bitset_of_list cap b in
        Bitset.union_into ~into:ba bb;
        Bitset.to_list ba = sorted_dedup (a @ b));
    qtest "diff_into = sorted-list diff" gen_two_sets print_two_sets
      (fun (cap, a, b) ->
        let ba = bitset_of_list cap a and bb = bitset_of_list cap b in
        Bitset.diff_into ~into:ba bb;
        Bitset.to_list ba
        = List.filter (fun v -> not (List.mem v b)) (sorted_dedup a));
    qtest "inter commutes, union commutes" gen_two_sets print_two_sets
      (fun (cap, a, b) ->
        let ab = bitset_of_list cap a and ba = bitset_of_list cap b in
        Bitset.inter_into ~into:ab (bitset_of_list cap b);
        Bitset.inter_into ~into:ba (bitset_of_list cap a);
        let uab = bitset_of_list cap a and uba = bitset_of_list cap b in
        Bitset.union_into ~into:uab (bitset_of_list cap b);
        Bitset.union_into ~into:uba (bitset_of_list cap a);
        Bitset.equal ab ba && Bitset.equal uab uba);
    qtest "inter and union are idempotent" gen_two_sets print_two_sets
      (fun (cap, a, _) ->
        let orig = bitset_of_list cap a in
        let i = Bitset.copy orig and u = Bitset.copy orig in
        Bitset.inter_into ~into:i orig;
        Bitset.union_into ~into:u orig;
        Bitset.equal i orig && Bitset.equal u orig);
    qtest "diff self empties, diff empty is identity" gen_two_sets print_two_sets
      (fun (cap, a, _) ->
        let orig = bitset_of_list cap a in
        let d = Bitset.copy orig in
        Bitset.diff_into ~into:d orig;
        let e = Bitset.copy orig in
        Bitset.diff_into ~into:e (Bitset.create cap);
        Bitset.is_empty d && Bitset.equal e orig);
    qtest "iter is sorted; fold and cardinal agree" gen_two_sets print_two_sets
      (fun (cap, a, _) ->
        let b = bitset_of_list cap a in
        let seen = ref [] in
        Bitset.iter (fun i -> seen := i :: !seen) b;
        let members = List.rev !seen in
        members = sorted_dedup a
        && Bitset.fold (fun _ acc -> acc + 1) b 0 = Bitset.cardinal b
        && Bitset.cardinal b = List.length members);
    qtest "kernels on distinct capacities are rejected"
      QCheck2.Gen.(int_range 1 100 >>= fun c -> return (c, [], []))
      print_two_sets
      (fun (cap, _, _) ->
        let a = Bitset.create cap and b = Bitset.create (cap + 1) in
        match Bitset.inter_into ~into:a b with
        | () -> false
        | exception Invalid_argument _ -> true);
    (* --- Node_set bridge --- *)
    qtest "of_bitset ∘ to_bitset = id" gen_two_sets print_two_sets
      (fun (cap, a, _) ->
        let s = Sgraph.Node_set.of_list a in
        Sgraph.Node_set.equal s
          (Sgraph.Node_set.of_bitset (Sgraph.Node_set.to_bitset s ~capacity:cap)));
    qtest "inter_bitset/diff_bitset = inter/diff" gen_two_sets print_two_sets
      (fun (cap, a, b) ->
        let module NS = Sgraph.Node_set in
        let sa = NS.of_list a and sb = NS.of_list b in
        let mask = NS.to_bitset sb ~capacity:cap in
        NS.equal (NS.inter_bitset sa mask) (NS.inter sa sb)
        && NS.equal (NS.diff_bitset sa mask) (NS.diff sa sb)
        && NS.inter_bitset_cardinal sa mask = NS.cardinal (NS.inter sa sb)
        && NS.diff_bitset_cardinal sa mask = NS.cardinal (NS.diff sa sb));
    qtest "load_bitset swaps mask contents exactly" gen_two_sets print_two_sets
      (fun (cap, a, b) ->
        let module NS = Sgraph.Node_set in
        let sa = NS.of_list a and sb = NS.of_list b in
        (* mask holds exactly [sa]; after the reload it must hold exactly
           [sb] — including members of [sa] that shared words with [sb] *)
        let mask = NS.to_bitset sa ~capacity:cap in
        NS.load_bitset mask ~prev:sa sb;
        Bitset.equal mask (NS.to_bitset sb ~capacity:cap)
        && NS.equal (NS.of_bitset mask) sb);
  ]

(* ---------- Deque ---------- *)

let deque_tests =
  [
    Alcotest.test_case "back is LIFO, front is FIFO" `Quick (fun () ->
        let d = Deque.create () in
        List.iter (Deque.push_back d) [ 1; 2; 3 ];
        check (Alcotest.option int) "newest from back" (Some 3) (Deque.pop_back_opt d);
        check (Alcotest.option int) "oldest from front" (Some 1) (Deque.pop_front_opt d);
        check (Alcotest.option int) "remaining" (Some 2) (Deque.pop_back_opt d);
        check (Alcotest.option int) "empty" None (Deque.pop_back_opt d));
    Alcotest.test_case "push_front" `Quick (fun () ->
        let d = Deque.create () in
        Deque.push_back d 2;
        Deque.push_front d 1;
        Deque.push_back d 3;
        check (Alcotest.list int) "order" [ 1; 2; 3 ] (Deque.to_list d));
    Alcotest.test_case "growth across wraparound" `Quick (fun () ->
        let d = Deque.create ~initial_capacity:4 () in
        List.iter (Deque.push_back d) [ 0; 1; 2 ];
        ignore (Deque.pop_front_opt d);
        ignore (Deque.pop_front_opt d);
        for i = 3 to 20 do
          Deque.push_back d i
        done;
        check (Alcotest.list int) "order preserved"
          (List.init 19 (fun i -> i + 2))
          (Deque.to_list d));
    Alcotest.test_case "clear empties and stays usable" `Quick (fun () ->
        let d = Deque.create () in
        List.iter (Deque.push_back d) [ 1; 2 ];
        Deque.clear d;
        check bool "empty" true (Deque.is_empty d);
        Deque.push_front d 9;
        check (Alcotest.option int) "usable" (Some 9) (Deque.pop_back_opt d));
    Alcotest.test_case "model check vs double-ended list" `Quick (fun () ->
        let rng = Rng.create 77 in
        let d = Deque.create ~initial_capacity:2 () in
        let model = ref [] in
        for _ = 1 to 3000 do
          match Rng.int rng 4 with
          | 0 ->
              let v = Rng.int rng 1000 in
              Deque.push_back d v;
              model := !model @ [ v ]
          | 1 ->
              let v = Rng.int rng 1000 in
              Deque.push_front d v;
              model := v :: !model
          | 2 -> (
              match !model with
              | [] -> check (Alcotest.option int) "front empty" None (Deque.pop_front_opt d)
              | x :: rest ->
                  check (Alcotest.option int) "front" (Some x) (Deque.pop_front_opt d);
                  model := rest)
          | _ -> (
              match List.rev !model with
              | [] -> check (Alcotest.option int) "back empty" None (Deque.pop_back_opt d)
              | x :: rest ->
                  check (Alcotest.option int) "back" (Some x) (Deque.pop_back_opt d);
                  model := List.rev rest)
        done;
        check (Alcotest.list int) "final contents" !model (Deque.to_list d));
  ]

(* ---------- Fifo_queue ---------- *)

let fifo_tests =
  [
    Alcotest.test_case "fifo order" `Quick (fun () ->
        let q = Fifo_queue.create () in
        List.iter (Fifo_queue.push q) [ 1; 2; 3 ];
        check int "1 first" 1 (Fifo_queue.pop q);
        check int "2 second" 2 (Fifo_queue.pop q);
        Fifo_queue.push q 4;
        check int "3 third" 3 (Fifo_queue.pop q);
        check int "4 fourth" 4 (Fifo_queue.pop q));
    Alcotest.test_case "pop on empty raises" `Quick (fun () ->
        let q : int Fifo_queue.t = Fifo_queue.create () in
        Alcotest.check_raises "empty" (Invalid_argument "Fifo_queue.pop: empty queue")
          (fun () -> ignore (Fifo_queue.pop q)));
    Alcotest.test_case "pop_opt" `Quick (fun () ->
        let q = Fifo_queue.create () in
        check (Alcotest.option int) "none" None (Fifo_queue.pop_opt q);
        Fifo_queue.push q 9;
        check (Alcotest.option int) "some" (Some 9) (Fifo_queue.pop_opt q));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let q = Fifo_queue.create () in
        Fifo_queue.push q 5;
        check int "peek" 5 (Fifo_queue.peek q);
        check int "still there" 1 (Fifo_queue.length q));
    Alcotest.test_case "growth across wraparound" `Quick (fun () ->
        let q = Fifo_queue.create ~initial_capacity:4 () in
        (* force head to move, then grow past the wrap point *)
        List.iter (Fifo_queue.push q) [ 0; 1; 2 ];
        ignore (Fifo_queue.pop q);
        ignore (Fifo_queue.pop q);
        for i = 3 to 20 do
          Fifo_queue.push q i
        done;
        check (Alcotest.list int) "order preserved" (List.init 19 (fun i -> i + 2))
          (Fifo_queue.to_list q));
    Alcotest.test_case "length tracks" `Quick (fun () ->
        let q = Fifo_queue.create () in
        check int "0" 0 (Fifo_queue.length q);
        Fifo_queue.push q 1;
        Fifo_queue.push q 2;
        check int "2" 2 (Fifo_queue.length q);
        ignore (Fifo_queue.pop q);
        check int "1" 1 (Fifo_queue.length q));
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let q = Fifo_queue.create () in
        List.iter (Fifo_queue.push q) [ 1; 2 ];
        Fifo_queue.clear q;
        check bool "empty" true (Fifo_queue.is_empty q);
        Fifo_queue.push q 7;
        check int "usable after clear" 7 (Fifo_queue.pop q));
    Alcotest.test_case "iter front to back" `Quick (fun () ->
        let q = Fifo_queue.create () in
        List.iter (Fifo_queue.push q) [ 4; 5; 6 ];
        let acc = ref [] in
        Fifo_queue.iter (fun x -> acc := x :: !acc) q;
        check (Alcotest.list int) "order" [ 4; 5; 6 ] (List.rev !acc));
    Alcotest.test_case "model check vs stdlib Queue" `Quick (fun () ->
        let rng = Rng.create 31 in
        let q = Fifo_queue.create ~initial_capacity:2 () in
        let model = Queue.create () in
        for _ = 1 to 2000 do
          if Rng.bool rng || Queue.is_empty model then begin
            let v = Rng.int rng 1000 in
            Fifo_queue.push q v;
            Queue.push v model
          end
          else check int "pops agree" (Queue.pop model) (Fifo_queue.pop q)
        done;
        check int "lengths agree" (Queue.length model) (Fifo_queue.length q));
  ]

(* ---------- Binary_heap ---------- *)

let heap_tests =
  [
    Alcotest.test_case "min-heap pops sorted" `Quick (fun () ->
        let h = Binary_heap.create ~cmp:compare () in
        List.iter (Binary_heap.push h) [ 5; 3; 8; 1; 9; 2 ];
        check (Alcotest.list int) "sorted" [ 1; 2; 3; 5; 8; 9 ] (Binary_heap.pop_all h));
    Alcotest.test_case "max-heap via reversed cmp" `Quick (fun () ->
        let h = Binary_heap.create ~cmp:(fun a b -> compare b a) () in
        List.iter (Binary_heap.push h) [ 5; 3; 8 ];
        check int "max first" 8 (Binary_heap.pop h));
    Alcotest.test_case "pop empty raises" `Quick (fun () ->
        let h : int Binary_heap.t = Binary_heap.create ~cmp:compare () in
        Alcotest.check_raises "empty" (Invalid_argument "Binary_heap.pop: empty heap")
          (fun () -> ignore (Binary_heap.pop h)));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Binary_heap.create ~cmp:compare () in
        Binary_heap.push h 4;
        Binary_heap.push h 2;
        check int "peek" 2 (Binary_heap.peek h);
        check int "length" 2 (Binary_heap.length h));
    Alcotest.test_case "duplicates survive" `Quick (fun () ->
        let h = Binary_heap.create ~cmp:compare () in
        List.iter (Binary_heap.push h) [ 3; 3; 3 ];
        check (Alcotest.list int) "all three" [ 3; 3; 3 ] (Binary_heap.pop_all h));
    Alcotest.test_case "of_array heapifies" `Quick (fun () ->
        let h = Binary_heap.of_array ~cmp:compare [| 9; 4; 7; 1; 8 |] in
        check (Alcotest.list int) "sorted" [ 1; 4; 7; 8; 9 ] (Binary_heap.pop_all h));
    Alcotest.test_case "of_array empty" `Quick (fun () ->
        let h = Binary_heap.of_array ~cmp:compare ([||] : int array) in
        check bool "empty" true (Binary_heap.is_empty h));
    Alcotest.test_case "interleaved push/pop model check" `Quick (fun () ->
        let rng = Rng.create 17 in
        let h = Binary_heap.create ~cmp:compare () in
        let model = ref [] in
        for _ = 1 to 2000 do
          if Rng.bool rng || !model = [] then begin
            let v = Rng.int rng 100 in
            Binary_heap.push h v;
            model := List.sort compare (v :: !model)
          end
          else begin
            match !model with
            | least :: rest ->
                check int "min agrees" least (Binary_heap.pop h);
                model := rest
            | [] -> assert false
          end
        done);
    Alcotest.test_case "clear" `Quick (fun () ->
        let h = Binary_heap.create ~cmp:compare () in
        List.iter (Binary_heap.push h) [ 1; 2 ];
        Binary_heap.clear h;
        check bool "empty" true (Binary_heap.is_empty h));
    Alcotest.test_case "grows past initial capacity" `Quick (fun () ->
        let h = Binary_heap.create ~cmp:compare () in
        for i = 100 downto 1 do
          Binary_heap.push h i
        done;
        check (Alcotest.list int) "sorted 1..100" (List.init 100 (fun i -> i + 1))
          (Binary_heap.pop_all h));
  ]

(* ---------- Btree ---------- *)

let btree_tests =
  [
    Alcotest.test_case "empty tree" `Quick (fun () ->
        let t = Btree.create ~cmp:compare () in
        check bool "is_empty" true (Btree.is_empty t);
        check bool "mem" false (Btree.mem t 5);
        check (Alcotest.option int) "min" None (Btree.min_elt t));
    Alcotest.test_case "add then mem" `Quick (fun () ->
        let t = Btree.create ~cmp:compare () in
        check bool "fresh add" true (Btree.add t 42);
        check bool "mem" true (Btree.mem t 42);
        check bool "duplicate add" false (Btree.add t 42);
        check int "length 1" 1 (Btree.length t));
    Alcotest.test_case "sorted iteration" `Quick (fun () ->
        let t = Btree.create ~min_degree:2 ~cmp:compare () in
        List.iter (fun x -> ignore (Btree.add t x)) [ 9; 1; 5; 3; 7; 2; 8; 4; 6; 0 ];
        check (Alcotest.list int) "in order" (List.init 10 Fun.id) (Btree.to_list t));
    Alcotest.test_case "min/max" `Quick (fun () ->
        let t = Btree.create ~cmp:compare () in
        List.iter (fun x -> ignore (Btree.add t x)) [ 5; 1; 9 ];
        check (Alcotest.option int) "min" (Some 1) (Btree.min_elt t);
        check (Alcotest.option int) "max" (Some 9) (Btree.max_elt t));
    Alcotest.test_case "splits keep invariants (min_degree 2)" `Quick (fun () ->
        let t = Btree.create ~min_degree:2 ~cmp:compare () in
        for i = 0 to 500 do
          ignore (Btree.add t i);
          Btree.check_invariants t
        done;
        check int "all present" 501 (Btree.length t));
    Alcotest.test_case "random inserts vs Set model" `Quick (fun () ->
        let module IS = Set.Make (Int) in
        let rng = Rng.create 13 in
        let t = Btree.create ~min_degree:3 ~cmp:compare () in
        let model = ref IS.empty in
        for _ = 1 to 3000 do
          let v = Rng.int rng 500 in
          let fresh = Btree.add t v in
          check bool "freshness agrees" (not (IS.mem v !model)) fresh;
          model := IS.add v !model
        done;
        Btree.check_invariants t;
        check (Alcotest.list int) "same contents" (IS.elements !model) (Btree.to_list t);
        IS.iter (fun v -> check bool "mem" true (Btree.mem t v)) !model;
        check bool "absent stays absent" false (Btree.mem t 501));
    Alcotest.test_case "logarithmic height" `Quick (fun () ->
        let t = Btree.create ~min_degree:16 ~cmp:compare () in
        for i = 0 to 99_999 do
          ignore (Btree.add t i)
        done;
        (* with min degree 16, 1e5 keys fit comfortably within height 4 *)
        check bool "height small" true (Btree.height t <= 4);
        Btree.check_invariants t);
    Alcotest.test_case "custom comparator (descending)" `Quick (fun () ->
        let t = Btree.create ~cmp:(fun a b -> compare b a) () in
        List.iter (fun x -> ignore (Btree.add t x)) [ 1; 3; 2 ];
        check (Alcotest.list int) "descending" [ 3; 2; 1 ] (Btree.to_list t));
    Alcotest.test_case "node-set keys (PolyDelayEnum's index)" `Quick (fun () ->
        let module NS = Sgraph.Node_set in
        let t = Btree.create ~cmp:NS.compare () in
        check bool "add {1,2}" true (Btree.add t (NS.of_list [ 2; 1 ]));
        check bool "add {1,3}" true (Btree.add t (NS.of_list [ 1; 3 ]));
        check bool "duplicate {2,1}" false (Btree.add t (NS.of_list [ 1; 2 ]));
        check bool "mem {1,3}" true (Btree.mem t (NS.of_list [ 3; 1 ]));
        check int "two sets" 2 (Btree.length t));
    Alcotest.test_case "min_degree below 2 rejected" `Quick (fun () ->
        Alcotest.check_raises "min_degree 1"
          (Invalid_argument "Btree.create: min_degree must be >= 2") (fun () ->
            ignore (Btree.create ~min_degree:1 ~cmp:compare ())));
  ]

(* ---------- Lri_cache ---------- *)

let lri_tests =
  [
    Alcotest.test_case "find_or_add computes once" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:10 () in
        let calls = ref 0 in
        let compute k =
          incr calls;
          k * 2
        in
        check int "first" 8 (Lri_cache.find_or_add c 4 ~compute);
        check int "second (cached)" 8 (Lri_cache.find_or_add c 4 ~compute);
        check int "computed once" 1 !calls);
    Alcotest.test_case "evicts oldest-inserted first" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:2 () in
        Lri_cache.add c 1 "a";
        Lri_cache.add c 2 "b";
        (* touching key 1 must NOT protect it: LRI, not LRU *)
        ignore (Lri_cache.find_opt c 1);
        Lri_cache.add c 3 "c";
        check bool "1 evicted" false (Lri_cache.mem c 1);
        check bool "2 kept" true (Lri_cache.mem c 2);
        check bool "3 kept" true (Lri_cache.mem c 3));
    Alcotest.test_case "capacity bound holds" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:5 () in
        for i = 1 to 100 do
          Lri_cache.add c i i
        done;
        check int "at most 5" 5 (Lri_cache.length c);
        (* the five newest survive *)
        for i = 96 to 100 do
          check bool "recent kept" true (Lri_cache.mem c i)
        done);
    Alcotest.test_case "capacity 0 disables caching" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:0 () in
        let calls = ref 0 in
        let compute _ =
          incr calls;
          0
        in
        ignore (Lri_cache.find_or_add c 1 ~compute);
        ignore (Lri_cache.find_or_add c 1 ~compute);
        check int "computed every time" 2 !calls;
        check int "never stores" 0 (Lri_cache.length c));
    Alcotest.test_case "replacing a key keeps its eviction rank" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:2 () in
        Lri_cache.add c 1 "a";
        Lri_cache.add c 2 "b";
        Lri_cache.add c 1 "a2" (* replace, still oldest *);
        check (Alcotest.option Alcotest.string) "new value" (Some "a2")
          (Lri_cache.find_opt c 1);
        Lri_cache.add c 3 "c";
        check bool "1 still evicted first" false (Lri_cache.mem c 1));
    Alcotest.test_case "stats count hits misses evictions" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:1 () in
        ignore (Lri_cache.find_opt c 1) (* miss *);
        Lri_cache.add c 1 10;
        ignore (Lri_cache.find_opt c 1) (* hit *);
        Lri_cache.add c 2 20 (* evicts 1 *);
        let s = Lri_cache.stats c in
        check int "hits" 1 s.Lri_cache.hits;
        check int "misses" 1 s.Lri_cache.misses;
        check int "evictions" 1 s.Lri_cache.evictions);
    Alcotest.test_case "clear keeps stats" `Quick (fun () ->
        let c = Lri_cache.create ~capacity:4 () in
        Lri_cache.add c 1 1;
        ignore (Lri_cache.find_opt c 1);
        Lri_cache.clear c;
        check int "emptied" 0 (Lri_cache.length c);
        check int "hits kept" 1 (Lri_cache.stats c).Lri_cache.hits);
    Alcotest.test_case "negative capacity rejected" `Quick (fun () ->
        Alcotest.check_raises "capacity -1"
          (Invalid_argument "Lri_cache.create: negative capacity") (fun () ->
            ignore (Lri_cache.create ~capacity:(-1) ())));
  ]

(* ---------- Union_find ---------- *)

let uf_tests =
  [
    Alcotest.test_case "initially all separate" `Quick (fun () ->
        let u = Union_find.create 5 in
        check int "5 sets" 5 (Union_find.count u);
        check bool "0 /~ 1" false (Union_find.same u 0 1));
    Alcotest.test_case "union merges" `Quick (fun () ->
        let u = Union_find.create 5 in
        check bool "fresh union" true (Union_find.union u 0 1);
        check bool "same" true (Union_find.same u 0 1);
        check int "4 sets" 4 (Union_find.count u);
        check bool "repeat union" false (Union_find.union u 1 0));
    Alcotest.test_case "transitivity" `Quick (fun () ->
        let u = Union_find.create 6 in
        ignore (Union_find.union u 0 1);
        ignore (Union_find.union u 1 2);
        ignore (Union_find.union u 4 5);
        check bool "0 ~ 2" true (Union_find.same u 0 2);
        check bool "0 /~ 4" false (Union_find.same u 0 4);
        check int "3 sets" 3 (Union_find.count u));
    Alcotest.test_case "find returns canonical representative" `Quick (fun () ->
        let u = Union_find.create 4 in
        ignore (Union_find.union u 0 1);
        ignore (Union_find.union u 2 3);
        ignore (Union_find.union u 0 3);
        let r = Union_find.find u 0 in
        List.iter (fun v -> check int "same root" r (Union_find.find u v)) [ 1; 2; 3 ]);
    Alcotest.test_case "chain of 1000 unions" `Quick (fun () ->
        let u = Union_find.create 1000 in
        for i = 0 to 998 do
          ignore (Union_find.union u i (i + 1))
        done;
        check int "single set" 1 (Union_find.count u);
        check bool "ends connected" true (Union_find.same u 0 999));
  ]

let crc32_tests =
  let open Alcotest in
  [
    test_case "known answer: IEEE check vector" `Quick (fun () ->
        (* the standard CRC-32 test vector; pins the polynomial, the
           reflection, and the init/final xor all at once *)
        check int "123456789" 0xCBF43926 (Crc32.string "123456789"));
    test_case "empty input" `Quick (fun () ->
        check int "empty" 0 (Crc32.string ""));
    test_case "slicing boundary lengths agree with byte-at-a-time" `Quick (fun () ->
        (* reference implementation: the classic one-byte loop *)
        let table =
          let t = Array.make 256 0 in
          for n = 0 to 255 do
            let c = ref n in
            for _ = 0 to 7 do
              c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
            done;
            t.(n) <- !c
          done;
          t
        in
        let reference s =
          let crc = ref 0xFFFFFFFF in
          String.iter
            (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
            s;
          !crc lxor 0xFFFFFFFF
        in
        (* lengths straddling the 8-byte slicing step, including ones
           that leave every possible tail length *)
        for len = 0 to 40 do
          let s = String.init len (fun i -> Char.chr ((i * 37 + len) land 0xFF)) in
          check int (Printf.sprintf "len %d" len) (reference s) (Crc32.string s)
        done);
    test_case "off/len digest a substring" `Quick (fun () ->
        let s = "xxhello worldyy" in
        check int "substring"
          (Crc32.string "hello world")
          (Crc32.string ~off:2 ~len:11 s));
    test_case "out-of-bounds substring raises" `Quick (fun () ->
        check_raises "bad range" (Invalid_argument "Crc32: substring out of bounds")
          (fun () -> ignore (Crc32.string ~off:1 ~len:100 "short")));
  ]

let suites =
  [
    ("rng", rng_tests);
    ("crc32", crc32_tests);
    ("bitset", bitset_tests);
    ("bitset_kernels", kernel_tests);
    ("deque", deque_tests);
    ("fifo_queue", fifo_tests);
    ("binary_heap", heap_tests);
    ("btree", btree_tests);
    ("lri_cache", lri_tests);
    ("union_find", uf_tests);
  ]
