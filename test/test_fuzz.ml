(* Parser robustness: arbitrary input must either parse or raise [Failure]
   with a diagnostic — never crash, assert, or loop. *)

let printable_junk =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 200))

let lines_of_numbers =
  (* near-miss inputs: lines of numbers with occasional corruption *)
  let open QCheck2.Gen in
  let token = oneof [ map string_of_int (int_range (-5) 30); return "x"; return "" ] in
  let line = map (String.concat " ") (list_size (int_range 0 4) token) in
  map (String.concat "\n") (list_size (int_range 0 12) line)

let total name parse gen =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name ~print:(Printf.sprintf "%S") gen
       (fun input ->
         match parse input with
         | _ -> true
         | exception Failure msg -> String.length msg > 0
         | exception Invalid_argument _ -> false
         | exception _ -> false))

let tests =
  [
    total "edge list parser is total on printable junk" Sgraph.Edge_list_io.parse_string
      printable_junk;
    total "edge list parser is total on number soup" Sgraph.Edge_list_io.parse_string
      lines_of_numbers;
    total "METIS parser is total on printable junk" Sgraph.Metis_io.parse_string
      printable_junk;
    total "METIS parser is total on number soup" Sgraph.Metis_io.parse_string
      lines_of_numbers;
    total "results parser is total on printable junk"
      Scliques_core.Result_io.parse_string printable_junk;
    total "results parser is total on number soup" Scliques_core.Result_io.parse_string
      lines_of_numbers;
  ]

let suites = [ ("parser_fuzz", tests) ]
