(* Parser robustness: arbitrary input must either parse or raise the
   parser's one documented exception with a diagnostic — never crash,
   assert, leak an untyped exception, or loop. *)

let printable_junk =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 200))

let binary_junk =
  (* arbitrary bytes, including NULs and newlines: models reading a file
     that is not text at all (e.g. handed a .png by mistake) *)
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200))

let lines_of_numbers =
  (* near-miss inputs: lines of numbers with occasional corruption *)
  let open QCheck2.Gen in
  let token = oneof [ map string_of_int (int_range (-5) 30); return "x"; return "" ] in
  let line = map (String.concat " ") (list_size (int_range 0 4) token) in
  map (String.concat "\n") (list_size (int_range 0 12) line)

let total ~ok_exn name parse gen =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name ~print:(Printf.sprintf "%S") gen
       (fun input ->
         match parse input with _ -> true | exception e -> ok_exn e))

(* Graph loaders promise exactly one exception type, with a non-empty
   message and the source name threaded through. *)
let structured_only = function
  | Sgraph.Io_error.Parse_error { file; line; msg } ->
      file = "<string>" && line >= 0 && String.length msg > 0
  | _ -> false

(* The result parser still reports via [Failure]. *)
let failure_only = function
  | Failure msg -> String.length msg > 0
  | _ -> false

let tests =
  [
    total ~ok_exn:structured_only "edge list parser is total on printable junk"
      Sgraph.Edge_list_io.parse_string printable_junk;
    total ~ok_exn:structured_only "edge list parser is total on binary junk"
      Sgraph.Edge_list_io.parse_string binary_junk;
    total ~ok_exn:structured_only "edge list parser is total on number soup"
      Sgraph.Edge_list_io.parse_string lines_of_numbers;
    total ~ok_exn:structured_only "METIS parser is total on printable junk"
      Sgraph.Metis_io.parse_string printable_junk;
    total ~ok_exn:structured_only "METIS parser is total on binary junk"
      Sgraph.Metis_io.parse_string binary_junk;
    total ~ok_exn:structured_only "METIS parser is total on number soup"
      Sgraph.Metis_io.parse_string lines_of_numbers;
    total ~ok_exn:failure_only "results parser is total on printable junk"
      Scliques_core.Result_io.parse_string printable_junk;
    total ~ok_exn:failure_only "results parser is total on number soup"
      Scliques_core.Result_io.parse_string lines_of_numbers;
  ]

let suites = [ ("parser_fuzz", tests) ]
