(* Unit suites for the core library's building blocks: Neighborhood,
   Extend_max, Verify, Brute_force, Stats. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module Nh = Scliques_core.Neighborhood
module Em = Scliques_core.Extend_max
module V = Scliques_core.Verify
module Bf = Scliques_core.Brute_force

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let ns = Test_support.ns
let of_l = NS.of_list

let fig1 () = fst (Sgraph.Gen.figure1 ())

let neighborhood_tests =
  [
    Alcotest.test_case "ball equals Bfs.ball" `Quick (fun () ->
        let g = fig1 () in
        let nh = Nh.create ~s:2 g in
        G.iter_nodes
          (fun v -> check ns "agree" (Sgraph.Bfs.ball g v ~radius:2) (Nh.ball nh v))
          g);
    Alcotest.test_case "s=1 ball is the neighbor set" `Quick (fun () ->
        let g = fig1 () in
        let nh = Nh.create ~s:1 g in
        check ns "neighbors of Dan" (of_l [ 1; 2; 4; 5; 6 ]) (Nh.ball nh 3));
    Alcotest.test_case "example 3.1: N-forall and N-exists on figure 1" `Quick (fun () ->
        (* V = {e, h} = ids {4, 7}. Paper: N^{∃,1} = {d,f,g}, N^{∀,1} = {f},
           N^{∃,2} adds {b,c}, N^{∀,2} = {d,f,g}. *)
        let g = fig1 () in
        let v = of_l [ 4; 7 ] in
        let nh1 = Nh.create ~s:1 g in
        let nh2 = Nh.create ~s:2 g in
        check ns "N exists 1" (of_l [ 3; 5; 6 ]) (Nh.adjacent_any nh1 v);
        check ns "N forall 1" (of_l [ 5 ]) (Nh.ball_forall nh1 v);
        check ns "N forall 2" (of_l [ 3; 5; 6 ]) (Nh.ball_forall nh2 v));
    Alcotest.test_case "ball_forall of empty set is all nodes" `Quick (fun () ->
        let g = fig1 () in
        let nh = Nh.create ~s:2 g in
        check ns "all" (G.nodes g) (Nh.ball_forall nh NS.empty));
    Alcotest.test_case "adjacent_any of empty set is empty" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        check ns "empty" NS.empty (Nh.adjacent_any nh NS.empty));
    Alcotest.test_case "ball_forall excludes the set itself" `Quick (fun () ->
        let nh = Nh.create ~s:3 (fig1 ()) in
        let c = of_l [ 3; 4 ] in
        check bool "disjoint" true (NS.disjoint c (Nh.ball_forall nh c)));
    Alcotest.test_case "within_distance" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        check bool "a-d dist2" true (Nh.within_distance nh 0 3);
        check bool "a-f dist3" false (Nh.within_distance nh 0 5);
        check bool "self" true (Nh.within_distance nh 0 0));
    Alcotest.test_case "cache hits accumulate" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        ignore (Nh.ball nh 0);
        ignore (Nh.ball nh 0);
        ignore (Nh.ball nh 0);
        let stats = Nh.cache_stats nh in
        check int "2 hits" 2 stats.Scoll.Lri_cache.hits;
        check int "1 miss" 1 stats.Scoll.Lri_cache.misses);
    Alcotest.test_case "capacity 0 disables the cache but stays correct" `Quick (fun () ->
        let g = fig1 () in
        let cached = Nh.create ~s:2 g in
        let uncached = Nh.create ~cache_capacity:0 ~s:2 g in
        G.iter_nodes (fun v -> check ns "same ball" (Nh.ball cached v) (Nh.ball uncached v)) g);
    Alcotest.test_case "tiny capacity evicts but stays correct" `Quick (fun () ->
        let g = fig1 () in
        let nh = Nh.create ~cache_capacity:2 ~s:2 g in
        for _ = 1 to 3 do
          G.iter_nodes
            (fun v -> check ns "ball" (Sgraph.Bfs.ball g v ~radius:2) (Nh.ball nh v))
            g
        done;
        check bool "evictions happened" true
          ((Nh.cache_stats nh).Scoll.Lri_cache.evictions > 0));
    Alcotest.test_case "s < 1 rejected" `Quick (fun () ->
        Alcotest.check_raises "s=0" (Invalid_argument "Neighborhood.create: s must be >= 1")
          (fun () -> ignore (Nh.create ~s:0 (fig1 ()))));
  ]

let extend_max_tests =
  [
    Alcotest.test_case "result is maximal and contains the seed" `Quick (fun () ->
        let g = fig1 () in
        let nh = Nh.create ~s:2 g in
        G.iter_nodes
          (fun v ->
            let r = Em.in_graph nh (NS.singleton v) in
            check bool "contains seed" true (NS.mem v r);
            check bool "maximal" true (V.is_maximal_connected_s_clique g ~s:2 r))
          g);
    Alcotest.test_case "empty seed starts from node 0" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        let r = Em.in_graph nh NS.empty in
        check bool "has node 0" true (NS.mem 0 r);
        check ns "the a-community" (of_l [ 0; 1; 2; 3 ]) r);
    Alcotest.test_case "empty graph yields empty set" `Quick (fun () ->
        let nh = Nh.create ~s:2 (G.empty 0) in
        check ns "empty" NS.empty (Em.in_graph nh NS.empty));
    Alcotest.test_case "isolated node is its own maximal set" `Quick (fun () ->
        let nh = Nh.create ~s:2 (G.empty 3) in
        check ns "singleton" (of_l [ 1 ]) (Em.in_graph nh (NS.singleton 1)));
    Alcotest.test_case "example 4.1 shape: extending {e} inside G[C ∪ {e}]" `Quick
      (fun () ->
        (* paper: C = {a,b,c,d}, v = e; ExtendMax({e}, G[C∪{e}], 2) = {b,c,d,e} *)
        let nh = Nh.create ~s:2 (fig1 ()) in
        let universe = of_l [ 0; 1; 2; 3; 4 ] in
        check ns "carved set" (of_l [ 1; 2; 3; 4 ])
          (Em.in_induced nh ~universe ~seed:(NS.singleton 4)));
    Alcotest.test_case "example 4.1 continued: re-maximizing in G" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        check ns "{b,c,d,e} grows to {b,c,d,e,f,g}" (of_l [ 1; 2; 3; 4; 5; 6 ])
          (Em.in_graph nh (of_l [ 1; 2; 3; 4 ])));
    Alcotest.test_case "in_induced restricts membership, not distances" `Quick (fun () ->
        (* path 0-1-2 plus shortcut 0-3-2: universe {0,2} cannot grow
           because 0 and 2 are not adjacent inside it (no connected
           growth), even though d_G(0,2) = 2 *)
        let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (0, 3); (3, 2) ] in
        let nh = Nh.create ~s:2 g in
        let r = Em.in_induced nh ~universe:(of_l [ 0; 2 ]) ~seed:(NS.singleton 0) in
        check ns "no adjacency inside the universe" (of_l [ 0 ]) r;
        let r = Em.in_induced nh ~universe:(of_l [ 0; 1; 2 ]) ~seed:(NS.singleton 0) in
        check ns "absorbs via 1" (of_l [ 0; 1; 2 ]) r);
    Alcotest.test_case "in_induced measures distances in the whole graph" `Quick
      (fun () ->
        (* cycle 0-1-2-3-4-0: inside universe {0,1,2,3} the induced path
           0-1-2-3 puts 3 at distance 3 from 0, but the ambient witness
           0-4-3 keeps d_G(0,3) = 2, so the carve must keep 3 — exactly
           the situation where the Fig. 4 carve loses results if it
           (wrongly) measures distances in the induced subgraph *)
        let g = G.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
        let nh = Nh.create ~s:2 g in
        check ns "keeps the far endpoint" (of_l [ 0; 1; 2; 3 ])
          (Em.in_induced nh ~universe:(of_l [ 0; 1; 2; 3 ]) ~seed:(NS.singleton 0)));
    Alcotest.test_case "in_induced validates the seed" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        Alcotest.check_raises "empty seed"
          (Invalid_argument "Extend_max.in_induced: empty seed") (fun () ->
            ignore (Em.in_induced nh ~universe:(of_l [ 0 ]) ~seed:NS.empty));
        Alcotest.check_raises "outside"
          (Invalid_argument "Extend_max.in_induced: seed outside universe") (fun () ->
            ignore (Em.in_induced nh ~universe:(of_l [ 0 ]) ~seed:(of_l [ 1 ]))));
    Alcotest.test_case "random: in_graph always produces maximal sets" `Quick (fun () ->
        let rng = Scoll.Rng.create 77 in
        for _ = 1 to 20 do
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n:12 ~m:18 in
          let s = 1 + Scoll.Rng.int rng 3 in
          let nh = Nh.create ~s g in
          G.iter_nodes
            (fun v ->
              let r = Em.in_graph nh (NS.singleton v) in
              check bool "maximal connected s-clique" true
                (V.is_maximal_connected_s_clique g ~s r))
            g
        done);
  ]

let verify_tests =
  [
    Alcotest.test_case "is_clique" `Quick (fun () ->
        let g = fig1 () in
        check bool "abc" true (V.is_clique g (of_l [ 0; 1; 2 ]));
        check bool "abcd not" false (V.is_clique g (of_l [ 0; 1; 2; 3 ]));
        check bool "empty" true (V.is_clique g NS.empty);
        check bool "singleton" true (V.is_clique g (of_l [ 5 ])));
    Alcotest.test_case "example 3.2: s-clique but not 2-clique" `Quick (fun () ->
        let g = fig1 () in
        let c = of_l [ 0; 1; 2; 3; 4; 5; 6 ] in
        check bool "3-clique" true (V.is_s_clique g ~s:3 c);
        check bool "not 2-clique (dist a f = 3)" false (V.is_s_clique g ~s:2 c));
    Alcotest.test_case "example 3.2: {a,d} 2-clique but unconnected" `Quick (fun () ->
        let g = fig1 () in
        let c = of_l [ 0; 3 ] in
        check bool "2-clique" true (V.is_s_clique g ~s:2 c);
        check bool "not connected" false (V.is_connected_s_clique g ~s:2 c));
    Alcotest.test_case "distances leave the set (the s-clique subtlety)" `Quick (fun () ->
        (* 4-cycle: {0, 2} is a 2-clique via nodes outside the pair *)
        let g = Sgraph.Gen.cycle 4 in
        check bool "2-clique through outside" true (V.is_s_clique g ~s:2 (of_l [ 0; 2 ])));
    Alcotest.test_case "nodes in different components are never s-close" `Quick (fun () ->
        let g = G.empty 3 in
        check bool "not an s-clique" false (V.is_s_clique g ~s:5 (of_l [ 0; 1 ])));
    Alcotest.test_case "maximality on figure 1 ground truth" `Quick (fun () ->
        let g = fig1 () in
        check bool "{a,b,c,d} maximal" true
          (V.is_maximal_connected_s_clique g ~s:2 (of_l [ 0; 1; 2; 3 ]));
        check bool "{a,b,c} not maximal at s=2" false
          (V.is_maximal_connected_s_clique g ~s:2 (of_l [ 0; 1; 2 ]));
        check bool "empty not maximal" false (V.is_maximal_connected_s_clique g ~s:2 NS.empty));
    Alcotest.test_case "extension_candidates" `Quick (fun () ->
        let g = fig1 () in
        check ns "abc extends by d" (of_l [ 3 ]) (V.extension_candidates g ~s:2 (of_l [ 0; 1; 2 ]));
        check ns "maximal set has none" NS.empty
          (V.extension_candidates g ~s:2 (of_l [ 0; 1; 2; 3 ])));
    Alcotest.test_case "certify accepts the truth" `Quick (fun () ->
        let g = fig1 () in
        let truth = [ of_l [ 0; 1; 2; 3 ]; of_l [ 1; 2; 3; 4; 5; 6 ]; of_l [ 3; 4; 5; 6; 7 ] ] in
        check bool "ok" true (Result.is_ok (V.certify g ~s:2 truth)));
    Alcotest.test_case "certify rejects duplicates" `Quick (fun () ->
        let g = fig1 () in
        let c = of_l [ 0; 1; 2; 3 ] in
        check bool "dup" true (Result.is_error (V.certify g ~s:2 [ c; c ])));
    Alcotest.test_case "certify rejects non-maximal" `Quick (fun () ->
        let g = fig1 () in
        check bool "non-maximal" true
          (Result.is_error (V.certify g ~s:2 [ of_l [ 0; 1; 2 ] ])));
    Alcotest.test_case "certify rejects unconnected" `Quick (fun () ->
        let g = fig1 () in
        check bool "unconnected" true (Result.is_error (V.certify g ~s:2 [ of_l [ 0; 3 ] ])));
  ]

let brute_force_tests =
  [
    Alcotest.test_case "figure 1 counts for s=1..4" `Quick (fun () ->
        let g = fig1 () in
        List.iter
          (fun (s, expected) ->
            check int
              (Printf.sprintf "s=%d" s)
              expected
              (List.length (Bf.maximal_connected_s_cliques g ~s)))
          [ (1, 6); (2, 3); (3, 2); (4, 1) ]);
    Alcotest.test_case "complete graph has one maximal set" `Quick (fun () ->
        check Test_support.ns_list "K5" [ NS.range 0 5 ]
          (Bf.maximal_connected_s_cliques (Sgraph.Gen.complete 5) ~s:1));
    Alcotest.test_case "edgeless graph: singletons" `Quick (fun () ->
        check Test_support.ns_list "three singletons"
          [ of_l [ 0 ]; of_l [ 1 ]; of_l [ 2 ] ]
          (Bf.maximal_connected_s_cliques (G.empty 3) ~s:2));
    Alcotest.test_case "path at s=2: overlapping triples" `Quick (fun () ->
        check Test_support.ns_list "triples"
          [ of_l [ 0; 1; 2 ]; of_l [ 1; 2; 3 ]; of_l [ 2; 3; 4 ] ]
          (Bf.maximal_connected_s_cliques (Sgraph.Gen.path 5) ~s:2));
    Alcotest.test_case "connected_s_cliques includes non-maximal" `Quick (fun () ->
        let all = Bf.connected_s_cliques (Sgraph.Gen.path 3) ~s:2 in
        (* {0},{1},{2},{0,1},{1,2},{0,1,2} and {0,2}? 0-2 at distance 2 but
           induced {0,2} unconnected -> excluded: 6 sets *)
        check int "6 connected 2-cliques" 6 (List.length all));
    Alcotest.test_case "maximal_s_cliques can be unconnected" `Quick (fun () ->
        (* 6-cycle: {0,2,4} is pairwise at distance 2 but induces no edge,
           and no further node fits — a maximal unconnected 2-clique *)
        let c6 = Sgraph.Gen.cycle 6 in
        let all = Bf.maximal_s_cliques c6 ~s:2 in
        check bool "contains {0,2,4}" true (List.exists (NS.equal (of_l [ 0; 2; 4 ])) all);
        check bool "it is not connected" false
          (Sgraph.Bfs.is_connected_subset c6 (of_l [ 0; 2; 4 ])));
    Alcotest.test_case "oversized graph rejected" `Quick (fun () ->
        match Bf.maximal_connected_s_cliques (G.empty 23) ~s:1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "results are sorted and duplicate-free" `Quick (fun () ->
        let g = Test_support.random_graph 42 ~n:9 ~m:14 in
        let r = Bf.maximal_connected_s_cliques g ~s:2 in
        let rec sorted = function
          | a :: (b :: _ as rest) -> NS.compare a b < 0 && sorted rest
          | _ -> true
        in
        check bool "strictly sorted" true (sorted r));
  ]

let stats_tests =
  let module S = Scliques_core.Stats in
  let feq = Alcotest.float 1e-9 in
  [
    Alcotest.test_case "empty" `Quick (fun () ->
        let s = S.of_results [] in
        check int "count" 0 s.S.count;
        check feq "avg" 0. s.S.avg_size);
    Alcotest.test_case "of_sizes" `Quick (fun () ->
        let s = S.of_sizes [ 2; 4; 6 ] in
        check int "count" 3 s.S.count;
        check int "min" 2 s.S.min_size;
        check int "max" 6 s.S.max_size;
        check feq "avg" 4. s.S.avg_size;
        check int "total" 12 s.S.total_nodes);
    Alcotest.test_case "of_results uses cardinals" `Quick (fun () ->
        let s = S.of_results [ of_l [ 1; 2 ]; of_l [ 3; 4; 5 ] ] in
        check int "max" 3 s.S.max_size;
        check feq "avg" 2.5 s.S.avg_size);
    Alcotest.test_case "sample matches direct enumeration" `Quick (fun () ->
        let g = fig1 () in
        let s = S.sample Scliques_core.Enumerate.Cs2_p g ~s:2 100 in
        check int "3 results available" 3 s.S.count;
        check int "largest is 6" 6 s.S.max_size);
    Alcotest.test_case "sample truncates at n" `Quick (fun () ->
        let g = fig1 () in
        let s = S.sample Scliques_core.Enumerate.Cs2_p g ~s:1 2 in
        check int "only 2" 2 s.S.count);
  ]

let result_io_tests =
  let module R = Scliques_core.Result_io in
  [
    Alcotest.test_case "round trip" `Quick (fun () ->
        let results = [ of_l [ 3; 1; 2 ]; of_l [ 7 ]; of_l [ 0; 9 ] ] in
        check Test_support.ns_list "same sets" results (R.parse_string (R.to_string results)));
    Alcotest.test_case "comments and blank lines ignored" `Quick (fun () ->
        check Test_support.ns_list "one set" [ of_l [ 1; 2 ] ]
          (R.parse_string "# header\n\n1 2\n"));
    Alcotest.test_case "empty input" `Quick (fun () ->
        check Test_support.ns_list "none" [] (R.parse_string ""));
    Alcotest.test_case "duplicate member rejected with line number" `Quick (fun () ->
        Alcotest.check_raises "dup" (Failure "results line 2: duplicate node in set")
          (fun () -> ignore (R.parse_string "1 2\n3 3\n")));
    Alcotest.test_case "bad token rejected" `Quick (fun () ->
        Alcotest.check_raises "token"
          (Failure "results line 1: expected a node id, got \"x\"") (fun () ->
            ignore (R.parse_string "1 x\n")));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let g = fst (Sgraph.Gen.figure1 ()) in
        let results = Scliques_core.Enumerate.sorted_results Scliques_core.Enumerate.Cs2_p g ~s:2 in
        let path = Filename.temp_file "scliques" ".results" in
        R.save results path;
        let back = R.load path in
        Sys.remove path;
        check Test_support.ns_list "same" results back;
        check bool "still certifies" true
          (Result.is_ok (Scliques_core.Verify.certify g ~s:2 back)));
  ]

let suites =
  [
    ("neighborhood", neighborhood_tests);
    ("extend_max", extend_max_tests);
    ("verify", verify_tests);
    ("brute_force", brute_force_tests);
    ("stats", stats_tests);
    ("result_io", result_io_tests);
  ]
