(* The serving layer: SCLQRPC1 protocol totality under byte-level fuzz,
   scheduler fairness and admission, daemon-vs-library differential
   equality, and the fault drill — injected socket failures and client
   disconnects must degrade to per-query errors, never a wedged daemon.

   Also pins the Parallel.enumerate_budgeted fix this PR ships: once a
   budget is dead, draining the remaining queue is pure bookkeeping (no
   root-ball BFS, no visits), so a disconnected client's query stops
   paying for enumeration within one poll cadence. *)

module NS = Sgraph.Node_set
module E = Scliques_core.Enumerate
module Budget = Scliques_core.Budget
module Ckpt = Scliques_core.Checkpoint
module Stream = Scliques_core.Result_io.Stream
module Neighborhood = Scliques_core.Neighborhood
module Parallel = Scliques_core.Parallel
module Obs = Scliques_obs.Obs
module Counters = Scliques_obs.Counters
module Fault = Scoll.Fault
module P = Scliques_daemon.Protocol
module Server = Scliques_daemon.Server
module Client = Scliques_daemon.Client
module Scheduler = Scliques_daemon.Scheduler

(* ---------- shared helpers ---------- *)

let gadget n = Sgraph.Gen.exponential_gadget n

let er seed ~n ~m = Sgraph.Gen.erdos_renyi_gnm (Scoll.Rng.create seed) ~n ~m

let query ?(id = 1) ?(engine = P.Alg E.Cs2_pf) ?(min_size = 0) ?deadline
    ?max_results ?resume ~graph ~s () =
  {
    P.q_id = id;
    q_engine = engine;
    q_graph = graph;
    q_s = s;
    q_min_size = min_size;
    q_deadline_s = deadline;
    q_max_results = max_results;
    q_resume = resume;
  }

(* the library-side expectation: E.run's emission-order stream, encoded
   exactly as the daemon encodes result frames *)
let local_stream ?(min_size = 0) alg g ~s =
  let acc = ref [] in
  let report = E.run ~min_size alg g ~s (fun c -> acc := Stream.encode_set c :: !acc) in
  (match report.E.outcome with
  | Budget.Complete -> ()
  | Budget.Truncated _ -> Alcotest.fail "local reference run truncated");
  List.rev !acc

let with_server ?(workers = 2) ?(max_queue = 16) ?compact_threshold ?quota
    ?state_dir ?sources ?fault graphs f =
  let path = Filename.temp_file "scliques_daemon" ".sock" in
  let srv =
    Server.create ~workers ~max_queue ?compact_threshold ?quota ?state_dir
      ?sources ?fault ~graphs (Server.Unix_socket path)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f (Server.Unix_socket path) srv)

(* a scratch directory for the durable-state drills, wiped afterwards *)
let with_state_dir f =
  let dir = Filename.temp_file "scliques_state" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let with_client addr f =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let collect_query c q =
  let acc = ref [] in
  let outcome = Client.run_query c ~on_result:(fun r -> acc := r :: !acc) q in
  (outcome, List.rev !acc)

let finished_done = function
  | Client.Finished d -> d
  | Client.Refused _ -> Alcotest.fail "query refused"
  | Client.Throttled _ -> Alcotest.fail "query throttled"
  | Client.Failed { msg; _ } -> Alcotest.fail ("query failed: " ^ msg)
  | Client.Disconnected -> Alcotest.fail "daemon hung up"

(* spin until the daemon's accounting drains, or fail *)
let wait_idle srv =
  let rec go n =
    let st = Server.stats srv in
    if st.Server.running = 0 && st.Server.queued = 0 && st.Server.live_queries = 0
    then ()
    else if n = 0 then
      Alcotest.failf "daemon did not drain: running=%d queued=%d live=%d"
        st.Server.running st.Server.queued st.Server.live_queries
    else begin
      Thread.delay 0.02;
      go (n - 1)
    end
  in
  go 500

(* ---------- protocol: round trips and byte-level fuzz ---------- *)

let gen_ns =
  QCheck2.Gen.(map NS.of_list (list_size (int_range 0 6) (int_range 0 60)))

let gen_state =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun l -> Ckpt.Roots { retired = List.sort_uniq Int.compare l })
          (list_size (int_range 0 8) (int_range 0 200));
        map2
          (fun index queue -> Ckpt.Pd_frontier { index; queue })
          (list_size (int_range 0 4) gen_ns)
          (list_size (int_range 0 4) gen_ns);
        map (fun m -> Ckpt.Brute_mask { next_mask = m }) (int_range 0 100000);
      ])

let gen_engine =
  QCheck2.Gen.oneofl
    [
      P.Alg E.Poly_delay; P.Alg E.Cs1; P.Alg E.Cs2; P.Alg E.Cs2_f;
      P.Alg E.Cs2_p; P.Alg E.Cs2_pf; P.Alg E.Brute; P.Par;
    ]

let gen_name =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 24))

let gen_query =
  QCheck2.Gen.(
    gen_engine >>= fun q_engine ->
    gen_name >>= fun q_graph ->
    int_range 0 1_000_000 >>= fun q_id ->
    int_range 1 5 >>= fun q_s ->
    int_range 0 20 >>= fun q_min_size ->
    option (map (fun f -> float_of_int f /. 8.) (int_range 0 800)) >>= fun q_deadline_s ->
    option (int_range 0 100000) >>= fun q_max_results ->
    option gen_state >>= fun q_resume ->
    return
      { P.q_id; q_engine; q_graph; q_s; q_min_size; q_deadline_s; q_max_results;
        q_resume })

(* Mutate payloads carry opaque script bytes — the protocol layer must
   round-trip them untouched (SGRDIFF1 validation happens later, with
   its own CRC discipline) *)
let gen_script =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 120))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map (fun q -> P.Query q) gen_query;
        (int_range 0 1_000_000 >>= fun m_id ->
         gen_name >>= fun m_graph ->
         gen_script >>= fun m_script ->
         return (P.Mutate { P.m_id; m_graph; m_script }));
        map2
          (fun rl_id rl_graph -> P.Reload { rl_id; rl_graph })
          (int_range 0 1_000_000) gen_name;
        map (fun id -> P.Cancel id) (int_range 0 1_000_000);
        map (fun h_token -> P.Hello { h_token }) gen_name;
        return P.List_graphs;
        return P.Ping;
      ])

let gen_outcome =
  QCheck2.Gen.oneofl
    [
      Budget.Complete;
      Budget.Truncated Budget.Deadline;
      Budget.Truncated Budget.Max_results;
      Budget.Truncated Budget.Max_cache_bytes;
      Budget.Truncated Budget.Cancelled;
    ]

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun id r -> P.Result (id, r)) (int_range 0 1000) gen_name;
        (gen_outcome >>= fun d_outcome ->
         int_range 0 1000 >>= fun d_id ->
         int_range 0 100000 >>= fun d_emitted ->
         option gen_state >>= fun d_resume ->
         return (P.Done { d_id; d_outcome; d_emitted; d_resume }));
        map2
          (fun b_id (b_running, b_queued) -> P.Busy { b_id; b_running; b_queued })
          (int_range 0 1000)
          (pair (int_range 0 64) (int_range 0 64));
        (int_range 0 1000 >>= fun e_id ->
         oneofl [ P.Bad_request; P.Server_error ] >>= fun e_code ->
         gen_name >>= fun e_msg ->
         return (P.Error_resp { e_id; e_code; e_msg }));
        map2
          (fun ra_id ra_seconds -> P.Retry_after { ra_id; ra_seconds })
          (int_range 0 1000)
          (map (fun f -> float_of_int f /. 16.) (int_range 0 1600));
        (int_range 0 1000 >>= fun mu_id ->
         int_range 0 100000 >>= fun mu_epoch ->
         int_range 0 1000 >>= fun mu_edits ->
         pair (int_range 0 1000) (int_range 0 100000) >>= fun (mu_n, mu_m) ->
         return (P.Mutated { mu_id; mu_epoch; mu_edits; mu_n; mu_m }));
        (int_range 0 1000 >>= fun rl_id ->
         int_range 0 100000 >>= fun rl_epoch ->
         pair (int_range 0 1000) (int_range 0 100000) >>= fun (rl_n, rl_m) ->
         return (P.Reloaded { rl_id; rl_epoch; rl_n; rl_m }));
        map
          (fun l ->
            P.Graphs
              (List.map
                 (fun (g_name, g_n, g_m, g_epoch) ->
                   { P.g_name; g_n; g_m; g_epoch })
                 l))
          (list_size (int_range 0 5)
             (quad gen_name (int_range 0 100000) (int_range 0 100000)
                (int_range 0 100000)));
        return P.Pong;
      ])

let binary_junk =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 300))

(* bytewise re-encode equality sidesteps the need for a deep equal over
   queries, outcomes and checkpoint states *)
let prop_request_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"request decode inverts encode"
       gen_request (fun r ->
         let bytes = P.encode_request r in
         String.equal bytes (P.encode_request (P.decode_request bytes))))

let prop_response_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"response decode inverts encode"
       gen_response (fun r ->
         let bytes = P.encode_response r in
         String.equal bytes (P.encode_response (P.decode_response bytes))))

let prop_truncation_total =
  (* chopping a valid frame at EVERY byte boundary must raise the typed
     Truncated error — no Invalid_argument from a blind String.sub, no
     out-of-bounds, no hang *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"every frame prefix raises Truncated"
       gen_request (fun r ->
         let frame = P.encode_frame (P.encode_request r) in
         let ok = ref true in
         for k = 0 to String.length frame - 1 do
           (match P.decode_frame (String.sub frame 0 k) ~pos:0 with
           | _ -> ok := false
           | exception P.Error (P.Truncated _) -> ()
           | exception _ -> ok := false)
         done;
         !ok))

let prop_flips_typed =
  (* flip one random byte anywhere in the frame: decoding either fails
     with a typed protocol error or (length-field flips that still parse)
     succeeds — nothing else may escape *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"byte flips raise only typed errors"
       QCheck2.Gen.(triple gen_request (int_range 0 10000) (int_range 1 255))
       (fun (r, at, xor) ->
         let frame = Bytes.of_string (P.encode_frame (P.encode_request r)) in
         let at = at mod Bytes.length frame in
         Bytes.set frame at (Char.chr (Char.code (Bytes.get frame at) lxor xor));
         match P.decode_frame (Bytes.to_string frame) ~pos:0 with
         | _ -> true
         | exception P.Error _ -> true
         | exception _ -> false))

let prop_payload_crc_flip =
  (* a flip INSIDE the payload keeps the frame well-formed lengthwise, so
     the CRC must be what catches it *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"payload flips are CRC mismatches"
       QCheck2.Gen.(triple gen_request (int_range 0 10000) (int_range 1 255))
       (fun (r, at, xor) ->
         let payload = P.encode_request r in
         if String.length payload = 0 then true
         else begin
           let frame = Bytes.of_string (P.encode_frame payload) in
           let at = 8 + (at mod String.length payload) in
           Bytes.set frame at (Char.chr (Char.code (Bytes.get frame at) lxor xor));
           match P.decode_frame (Bytes.to_string frame) ~pos:0 with
           | _ -> false
           | exception P.Error P.Crc_mismatch -> true
           | exception _ -> false
         end))

let prop_decoders_total_on_junk =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"decoders are total on byte soup"
       binary_junk (fun junk ->
         let total f =
           match f junk with _ -> true | exception P.Error _ -> true | exception _ -> false
         in
         total P.decode_request && total P.decode_response
         && total (P.decode_frame ~pos:0)))

let prop_trailing_garbage_refused =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"trailing garbage is Bad_payload"
       QCheck2.Gen.(pair gen_request (int_range 0 255))
       (fun (r, byte) ->
         let bytes = P.encode_request r ^ String.make 1 (Char.chr byte) in
         match P.decode_request bytes with
         | _ -> false
         | exception P.Error (P.Bad_payload _) -> true
         | exception _ -> false))

let test_oversized_refused () =
  (* 0xFFFFFFFF length word: must refuse before allocating anything *)
  let junk = "\xff\xff\xff\xff\x00\x00\x00\x00" in
  (match P.decode_frame junk ~pos:0 with
  | _ -> Alcotest.fail "oversized frame decoded"
  | exception P.Error (P.Oversized _) -> ()
  | exception e -> Alcotest.failf "wrong error: %s" (Printexc.to_string e));
  match P.encode_frame (String.make (P.max_payload + 1) 'x') with
  | _ -> Alcotest.fail "oversized encode accepted"
  | exception Invalid_argument _ -> ()

let test_input_frame_eof () =
  let path = Filename.temp_file "scliques_frame" ".bin" in
  let frame = P.encode_frame (P.encode_request P.Ping) in
  let write bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc
  in
  let read_one () =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> P.input_frame ic)
  in
  (* clean EOF at a frame boundary: None, not an error *)
  write "";
  Alcotest.(check bool) "empty stream is a clean EOF" true (read_one () = None);
  write frame;
  (match read_one () with
  | Some payload -> Alcotest.(check string) "payload" (P.encode_request P.Ping) payload
  | None -> Alcotest.fail "whole frame read as EOF");
  (* torn frame: EOF mid-frame must be the typed Truncated, at every cut *)
  for k = 1 to String.length frame - 1 do
    write (String.sub frame 0 k);
    match read_one () with
    | _ -> Alcotest.failf "torn frame (cut at %d) decoded" k
    | exception P.Error (P.Truncated _) -> ()
    | exception e ->
        Alcotest.failf "torn frame (cut at %d): wrong error %s" k
          (Printexc.to_string e)
  done;
  Sys.remove path

let test_bad_magic () =
  let path = Filename.temp_file "scliques_magic" ".bin" in
  let oc = open_out_bin path in
  output_string oc "NOTMAGIC";
  close_out oc;
  let ic = open_in_bin path in
  (match P.input_magic ic with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception P.Error (P.Bad_magic _) -> ()
  | exception e -> Alcotest.failf "wrong error: %s" (Printexc.to_string e));
  close_in ic;
  Sys.remove path

(* ---------- scheduler ---------- *)

(* a gate the test holds closed while stacking up the backlog *)
let gate () =
  let open_ = Atomic.make false in
  let block () =
    while not (Atomic.get open_) do
      Thread.yield ()
    done
  in
  (open_, block)

let test_scheduler_fairness () =
  let sched = Scheduler.create ~workers:1 ~max_queue:10 in
  let opened, block = gate () in
  let order_lock = Mutex.create () in
  let order = ref [] in
  let note label () =
    Scoll.Sync.with_lock order_lock (fun () -> order := label :: !order)
  in
  let job label = { Scheduler.run = note label; abort = (fun () -> ()) } in
  (* occupy the one worker, then stack lane 1 twice and lane 2 once *)
  (match Scheduler.submit sched ~lane:9 { Scheduler.run = block; abort = (fun () -> ()) } with
  | `Accepted -> ()
  | _ -> Alcotest.fail "gate job refused");
  let rec wait_running n =
    if Scheduler.running sched = 1 then ()
    else if n = 0 then Alcotest.fail "gate job never started"
    else (Thread.delay 0.01; wait_running (n - 1))
  in
  wait_running 500;
  List.iter
    (fun (lane, label) ->
      match Scheduler.submit sched ~lane (job label) with
      | `Accepted -> ()
      | _ -> Alcotest.fail "backlog submit refused")
    [ (1, "a1"); (1, "a2"); (2, "b1") ];
  Atomic.set opened true;
  (* shutdown would abort whatever is still queued — drain first *)
  let rec wait_drained n =
    if Scheduler.queued sched = 0 && Scheduler.running sched = 0 then ()
    else if n = 0 then Alcotest.fail "backlog never drained"
    else (Thread.delay 0.01; wait_drained (n - 1))
  in
  wait_drained 500;
  Scheduler.shutdown sched;
  (* round-robin: lane 1 yields one job, then lane 2, then lane 1 again *)
  Alcotest.(check (list string)) "lanes interleave" [ "a1"; "b1"; "a2" ]
    (List.rev !order)

let test_scheduler_busy_and_abort () =
  let sched = Scheduler.create ~workers:1 ~max_queue:1 in
  let opened, block = gate () in
  let ran = ref 0 and aborted = ref 0 in
  let job () =
    { Scheduler.run = (fun () -> incr ran); abort = (fun () -> incr aborted) }
  in
  (match Scheduler.submit sched ~lane:1 { Scheduler.run = block; abort = (fun () -> ()) } with
  | `Accepted -> ()
  | _ -> Alcotest.fail "first submit refused");
  let rec wait_running n =
    if Scheduler.running sched = 1 then ()
    else if n = 0 then Alcotest.fail "worker never started"
    else (Thread.delay 0.01; wait_running (n - 1))
  in
  wait_running 500;
  (match Scheduler.submit sched ~lane:1 (job ()) with
  | `Accepted -> ()
  | _ -> Alcotest.fail "queue slot refused");
  (match Scheduler.submit sched ~lane:2 (job ()) with
  | `Busy (running, queued) ->
      Alcotest.(check int) "running" 1 running;
      Alcotest.(check int) "queued" 1 queued
  | _ -> Alcotest.fail "over-quota submit not refused");
  (* retiring the lane aborts its queued job without running it *)
  Scheduler.retire_lane sched 1;
  Alcotest.(check int) "abort ran" 1 !aborted;
  Alcotest.(check int) "job did not run" 0 !ran;
  Atomic.set opened true;
  Scheduler.shutdown sched;
  (match Scheduler.submit sched ~lane:3 (job ()) with
  | `Shutdown -> ()
  | _ -> Alcotest.fail "post-shutdown submit accepted");
  Alcotest.(check int) "exactly-one contract held" 1 !aborted

let test_scheduler_shutdown_aborts_backlog () =
  let sched = Scheduler.create ~workers:1 ~max_queue:8 in
  let opened, block = gate () in
  let aborted = ref 0 in
  ignore
    (Scheduler.submit sched ~lane:1 { Scheduler.run = block; abort = (fun () -> ()) }
      : [ `Accepted | `Busy of int * int | `Shutdown ]);
  let rec wait_running n =
    if Scheduler.running sched = 1 then ()
    else if n = 0 then Alcotest.fail "worker never started"
    else (Thread.delay 0.01; wait_running (n - 1))
  in
  wait_running 500;
  for i = 1 to 4 do
    ignore
      (Scheduler.submit sched ~lane:i
         { Scheduler.run = (fun () -> Alcotest.fail "queued job ran"); abort = (fun () -> incr aborted) }
        : [ `Accepted | `Busy of int * int | `Shutdown ])
  done;
  Atomic.set opened true;
  Scheduler.shutdown sched;
  Alcotest.(check int) "every queued job aborted" 4 !aborted

(* ---------- differential serving ---------- *)

let corpus = [ ("gadget", gadget 3); ("er", er 7 ~n:30 ~m:60) ]

let test_differential_serving () =
  with_server corpus (fun addr _srv ->
      with_client addr (fun c ->
          List.iter
            (fun (name, g) ->
              List.iter
                (fun s ->
                  List.iter
                    (fun alg ->
                      let expected = local_stream alg g ~s in
                      let outcome, got =
                        collect_query c
                          (query ~engine:(P.Alg alg) ~graph:name ~s ())
                      in
                      let d = finished_done outcome in
                      (match d.P.d_outcome with
                      | Budget.Complete -> ()
                      | Budget.Truncated _ ->
                          Alcotest.fail "unbudgeted query truncated");
                      Alcotest.(check int)
                        "emitted count matches stream" (List.length got)
                        d.P.d_emitted;
                      Alcotest.(check (list string))
                        (Printf.sprintf "%s s=%d %s bit-identical" name s
                           (E.name alg))
                        expected got)
                    [ E.Poly_delay; E.Cs1; E.Cs2_pf ])
                [ 1; 2; 3 ])
            corpus))

let test_differential_par_engine () =
  with_server corpus (fun addr _srv ->
      with_client addr (fun c ->
          List.iter
            (fun (name, g) ->
              let expected =
                List.map Stream.encode_set (E.sorted_results E.Cs2_pf g ~s:2)
                |> List.sort String.compare
              in
              let outcome, got = collect_query c (query ~engine:P.Par ~graph:name ~s:2 ()) in
              ignore (finished_done outcome : P.done_info);
              Alcotest.(check (list string))
                (name ^ " par matches sequential") expected
                (List.sort String.compare got))
            corpus))

let test_differential_min_size () =
  with_server corpus (fun addr _srv ->
      with_client addr (fun c ->
          let g = List.assoc "gadget" corpus in
          let expected = local_stream ~min_size:5 E.Cs2_pf g ~s:2 in
          let outcome, got =
            collect_query c (query ~min_size:5 ~graph:"gadget" ~s:2 ())
          in
          ignore (finished_done outcome : P.done_info);
          Alcotest.(check (list string)) "min-size respected" expected got))

let test_truncate_and_resume ~engine ~graph_name =
  with_server corpus (fun addr _srv ->
      with_client addr (fun c ->
          let g = List.assoc graph_name corpus in
          let full =
            match engine with
            | P.Alg alg -> local_stream alg g ~s:2
            | P.Par -> Alcotest.fail "use a sequential engine here"
          in
          let outcome1, part1 =
            collect_query c (query ~engine ~max_results:4 ~graph:graph_name ~s:2 ())
          in
          let d1 = finished_done outcome1 in
          (match d1.P.d_outcome with
          | Budget.Truncated Budget.Max_results -> ()
          | _ -> Alcotest.fail "expected a max-results truncation");
          let resume =
            match d1.P.d_resume with
            | Some st -> st
            | None -> Alcotest.fail "truncated Done carried no resume token"
          in
          let outcome2, part2 =
            collect_query c (query ~engine ~resume ~graph:graph_name ~s:2 ())
          in
          let d2 = finished_done outcome2 in
          (match d2.P.d_outcome with
          | Budget.Complete -> ()
          | Budget.Truncated _ -> Alcotest.fail "resumed query truncated");
          Alcotest.(check (list string))
            "prefix + resumed tail = uninterrupted stream, byte for byte" full
            (part1 @ part2)))

let test_resume_roots () = test_truncate_and_resume ~engine:(P.Alg E.Cs2_pf) ~graph_name:"gadget"
let test_resume_pd () = test_truncate_and_resume ~engine:(P.Alg E.Poly_delay) ~graph_name:"gadget"

let test_deadline_zero_resumes () =
  with_server corpus (fun addr _srv ->
      with_client addr (fun c ->
          let g = List.assoc "gadget" corpus in
          let full = local_stream E.Cs2_pf g ~s:2 in
          let outcome1, part1 =
            collect_query c (query ~deadline:0. ~graph:"gadget" ~s:2 ())
          in
          let d1 = finished_done outcome1 in
          (match d1.P.d_outcome with
          | Budget.Truncated Budget.Deadline -> ()
          | _ -> Alcotest.fail "deadline 0 did not truncate");
          let resume =
            match d1.P.d_resume with
            | Some st -> st
            | None -> Alcotest.fail "no resume token"
          in
          let outcome2, part2 =
            collect_query c (query ~resume ~graph:"gadget" ~s:2 ())
          in
          ignore (finished_done outcome2 : P.done_info);
          Alcotest.(check (list string)) "nothing lost to the dead deadline"
            full (part1 @ part2)))

let test_concurrent_clients () =
  (* 4 clients, each its own connection and shuffled query plan; every
     stream must match the sequential reference exactly *)
  let plans =
    [
      [ ("gadget", 2, E.Cs2_pf); ("er", 1, E.Poly_delay); ("gadget", 3, E.Cs1) ];
      [ ("er", 2, E.Cs2_pf); ("gadget", 1, E.Cs1); ("er", 3, E.Poly_delay) ];
      [ ("gadget", 3, E.Cs2_pf); ("er", 2, E.Cs1); ("gadget", 2, E.Poly_delay) ];
      [ ("er", 3, E.Cs2_pf); ("gadget", 2, E.Cs1); ("er", 1, E.Cs2_pf) ];
    ]
  in
  let expected (name, s, alg) = local_stream alg (List.assoc name corpus) ~s in
  with_server ~workers:3 corpus (fun addr _srv ->
      let failures_lock = Mutex.create () in
      let failures = ref [] in
      let client_thread plan () =
        match
          with_client addr (fun c ->
              List.iteri
                (fun i ((name, s, alg) as case) ->
                  let outcome, got =
                    collect_query c
                      (query ~id:(i + 1) ~engine:(P.Alg alg) ~graph:name ~s ())
                  in
                  (match outcome with
                  | Client.Finished _ -> ()
                  | _ -> failwith (name ^ ": not finished"));
                  if not (List.equal String.equal (expected case) got) then
                    failwith (Printf.sprintf "%s s=%d %s: stream mismatch" name s (E.name alg)))
                plan)
        with
        | () -> ()
        | exception e ->
            Scoll.Sync.with_lock failures_lock (fun () ->
                failures := Printexc.to_string e :: !failures)
      in
      let threads = List.map (fun plan -> Thread.create (client_thread plan) ()) plans in
      List.iter Thread.join threads;
      match !failures with
      | [] -> ()
      | fs -> Alcotest.fail (String.concat "; " fs))

let test_bad_requests_typed () =
  with_server corpus (fun addr srv ->
      with_client addr (fun c ->
          let expect_bad q msg_part =
            match Client.run_query c q with
            | Client.Failed { code = P.Bad_request; msg } ->
                if not (Astring_contains.contains msg msg_part) then
                  Alcotest.failf "refusal %S does not mention %S" msg msg_part
            | _ -> Alcotest.failf "expected a Bad_request (%s)" msg_part
          in
          expect_bad (query ~graph:"nosuch" ~s:2 ()) "unknown graph";
          expect_bad (query ~graph:"gadget" ~s:0 ()) "s must be";
          expect_bad
            (query ~engine:(P.Alg E.Poly_delay)
               ~resume:(Ckpt.Roots { retired = [] }) ~graph:"gadget" ~s:2 ())
            "resume token";
          (* the daemon is not wedged and nothing leaked *)
          Alcotest.(check bool) "still answers" true (Client.ping c);
          wait_idle srv))

(* ---------- fault drill ---------- *)

let drill_corpus = [ ("gadget", gadget 3); ("slow", gadget 16) ]

let expect_session_death = function
  | Client.Disconnected -> ()
  | Client.Finished _ -> Alcotest.fail "query finished through a dead socket"
  | Client.Refused _ -> Alcotest.fail "unexpected Busy"
  | Client.Throttled _ -> Alcotest.fail "unexpected Retry_after"
  | Client.Failed { msg; _ } -> Alcotest.failf "typed failure instead of death: %s" msg

let check_ledger srv ~graph ~s =
  match Server.store srv ~graph ~s with
  | None -> ()
  | Some store ->
      Alcotest.(check int)
        "shared-cache weight ledger is exact after the drill"
        (Neighborhood.Shared.recount_bytes store)
        (Neighborhood.Shared.bytes store)

let test_injected_write_fault () =
  let fault = Fault.create () in
  with_server ~fault drill_corpus (fun addr srv ->
      Fault.arm_nth fault ~site:"daemon.write" ~n:3;
      (match
         with_client addr (fun c ->
             collect_query c (query ~graph:"gadget" ~s:2 ()))
       with
      | outcome, got ->
          expect_session_death outcome;
          Alcotest.(check int) "two frames made it out" 2 (List.length got)
      | exception P.Error (P.Truncated _) ->
          (* the kill can tear the in-flight frame *)
          ());
      Fault.disarm fault ~site:"daemon.write";
      wait_idle srv;
      (* the daemon took one injected write failure and kept serving:
         a fresh connection gets the full, bit-identical answer *)
      with_client addr (fun c ->
          let g = List.assoc "gadget" drill_corpus in
          let outcome, got = collect_query c (query ~graph:"gadget" ~s:2 ()) in
          ignore (finished_done outcome : P.done_info);
          Alcotest.(check (list string)) "post-fault stream intact"
            (local_stream E.Cs2_pf g ~s:2) got);
      check_ledger srv ~graph:"gadget" ~s:2)

let test_injected_flush_fault () =
  let fault = Fault.create () in
  with_server ~fault drill_corpus (fun addr srv ->
      Fault.arm_nth fault ~site:"daemon.flush" ~n:2;
      (match
         with_client addr (fun c ->
             collect_query c (query ~graph:"gadget" ~s:2 ()))
       with
      | outcome, _ -> expect_session_death outcome
      | exception P.Error (P.Truncated _) -> ());
      Fault.disarm fault ~site:"daemon.flush";
      wait_idle srv;
      with_client addr (fun c ->
          Alcotest.(check bool) "daemon alive after flush fault" true (Client.ping c));
      check_ledger srv ~graph:"gadget" ~s:2)

let test_injected_accept_fault () =
  let fault = Fault.create () in
  with_server ~fault drill_corpus (fun addr _srv ->
      Fault.arm_nth fault ~site:"daemon.accept" ~n:1;
      (match with_client addr (fun c -> Client.ping c) with
      | _ -> Alcotest.fail "connection through an injected accept failure"
      | exception P.Error _ -> ()
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | exception Unix.Unix_error _ -> ());
      (* only that one connection was refused *)
      with_client addr (fun c ->
          Alcotest.(check bool) "next connection accepted" true (Client.ping c)))

let test_client_disconnect_mid_stream () =
  with_server ~workers:2 drill_corpus (fun addr srv ->
      let g = List.assoc "gadget" drill_corpus in
      let expected = local_stream E.Cs2_pf g ~s:2 in
      (* sibling B streams the small graph, repeatedly, while A dies *)
      let b_failures = ref [] in
      let b_thread () =
        match
          with_client addr (fun c ->
              for i = 1 to 3 do
                let outcome, got =
                  collect_query c (query ~id:i ~graph:"gadget" ~s:2 ())
                in
                ignore (finished_done outcome : P.done_info);
                if not (List.equal String.equal expected got) then
                  failwith "sibling stream corrupted"
              done)
        with
        | () -> ()
        | exception e -> b_failures := Printexc.to_string e :: !b_failures
      in
      let b = Thread.create b_thread () in
      (* A: ask for the huge stream, read two frames, vanish *)
      let a = Client.connect addr in
      Client.send_request a (P.Query (query ~graph:"slow" ~s:2 ()));
      (match (Client.read_response a, Client.read_response a) with
      | Some (P.Result _), Some (P.Result _) -> ()
      | _ -> Alcotest.fail "slow query did not start streaming");
      Client.close a;
      Thread.join b;
      (match !b_failures with
      | [] -> ()
      | fs -> Alcotest.fail (String.concat "; " fs));
      (* the dead session's budget is cancelled, its worker freed, and
         nothing in the shared cache accounting leaked *)
      wait_idle srv;
      check_ledger srv ~graph:"slow" ~s:2;
      check_ledger srv ~graph:"gadget" ~s:2;
      with_client addr (fun c ->
          Alcotest.(check bool) "daemon alive after disconnect" true (Client.ping c)))

let test_cancel_over_wire () =
  with_server drill_corpus (fun addr srv ->
      with_client addr (fun c ->
          Client.send_request c (P.Query (query ~id:7 ~graph:"slow" ~s:2 ()));
          (match Client.read_response c with
          | Some (P.Result (7, _)) -> ()
          | _ -> Alcotest.fail "no first result");
          Client.cancel c 7;
          (* drain to the terminal frame: a cancelled Done with a token *)
          let rec drain n =
            match Client.read_response c with
            | Some (P.Result (7, _)) -> drain (n + 1)
            | Some (P.Done d) -> (n, d)
            | _ -> Alcotest.fail "stream ended without Done"
          in
          let _, d = drain 1 in
          (match d.P.d_outcome with
          | Budget.Truncated Budget.Cancelled -> ()
          | Budget.Complete -> Alcotest.fail "cancel lost the race to a tiny graph"
          | Budget.Truncated _ -> Alcotest.fail "wrong truncation reason");
          (match d.P.d_resume with
          | Some (Ckpt.Roots _) -> ()
          | _ -> Alcotest.fail "cancelled Done carried no roots token");
          Alcotest.(check bool) "same connection still serves" true (Client.ping c));
      wait_idle srv)

let test_busy_admission () =
  with_server ~workers:1 ~max_queue:0 drill_corpus (fun addr _srv ->
      let a = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close a)
        (fun () ->
          Client.send_request a (P.Query (query ~id:1 ~graph:"slow" ~s:2 ()));
          (match Client.read_response a with
          | Some (P.Result _) -> ()
          | _ -> Alcotest.fail "occupying query did not start");
          (* the worker is provably busy: a second connection is refused *)
          with_client addr (fun b ->
              match Client.run_query b (query ~id:2 ~graph:"gadget" ~s:2 ()) with
              | Client.Refused { running; queued } ->
                  Alcotest.(check int) "running" 1 running;
                  Alcotest.(check int) "queued" 0 queued
              | _ -> Alcotest.fail "admission did not refuse");
          Client.cancel a 1))

(* ---------- live mutation: quotas, epochs, durability ---------- *)

module Quota = Scliques_daemon.Quota
module Diff = Sgraph.Diff
module Overlay = Sgraph.Overlay

let churn_before = er 7 ~n:30 ~m:60
let churn_after = er 8 ~n:30 ~m:60
let churn_edits = Diff.between churn_before churn_after

let script_of g edits =
  Diff.to_string ~base_n:(Sgraph.Graph.n g) ~base_m:(Sgraph.Graph.m g) edits

let churn_script = script_of churn_before churn_edits

(* what the daemon serves after the mutation must equal the offline
   strict replay of the same script *)
let churn_applied = Diff.apply churn_before churn_edits

let check_pins srv ~graph =
  match Server.pinned srv ~graph with
  | Some n -> Alcotest.(check int) (graph ^ ": epoch pins released") 0 n
  | None -> Alcotest.failf "unknown graph %s" graph

(* (epoch, edits, n, m) of a successful ack *)
let applied_ack = function
  | Client.Applied { epoch; edits; n; m } -> (epoch, edits, n, m)
  | Client.Mutate_throttled _ -> Alcotest.fail "mutation throttled"
  | Client.Mutate_failed { msg; _ } -> Alcotest.fail ("mutation failed: " ^ msg)
  | Client.Mutate_disconnected -> Alcotest.fail "daemon hung up mid-mutation"

let test_quota_buckets () =
  let approx = Alcotest.float 1e-9 in
  let c =
    {
      Quota.queries_per_sec = 1.;
      query_burst = 2;
      mutate_bytes_per_sec = 100.;
      mutate_burst = 200;
    }
  in
  (match Quota.config_ok c with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Quota.config_ok { c with query_burst = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero burst accepted");
  (match Quota.config_ok { c with queries_per_sec = Float.nan } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nan rate accepted");
  let t = Quota.create c ~now:0. in
  (* the bucket starts full: burst admissions, then an honest wait *)
  (match Quota.admit_query t ~now:0. with Ok () -> () | Error _ -> Alcotest.fail "1st");
  (match Quota.admit_query t ~now:0. with Ok () -> () | Error _ -> Alcotest.fail "2nd");
  (match Quota.admit_query t ~now:0. with
  | Error wait -> Alcotest.check approx "wait = 1 token / 1 qps" 1.0 wait
  | Ok () -> Alcotest.fail "over-burst admitted");
  (* refusals are free and refunds restore a token *)
  Quota.refund_query t;
  (match Quota.admit_query t ~now:0. with Ok () -> () | Error _ -> Alcotest.fail "refund lost");
  (* refill honours elapsed time, capped at the burst *)
  (match Quota.admit_query t ~now:100. with Ok () -> () | Error _ -> Alcotest.fail "refill");
  (match Quota.admit_query t ~now:100. with Ok () -> () | Error _ -> Alcotest.fail "cap=2");
  (match Quota.admit_query t ~now:100. with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "refill exceeded the burst ceiling");
  (* mutation bytes: partial drain, honest wait, over-burst refused with
     the wait for a full bucket *)
  (match Quota.admit_mutation t ~now:0. ~bytes:150 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "150 bytes within burst");
  (match Quota.admit_mutation t ~now:0. ~bytes:100 with
  | Error wait -> Alcotest.check approx "wait = missing 50 bytes / 100 Bps" 0.5 wait
  | Ok () -> Alcotest.fail "overdraft admitted");
  (match Quota.admit_mutation t ~now:0. ~bytes:300 with
  | Error wait -> Alcotest.check approx "over-burst waits for a full bucket" 1.5 wait
  | Ok () -> Alcotest.fail "bigger than the bucket admitted");
  (* refunds cap at the burst *)
  Quota.refund_mutation t ~bytes:10_000;
  (match Quota.admit_mutation t ~now:0. ~bytes:200 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "capped refund lost");
  (* time going backwards neither charges nor refills *)
  (match Quota.admit_query t ~now:(-50.) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "time travel minted tokens")

let test_quota_over_wire () =
  let quota =
    {
      Quota.queries_per_sec = 0.001;
      query_burst = 1;
      mutate_bytes_per_sec = 1.;
      mutate_burst = 40 (* smaller than any SGRDIFF1 header + record *);
    }
  in
  with_server ~quota [ ("gadget", gadget 3); ("churn", churn_before) ]
    (fun addr srv ->
      with_client addr (fun a ->
          let outcome, _ = collect_query a (query ~id:1 ~graph:"gadget" ~s:2 ()) in
          ignore (finished_done outcome : P.done_info);
          (* the one burst token is spent; the refusal is typed and the
             advertised wait honest (rate 0.001/s => ~1000 s) *)
          (match Client.run_query a (query ~id:2 ~graph:"gadget" ~s:2 ()) with
          | Client.Throttled wait ->
              Alcotest.(check bool) "honest wait" true (wait > 100.)
          | _ -> Alcotest.fail "second query not throttled");
          (match Client.mutate a ~id:3 ~graph:"churn" ~script:churn_script with
          | Client.Mutate_throttled _ -> ()
          | _ -> Alcotest.fail "mutation bytes not throttled");
          (* a throttled sibling does not starve others: B has its own
             buckets and full throughput *)
          with_client addr (fun b ->
              let outcome, _ =
                collect_query b (query ~id:1 ~graph:"gadget" ~s:2 ())
              in
              ignore (finished_done outcome : P.done_info));
          (* refusals admitted nothing: no pins, no epoch movement *)
          wait_idle srv;
          check_pins srv ~graph:"gadget";
          check_pins srv ~graph:"churn";
          Alcotest.(check (option int)) "no mutation landed" (Some 0)
            (Server.graph_epoch srv ~graph:"churn")))

let test_quota_reconnect () =
  (* the redial loophole, pinned shut: a throttled client that drops its
     connection and dials again must resume the same drained bucket —
     identity is the Hello token, not the connection. A different token
     stays a different client with its own full bucket. *)
  let quota =
    {
      Quota.queries_per_sec = 0.001;
      query_burst = 1;
      mutate_bytes_per_sec = 1.;
      mutate_burst = 40;
    }
  in
  with_server ~quota [ ("gadget", gadget 3) ] (fun addr srv ->
      with_client addr (fun a ->
          Client.hello a ~token:"alice";
          let outcome, _ =
            collect_query a (query ~id:1 ~graph:"gadget" ~s:2 ())
          in
          ignore (finished_done outcome : P.done_info);
          (* the one burst token is spent *)
          match Client.run_query a (query ~id:2 ~graph:"gadget" ~s:2 ()) with
          | Client.Throttled _ -> ()
          | _ -> Alcotest.fail "second query not throttled");
      (* reconnect announcing the same token: still the drained bucket *)
      with_client addr (fun a2 ->
          Client.hello a2 ~token:"alice";
          match Client.run_query a2 (query ~id:3 ~graph:"gadget" ~s:2 ()) with
          | Client.Throttled wait ->
              Alcotest.(check bool) "drained bucket survives the redial" true
                (wait > 100.)
          | _ -> Alcotest.fail "redial minted a fresh bucket");
      (* a different token is a different client *)
      with_client addr (fun b ->
          Client.hello b ~token:"bob";
          let outcome, _ =
            collect_query b (query ~id:4 ~graph:"gadget" ~s:2 ())
          in
          ignore (finished_done outcome : P.done_info));
      (* and so is an anonymous unix-socket sibling (private bucket) *)
      with_client addr (fun c ->
          let outcome, _ =
            collect_query c (query ~id:5 ~graph:"gadget" ~s:2 ())
          in
          ignore (finished_done outcome : P.done_info));
      wait_idle srv;
      check_pins srv ~graph:"gadget")

let test_serve_mutate_query_differential () =
  (* 4 concurrent clients query the before-graph; one wire mutation
     lands; the clients re-query and every after-stream must equal the
     Enumerate.refresh oracle (canonically sorted on both sides) *)
  let s = 2 in
  let prior = E.sorted_results E.Cs2_pf churn_before ~s in
  let delta =
    E.refresh ~before:churn_before ~after:churn_applied
      ~touched:(Overlay.touched churn_edits) ~s ~prior ()
  in
  let expect_before =
    List.sort String.compare (List.map Stream.encode_set prior)
  in
  let expect_after =
    List.sort String.compare (List.map Stream.encode_set delta.E.results)
  in
  with_server ~workers:3 [ ("churn", churn_before) ] (fun addr srv ->
      let phase expected =
        let failures = ref [] in
        let flock = Mutex.create () in
        let one () =
          match
            with_client addr (fun c ->
                let outcome, got = collect_query c (query ~graph:"churn" ~s ()) in
                ignore (finished_done outcome : P.done_info);
                if
                  not
                    (List.equal String.equal expected
                       (List.sort String.compare got))
                then failwith "stream mismatch")
          with
          | () -> ()
          | exception e ->
              Scoll.Sync.with_lock flock (fun () ->
                  failures := Printexc.to_string e :: !failures)
        in
        let threads = List.init 4 (fun _ -> Thread.create one ()) in
        List.iter Thread.join threads;
        match !failures with
        | [] -> ()
        | fs -> Alcotest.fail (String.concat "; " fs)
      in
      phase expect_before;
      with_client addr (fun m ->
          let epoch, _, n, m' =
            applied_ack (Client.mutate m ~id:9 ~graph:"churn" ~script:churn_script)
          in
          Alcotest.(check int) "epoch = edits applied"
            (List.length churn_edits) epoch;
          Alcotest.(check int) "ack n" (Sgraph.Graph.n churn_applied) n;
          Alcotest.(check int) "ack m" (Sgraph.Graph.m churn_applied) m');
      phase expect_after;
      wait_idle srv;
      check_pins srv ~graph:"churn";
      Alcotest.(check (option int)) "serving epoch"
        (Some (List.length churn_edits))
        (Server.graph_epoch srv ~graph:"churn"))

let test_epoch_pinning () =
  (* one worker: A occupies it with the huge gadget stream; B's query is
     admitted (and epoch-pinned) BEFORE B's mutation on the same
     connection — strict per-session ordering — so when the worker
     frees, B's query must answer the PRE-mutation graph, bit for bit,
     even though the mutation was acked long before it ran *)
  let before_stream = local_stream E.Cs2_pf churn_before ~s:2 in
  let after_stream = local_stream E.Cs2_pf churn_applied ~s:2 in
  with_server ~workers:1
    [ ("slow", gadget 16); ("churn", churn_before) ]
    (fun addr srv ->
      let a = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close a)
        (fun () ->
          Client.send_request a (P.Query (query ~id:1 ~graph:"slow" ~s:2 ()));
          (match Client.read_response a with
          | Some (P.Result (1, _)) -> ()
          | _ -> Alcotest.fail "occupying query did not start");
          with_client addr (fun b ->
              Client.send_request b (P.Query (query ~id:2 ~graph:"churn" ~s:2 ()));
              Client.send_request b
                (P.Mutate { P.m_id = 3; m_graph = "churn"; m_script = churn_script });
              (* the mutation acks while query 2 still waits for the worker *)
              (match Client.read_response b with
              | Some (P.Mutated { mu_id = 3; mu_epoch; _ }) ->
                  Alcotest.(check int) "mutation epoch"
                    (List.length churn_edits) mu_epoch
              | _ -> Alcotest.fail "expected the Mutated ack first");
              Alcotest.(check (option int)) "tip already advanced"
                (Some (List.length churn_edits))
                (Server.graph_epoch srv ~graph:"churn");
              (* free the worker *)
              Client.cancel a 1;
              let rec drain_a () =
                match Client.read_response a with
                | Some (P.Done _) -> ()
                | Some _ -> drain_a ()
                | None -> Alcotest.fail "A hung up unexpectedly"
              in
              drain_a ();
              let rec collect acc =
                match Client.read_response b with
                | Some (P.Result (2, set)) -> collect (set :: acc)
                | Some (P.Done { P.d_id = 2; d_outcome = Budget.Complete; _ }) ->
                    List.rev acc
                | Some (P.Done _) -> Alcotest.fail "pinned query truncated"
                | _ -> Alcotest.fail "unexpected frame on B"
              in
              let got = collect [] in
              Alcotest.(check (list string))
                "query admitted pre-mutation answers the pre-mutation epoch"
                before_stream got;
              (* and a fresh query sees the successor epoch *)
              let outcome, got' =
                collect_query b (query ~id:4 ~graph:"churn" ~s:2 ())
              in
              ignore (finished_done outcome : P.done_info);
              Alcotest.(check (list string)) "post-mutation stream"
                after_stream got');
          wait_idle srv;
          check_pins srv ~graph:"churn";
          check_pins srv ~graph:"slow"))

let test_mutate_bad_scripts () =
  with_server [ ("churn", churn_before) ] (fun addr srv ->
      with_client addr (fun c ->
          let expect_bad id script msg_part =
            match Client.mutate c ~id ~graph:"churn" ~script with
            | Client.Mutate_failed { code = P.Bad_request; msg } ->
                if not (Astring_contains.contains msg msg_part) then
                  Alcotest.failf "refusal %S does not mention %S" msg msg_part
            | _ -> Alcotest.failf "expected a Bad_request (%s)" msg_part
          in
          (* every strict-prefix truncation of a valid script is refused
             with the Diff decoder's own typed diagnostic *)
          List.iter
            (fun k ->
              expect_bad 1
                (String.sub churn_script 0 k)
                "bad edit script")
            [ 0; 4; 27; String.length churn_script - 1 ];
          (* CRC flip inside an edit record *)
          (let b = Bytes.of_string churn_script in
           Bytes.set b 30 (Char.chr (Char.code (Bytes.get b 30) lxor 0x40));
           expect_bad 2 (Bytes.to_string b) "bad edit script");
          (* header naming the wrong base *)
          expect_bad 3
            (Diff.to_string
               ~base_n:(Sgraph.Graph.n churn_before + 5)
               ~base_m:(Sgraph.Graph.m churn_before)
               churn_edits)
            "base mismatch";
          (* an ineffective edit refuses atomically: find an edge that
             exists (the source of some Delete) and try to insert it *)
          (match
             List.find_opt
               (fun e -> match e with Overlay.Delete _ -> true | _ -> false)
               churn_edits
           with
          | Some (Overlay.Delete (u, v)) ->
              expect_bad 4
                (script_of churn_before [ Overlay.Insert (u, v) ])
                "ineffective"
          | _ -> Alcotest.fail "churn has no deletes to reuse");
          Alcotest.(check (option int)) "nothing applied" (Some 0)
            (Server.graph_epoch srv ~graph:"churn");
          (* the rollback left the tip pristine: the real script applies
             and serves the exact offline replay *)
          ignore
            (applied_ack (Client.mutate c ~id:5 ~graph:"churn" ~script:churn_script)
              : int * int * int * int);
          let outcome, got = collect_query c (query ~id:6 ~graph:"churn" ~s:2 ()) in
          ignore (finished_done outcome : P.done_info);
          Alcotest.(check (list string)) "post-rollback stream"
            (local_stream E.Cs2_pf churn_applied ~s:2)
            got);
      wait_idle srv;
      check_pins srv ~graph:"churn")

let test_journal_replay () =
  with_state_dir (fun dir ->
      (* session 1: mutate, observe, stop *)
      with_server ~state_dir:dir [ ("churn", churn_before) ] (fun addr _srv ->
          with_client addr (fun c ->
              ignore
                (applied_ack
                   (Client.mutate c ~id:1 ~graph:"churn" ~script:churn_script)
                  : int * int * int * int)));
      (* session 2: the state dir wins over the (stale) provided graph;
         replay reproduces the exact epoch and byte-identical answers *)
      with_server ~state_dir:dir [ ("churn", churn_before) ] (fun addr srv ->
          Alcotest.(check (option int)) "epoch survives restart"
            (Some (List.length churn_edits))
            (Server.graph_epoch srv ~graph:"churn");
          with_client addr (fun c ->
              let outcome, got = collect_query c (query ~graph:"churn" ~s:2 ()) in
              ignore (finished_done outcome : P.done_info);
              Alcotest.(check (list string)) "replayed stream"
                (local_stream E.Cs2_pf churn_applied ~s:2)
                got));
      (* a torn journal tail is refused at startup, like any SGRDIFF1 *)
      let journal = Filename.concat dir "churn.journal.0" in
      let len = (Unix.stat journal).Unix.st_size in
      let fd = Unix.openfile journal [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 1);
      Unix.close fd;
      match with_server ~state_dir:dir [ ("churn", churn_before) ] (fun _ _ -> ()) with
      | () -> Alcotest.fail "torn journal accepted"
      | exception Sgraph.Io_error.Parse_error _ -> ())

let mutate_fault_drill site =
  with_state_dir (fun dir ->
      let fault = Fault.create () in
      with_server ~state_dir:dir ~fault [ ("churn", churn_before) ]
        (fun addr srv ->
          Fault.arm_nth fault ~site ~n:1;
          with_client addr (fun c ->
              (* the fault fires between accepting the edits and acking:
                 the journal is truncated back, the tip rolled back, and
                 the client told the truth *)
              (match Client.mutate c ~id:1 ~graph:"churn" ~script:churn_script with
              | Client.Mutate_failed { code = P.Server_error; msg } ->
                  if not (Astring_contains.contains msg "journal") then
                    Alcotest.failf "unexpected diagnostic %S" msg
              | _ -> Alcotest.failf "expected a Server_error from %s" site);
              Alcotest.(check (option int)) "epoch unchanged" (Some 0)
                (Server.graph_epoch srv ~graph:"churn");
              let outcome, got = collect_query c (query ~id:2 ~graph:"churn" ~s:2 ()) in
              ignore (finished_done outcome : P.done_info);
              Alcotest.(check (list string)) "still serving the before-graph"
                (local_stream E.Cs2_pf churn_before ~s:2)
                got;
              (* disarmed, the same session applies the same script *)
              Fault.disarm fault ~site;
              ignore
                (applied_ack
                   (Client.mutate c ~id:3 ~graph:"churn" ~script:churn_script)
                  : int * int * int * int));
          wait_idle srv;
          check_pins srv ~graph:"churn");
      (* the journal holds exactly the acked history: a restart replays
         to the acked epoch, not the faulted one *)
      with_server ~state_dir:dir [ ("churn", churn_before) ] (fun _addr srv ->
          Alcotest.(check (option int)) "well-defined epoch after the crash"
            (Some (List.length churn_edits))
            (Server.graph_epoch srv ~graph:"churn")))

let test_mutate_journal_fault () = mutate_fault_drill "daemon.mutate.journal"
let test_mutate_flush_fault () = mutate_fault_drill "daemon.mutate.flush"

let test_reload () =
  let fault = Fault.create () in
  let sources = [ ("churn", fun () -> churn_after) ] in
  with_server ~fault ~sources [ ("churn", churn_before) ] (fun addr srv ->
      with_client addr (fun c ->
          (* an injected reload fault leaves the graph exactly as it was *)
          Fault.arm_nth fault ~site:"daemon.reload" ~n:1;
          (match Client.reload c ~id:1 ~graph:"churn" with
          | Client.Reload_failed { code = P.Server_error; msg } ->
              if not (Astring_contains.contains msg "injected") then
                Alcotest.failf "unexpected diagnostic %S" msg
          | _ -> Alcotest.fail "expected the injected reload to fail");
          let outcome, got = collect_query c (query ~id:2 ~graph:"churn" ~s:2 ()) in
          ignore (finished_done outcome : P.done_info);
          Alcotest.(check (list string)) "unchanged after failed reload"
            (local_stream E.Cs2_pf churn_before ~s:2)
            got;
          Fault.disarm fault ~site:"daemon.reload";
          (* the real reload swaps to the source's graph at epoch 0,
             without dropping this session *)
          (match Client.reload c ~id:3 ~graph:"churn" with
          | Client.Swapped { epoch; n; m } ->
              Alcotest.(check int) "fresh epoch" 0 epoch;
              Alcotest.(check int) "n" (Sgraph.Graph.n churn_after) n;
              Alcotest.(check int) "m" (Sgraph.Graph.m churn_after) m
          | _ -> Alcotest.fail "reload failed");
          let outcome, got = collect_query c (query ~id:4 ~graph:"churn" ~s:2 ()) in
          ignore (finished_done outcome : P.done_info);
          Alcotest.(check (list string)) "serving the reloaded graph"
            (local_stream E.Cs2_pf churn_after ~s:2)
            got;
          (match Client.reload c ~id:5 ~graph:"nosuch" with
          | Client.Reload_failed { msg; _ } ->
              if not (Astring_contains.contains msg "unknown graph") then
                Alcotest.failf "unexpected diagnostic %S" msg
          | _ -> Alcotest.fail "unknown graph reloaded"));
      wait_idle srv;
      check_pins srv ~graph:"churn")

(* ---------- the Parallel cancel-bound fix ---------- *)

let counter_value obs name = Counters.value (Obs.counter obs name)

let test_dead_budget_drains_free () =
  (* the regression this PR fixes: a budget that is already dead must
     drain the task queue as pure bookkeeping — zero ball BFS, zero
     visit entries — instead of paying for enumeration it will discard *)
  let g = gadget 8 in
  let obs = Obs.create () in
  let budget = Budget.create ~deadline_s:0. () in
  let results, outcome, retired =
    Parallel.enumerate_budgeted ~workers:2 ~obs ~budget g ~s:2
  in
  (match outcome with
  | Budget.Truncated Budget.Deadline -> ()
  | _ -> Alcotest.fail "dead budget did not trip");
  Alcotest.(check int) "no results" 0 (List.length results);
  Alcotest.(check int) "no roots retired" 0 (List.length retired);
  Alcotest.(check int) "zero visit entries while draining" 0
    (counter_value obs "cs2.calls");
  Alcotest.(check int) "zero ball BFS while draining" 0
    (counter_value obs "nh.bfs_expansions")

let test_cancel_stops_paying () =
  (* cancel from the streaming sink after the first retired root: with
     poll_every 1 the single worker must stop enumerating almost
     immediately, so both work counters land far below the full run's *)
  let g = gadget 8 in
  let run ~cancel =
    let obs = Obs.create () in
    let budget = Budget.create ~poll_every:1 () in
    let retired_seen = ref 0 in
    let on_root_retired _root _results =
      incr retired_seen;
      if cancel && !retired_seen = 1 then Budget.request_cancel budget
    in
    let _, outcome, retired =
      Parallel.enumerate_budgeted ~workers:1 ~obs ~budget ~on_root_retired g
        ~s:2
    in
    ( outcome,
      List.length retired,
      counter_value obs "cs2.calls",
      counter_value obs "nh.bfs_expansions" )
  in
  let full_outcome, full_retired, full_calls, full_bfs = run ~cancel:false in
  (match full_outcome with
  | Budget.Complete -> ()
  | Budget.Truncated _ -> Alcotest.fail "reference run truncated");
  let outcome, retired, calls, bfs = run ~cancel:true in
  (match outcome with
  | Budget.Truncated Budget.Cancelled -> ()
  | _ -> Alcotest.fail "cancel did not trip");
  Alcotest.(check bool) "cancel kept almost every root unretired" true
    (retired < full_retired / 4);
  Alcotest.(check bool)
    (Printf.sprintf "visit entries bounded (%d vs full %d)" calls full_calls)
    true
    (calls < full_calls / 4);
  Alcotest.(check bool)
    (Printf.sprintf "ball BFS bounded (%d vs full %d)" bfs full_bfs)
    true
    (bfs < full_bfs / 4)

let test_skip_roots_drain_is_free () =
  (* resuming with every root already retired: the whole queue is skipped
     work, and skipping must not BFS the root balls either *)
  let g = gadget 6 in
  let _, outcome, all_retired =
    Parallel.enumerate_budgeted ~workers:1 ~budget:(Budget.create ()) g ~s:2
  in
  (match outcome with
  | Budget.Complete -> ()
  | Budget.Truncated _ -> Alcotest.fail "setup run truncated");
  let obs = Obs.create () in
  let results, outcome, retired =
    Parallel.enumerate_budgeted ~workers:1 ~obs ~budget:(Budget.create ())
      ~skip_roots:all_retired g ~s:2
  in
  (match outcome with
  | Budget.Complete -> ()
  | Budget.Truncated _ -> Alcotest.fail "skip-all run truncated");
  Alcotest.(check int) "nothing re-emitted" 0 (List.length results);
  Alcotest.(check int) "nothing newly retired" 0 (List.length retired);
  Alcotest.(check int) "skipped roots cost zero visits" 0
    (counter_value obs "cs2.calls")

(* ---------- registration ---------- *)

let suites =
  [
    ( "daemon",
      [
        prop_request_round_trip;
        prop_response_round_trip;
        prop_truncation_total;
        prop_flips_typed;
        prop_payload_crc_flip;
        prop_decoders_total_on_junk;
        prop_trailing_garbage_refused;
        Alcotest.test_case "oversized frames refused" `Quick test_oversized_refused;
        Alcotest.test_case "input_frame EOF semantics" `Quick test_input_frame_eof;
        Alcotest.test_case "bad magic refused" `Quick test_bad_magic;
        Alcotest.test_case "scheduler round-robin fairness" `Quick test_scheduler_fairness;
        Alcotest.test_case "scheduler admission and lane retire" `Quick
          test_scheduler_busy_and_abort;
        Alcotest.test_case "scheduler shutdown aborts backlog" `Quick
          test_scheduler_shutdown_aborts_backlog;
        Alcotest.test_case "served streams bit-identical to E.run" `Quick
          test_differential_serving;
        Alcotest.test_case "par engine matches sequential" `Quick
          test_differential_par_engine;
        Alcotest.test_case "min-size travels the wire" `Quick test_differential_min_size;
        Alcotest.test_case "truncate + resume (roots family)" `Quick test_resume_roots;
        Alcotest.test_case "truncate + resume (pd family)" `Quick test_resume_pd;
        Alcotest.test_case "deadline-zero query resumes losslessly" `Quick
          test_deadline_zero_resumes;
        Alcotest.test_case "4 concurrent clients, shuffled plans" `Quick
          test_concurrent_clients;
        Alcotest.test_case "bad requests get typed refusals" `Quick test_bad_requests_typed;
        Alcotest.test_case "injected write fault contained" `Quick test_injected_write_fault;
        Alcotest.test_case "injected flush fault contained" `Quick test_injected_flush_fault;
        Alcotest.test_case "injected accept fault contained" `Quick
          test_injected_accept_fault;
        Alcotest.test_case "mid-stream disconnect leaves siblings intact" `Quick
          test_client_disconnect_mid_stream;
        Alcotest.test_case "cancel over the wire" `Quick test_cancel_over_wire;
        Alcotest.test_case "busy admission is typed" `Quick test_busy_admission;
        Alcotest.test_case "quota buckets (fake clock)" `Quick test_quota_buckets;
        Alcotest.test_case "quota refusals over the wire" `Quick test_quota_over_wire;
        Alcotest.test_case "quota identity survives reconnects" `Quick
          test_quota_reconnect;
        Alcotest.test_case "serve-mutate-query matches Enumerate.refresh" `Quick
          test_serve_mutate_query_differential;
        Alcotest.test_case "in-flight queries keep their admission epoch" `Quick
          test_epoch_pinning;
        Alcotest.test_case "bad edit scripts refused atomically" `Quick
          test_mutate_bad_scripts;
        Alcotest.test_case "journal replay survives restart" `Quick test_journal_replay;
        Alcotest.test_case "journal-write fault leaves acked epoch" `Quick
          test_mutate_journal_fault;
        Alcotest.test_case "journal-flush fault leaves acked epoch" `Quick
          test_mutate_flush_fault;
        Alcotest.test_case "hot reload swaps epochs without dropping sessions" `Quick
          test_reload;
        Alcotest.test_case "dead budget drains for free" `Quick test_dead_budget_drains_free;
        Alcotest.test_case "cancel stops paying within the poll bound" `Quick
          test_cancel_stops_paying;
        Alcotest.test_case "skip-roots drain is free" `Quick test_skip_roots_drain_is_free;
      ] );
  ]
