The serving daemon end to end: start it on the paper's exponential
gadget, query it over the socket, compare against the in-process
enumeration, and drain it with SIGTERM.

  $ scliques gen --family gadget -n 3 -o base.edges
  wrote base.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques-daemon --socket ./d.sock --graph base=base.edges --workers 2 > daemon.log 2>&1 &
  $ DPID=$!
  $ for i in $(seq 1 150); do [ -S d.sock ] && break; sleep 0.1; done

The daemon answers pings and lists what it serves:

  $ scliques client --socket ./d.sock --ping
  pong
  $ scliques client --socket ./d.sock --list
  base n=14 m=19

A served query streams exactly what the library enumerates:

  $ scliques client --socket ./d.sock base -s 2 | sort > daemon.out
  $ scliques enum base.edges -s 2 | sort > local.out
  $ diff daemon.out local.out

A garbage byte stream is refused with a typed error, and the daemon
shrugs it off:

  $ scliques client --socket ./d.sock --corrupt
  refused: oversized frame (4022250974 bytes)
  $ scliques client --socket ./d.sock --ping
  pong

Malformed requests get typed refusals — unknown graph, nonsense s:

  $ scliques client --socket ./d.sock nosuch -s 2
  scliques: client: daemon serves no graph "nosuch"
  [1]
  $ scliques client --socket ./d.sock base -s 0
  scliques: client: s must be >= 1
  [1]

SIGTERM drains gracefully: one goodbye line, and the socket file is
gone:

  $ kill -TERM $DPID
  $ wait $DPID
  $ cat daemon.log
  scliques-daemon: serving 1 graph on ./d.sock
  scliques-daemon: drained, bye
  $ test -e d.sock || echo socket removed
  socket removed

Admission control: a daemon with one worker and no queue refuses the
second query with Busy while the first is still streaming. The drill
occupies the daemon with the slow exponential gadget, observes the
refusal, then cancels the occupying query:

  $ scliques gen --family gadget -n 16 -o slow.edges
  wrote slow.edges: n=274 m=513 avg_deg=3.74 density=0.013716 max_deg=17 triangles=0
  $ scliques-daemon --socket ./busy.sock --graph slow=slow.edges --workers 1 --max-queue 0 > busy.log 2>&1 &
  $ BPID=$!
  $ for i in $(seq 1 150); do [ -S busy.sock ] && break; sleep 0.1; done
  $ scliques client --socket ./busy.sock slow -s 2 --busy-drill
  busy: running=1 queued=0
  $ kill -TERM $BPID
  $ wait $BPID
  $ cat busy.log
  scliques-daemon: serving 1 graph on ./busy.sock
  scliques-daemon: drained, bye
