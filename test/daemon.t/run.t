The serving daemon end to end: start it on the paper's exponential
gadget, query it over the socket, compare against the in-process
enumeration, and drain it with SIGTERM.

  $ scliques gen --family gadget -n 3 -o base.edges
  wrote base.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques-daemon --socket ./d.sock --graph base=base.edges --workers 2 > daemon.log 2>&1 &
  $ DPID=$!
  $ for i in $(seq 1 150); do [ -S d.sock ] && break; sleep 0.1; done

The daemon answers pings and lists what it serves:

  $ scliques client --socket ./d.sock --ping
  pong
  $ scliques client --socket ./d.sock --list
  base n=14 m=19 epoch=0

A served query streams exactly what the library enumerates:

  $ scliques client --socket ./d.sock base -s 2 | sort > daemon.out
  $ scliques enum base.edges -s 2 | sort > local.out
  $ diff daemon.out local.out

A garbage byte stream is refused with a typed error, and the daemon
shrugs it off:

  $ scliques client --socket ./d.sock --corrupt
  refused: oversized frame (4022250974 bytes)
  $ scliques client --socket ./d.sock --ping
  pong

Malformed requests get typed refusals — unknown graph, nonsense s:

  $ scliques client --socket ./d.sock nosuch -s 2
  scliques: client: daemon serves no graph "nosuch"
  [1]
  $ scliques client --socket ./d.sock base -s 0
  scliques: client: s must be >= 1
  [1]

SIGTERM drains gracefully: one goodbye line, and the socket file is
gone:

  $ kill -TERM $DPID
  $ wait $DPID
  $ cat daemon.log
  scliques-daemon: serving 1 graph on ./d.sock
  scliques-daemon: drained, bye
  $ test -e d.sock || echo socket removed
  socket removed

Admission control: a daemon with one worker and no queue refuses the
second query with Busy while the first is still streaming. The drill
occupies the daemon with the slow exponential gadget, observes the
refusal, then cancels the occupying query:

  $ scliques gen --family gadget -n 16 -o slow.edges
  wrote slow.edges: n=274 m=513 avg_deg=3.74 density=0.013716 max_deg=17 triangles=0
  $ scliques-daemon --socket ./busy.sock --graph slow=slow.edges --workers 1 --max-queue 0 > busy.log 2>&1 &
  $ BPID=$!
  $ for i in $(seq 1 150); do [ -S busy.sock ] && break; sleep 0.1; done
  $ scliques client --socket ./busy.sock slow -s 2 --busy-drill
  busy: running=1 queued=0
  $ kill -TERM $BPID
  $ wait $BPID
  $ cat busy.log
  scliques-daemon: serving 1 graph on ./busy.sock
  scliques-daemon: drained, bye

Live mutation over the wire. Diff the gadget against an edited version
(drop the 6-7 bridge, add the 0-1 chord), start a daemon with a durable
state directory, and ship the script with `client mutate`:

  $ grep -v '^6 7$' base.edges > edited.edges
  $ echo '0 1' >> edited.edges
  $ scliques diff base.edges edited.edges -o churn.diff
  wrote churn.diff: 2 edits (1 inserts, 1 deletes) against n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=0
  $ scliques-daemon --socket ./m.sock --graph base=base.edges --state-dir ./state > mut.log 2>&1 &
  $ MPID=$!
  $ for i in $(seq 1 150); do [ -S m.sock ] && break; sleep 0.1; done
  $ scliques client --socket ./m.sock base -s 2 | sort > served_before.out
  $ scliques client mutate base churn.diff --socket ./m.sock
  applied 2 edits; base now n=14 m=19 epoch=2
  $ scliques client --socket ./m.sock --list
  base n=14 m=19 epoch=2

The daemon now serves exactly what the offline replay of the same
script produces:

  $ scliques mutate base.edges --diff churn.diff -o mutated.edges
  applied 2 edits; wrote mutated.edges: n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=1
  $ scliques client --socket ./m.sock base -s 2 | sort > served_after.out
  $ scliques enum mutated.edges -s 2 | sort | diff - served_after.out

A mutation is acked only after its journal record is flushed, so even
kill -9 loses nothing: a restarted daemon replays the journal and comes
back at the acked epoch — the stale file named by --graph does not win
over the durable state:

  $ kill -9 $MPID && wait $MPID
  [137]
  $ rm -f m.sock
  $ scliques-daemon --socket ./m.sock --graph base=base.edges --state-dir ./state --inject daemon.mutate.journal:1 >> mut.log 2>&1 &
  $ MPID=$!
  $ for i in $(seq 1 150); do [ -S m.sock ] && break; sleep 0.1; done
  $ scliques client --socket ./m.sock --list
  base n=14 m=19 epoch=2
  $ scliques client --socket ./m.sock base -s 2 | sort | diff - served_after.out

A journal fault between accepting the edits and the ack refuses the
mutation, rolls the graph back, and tells the truth; once the armed
fault is spent, the same script applies cleanly:

  $ scliques diff mutated.edges base.edges -o undo.diff
  wrote undo.diff: 2 edits (1 inserts, 1 deletes) against n=14 m=19 avg_deg=2.71 density=0.208791 max_deg=4 triangles=1
  $ scliques client mutate base undo.diff --socket ./m.sock
  scliques: client: mutation journal append failed: Scoll.Fault.Injected("daemon.mutate.journal#1")
  [1]
  $ scliques client --socket ./m.sock --list
  base n=14 m=19 epoch=2
  $ scliques client mutate base undo.diff --socket ./m.sock
  applied 2 edits; base now n=14 m=19 epoch=4
  $ scliques client --socket ./m.sock base -s 2 | sort | diff - served_before.out

Hot reload re-reads the --graph source and serves it at a fresh epoch
without dropping sessions — over the wire, and via SIGHUP:

  $ scliques client reload base --socket ./m.sock
  reloaded base: n=14 m=19 epoch=0
  $ scliques client --socket ./m.sock base -s 2 | sort | diff - served_before.out
  $ kill -HUP $MPID
  $ for i in $(seq 1 150); do grep -q reloaded mut.log && break; sleep 0.1; done
  $ kill -TERM $MPID
  $ wait $MPID
  $ cat mut.log
  scliques-daemon: serving 1 graph on ./m.sock
  scliques-daemon: serving 1 graph on ./m.sock
  scliques-daemon: reloaded base: n=14 m=19 epoch=0
  scliques-daemon: drained, bye

Per-client quotas: a mutation-byte bucket smaller than any edit script
refuses with a typed Retry_after; the client's bounded backoff retries,
then gives up with exit code 6. Sibling connections keep full
throughput:

  $ scliques-daemon --socket ./q.sock --graph base=base.edges --quota-mutate-bps 0.001 --quota-mutate-burst 10 > q.log 2>&1 &
  $ QPID=$!
  $ for i in $(seq 1 150); do [ -S q.sock ] && break; sleep 0.1; done
  $ scliques client mutate base churn.diff --socket ./q.sock --retry 2
  scliques: client: mutation throttled; retry 1/2 in 0.001s
  scliques: client: mutation throttled; retry 2/2 in 0.051s
  scliques: client: mutation refused by the per-client quota; retry after 0.000s
  [6]
  $ scliques client --socket ./q.sock --list
  base n=14 m=19 epoch=0
  $ scliques client --socket ./q.sock base -s 2 | sort | diff - daemon.out
  $ kill -TERM $QPID
  $ wait $QPID
  $ cat q.log
  scliques-daemon: serving 1 graph on ./q.sock
  scliques-daemon: drained, bye
