(* Shared helpers for the test suites. *)

module NS = Sgraph.Node_set
module E = Scliques_core.Enumerate

let ns = Alcotest.testable NS.pp NS.equal

let ns_list = Alcotest.(list ns)

let set_of_ints = NS.of_list

let sorted_sets l = List.sort NS.compare l

(* deterministic random graph for property tests *)
let random_graph seed ~n ~m = Sgraph.Gen.erdos_renyi_gnm (Scoll.Rng.create seed) ~n ~m

let check_sets msg expected actual =
  Alcotest.check ns_list msg (sorted_sets expected) (sorted_sets actual)

(* QCheck generator producing (graph, s) pairs small enough for the
   brute-force oracle. Shrinks toward fewer nodes/edges. *)
let arb_small_graph_and_s =
  let open QCheck2.Gen in
  let gen =
    int_range 1 10 >>= fun n ->
    int_range 0 (max 1 (n * (n - 1) / 2)) >>= fun m ->
    int_range 1 3 >>= fun s ->
    int_range 0 1_000_000 >>= fun seed ->
    return (n, min m (n * (n - 1) / 2), s, seed)
  in
  gen

let graph_of_params (n, m, _, seed) = random_graph seed ~n ~m

let oracle g s = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s

let algorithm_results alg g s = E.sorted_results alg g ~s

(* All real (non-oracle) algorithm variants. *)
let real_algorithms = [ E.Poly_delay; E.Cs1; E.Cs2; E.Cs2_f; E.Cs2_p; E.Cs2_pf ]
