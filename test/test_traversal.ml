(* Bfs, Components, Degeneracy, Power, Metrics. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module Bfs = Sgraph.Bfs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let ns = Test_support.ns

let path5 () = Sgraph.Gen.path 5
let of_l = NS.of_list

let bfs_tests =
  [
    Alcotest.test_case "distances on a path" `Quick (fun () ->
        check (Alcotest.array int) "from 0" [| 0; 1; 2; 3; 4 |] (Bfs.distances (path5 ()) 0);
        check (Alcotest.array int) "from middle" [| 2; 1; 0; 1; 2 |]
          (Bfs.distances (path5 ()) 2));
    Alcotest.test_case "distances mark unreachable -1" `Quick (fun () ->
        let g = G.of_edges ~n:4 [ (0, 1) ] in
        check (Alcotest.array int) "component only" [| 0; 1; -1; -1 |] (Bfs.distances g 0));
    Alcotest.test_case "pairwise distance" `Quick (fun () ->
        let g = path5 () in
        check int "0 to 4" 4 (Bfs.distance g 0 4);
        check int "same node" 0 (Bfs.distance g 2 2);
        check int "disconnected" (-1) (Bfs.distance (G.empty 3) 0 2));
    Alcotest.test_case "distance validates both endpoints" `Quick (fun () ->
        let g = path5 () in
        Alcotest.check_raises "src oob"
          (Invalid_argument "Bfs.distance: node 9 out of range (n=5)") (fun () ->
            ignore (Bfs.distance g 9 0));
        Alcotest.check_raises "dst oob"
          (Invalid_argument "Bfs.distance: node -1 out of range (n=5)") (fun () ->
            ignore (Bfs.distance g 0 (-1)));
        (* the src = dst shortcut must not bypass validation *)
        Alcotest.check_raises "src = dst oob"
          (Invalid_argument "Bfs.distance: node 7 out of range (n=5)") (fun () ->
            ignore (Bfs.distance g 7 7)));
    Alcotest.test_case "distances validates the source" `Quick (fun () ->
        Alcotest.check_raises "oob"
          (Invalid_argument "Bfs.distances: node 5 out of range (n=5)") (fun () ->
            ignore (Bfs.distances (path5 ()) 5)));
    Alcotest.test_case "ball excludes the center" `Quick (fun () ->
        let g = path5 () in
        check ns "radius 1" (of_l [ 1; 3 ]) (Bfs.ball g 2 ~radius:1);
        check ns "radius 2" (of_l [ 0; 1; 3; 4 ]) (Bfs.ball g 2 ~radius:2);
        check ns "radius 0" NS.empty (Bfs.ball g 2 ~radius:0));
    Alcotest.test_case "ball radius larger than graph" `Quick (fun () ->
        check ns "everything" (of_l [ 1; 2; 3; 4 ]) (Bfs.ball (path5 ()) 0 ~radius:99));
    Alcotest.test_case "ball on cycle wraps both ways" `Quick (fun () ->
        let g = Sgraph.Gen.cycle 6 in
        check ns "radius 2 from 0" (of_l [ 1; 2; 4; 5 ]) (Bfs.ball g 0 ~radius:2));
    Alcotest.test_case "ball negative radius rejected" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Bfs.ball: negative radius") (fun () ->
            ignore (Bfs.ball (path5 ()) 0 ~radius:(-1))));
    Alcotest.test_case "ball_within respects the universe" `Quick (fun () ->
        (* path 0-1-2-3-4: without node 2 the ball from 1 cannot reach 3 *)
        let g = path5 () in
        let universe = of_l [ 0; 1; 3; 4 ] in
        check ns "blocked" (of_l [ 0 ]) (Bfs.ball_within g ~universe 1 ~radius:3));
    Alcotest.test_case "ball_within equals ball on full universe" `Quick (fun () ->
        let g = Sgraph.Gen.cycle 7 in
        check ns "same" (Bfs.ball g 3 ~radius:2)
          (Bfs.ball_within g ~universe:(G.nodes g) 3 ~radius:2));
    Alcotest.test_case "ball_within source outside universe rejected" `Quick (fun () ->
        Alcotest.check_raises "outside"
          (Invalid_argument "Bfs.ball_within: source outside universe") (fun () ->
            ignore (Bfs.ball_within (path5 ()) ~universe:(of_l [ 0; 1 ]) 3 ~radius:1)));
    Alcotest.test_case "reachable_within includes source" `Quick (fun () ->
        let g = path5 () in
        check ns "0-1 side" (of_l [ 0; 1 ]) (Bfs.reachable_within g ~universe:(of_l [ 0; 1; 3; 4 ]) 0));
    Alcotest.test_case "is_connected_subset" `Quick (fun () ->
        let g = path5 () in
        check bool "contiguous" true (Bfs.is_connected_subset g (of_l [ 1; 2; 3 ]));
        check bool "gap" false (Bfs.is_connected_subset g (of_l [ 0; 1; 3 ]));
        check bool "empty" true (Bfs.is_connected_subset g NS.empty);
        check bool "singleton" true (Bfs.is_connected_subset g (of_l [ 4 ])));
    Alcotest.test_case "distances agree with power graph edges" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 9) ~n:40 ~avg_degree:3. in
        let p2 = Sgraph.Power.power g ~s:2 in
        G.iter_nodes
          (fun v ->
            let dist = Bfs.distances g v in
            G.iter_nodes
              (fun u ->
                if u <> v then
                  check bool
                    (Printf.sprintf "edge %d-%d iff dist<=2" v u)
                    (dist.(u) >= 1 && dist.(u) <= 2)
                    (G.mem_edge p2 v u))
              g)
          g);
  ]

let components_tests =
  let module C = Sgraph.Components in
  [
    Alcotest.test_case "single component" `Quick (fun () ->
        check int "one" 1 (C.count (path5 ()));
        check bool "connected" true (C.is_connected (path5 ())));
    Alcotest.test_case "empty and single-node graphs are connected" `Quick (fun () ->
        check bool "empty" true (C.is_connected (G.empty 0));
        check bool "one node" true (C.is_connected (G.empty 1));
        check bool "two isolated" false (C.is_connected (G.empty 2)));
    Alcotest.test_case "multiple components listed by smallest member" `Quick (fun () ->
        let g = G.of_edges ~n:6 [ (0, 1); (3, 4) ] in
        check Test_support.ns_list "components"
          [ of_l [ 0; 1 ]; of_l [ 2 ]; of_l [ 3; 4 ]; of_l [ 5 ] ]
          (C.components g));
    Alcotest.test_case "largest" `Quick (fun () ->
        let g = G.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
        check ns "triple" (of_l [ 2; 3; 4 ]) (C.largest g));
    Alcotest.test_case "largest of empty graph raises" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Components.largest: empty graph")
          (fun () -> ignore (C.largest (G.empty 0))));
    Alcotest.test_case "component_of" `Quick (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (3, 4) ] in
        check ns "of 4" (of_l [ 3; 4 ]) (C.component_of g 4);
        check ns "of 2" (of_l [ 2 ]) (C.component_of g 2));
    Alcotest.test_case "components_within" `Quick (fun () ->
        let g = path5 () in
        check Test_support.ns_list "induced split"
          [ of_l [ 0; 1 ]; of_l [ 3; 4 ] ]
          (C.components_within g (of_l [ 0; 1; 3; 4 ])));
    Alcotest.test_case "labels cover all nodes" `Quick (fun () ->
        let g = G.of_edges ~n:7 [ (0, 1); (2, 3); (5, 6) ] in
        let label, c = C.labels g in
        check int "4 components" 4 c;
        Array.iter (fun l -> check bool "label in range" true (l >= 0 && l < c)) label;
        check int "0 and 1 same" label.(0) label.(1);
        check bool "0 and 2 differ" true (label.(0) <> label.(2)));
  ]

let degeneracy_tests =
  let module D = Sgraph.Degeneracy in
  [
    Alcotest.test_case "complete graph K5 has degeneracy 4" `Quick (fun () ->
        check int "4" 4 (D.degeneracy (Sgraph.Gen.complete 5)));
    Alcotest.test_case "tree has degeneracy 1" `Quick (fun () ->
        check int "path" 1 (D.degeneracy (path5 ()));
        check int "star" 1 (D.degeneracy (Sgraph.Gen.star 10)));
    Alcotest.test_case "cycle has degeneracy 2" `Quick (fun () ->
        check int "2" 2 (D.degeneracy (Sgraph.Gen.cycle 8)));
    Alcotest.test_case "edgeless graph has degeneracy 0" `Quick (fun () ->
        check int "0" 0 (D.degeneracy (G.empty 4)));
    Alcotest.test_case "core numbers of K4 plus pendant" `Quick (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4) ] in
        check (Alcotest.array int) "cores" [| 3; 3; 3; 3; 1 |] (D.core_numbers g));
    Alcotest.test_case "ordering property: few later neighbors" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 3) ~n:60 ~avg_degree:6. in
        let d = D.degeneracy g in
        let order = D.ordering g in
        let position = Array.make (G.n g) 0 in
        Array.iteri (fun i v -> position.(v) <- i) order;
        G.iter_nodes
          (fun v ->
            let later =
              Array.fold_left
                (fun acc u -> if position.(u) > position.(v) then acc + 1 else acc)
                0 (G.neighbors g v)
            in
            check bool "bounded by degeneracy" true (later <= d))
          g);
    Alcotest.test_case "ordering is a permutation" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 4) ~n:30 ~avg_degree:4. in
        let order = Array.copy (D.ordering g) in
        Array.sort compare order;
        check (Alcotest.array int) "permutation" (Array.init 30 Fun.id) order);
    Alcotest.test_case "k_core extraction" `Quick (fun () ->
        (* K4 (0..3) with pendant chain 4-5 *)
        let g = G.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4); (4, 5) ] in
        check ns "3-core" (of_l [ 0; 1; 2; 3 ]) (D.k_core g 3);
        check ns "1-core is all" (of_l [ 0; 1; 2; 3; 4; 5 ]) (D.k_core g 1);
        check ns "4-core empty" NS.empty (D.k_core g 4));
    Alcotest.test_case "degeneracy of complete bipartite K33" `Quick (fun () ->
        check int "3" 3 (D.degeneracy (Sgraph.Gen.complete_bipartite 3 3)));
  ]

let power_tests =
  let module P = Sgraph.Power in
  [
    Alcotest.test_case "s=1 is the graph itself" `Quick (fun () ->
        let g = Sgraph.Gen.cycle 7 in
        check bool "equal" true (G.equal g (P.power g ~s:1)));
    Alcotest.test_case "path squared" `Quick (fun () ->
        let p2 = P.power (path5 ()) ~s:2 in
        check int "edges: 4 dist-1 + 3 dist-2" 7 (G.m p2);
        check bool "0-2 now adjacent" true (G.mem_edge p2 0 2);
        check bool "0-3 still not" false (G.mem_edge p2 0 3));
    Alcotest.test_case "large s gives cliques per component" `Quick (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
        let p = P.power g ~s:4 in
        check bool "0-2" true (G.mem_edge p 0 2);
        check bool "3-4" true (G.mem_edge p 3 4);
        check bool "components never merge" false (G.mem_edge p 2 3));
    Alcotest.test_case "s<1 rejected" `Quick (fun () ->
        Alcotest.check_raises "s=0" (Invalid_argument "Power.power: s must be >= 1")
          (fun () -> ignore (P.power (path5 ()) ~s:0)));
    Alcotest.test_case "figure 3: H^2 of the paper" `Quick (fun () ->
        (* the paper's example: v1,v3,v5 pairwise adjacent in H^2 *)
        let h2 = P.power (Sgraph.Gen.figure3_h ()) ~s:2 in
        check bool "v1-v3" true (G.mem_edge h2 0 2);
        check bool "v3-v5" true (G.mem_edge h2 2 4);
        check bool "v1-v5" true (G.mem_edge h2 0 4));
  ]

let metrics_tests =
  let module M = Sgraph.Metrics in
  let feq = Alcotest.float 1e-9 in
  [
    Alcotest.test_case "avg_degree" `Quick (fun () ->
        check feq "cycle" 2. (M.avg_degree (Sgraph.Gen.cycle 6));
        check feq "empty" 0. (M.avg_degree (G.empty 0)));
    Alcotest.test_case "density" `Quick (fun () ->
        check feq "complete" 1. (M.density (Sgraph.Gen.complete 6));
        check feq "empty edges" 0. (M.density (G.empty 6)));
    Alcotest.test_case "degree_histogram" `Quick (fun () ->
        check (Alcotest.array int) "star 4: three leaves one hub" [| 0; 3; 0; 1 |]
          (M.degree_histogram (Sgraph.Gen.star 4)));
    Alcotest.test_case "triangles" `Quick (fun () ->
        check int "K4 has 4" 4 (M.triangle_count (Sgraph.Gen.complete 4));
        check int "K5 has 10" 10 (M.triangle_count (Sgraph.Gen.complete 5));
        check int "cycle none" 0 (M.triangle_count (Sgraph.Gen.cycle 5));
        check int "petersen none" 0 (M.triangle_count (Sgraph.Gen.petersen ())));
    Alcotest.test_case "global clustering" `Quick (fun () ->
        check feq "complete graph 1" 1. (M.global_clustering (Sgraph.Gen.complete 5));
        check feq "tree 0" 0. (M.global_clustering (Sgraph.Gen.star 6)));
    Alcotest.test_case "approx diameter exact on paths and cycles" `Quick (fun () ->
        check int "path" 4 (M.approx_diameter (path5 ()));
        check int "cycle 8" 4 (M.approx_diameter (Sgraph.Gen.cycle 8));
        check int "edgeless" 0 (M.approx_diameter (G.empty 5)));
    Alcotest.test_case "figure1 diameter is 4 (paper: 'the diameter of G is four')"
      `Quick (fun () ->
        let g, _ = Sgraph.Gen.figure1 () in
        check int "4" 4 (M.approx_diameter g));
    Alcotest.test_case "triangle count agrees with a brute-force count" `Quick
      (fun () ->
        let rng = Scoll.Rng.create 13 in
        for _ = 1 to 10 do
          let n = 4 + Scoll.Rng.int rng 10 in
          let m = Scoll.Rng.int rng ((n * (n - 1) / 2) + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          let brute = ref 0 in
          for a = 0 to n - 1 do
            for b = a + 1 to n - 1 do
              for c = b + 1 to n - 1 do
                if G.mem_edge g a b && G.mem_edge g b c && G.mem_edge g a c then
                  incr brute
              done
            done
          done;
          check int (Printf.sprintf "n=%d m=%d" n m) !brute (M.triangle_count g)
        done);
  ]

let suites =
  [
    ("bfs", bfs_tests);
    ("components", components_tests);
    ("degeneracy", degeneracy_tests);
    ("power", power_tests);
    ("metrics", metrics_tests);
  ]
